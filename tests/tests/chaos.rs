//! Chaos suite: the deployment service under seeded fault injection.
//!
//! A `FaultPlan` arms deterministic device faults — transient execution
//! failures, permanent device death, worker-killing panics — and the
//! service must absorb them: every admitted launch either completes with
//! outputs **bit-identical** to the fault-free run (retry / degraded
//! re-plan hid the fault) or resolves its ticket with a typed error.
//! Nothing hangs, and the same seed reproduces the same recovery story
//! counter for counter.
//!
//! Set `CHAOS_QUICK=1` to run the reduced CI subset of the suite.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use hetpart_core::{
    collect_training_db, DeployError, FeatureSet, Framework, HarnessConfig, PartitionPredictor,
    Service, ServiceConfig, ServiceStats,
};
use hetpart_ml::{ModelConfig, TreeConfig};
use hetpart_oclsim::{machines, DeviceFaults, FaultPlan};
use hetpart_runtime::Executor;
use hetpart_suite::Benchmark;

fn deployed_framework() -> &'static Framework {
    static FW: OnceLock<Framework> = OnceLock::new();
    FW.get_or_init(|| {
        let benches: Vec<_> = hetpart_suite::all()
            .into_iter()
            .filter(|b| ["vec_add", "blackscholes", "sgemm", "spmv_csr"].contains(&b.name))
            .collect();
        let cfg = HarnessConfig {
            sizes_per_benchmark: 2,
            sample_items: 32,
            step_tenths: 5,
            ..HarnessConfig::quick()
        };
        let db = collect_training_db(&machines::mc2(), &benches, &cfg).unwrap();
        let predictor = PartitionPredictor::train(
            &db,
            &ModelConfig::Tree(TreeConfig::default()),
            FeatureSet::Both,
        );
        Framework {
            executor: Executor::new(machines::mc2()),
            predictor,
        }
    })
}

fn chaos_suite() -> Vec<Benchmark> {
    let quick = std::env::var_os("CHAOS_QUICK").is_some_and(|v| v != "0" && !v.is_empty());
    let all = hetpart_suite::all();
    if quick {
        // CI subset: skewed towards benchmarks whose mid-size predictions
        // route work to the GPUs, so the fault plan actually bites.
        const QUICK: [&str; 8] = [
            "vec_add",
            "sgemm",
            "mvt",
            "bicg",
            "syrk",
            "nbody",
            "monte_carlo_pi",
            "blackscholes",
        ];
        all.into_iter()
            .filter(|b| QUICK.contains(&b.name))
            .collect()
    } else {
        all
    }
}

/// The canonical chaos plan of this suite: one GPU dies permanently the
/// first time it is used, the other GPU glitches transiently on ~25% of
/// its launches and runs 3x slow besides. The CPU stays healthy so a
/// last-resort re-plan always exists.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        faults: vec![
            DeviceFaults {
                transient_rate: 0.25,
                slowdown: 3.0,
                ..DeviceFaults::none(1)
            },
            DeviceFaults {
                dies_at_launch: Some(0),
                ..DeviceFaults::none(2)
            },
        ],
    }
}

fn chaos_config(plan: FaultPlan) -> ServiceConfig {
    ServiceConfig {
        // One worker + sequential submit→wait keeps the per-device launch
        // ordinals (and so every fault verdict) a pure function of the
        // seed and submission order.
        workers: 1,
        // Breakers trip on wall-clock cooldowns, which would make the
        // recovery story timing-dependent; the chaos determinism suite
        // disables them and leans on retry + re-plan alone.
        breaker_threshold: 0,
        backoff_base: Duration::ZERO,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    }
}

/// Run every chaos-suite benchmark through a freshly armed service,
/// asserting each launch completes bit-identical to its fault-free
/// reference. Returns the final stats and the served output buffers.
fn serve_suite_under_chaos(seed: u64) -> (ServiceStats, Vec<Vec<hetpart_inspire::vm::BufferData>>) {
    let fw = deployed_framework();
    let service = Service::new(fw.clone(), chaos_config(chaos_plan(seed))).unwrap();
    assert!(service.fault_state().is_some(), "chaos plan must be armed");
    let mut outputs = Vec::new();
    for bench in chaos_suite() {
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.sizes[bench.sizes.len() / 2]);

        // Fault-free reference through the plain deployment path.
        let mut reference = inst.bufs.clone();
        fw.run_auto(&kernel, &inst.nd, &inst.args, &mut reference)
            .unwrap_or_else(|e| panic!("{}: fault-free reference failed: {e}", bench.name));

        let served = service
            .submit(
                kernel,
                inst.nd.clone(),
                inst.args.clone(),
                inst.bufs.clone(),
            )
            .expect("admitted")
            .wait()
            .unwrap_or_else(|e| panic!("{}: chaos launch failed: {e}", bench.name));
        assert_eq!(
            served.bufs, reference,
            "{}: outputs under faults must be bit-identical to the fault-free run",
            bench.name
        );
        outputs.push(served.bufs);
    }
    let stats = service.stats();
    service.shutdown();
    (stats, outputs)
}

/// The chaos gate: one device dead, ≥5% transients on another — the
/// service completes 100% of admitted launches, bit-identical to the
/// fault-free run, and the faults demonstrably fired.
#[test]
fn seeded_faults_are_absorbed_bit_identically_across_the_suite() {
    let (stats, _) = serve_suite_under_chaos(42);
    let launches = chaos_suite().len() as u64;
    assert_eq!(stats.completed, launches, "every admitted launch completes");
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.sheds, 0);
    assert_eq!(stats.worker_panics, 0);
    // The plan must actually have bitten: the dead GPU forced re-plans
    // (benchmarks whose prediction used device 2), and transients forced
    // retries. Both are deterministic functions of the seed; if a future
    // predictor change routes around the faulty devices entirely, pick a
    // different seed rather than weakening the gate.
    assert_eq!(stats.dead_devices, 1, "device 2 must have died");
    assert!(stats.replans >= 1, "death must have forced a re-plan");
    assert!(stats.retries >= 1, "transients must have forced retries");
}

/// Same seed ⇒ identical recovery story: stats counters and outputs
/// reproduce bit for bit across two independent service instances.
#[test]
fn same_seed_reproduces_identical_stats_and_outputs() {
    let (a_stats, a_out) = serve_suite_under_chaos(1729);
    let (b_stats, b_out) = serve_suite_under_chaos(1729);
    let fingerprint = |s: &ServiceStats| {
        (
            s.submitted,
            s.completed,
            s.errors,
            s.sheds,
            s.retries,
            s.replans,
            s.worker_panics,
            s.dead_devices,
        )
    };
    assert_eq!(fingerprint(&a_stats), fingerprint(&b_stats));
    assert_eq!(a_out, b_out);
    // A different seed tells a different story (same completions, but the
    // injected-fault counters differ) — the seed is live, not decorative.
    // Seed 42 is known to force retries (the gate test asserts so); 1729
    // happens not to, which is exactly the contrast we want.
    let (c_stats, c_out) = serve_suite_under_chaos(42);
    assert_eq!(c_stats.completed, a_stats.completed);
    assert_eq!(c_out, a_out, "outputs never depend on the seed");
    assert_ne!(
        (a_stats.retries, a_stats.replans),
        (c_stats.retries, c_stats.replans),
        "different seeds should fault differently (if this ever collides, change seeds)"
    );
}

/// A worker panic mid-job resolves that ticket with a typed error and
/// leaves the service serving — no poisoned locks, no hangs.
#[test]
fn injected_worker_panics_resolve_tickets_and_service_survives() {
    let fw = deployed_framework();
    // Every device panics the first time it executes a chunk.
    let plan = FaultPlan {
        seed: 99,
        faults: (0..3)
            .map(|d| DeviceFaults {
                panics_at_launch: Some(0),
                ..DeviceFaults::none(d)
            })
            .collect(),
    };
    let service = Service::new(fw.clone(), chaos_config(plan)).unwrap();
    let bench = hetpart_suite::by_name("vec_add").unwrap();
    let kernel = Arc::new(bench.compile());
    let inst = bench.instance(bench.sizes[bench.sizes.len() / 2]);

    // Each panic fires once per device; after at most one panicky launch
    // per device the same submission must succeed.
    let mut panics = 0;
    let mut served = None;
    for _ in 0..4 {
        match service
            .submit(
                Arc::clone(&kernel),
                inst.nd.clone(),
                inst.args.clone(),
                inst.bufs.clone(),
            )
            .expect("admitted")
            .wait()
        {
            Ok(s) => {
                served = Some(s);
                break;
            }
            Err(DeployError::Worker(msg)) => {
                assert!(msg.contains("injected fault"), "unexpected panic: {msg}");
                panics += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let served = served.expect("service must recover once the panics burn off");
    bench
        .check_outputs(&inst, &served.bufs)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(panics >= 1, "the panic plan must have fired");
    let stats = service.stats();
    assert_eq!(stats.worker_panics, panics);
    assert_eq!(stats.errors, panics);
    // The service is still fully operational for other kernels too.
    let other = hetpart_suite::by_name("triad").unwrap();
    let oinst = other.instance(other.smallest_size());
    let okernel = Arc::new(other.compile());
    let s = service
        .submit(
            okernel,
            oinst.nd.clone(),
            oinst.args.clone(),
            oinst.bufs.clone(),
        )
        .expect("admitted")
        .wait()
        .expect("panic-free launch serves normally");
    other
        .check_outputs(&oinst, &s.bufs)
        .unwrap_or_else(|e| panic!("{e}"));
    service.shutdown();
}
