//! Differential tests: the lane-batched VM engine against the scalar
//! reference engine.
//!
//! The lane engine must be a pure performance change: for every suite
//! kernel and every NDRange shape, buffers, block counters, and sample
//! statistics must be **bit-identical** to the scalar engine — in both
//! divergence modes (masked SIMT reconvergence and the per-lane
//! scalar-replay fallback), including divergent kernels with nested and
//! looping branches, randomly generated control-flow graphs, and sizes
//! that are not multiples of the lane width (which exercise the partial
//! tail batch).

use hetpart_inspire::vm::{ArgValue, BufferData, Counters, DivergenceMode, Vm, LANES};
use hetpart_inspire::{compile, compile_with_modes, compile_with_opt, NdRange, OptLevel, RegAlloc};
use proptest::prelude::*;

/// Run the scalar engine and the lane engine — in **both** divergence
/// modes (SIMT reconvergence and per-lane scalar replay) — over the same
/// range and assert bitwise equality of buffers and counters. Returns the
/// buffers for further checks.
fn assert_range_parity(
    src: &str,
    nd: &NdRange,
    range: std::ops::Range<usize>,
    args: &[ArgValue],
    bufs: &[BufferData],
) -> (Vec<BufferData>, Counters) {
    let k = compile(src).unwrap();
    let mut vm = Vm::new();
    let mut scalar_bufs = bufs.to_vec();
    let scalar = vm
        .run_range_scalar(&k.bytecode, nd, range.clone(), args, &mut scalar_bufs)
        .unwrap();
    let mut out = None;
    for mode in [DivergenceMode::Reconverge, DivergenceMode::Replay] {
        vm.divergence_mode = mode;
        let mut lane_bufs = bufs.to_vec();
        let lanes = vm
            .run_range_lanes(&k.bytecode, nd, range.clone(), args, &mut lane_bufs)
            .unwrap();
        assert_eq!(
            scalar_bufs, lane_bufs,
            "{mode:?}: buffers must be bit-identical"
        );
        assert_eq!(scalar, lanes, "{mode:?}: counters must be identical");
        out = Some((lane_bufs, lanes));
    }
    vm.divergence_mode = DivergenceMode::Reconverge;
    out.expect("both modes ran")
}

/// Assert that sampled execution — which additionally exposes per-lane
/// step counts through the mean/CV statistics — is bit-identical across
/// the scalar engine and both lane-engine divergence modes.
fn assert_sampled_parity(
    src: &str,
    nd: &NdRange,
    range: std::ops::Range<usize>,
    args: &[ArgValue],
    bufs: &[BufferData],
    max_items: usize,
) {
    let k = compile(src).unwrap();
    let mut vm = Vm::new();
    let mut b_scalar = bufs.to_vec();
    let s = vm
        .run_sampled_scalar(
            &k.bytecode,
            nd,
            range.clone(),
            args,
            &mut b_scalar,
            max_items,
        )
        .unwrap();
    for mode in [DivergenceMode::Reconverge, DivergenceMode::Replay] {
        vm.divergence_mode = mode;
        let mut b_lanes = bufs.to_vec();
        let l = vm
            .run_sampled_lanes(
                &k.bytecode,
                nd,
                range.clone(),
                args,
                &mut b_lanes,
                max_items,
            )
            .unwrap();
        assert_eq!(b_scalar, b_lanes, "{mode:?}: sampled buffers");
        assert_eq!(s.counters, l.counters, "{mode:?}: sampled counters");
        assert_eq!(
            s.mean_ops_per_item.to_bits(),
            l.mean_ops_per_item.to_bits(),
            "{mode:?}: per-lane step counts feed the mean"
        );
        assert_eq!(s.ops_cv.to_bits(), l.ops_cv.to_bits(), "{mode:?}: cv");
    }
}

/// Four-way differential: the **unoptimized** scalar execution is the
/// semantic reference; the optimized bytecode — with and without the
/// backend register-allocation + pre-decode tier, on the scalar engine
/// and on the lane engine in both divergence modes — must produce
/// identical buffers and identical fault behavior. Step counts shrink
/// under optimization, so counters are not compared against the
/// reference; but between the two backend variants they must be
/// **bit-identical** (register allocation only renames registers and
/// decoding only re-encodes the instructions — neither may change which
/// blocks execute, how often, or what they cost).
fn assert_opt_parity(
    src: &str,
    nd: &NdRange,
    range: std::ops::Range<usize>,
    args: &[ArgValue],
    bufs: &[BufferData],
) {
    let reference = compile_with_opt(src, OptLevel::None).unwrap();
    let noalloc = compile_with_modes(src, OptLevel::Full, RegAlloc::Off).unwrap();
    let optimized = compile_with_modes(src, OptLevel::Full, RegAlloc::On).unwrap();
    assert!(
        noalloc.bytecode.num_instrs() <= reference.bytecode.num_instrs(),
        "the optimizer must never grow the code"
    );
    assert_eq!(
        optimized.bytecode.num_instrs(),
        noalloc.bytecode.num_instrs(),
        "register allocation must only rename, never add or drop code"
    );
    assert!(
        optimized.bytecode.n_iregs <= noalloc.bytecode.n_iregs
            && optimized.bytecode.n_fregs <= noalloc.bytecode.n_fregs,
        "register allocation must never widen a register file"
    );
    // Renaming registers must leave every per-block static histogram (and
    // with it the dynamic-op accounting it feeds) untouched.
    for (bi, (a, b)) in noalloc
        .bytecode
        .blocks
        .iter()
        .zip(&optimized.bytecode.blocks)
        .enumerate()
    {
        assert_eq!(a.histo, b.histo, "bb{bi}: histogram drifted under regalloc");
    }
    let mut vm = Vm::new();
    let mut ref_bufs = bufs.to_vec();
    let ref_out = vm.run_range_scalar(&reference.bytecode, nd, range.clone(), args, &mut ref_bufs);

    // Scalar engine, both backend variants; counters must agree between
    // the variants (same blocks, same costs — only register names and the
    // instruction encoding differ).
    let mut variant_counters = Vec::new();
    for (what, k) in [("noalloc", &noalloc), ("regalloc", &optimized)] {
        let mut opt_bufs = bufs.to_vec();
        let opt_out = vm.run_range_scalar(&k.bytecode, nd, range.clone(), args, &mut opt_bufs);
        assert_eq!(
            ref_out.is_ok(),
            opt_out.is_ok(),
            "{what}: optimized scalar fault behavior drifted: {ref_out:?} vs {opt_out:?}"
        );
        if let (Err(a), Err(b)) = (&ref_out, &opt_out) {
            assert_eq!(a, b, "{what}: optimized scalar fault kind drifted");
        }
        if ref_out.is_ok() {
            assert_eq!(
                ref_bufs, opt_bufs,
                "{what}: optimized scalar buffers drifted"
            );
        }
        variant_counters.push(opt_out.ok());
    }
    assert_eq!(
        variant_counters[0], variant_counters[1],
        "regalloc+decode changed block counters on the scalar engine"
    );

    // Lane engine, both divergence modes, both backend variants.
    for mode in [DivergenceMode::Reconverge, DivergenceMode::Replay] {
        vm.divergence_mode = mode;
        let mut variant_counters = Vec::new();
        for (what, k) in [("noalloc", &noalloc), ("regalloc", &optimized)] {
            let mut lane_bufs = bufs.to_vec();
            let lane_out = vm.run_range_lanes(&k.bytecode, nd, range.clone(), args, &mut lane_bufs);
            assert_eq!(
                ref_out.is_ok(),
                lane_out.is_ok(),
                "{mode:?}/{what}: optimized lane fault behavior drifted"
            );
            if let (Err(a), Err(b)) = (&ref_out, &lane_out) {
                assert_eq!(a, b, "{mode:?}/{what}: optimized lane fault kind drifted");
            }
            if ref_out.is_ok() {
                assert_eq!(
                    ref_bufs, lane_bufs,
                    "{mode:?}/{what}: optimized lane buffers drifted"
                );
            }
            variant_counters.push(lane_out.ok());
        }
        assert_eq!(
            variant_counters[0], variant_counters[1],
            "{mode:?}: regalloc+decode changed block counters on the lane engine"
        );
    }
    vm.divergence_mode = DivergenceMode::Reconverge;
}

// ---------------------------------------------------------------------
// Every suite kernel
// ---------------------------------------------------------------------

#[test]
fn every_suite_kernel_is_bit_identical_across_engines() {
    for bench in hetpart_suite::all() {
        let kernel = bench.compile();
        let inst = bench.instance(bench.smallest_size());
        let extent = inst.nd.split_extent();

        let mut vm = Vm::new();
        let mut scalar_bufs = inst.bufs.clone();
        let scalar = vm
            .run_range_scalar(
                &kernel.bytecode,
                &inst.nd,
                0..extent,
                &inst.args,
                &mut scalar_bufs,
            )
            .unwrap();
        let mut lane_bufs = inst.bufs.clone();
        let lanes = vm
            .run_range_lanes(
                &kernel.bytecode,
                &inst.nd,
                0..extent,
                &inst.args,
                &mut lane_bufs,
            )
            .unwrap();
        assert_eq!(scalar_bufs, lane_bufs, "{}: buffers differ", bench.name);
        assert_eq!(scalar, lanes, "{}: counters differ", bench.name);

        // The lane engine's output must still satisfy the benchmark's own
        // native reference.
        bench
            .check_outputs(&inst, &lane_bufs)
            .unwrap_or_else(|e| panic!("lane engine fails verification: {e}"));

        // An odd sub-range exercises chunked execution with a misaligned
        // tail batch.
        if extent >= 3 {
            let sub = (extent / 3)..(extent - 1);
            assert_range_parity(bench.source, &inst.nd, sub, &inst.args, &inst.bufs);
        }
    }
}

#[test]
fn every_suite_kernel_matches_the_unoptimized_reference() {
    // Three-way parity on the whole suite: unoptimized scalar is the
    // reference; optimized scalar and optimized lanes must agree with it
    // on every output buffer (and the native reference still passes).
    for bench in hetpart_suite::all() {
        let inst = bench.instance(bench.smallest_size());
        let extent = inst.nd.split_extent();
        assert_opt_parity(bench.source, &inst.nd, 0..extent, &inst.args, &inst.bufs);

        let optimized = bench.compile_with_opt(OptLevel::Full);
        let mut bufs = inst.bufs.clone();
        let mut vm = Vm::new();
        vm.run_range(
            &optimized.bytecode,
            &inst.nd,
            0..extent,
            &inst.args,
            &mut bufs,
        )
        .unwrap_or_else(|e| panic!("{}: optimized execution faulted: {e}", bench.name));
        bench
            .check_outputs(&inst, &bufs)
            .unwrap_or_else(|e| panic!("optimized bytecode fails verification: {e}"));
    }
}

#[test]
fn regalloc_shrinks_register_files_on_every_suite_kernel() {
    // The point of the liveness-driven allocator is a denser register
    // file (the lane engine's SoA arrays scale as 64 × regs × 8 bytes):
    // neither file may ever grow on any suite kernel, and the mean width
    // across the suite must strictly shrink. (A per-kernel strict check
    // would be wrong: reduction_sum is already at its live minimum.)
    let mut total_before = 0u32;
    let mut total_after = 0u32;
    for bench in hetpart_suite::all() {
        let off = bench.compile_with_modes(OptLevel::Full, RegAlloc::Off);
        let on = bench.compile_with_modes(OptLevel::Full, RegAlloc::On);
        assert!(
            on.bytecode.n_iregs <= off.bytecode.n_iregs,
            "{}: I file grew ({} -> {})",
            bench.name,
            off.bytecode.n_iregs,
            on.bytecode.n_iregs
        );
        assert!(
            on.bytecode.n_fregs <= off.bytecode.n_fregs,
            "{}: F file grew ({} -> {})",
            bench.name,
            off.bytecode.n_fregs,
            on.bytecode.n_fregs
        );
        total_before += u32::from(off.bytecode.n_iregs + off.bytecode.n_fregs);
        total_after += u32::from(on.bytecode.n_iregs + on.bytecode.n_fregs);
    }
    assert!(
        total_after < total_before,
        "no suite-wide register-file reduction ({total_before} -> {total_after})"
    );
}

#[test]
fn optimized_code_keeps_per_item_fault_behavior() {
    // Faults must neither appear nor disappear under optimization. This
    // kernel divides by a loaded value that is zero for exactly one item;
    // constant folding and immediate fusion must leave that fault intact.
    let src = "kernel void k(global const int* a, global int* o, int n) {
        int i = get_global_id(0);
        int d = a[i];
        o[i] = (100 + n) / d;
    }";
    let n = 70usize;
    let mut data: Vec<i32> = (0..n as i32).map(|i| i + 1).collect();
    data[37] = 0;
    let bufs = vec![BufferData::I32(data), BufferData::I32(vec![0; n])];
    let args = vec![
        ArgValue::Buffer(0),
        ArgValue::Buffer(1),
        ArgValue::Int(n as i32),
    ];
    assert_opt_parity(src, &NdRange::d1(n), 0..n, &args, &bufs);

    // An out-of-bounds store near the end of the range: unreachable-block
    // elimination and DCE must not touch live stores.
    let oob = "kernel void k(global float* o, int n) {
        int i = get_global_id(0);
        o[i + (n - 4)] = (float)i * (2.0 * 3.0);
    }";
    let bufs = vec![BufferData::F32(vec![0.0; n])];
    let args = vec![ArgValue::Buffer(0), ArgValue::Int(n as i32)];
    assert_opt_parity(oob, &NdRange::d1(n), 0..n, &args, &bufs);
}

#[test]
fn suite_kernel_sampling_is_bit_identical_across_engines() {
    for bench in hetpart_suite::all() {
        let kernel = bench.compile();
        let inst = bench.instance(bench.smallest_size());
        let extent = inst.nd.split_extent();
        let mut vm = Vm::new();
        for max_items in [16usize, 100, usize::MAX] {
            let mut b1 = inst.bufs.clone();
            let s = vm
                .run_sampled_scalar(
                    &kernel.bytecode,
                    &inst.nd,
                    0..extent,
                    &inst.args,
                    &mut b1,
                    max_items,
                )
                .unwrap();
            let mut b2 = inst.bufs.clone();
            let l = vm
                .run_sampled_lanes(
                    &kernel.bytecode,
                    &inst.nd,
                    0..extent,
                    &inst.args,
                    &mut b2,
                    max_items,
                )
                .unwrap();
            assert_eq!(b1, b2, "{}: sampled buffers differ", bench.name);
            assert_eq!(s.counters, l.counters, "{}: sampled counters", bench.name);
            assert_eq!(s.sampled_items, l.sampled_items);
            assert_eq!(
                s.mean_ops_per_item.to_bits(),
                l.mean_ops_per_item.to_bits(),
                "{}: mean ops",
                bench.name
            );
            assert_eq!(s.ops_cv.to_bits(), l.ops_cv.to_bits(), "{}: cv", bench.name);
        }
    }
}

// ---------------------------------------------------------------------
// Divergence and lane-width edges
// ---------------------------------------------------------------------

/// Per-item trip counts, nested branches, break/continue, and a
/// short-circuit condition: maximal control-flow divergence.
const DIVERGENT: &str = "kernel void d(global const float* a, global float* o, int n) {
    int i = get_global_id(0);
    float s = a[i % n];
    for (int j = 0; j < i % 29; j++) {
        if (j == i % 7) { continue; }
        if (j > 20 && i % 2 == 0) { break; }
        s = s * 1.0001 + (float)j;
    }
    if (i % 5 == 0 || s > 100.0) { s = s - floor(s); }
    o[i] = s;
}";

#[test]
fn divergent_kernel_parity_at_lane_width_edges() {
    // Sizes straddling multiples of the lane width force every tail-batch
    // shape, including the single-item batch.
    for n in [1usize, 2, LANES - 1, LANES, LANES + 1, 2 * LANES, 193, 1000] {
        let bufs = vec![
            BufferData::F32((0..n).map(|i| (i as f32).sin()).collect()),
            BufferData::F32(vec![0.0; n]),
        ];
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Int(n as i32),
        ];
        assert_range_parity(DIVERGENT, &NdRange::d1(n), 0..n, &args, &bufs);
    }
}

#[test]
fn multidimensional_ranges_match() {
    const K2D: &str = "kernel void k(global float* o, int w) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        float s = 0.0;
        for (int j = 0; j < (x + y) % 11; j++) { s += sqrt((float)(j + 1)); }
        o[y * w + x] = s;
    }";
    for (w, h) in [(7usize, 13usize), (64, 3), (65, 65), (1, 100)] {
        let bufs = vec![BufferData::F32(vec![0.0; w * h])];
        let args = vec![ArgValue::Buffer(0), ArgValue::Int(w as i32)];
        let nd = NdRange::d2(w, h);
        assert_range_parity(K2D, &nd, 0..h, &args, &bufs);
        // Partial slice ranges (partitioned execution shape).
        if h >= 2 {
            assert_range_parity(K2D, &nd, 1..h - 1, &args, &bufs);
        }
    }

    const K3D: &str = "kernel void k(global float* o, int w, int h) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        int z = get_global_id(2);
        int idx = (z * h + y) * w + x;
        o[idx] = (float)(idx % 17) * 0.5;
    }";
    let (w, h, d) = (5usize, 9usize, 11usize);
    let bufs = vec![BufferData::F32(vec![0.0; w * h * d])];
    let args = vec![
        ArgValue::Buffer(0),
        ArgValue::Int(w as i32),
        ArgValue::Int(h as i32),
    ];
    let nd = NdRange::new(&[w, h, d]);
    assert_range_parity(K3D, &nd, 0..d, &args, &bufs);
    assert_range_parity(K3D, &nd, 3..8, &args, &bufs);
}

#[test]
fn integer_and_uint_semantics_match() {
    // Wrapping arithmetic, shifts, casts, and min/max/abs across lanes.
    const INTS: &str = "kernel void k(global const int* a, global int* o, global uint* u, int n) {
        int i = get_global_id(0);
        int v = a[i];
        uint x = (uint)(v * 2654435761);
        x = x ^ (x >> 16);
        int w = min(max(v * v, -1000), 1000);
        if (i % 4 < 2) { w = abs(v - n); }
        o[i] = w + (v >> 2) + (int)x;
        u[i] = x / (uint)(i + 1) + x % (uint)(i + 1);
    }";
    let n = 301usize;
    let bufs = vec![
        BufferData::I32((0..n as i32).map(|i| i.wrapping_mul(92821) - 150).collect()),
        BufferData::I32(vec![0; n]),
        BufferData::U32(vec![0; n]),
    ];
    let args = vec![
        ArgValue::Buffer(0),
        ArgValue::Buffer(1),
        ArgValue::Buffer(2),
        ArgValue::Int(n as i32),
    ];
    assert_range_parity(INTS, &NdRange::d1(n), 0..n, &args, &bufs);
}

#[test]
fn lane_engine_reports_errors_like_scalar_on_uniform_faults() {
    // A fault every item hits at the same instruction must surface as the
    // same error from both engines.
    let src = "kernel void k(global float* o, int n) {
        int i = get_global_id(0);
        o[i + n] = 1.0;
    }";
    let k = compile(src).unwrap();
    let n = 100usize;
    let args = vec![ArgValue::Buffer(0), ArgValue::Int(n as i32)];
    let mut vm = Vm::new();
    let mut b1 = vec![BufferData::F32(vec![0.0; n])];
    let e_scalar = vm
        .run_range_scalar(&k.bytecode, &NdRange::d1(n), 0..n, &args, &mut b1)
        .unwrap_err();
    let mut b2 = vec![BufferData::F32(vec![0.0; n])];
    let e_lanes = vm
        .run_range_lanes(&k.bytecode, &NdRange::d1(n), 0..n, &args, &mut b2)
        .unwrap_err();
    assert_eq!(e_scalar, e_lanes);
}

#[test]
fn nested_divergence_with_early_return_rejoins_correctly() {
    // Divergent early return (rejoin = virtual exit), a divergent loop
    // whose body contains another divergent branch (nested reconvergence
    // frames), and a loop-carried accumulator that must survive masked
    // execution of the other side.
    let src = "kernel void k(global const float* a, global float* o, int n) {
        int i = get_global_id(0);
        if (i % 11 == 3) { return; }
        float s = a[i % n];
        for (int j = 0; j < i % 9; j++) {
            if ((i + j) % 2 == 0) { s = s + 1.0; } else { s = s * 1.5; }
            if (j == i % 4) { continue; }
            s = s - 0.25;
        }
        if (i % 6 < 2) { o[i] = s; } else { o[i] = -s; }
    }";
    for n in [5usize, LANES, LANES + 7, 311] {
        let bufs = vec![
            BufferData::F32((0..n).map(|i| (i as f32 * 0.37).cos()).collect()),
            BufferData::F32(vec![0.0; n]),
        ];
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Int(n as i32),
        ];
        assert_range_parity(src, &NdRange::d1(n), 0..n, &args, &bufs);
        assert_sampled_parity(src, &NdRange::d1(n), 0..n, &args, &bufs, 97);
    }
}

#[test]
fn divergent_loop_trip_counts_keep_per_lane_steps_exact() {
    // A mandelbrot-shaped kernel: per-lane loop exit via a data-dependent
    // condition. Per-lane step counts (observable through the sampled
    // mean/CV) must match the scalar engine bit for bit.
    let src = "kernel void k(global float* o, int n) {
        int i = get_global_id(0);
        float zx = 0.0;
        float zy = (float)i * 0.01;
        int it = 0;
        while (zx * zx + zy * zy <= 4.0 && it < 64) {
            float t = zx * zx - zy * zy + 0.3;
            zy = 2.0 * zx * zy + (float)(i % 7) * 0.1;
            zx = t;
            it = it + 1;
        }
        o[i] = (float)it;
    }";
    let n = 421usize;
    let bufs = vec![BufferData::F32(vec![0.0; n])];
    let args = vec![ArgValue::Buffer(0), ArgValue::Int(n as i32)];
    assert_range_parity(src, &NdRange::d1(n), 0..n, &args, &bufs);
    assert_sampled_parity(src, &NdRange::d1(n), 0..n, &args, &bufs, 203);
}

#[test]
fn run_items_per_item_counters_match_in_both_divergence_modes() {
    let src = "kernel void k(global const float* a, global float* o, int n) {
        int i = get_global_id(0);
        float s = 0.0;
        for (int j = 0; j <= i % 13; j++) {
            if (j % 3 == 1) { s += a[(i + j) % n]; } else { s -= 0.5; }
        }
        o[i] = s;
    }";
    let k = compile(src).unwrap();
    let n = 260usize;
    let args = vec![
        ArgValue::Buffer(0),
        ArgValue::Buffer(1),
        ArgValue::Int(n as i32),
    ];
    let gids: Vec<[usize; 3]> = (0..n).step_by(2).map(|i| [i, 0, 0]).collect();
    let mk = || vec![BufferData::F32(vec![1.0; n]), BufferData::F32(vec![0.0; n])];
    let mut vm = Vm::new();
    let mut b_ref = mk();
    let per_scalar = vm
        .run_items_scalar(&k.bytecode, &NdRange::d1(n), &gids, &args, &mut b_ref)
        .unwrap();
    for mode in [DivergenceMode::Reconverge, DivergenceMode::Replay] {
        vm.divergence_mode = mode;
        let mut b = mk();
        let per_lanes = vm
            .run_items(&k.bytecode, &NdRange::d1(n), &gids, &args, &mut b)
            .unwrap();
        assert_eq!(b_ref, b, "{mode:?}: buffers");
        assert_eq!(per_scalar, per_lanes, "{mode:?}: per-item counters");
    }
}

#[test]
fn divergent_step_limit_errors_match_scalar() {
    // Half the lanes enter an unbounded loop; the step limit must fire
    // with the same error as the scalar engine in both divergence modes.
    let src = "kernel void k(global int* o, int n) {
        int i = get_global_id(0);
        int v = 0;
        while (i % 2 == 0) { v = v + 1; }
        o[i] = v;
    }";
    let k = compile(src).unwrap();
    let n = 96usize;
    let args = vec![ArgValue::Buffer(0), ArgValue::Int(n as i32)];
    let mut vm = Vm::new();
    vm.step_limit = 10_000;
    let mut b = vec![BufferData::I32(vec![0; n])];
    let e_scalar = vm
        .run_range_scalar(&k.bytecode, &NdRange::d1(n), 0..n, &args, &mut b)
        .unwrap_err();
    for mode in [DivergenceMode::Reconverge, DivergenceMode::Replay] {
        vm.divergence_mode = mode;
        let mut b = vec![BufferData::I32(vec![0; n])];
        let e_lanes = vm
            .run_range_lanes(&k.bytecode, &NdRange::d1(n), 0..n, &args, &mut b)
            .unwrap_err();
        assert_eq!(e_scalar, e_lanes, "{mode:?}");
    }
}

// ---------------------------------------------------------------------
// Random structured CFGs
// ---------------------------------------------------------------------

/// Tiny deterministic PRNG for the kernel generator (xorshift64*).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E3779B97F4A7C15);
        self.0 = x;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emit a random block of statements over `i` (the global id), the float
/// accumulator `s`, the int accumulator `t`, and any enclosing loop
/// variables — nested/looping divergent branches, break/continue, and
/// early returns included.
fn gen_block(rng: &mut Rng, depth: u32, loop_vars: &mut Vec<String>, out: &mut String, pad: usize) {
    let n_stmts = 1 + rng.below(3);
    for _ in 0..n_stmts {
        let indent = "    ".repeat(pad);
        // Leaves only at max depth; otherwise mix in ifs and loops.
        let kind = if depth == 0 {
            rng.below(2)
        } else {
            rng.below(6)
        };
        match kind {
            0 => {
                let c = rng.below(11);
                out.push_str(&format!(
                    "{indent}s = s * 1.0001 + (float)((i + {c}) % 7);\n"
                ));
            }
            1 => {
                let c = 1 + rng.below(5);
                out.push_str(&format!("{indent}t = t * 3 + {c};\n"));
            }
            2 | 3 => {
                // Divergent if, data-dependent on the global id (and on
                // the innermost loop variable, when there is one).
                let m = 2 + rng.below(6);
                let t = rng.below(m);
                let var = loop_vars
                    .last()
                    .map(|v| format!("(i + {v})"))
                    .unwrap_or_else(|| "i".to_string());
                out.push_str(&format!("{indent}if ({var} % {m} < {t}) {{\n"));
                gen_block(rng, depth - 1, loop_vars, out, pad + 1);
                if rng.below(2) == 0 {
                    out.push_str(&format!("{indent}}} else {{\n"));
                    gen_block(rng, depth - 1, loop_vars, out, pad + 1);
                }
                out.push_str(&format!("{indent}}}\n"));
            }
            4 => {
                // Divergent loop with a per-lane trip count; occasionally
                // guarded break/continue inside.
                let v = format!("j{}", loop_vars.len());
                let c = rng.below(7);
                let m = 2 + rng.below(7);
                out.push_str(&format!(
                    "{indent}for (int {v} = 0; {v} < (i + {c}) % {m}; {v}++) {{\n"
                ));
                loop_vars.push(v.clone());
                if rng.below(3) == 0 {
                    let b = rng.below(m);
                    let kw = if rng.below(2) == 0 {
                        "break"
                    } else {
                        "continue"
                    };
                    out.push_str(&format!(
                        "{}if ({v} == {b}) {{ {kw}; }}\n",
                        "    ".repeat(pad + 1)
                    ));
                }
                gen_block(rng, depth - 1, loop_vars, out, pad + 1);
                loop_vars.pop();
                out.push_str(&format!("{indent}}}\n"));
            }
            _ => {
                // Divergent early return: lanes leave at different points.
                let m = 5 + rng.below(13);
                out.push_str(&format!(
                    "{indent}if ((i + t) % {m} == 1) {{ o[i] = s; return; }}\n"
                ));
            }
        }
    }
}

/// Build a complete random kernel from a seed.
fn gen_kernel(seed: u64) -> String {
    let mut rng = Rng(seed);
    let mut body = String::new();
    let mut loop_vars = Vec::new();
    gen_block(&mut rng, 2, &mut loop_vars, &mut body, 1);
    format!(
        "kernel void r(global const float* a, global float* o, int n) {{\n    \
         int i = get_global_id(0);\n    \
         float s = a[i % n];\n    \
         int t = i % 17;\n{body}    \
         o[i] = s + (float)(t % 1024);\n}}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random small CFGs with nested and looping divergent branches:
    /// buffers, block counters, and per-lane step statistics must be
    /// bit-identical across the scalar engine, the reconvergence engine,
    /// and the replay engine — and the optimized bytecode must match the
    /// unoptimized scalar reference output for output.
    #[test]
    fn random_divergent_cfgs_are_bit_identical(
        seed in 0u64..(1u64 << 48),
        n in 65usize..320,
    ) {
        let src = gen_kernel(seed);
        let bufs = vec![
            BufferData::F32((0..n).map(|i| (i as f32 * 0.11).sin() + 1.5).collect()),
            BufferData::F32(vec![0.0; n]),
        ];
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Int(n as i32),
        ];
        let nd = NdRange::d1(n);
        // Every compilation mode of the random CFG must pass the IR
        // verifier — the same corpus that exercises the engines also
        // exercises the static checks.
        for level in [OptLevel::None, OptLevel::Full] {
            for ra in [RegAlloc::Off, RegAlloc::On] {
                let k = compile_with_modes(&src, level, ra).unwrap();
                hetpart_inspire::analysis::verify::verify_function("proptest", &k.bytecode)
                    .unwrap();
            }
        }
        assert_range_parity(&src, &nd, 0..n, &args, &bufs);
        // A misaligned sub-range exercises partial tail batches.
        assert_range_parity(&src, &nd, (n / 7)..(n - 3), &args, &bufs);
        // Sampled execution checks per-lane step counts bit for bit.
        assert_sampled_parity(&src, &nd, 0..n, &args, &bufs, 83);
        // Three-way: optimized scalar + lanes vs unoptimized reference.
        assert_opt_parity(&src, &nd, 0..n, &args, &bufs);
    }
}

// ---------------------------------------------------------------------
// Property-based parity
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_shapes_and_ranges_are_bit_identical(
        w in 1usize..40,
        h in 1usize..40,
        lo_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let nd = NdRange::d2(w, h);
        let lo = ((h as f64 * lo_frac) as usize).min(h - 1);
        let len = (((h - lo) as f64 * len_frac) as usize).max(1).min(h - lo);
        let bufs = vec![BufferData::F32(vec![0.5; w * h])];
        let args = vec![ArgValue::Buffer(0), ArgValue::Int(w as i32)];
        let src = "kernel void k(global float* o, int w) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            float s = 1.0;
            for (int j = 0; j < (x * 3 + y) % 19; j++) { s = s * 1.01 + 0.25; }
            o[y * w + x] = s;
        }";
        let k = compile(src).unwrap();
        let mut vm = Vm::new();
        let mut b1 = bufs.clone();
        let c1 = vm
            .run_range_scalar(&k.bytecode, &nd, lo..lo + len, &args, &mut b1)
            .unwrap();
        let mut b2 = bufs.clone();
        let c2 = vm
            .run_range_lanes(&k.bytecode, &nd, lo..lo + len, &args, &mut b2)
            .unwrap();
        prop_assert_eq!(b1, b2);
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn random_sampling_budgets_are_bit_identical(
        n in 9usize..3000,
        max_items in 9usize..512,
    ) {
        let bufs = vec![
            BufferData::F32((0..n).map(|i| i as f32 * 0.125).collect()),
            BufferData::F32(vec![0.0; n]),
        ];
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Int(n as i32),
        ];
        let k = compile(DIVERGENT).unwrap();
        let nd = NdRange::d1(n);
        let mut vm = Vm::new();
        let mut b1 = bufs.clone();
        let s = vm
            .run_sampled_scalar(&k.bytecode, &nd, 0..n, &args, &mut b1, max_items)
            .unwrap();
        let mut b2 = bufs.clone();
        let l = vm
            .run_sampled_lanes(&k.bytecode, &nd, 0..n, &args, &mut b2, max_items)
            .unwrap();
        prop_assert_eq!(b1, b2);
        prop_assert_eq!(s.counters, l.counters);
        prop_assert_eq!(s.mean_ops_per_item.to_bits(), l.mean_ops_per_item.to_bits());
        prop_assert_eq!(s.ops_cv.to_bits(), l.ops_cv.to_bits());
    }
}
