//! Differential tests: the lane-batched VM engine against the scalar
//! reference engine.
//!
//! The lane engine must be a pure performance change: for every suite
//! kernel and every NDRange shape, buffers, block counters, and sample
//! statistics must be **bit-identical** to the scalar engine — including
//! divergent kernels (which exercise per-lane replay) and sizes that are
//! not multiples of the lane width (which exercise the partial tail
//! batch).

use hetpart_inspire::compile;
use hetpart_inspire::vm::{ArgValue, BufferData, Counters, Vm, LANES};
use hetpart_inspire::NdRange;
use proptest::prelude::*;

/// Run both engines over the same range and assert bitwise equality of
/// buffers and counters. Returns the buffers for further checks.
fn assert_range_parity(
    src: &str,
    nd: &NdRange,
    range: std::ops::Range<usize>,
    args: &[ArgValue],
    bufs: &[BufferData],
) -> (Vec<BufferData>, Counters) {
    let k = compile(src).unwrap();
    let mut vm = Vm::new();
    let mut scalar_bufs = bufs.to_vec();
    let scalar = vm
        .run_range_scalar(&k.bytecode, nd, range.clone(), args, &mut scalar_bufs)
        .unwrap();
    let mut lane_bufs = bufs.to_vec();
    let lanes = vm
        .run_range_lanes(&k.bytecode, nd, range, args, &mut lane_bufs)
        .unwrap();
    assert_eq!(scalar_bufs, lane_bufs, "buffers must be bit-identical");
    assert_eq!(scalar, lanes, "counters must be identical");
    (lane_bufs, lanes)
}

// ---------------------------------------------------------------------
// Every suite kernel
// ---------------------------------------------------------------------

#[test]
fn every_suite_kernel_is_bit_identical_across_engines() {
    for bench in hetpart_suite::all() {
        let kernel = bench.compile();
        let inst = bench.instance(bench.smallest_size());
        let extent = inst.nd.split_extent();

        let mut vm = Vm::new();
        let mut scalar_bufs = inst.bufs.clone();
        let scalar = vm
            .run_range_scalar(
                &kernel.bytecode,
                &inst.nd,
                0..extent,
                &inst.args,
                &mut scalar_bufs,
            )
            .unwrap();
        let mut lane_bufs = inst.bufs.clone();
        let lanes = vm
            .run_range_lanes(
                &kernel.bytecode,
                &inst.nd,
                0..extent,
                &inst.args,
                &mut lane_bufs,
            )
            .unwrap();
        assert_eq!(scalar_bufs, lane_bufs, "{}: buffers differ", bench.name);
        assert_eq!(scalar, lanes, "{}: counters differ", bench.name);

        // The lane engine's output must still satisfy the benchmark's own
        // native reference.
        bench
            .check_outputs(&inst, &lane_bufs)
            .unwrap_or_else(|e| panic!("lane engine fails verification: {e}"));

        // An odd sub-range exercises chunked execution with a misaligned
        // tail batch.
        if extent >= 3 {
            let sub = (extent / 3)..(extent - 1);
            assert_range_parity(bench.source, &inst.nd, sub, &inst.args, &inst.bufs);
        }
    }
}

#[test]
fn suite_kernel_sampling_is_bit_identical_across_engines() {
    for bench in hetpart_suite::all() {
        let kernel = bench.compile();
        let inst = bench.instance(bench.smallest_size());
        let extent = inst.nd.split_extent();
        let mut vm = Vm::new();
        for max_items in [16usize, 100, usize::MAX] {
            let mut b1 = inst.bufs.clone();
            let s = vm
                .run_sampled_scalar(
                    &kernel.bytecode,
                    &inst.nd,
                    0..extent,
                    &inst.args,
                    &mut b1,
                    max_items,
                )
                .unwrap();
            let mut b2 = inst.bufs.clone();
            let l = vm
                .run_sampled_lanes(
                    &kernel.bytecode,
                    &inst.nd,
                    0..extent,
                    &inst.args,
                    &mut b2,
                    max_items,
                )
                .unwrap();
            assert_eq!(b1, b2, "{}: sampled buffers differ", bench.name);
            assert_eq!(s.counters, l.counters, "{}: sampled counters", bench.name);
            assert_eq!(s.sampled_items, l.sampled_items);
            assert_eq!(
                s.mean_ops_per_item.to_bits(),
                l.mean_ops_per_item.to_bits(),
                "{}: mean ops",
                bench.name
            );
            assert_eq!(s.ops_cv.to_bits(), l.ops_cv.to_bits(), "{}: cv", bench.name);
        }
    }
}

// ---------------------------------------------------------------------
// Divergence and lane-width edges
// ---------------------------------------------------------------------

/// Per-item trip counts, nested branches, break/continue, and a
/// short-circuit condition: maximal control-flow divergence.
const DIVERGENT: &str = "kernel void d(global const float* a, global float* o, int n) {
    int i = get_global_id(0);
    float s = a[i % n];
    for (int j = 0; j < i % 29; j++) {
        if (j == i % 7) { continue; }
        if (j > 20 && i % 2 == 0) { break; }
        s = s * 1.0001 + (float)j;
    }
    if (i % 5 == 0 || s > 100.0) { s = s - floor(s); }
    o[i] = s;
}";

#[test]
fn divergent_kernel_parity_at_lane_width_edges() {
    // Sizes straddling multiples of the lane width force every tail-batch
    // shape, including the single-item batch.
    for n in [1usize, 2, LANES - 1, LANES, LANES + 1, 2 * LANES, 193, 1000] {
        let bufs = vec![
            BufferData::F32((0..n).map(|i| (i as f32).sin()).collect()),
            BufferData::F32(vec![0.0; n]),
        ];
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Int(n as i32),
        ];
        assert_range_parity(DIVERGENT, &NdRange::d1(n), 0..n, &args, &bufs);
    }
}

#[test]
fn multidimensional_ranges_match() {
    const K2D: &str = "kernel void k(global float* o, int w) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        float s = 0.0;
        for (int j = 0; j < (x + y) % 11; j++) { s += sqrt((float)(j + 1)); }
        o[y * w + x] = s;
    }";
    for (w, h) in [(7usize, 13usize), (64, 3), (65, 65), (1, 100)] {
        let bufs = vec![BufferData::F32(vec![0.0; w * h])];
        let args = vec![ArgValue::Buffer(0), ArgValue::Int(w as i32)];
        let nd = NdRange::d2(w, h);
        assert_range_parity(K2D, &nd, 0..h, &args, &bufs);
        // Partial slice ranges (partitioned execution shape).
        if h >= 2 {
            assert_range_parity(K2D, &nd, 1..h - 1, &args, &bufs);
        }
    }

    const K3D: &str = "kernel void k(global float* o, int w, int h) {
        int x = get_global_id(0);
        int y = get_global_id(1);
        int z = get_global_id(2);
        int idx = (z * h + y) * w + x;
        o[idx] = (float)(idx % 17) * 0.5;
    }";
    let (w, h, d) = (5usize, 9usize, 11usize);
    let bufs = vec![BufferData::F32(vec![0.0; w * h * d])];
    let args = vec![
        ArgValue::Buffer(0),
        ArgValue::Int(w as i32),
        ArgValue::Int(h as i32),
    ];
    let nd = NdRange::new(&[w, h, d]);
    assert_range_parity(K3D, &nd, 0..d, &args, &bufs);
    assert_range_parity(K3D, &nd, 3..8, &args, &bufs);
}

#[test]
fn integer_and_uint_semantics_match() {
    // Wrapping arithmetic, shifts, casts, and min/max/abs across lanes.
    const INTS: &str = "kernel void k(global const int* a, global int* o, global uint* u, int n) {
        int i = get_global_id(0);
        int v = a[i];
        uint x = (uint)(v * 2654435761);
        x = x ^ (x >> 16);
        int w = min(max(v * v, -1000), 1000);
        if (i % 4 < 2) { w = abs(v - n); }
        o[i] = w + (v >> 2) + (int)x;
        u[i] = x / (uint)(i + 1) + x % (uint)(i + 1);
    }";
    let n = 301usize;
    let bufs = vec![
        BufferData::I32((0..n as i32).map(|i| i.wrapping_mul(92821) - 150).collect()),
        BufferData::I32(vec![0; n]),
        BufferData::U32(vec![0; n]),
    ];
    let args = vec![
        ArgValue::Buffer(0),
        ArgValue::Buffer(1),
        ArgValue::Buffer(2),
        ArgValue::Int(n as i32),
    ];
    assert_range_parity(INTS, &NdRange::d1(n), 0..n, &args, &bufs);
}

#[test]
fn lane_engine_reports_errors_like_scalar_on_uniform_faults() {
    // A fault every item hits at the same instruction must surface as the
    // same error from both engines.
    let src = "kernel void k(global float* o, int n) {
        int i = get_global_id(0);
        o[i + n] = 1.0;
    }";
    let k = compile(src).unwrap();
    let n = 100usize;
    let args = vec![ArgValue::Buffer(0), ArgValue::Int(n as i32)];
    let mut vm = Vm::new();
    let mut b1 = vec![BufferData::F32(vec![0.0; n])];
    let e_scalar = vm
        .run_range_scalar(&k.bytecode, &NdRange::d1(n), 0..n, &args, &mut b1)
        .unwrap_err();
    let mut b2 = vec![BufferData::F32(vec![0.0; n])];
    let e_lanes = vm
        .run_range_lanes(&k.bytecode, &NdRange::d1(n), 0..n, &args, &mut b2)
        .unwrap_err();
    assert_eq!(e_scalar, e_lanes);
}

// ---------------------------------------------------------------------
// Property-based parity
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_shapes_and_ranges_are_bit_identical(
        w in 1usize..40,
        h in 1usize..40,
        lo_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let nd = NdRange::d2(w, h);
        let lo = ((h as f64 * lo_frac) as usize).min(h - 1);
        let len = (((h - lo) as f64 * len_frac) as usize).max(1).min(h - lo);
        let bufs = vec![BufferData::F32(vec![0.5; w * h])];
        let args = vec![ArgValue::Buffer(0), ArgValue::Int(w as i32)];
        let src = "kernel void k(global float* o, int w) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            float s = 1.0;
            for (int j = 0; j < (x * 3 + y) % 19; j++) { s = s * 1.01 + 0.25; }
            o[y * w + x] = s;
        }";
        let k = compile(src).unwrap();
        let mut vm = Vm::new();
        let mut b1 = bufs.clone();
        let c1 = vm
            .run_range_scalar(&k.bytecode, &nd, lo..lo + len, &args, &mut b1)
            .unwrap();
        let mut b2 = bufs.clone();
        let c2 = vm
            .run_range_lanes(&k.bytecode, &nd, lo..lo + len, &args, &mut b2)
            .unwrap();
        prop_assert_eq!(b1, b2);
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn random_sampling_budgets_are_bit_identical(
        n in 9usize..3000,
        max_items in 9usize..512,
    ) {
        let bufs = vec![
            BufferData::F32((0..n).map(|i| i as f32 * 0.125).collect()),
            BufferData::F32(vec![0.0; n]),
        ];
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Int(n as i32),
        ];
        let k = compile(DIVERGENT).unwrap();
        let nd = NdRange::d1(n);
        let mut vm = Vm::new();
        let mut b1 = bufs.clone();
        let s = vm
            .run_sampled_scalar(&k.bytecode, &nd, 0..n, &args, &mut b1, max_items)
            .unwrap();
        let mut b2 = bufs.clone();
        let l = vm
            .run_sampled_lanes(&k.bytecode, &nd, 0..n, &args, &mut b2, max_items)
            .unwrap();
        prop_assert_eq!(b1, b2);
        prop_assert_eq!(s.counters, l.counters);
        prop_assert_eq!(s.mean_ops_per_item.to_bits(), l.mean_ops_per_item.to_bits());
        prop_assert_eq!(s.ops_cv.to_bits(), l.ops_cv.to_bits());
    }
}
