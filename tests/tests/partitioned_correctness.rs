//! The correctness property of the whole system: partitioned multi-device
//! execution must be functionally identical to single-device execution for
//! every benchmark of the suite — the source-to-source transformation the
//! Insieme compiler performs must not change program semantics.

use hetpart_oclsim::machines;
use hetpart_runtime::{Executor, Launch, Partition};

/// Partitions that exercise interesting split shapes.
fn probe_partitions() -> Vec<Partition> {
    vec![
        Partition::cpu_only(3),
        Partition::gpu_only(3),
        Partition::even(3),
        Partition::from_tenths(vec![1, 2, 7]),
        Partition::from_tenths(vec![0, 9, 1]),
    ]
}

#[test]
fn every_benchmark_is_partition_invariant() {
    let ex = Executor::new(machines::mc1());
    for bench in hetpart_suite::all() {
        let kernel = bench.compile();
        let n = bench.smallest_size();
        let inst = bench.instance(n);
        for partition in probe_partitions() {
            let mut bufs = inst.bufs.clone();
            let launch = Launch::new(&kernel, inst.nd.clone(), inst.args.clone());
            ex.run(&launch, &mut bufs, &partition)
                .unwrap_or_else(|e| panic!("{} under {partition}: {e}", bench.name));
            bench
                .check_outputs(&inst, &bufs)
                .unwrap_or_else(|e| panic!("{} under {partition}: {e}", bench.name));
        }
    }
}

#[test]
fn two_dimensional_kernels_split_rows_not_columns() {
    // For a 2D kernel, the chunks partition the row (outermost) dimension:
    // verify via the execution report that the chunk bounds tile the rows.
    let bench = hetpart_suite::by_name("stencil2d").unwrap();
    let kernel = bench.compile();
    let n = bench.smallest_size();
    let inst = bench.instance(n);
    let ex = Executor::new(machines::mc2());
    let launch = Launch::new(&kernel, inst.nd.clone(), inst.args.clone());
    let mut bufs = inst.bufs.clone();
    let report = ex.run(&launch, &mut bufs, &Partition::even(3)).unwrap();
    let mut covered = 0;
    for run in &report.device_runs {
        assert_eq!(run.chunk_start, covered, "chunks must be contiguous");
        covered = run.chunk_end;
    }
    assert_eq!(covered, n, "chunks must cover all {n} rows");
}

#[test]
fn partition_report_times_are_positive_and_bounded() {
    let ex = Executor::new(machines::mc2());
    for bench in hetpart_suite::all().into_iter().take(6) {
        let kernel = bench.compile();
        let inst = bench.instance(bench.smallest_size());
        let launch = Launch::new(&kernel, inst.nd.clone(), inst.args.clone());
        let report = ex
            .simulate(&launch, &inst.bufs, &Partition::even(3))
            .unwrap();
        assert!(
            report.time > 0.0 && report.time < 10.0,
            "{}: {}",
            bench.name,
            report.time
        );
        let slowest = report
            .device_runs
            .iter()
            .map(|r| r.time.total)
            .fold(0.0f64, f64::max);
        assert!(report.time >= slowest);
    }
}
