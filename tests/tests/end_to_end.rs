//! End-to-end pipeline tests: training phase → model → deployment phase,
//! exactly the paper's two-phase workflow.

use hetpart_core::{
    collect_training_db, eval, FeatureSet, Framework, HarnessConfig, PartitionPredictor,
};
use hetpart_ml::ModelConfig;
use hetpart_oclsim::machines;
use hetpart_runtime::Executor;
use hetpart_suite::Benchmark;

fn pipeline_benches() -> Vec<Benchmark> {
    hetpart_suite::all()
        .into_iter()
        .filter(|b| {
            [
                "vec_add",
                "triad",
                "nbody",
                "blackscholes",
                "sgemm",
                "mandelbrot",
            ]
            .contains(&b.name)
        })
        .collect()
}

fn quick_cfg() -> HarnessConfig {
    HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 32,
        step_tenths: 5,
        model: ModelConfig::Knn { k: 3 },
        ..HarnessConfig::quick()
    }
}

#[test]
fn train_then_deploy_on_held_out_program() {
    let cfg = quick_cfg();
    let machine = machines::mc2();
    // Hold out triad entirely (the deployment scenario: a new program).
    let train_set: Vec<Benchmark> = pipeline_benches()
        .into_iter()
        .filter(|b| b.name != "triad")
        .collect();
    let db = collect_training_db(&machine, &train_set, &cfg).unwrap();
    let predictor = PartitionPredictor::train(&db, &cfg.model, FeatureSet::Both);
    let fw = Framework {
        executor: Executor::new(machine),
        predictor,
    };

    let bench = hetpart_suite::by_name("triad").unwrap();
    let kernel = bench.compile();
    for &n in &bench.sizes[..2] {
        let inst = bench.instance(n);
        let mut bufs = inst.bufs.clone();
        let (partition, report) = fw
            .run_auto(&kernel, &inst.nd, &inst.args, &mut bufs)
            .unwrap();
        assert_eq!(partition.num_devices(), 3);
        assert!(report.time > 0.0);
        bench.check_outputs(&inst, &bufs).unwrap();
    }
}

#[test]
fn ml_guided_partitioning_beats_defaults_on_average() {
    // The paper's headline: averaged over programs and sizes, the
    // ML-guided partitioning outperforms both default strategies (here on
    // a reduced suite; the benches run the full one).
    let ctx = eval::EvalContext::build(quick_cfg(), pipeline_benches());
    let fig = eval::figure1(&ctx);
    for m in &fig.machines {
        assert!(
            m.geomean_over_gpu > 1.0,
            "{}: must beat GPU-only on average, got {:.3}",
            m.machine,
            m.geomean_over_gpu
        );
        assert!(
            m.geomean_over_cpu > 0.9,
            "{}: must be at least competitive with CPU-only, got {:.3}",
            m.machine,
            m.geomean_over_cpu
        );
        assert!(
            m.oracle_fraction > 0.5,
            "{}: oracle fraction {:.3}",
            m.machine,
            m.oracle_fraction
        );
    }
}

#[test]
fn predictions_price_within_the_measured_sweep() {
    let ctx = eval::EvalContext::build(quick_cfg(), pipeline_benches());
    for db in &ctx.dbs {
        let outcomes = eval::lopo_outcomes(db, &ctx.cfg.model, FeatureSet::Both);
        assert_eq!(outcomes.len(), db.records.len());
        for (o, r) in outcomes.iter().zip(&db.records) {
            // The predicted partitioning's time must be one of the sweep's
            // measured times, bounded by oracle and worst.
            let worst = r
                .sweep
                .entries
                .iter()
                .map(|e| e.time)
                .fold(0.0f64, f64::max);
            assert!(o.predicted_time >= o.oracle_time - 1e-15);
            assert!(o.predicted_time <= worst + 1e-15);
        }
    }
}

#[test]
fn feature_ablation_shows_runtime_features_matter() {
    // The paper's thesis: static features alone cannot capture problem
    // size. With sizes spanning orders of magnitude, two records of the
    // same program share static features but need different partitionings,
    // so the static-only model cannot reach the combined model's accuracy.
    let cfg = HarnessConfig {
        sizes_per_benchmark: 3,
        ..quick_cfg()
    };
    let ctx = eval::EvalContext::build(cfg, pipeline_benches());
    let ablation = eval::feature_ablation(&ctx);
    let static_only = &ablation.rows[0];
    let both = &ablation.rows[2];
    assert!(
        both.oracle_fraction >= static_only.oracle_fraction - 0.02,
        "combined features must not be materially worse: {:.3} vs {:.3}",
        both.oracle_fraction,
        static_only.oracle_fraction
    );
}
