//! Persistence: the training database and trained predictors survive a
//! JSON round-trip (the deployment phase loads the offline-generated model
//! from disk).

use hetpart_core::{
    collect_training_db, FeatureSet, HarnessConfig, PartitionPredictor, TrainingDb,
};
use hetpart_ml::ModelConfig;
use hetpart_oclsim::{machines, Machine};

#[test]
fn training_db_roundtrips_through_disk() {
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "spmv_csr"].contains(&b.name))
        .collect();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 16,
        step_tenths: 5,
        ..HarnessConfig::quick()
    };
    let db = collect_training_db(&machines::mc1(), &benches, &cfg);
    let dir = std::env::temp_dir().join("hetpart_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.json");
    db.save(&path).unwrap();
    let loaded = TrainingDb::load(&path).unwrap();
    assert_eq!(db, loaded);
    std::fs::remove_file(&path).ok();
}

#[test]
fn predictor_roundtrips_and_predicts_identically() {
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| ["triad", "nbody", "kmeans"].contains(&b.name))
        .collect();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 16,
        step_tenths: 5,
        ..HarnessConfig::quick()
    };
    let db = collect_training_db(&machines::mc2(), &benches, &cfg);
    for model in [
        ModelConfig::Knn { k: 3 },
        ModelConfig::Tree(Default::default()),
    ] {
        let p = PartitionPredictor::train(&db, &model, FeatureSet::Both);
        let js = serde_json::to_string(&p).unwrap();
        let q: PartitionPredictor = serde_json::from_str(&js).unwrap();
        for r in &db.records {
            let f = r.features(FeatureSet::Both);
            assert_eq!(p.predict_vec(&f), q.predict_vec(&f));
        }
    }
}

#[test]
fn machines_roundtrip_through_json() {
    for m in machines::paper_machines() {
        let js = serde_json::to_string_pretty(&m).unwrap();
        let back: Machine = serde_json::from_str(&js).unwrap();
        assert_eq!(m, back);
    }
}
