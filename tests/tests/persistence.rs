//! Persistence: the training database and trained predictors survive a
//! JSON round-trip (the deployment phase loads the offline-generated model
//! from disk).

use hetpart_core::{
    collect_training_db, FeatureSet, HarnessConfig, PartitionPredictor, TrainingDb,
};
use hetpart_ml::ModelConfig;
use hetpart_oclsim::{machines, Machine};

#[test]
fn training_db_roundtrips_through_disk() {
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "spmv_csr"].contains(&b.name))
        .collect();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 16,
        step_tenths: 5,
        ..HarnessConfig::quick()
    };
    let db = collect_training_db(&machines::mc1(), &benches, &cfg).unwrap();
    let dir = std::env::temp_dir().join("hetpart_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.json");
    db.save(&path).unwrap();
    let loaded = TrainingDb::load(&path).unwrap();
    assert_eq!(db, loaded);
    std::fs::remove_file(&path).ok();
}

#[test]
fn predictor_roundtrips_and_predicts_identically() {
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| ["triad", "nbody", "kmeans"].contains(&b.name))
        .collect();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 16,
        step_tenths: 5,
        ..HarnessConfig::quick()
    };
    let db = collect_training_db(&machines::mc2(), &benches, &cfg).unwrap();
    for model in [
        ModelConfig::Knn { k: 3 },
        ModelConfig::Tree(Default::default()),
    ] {
        let p = PartitionPredictor::train(&db, &model, FeatureSet::Both);
        let js = serde_json::to_string(&p).unwrap();
        let q: PartitionPredictor = serde_json::from_str(&js).unwrap();
        for r in &db.records {
            let f = r.features(FeatureSet::Both);
            assert_eq!(p.predict_vec(&f), q.predict_vec(&f));
        }
    }
}

#[test]
fn mc2_database_persists_under_schema_v2_and_indexes_fast() {
    // A freshly measured mc2 database must round-trip under the current
    // schema version (a drifted file fails loudly instead of training
    // silently wrong), and building its dataset must stay cheap — the
    // map-indexed label lookup replaced O(records x classes) linear
    // scans.
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "nbody", "sgemm"].contains(&b.name))
        .collect();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 16,
        step_tenths: 5,
        ..HarnessConfig::quick()
    };
    let fresh = collect_training_db(&machines::mc2(), &benches, &cfg).unwrap();
    let dir = std::env::temp_dir().join("hetpart_persistence_v2_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("training_db_mc2.json");
    fresh.save(&path).unwrap();
    let db = TrainingDb::load(&path).expect("v2 database loads under the current schema");
    assert_eq!(db, fresh);
    std::fs::remove_dir_all(&dir).ok();

    // The locally regenerated artifact (written by the train_and_deploy
    // example; gitignored, so it only exists after a local run) must
    // carry the current schema too.
    let artifact = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../reports/training_db_mc2.json"
    ));
    if artifact.exists() {
        let shipped = TrainingDb::load(artifact)
            .expect("reports/training_db_mc2.json is drifted — rerun train_and_deploy");
        assert_eq!(shipped.machine, "mc2");
    }

    let t = std::time::Instant::now();
    let mut rows = 0usize;
    for _ in 0..50 {
        let (data, space) = db.to_dataset(FeatureSet::Both);
        assert!(!space.is_empty());
        rows += data.len();
    }
    assert_eq!(rows, 50 * db.records.len());
    assert!(
        t.elapsed().as_secs_f64() < 5.0,
        "50 dataset builds took {:?} — indexing regression?",
        t.elapsed()
    );
}

#[test]
fn machines_roundtrip_through_json() {
    for m in machines::paper_machines() {
        let js = serde_json::to_string_pretty(&m).unwrap();
        let back: Machine = serde_json::from_str(&js).unwrap();
        assert_eq!(m, back);
    }
}
