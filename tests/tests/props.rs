//! Property-based tests over the system's core invariants.

use hetpart_inspire::compile;
use hetpart_inspire::vm::{ArgValue, BufferData, Vm};
use hetpart_inspire::NdRange;
use hetpart_ml::StandardScaler;
use hetpart_runtime::Partition;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Partition-space invariants
// ---------------------------------------------------------------------

/// Arbitrary valid share vectors: compositions of 10 into 1..=4 parts.
fn shares_strategy() -> impl Strategy<Value = Vec<u8>> {
    (1usize..=4)
        .prop_flat_map(|n| proptest::collection::vec(0u8..=10, n))
        .prop_filter_map("must sum to 10", |mut v| {
            let sum: u32 = v.iter().map(|&s| u32::from(s)).sum();
            if sum == 0 {
                return None;
            }
            // Rescale the last entry so the vector sums to exactly 10.
            let partial: u32 = v[..v.len() - 1].iter().map(|&s| u32::from(s)).sum();
            if partial > 10 {
                return None;
            }
            let last = v.len() - 1;
            v[last] = (10 - partial) as u8;
            Some(v)
        })
}

proptest! {
    #[test]
    fn chunks_always_tile_the_extent(shares in shares_strategy(), extent in 1usize..100_000) {
        let p = Partition::from_tenths(shares);
        let chunks = p.chunks(extent);
        let mut pos = 0;
        for c in &chunks {
            prop_assert_eq!(c.start, pos);
            pos = c.end;
        }
        prop_assert_eq!(pos, extent);
    }

    #[test]
    fn chunk_sizes_track_shares(shares in shares_strategy(), extent in 1000usize..100_000) {
        let p = Partition::from_tenths(shares.clone());
        let chunks = p.chunks(extent);
        for (share, chunk) in shares.iter().zip(&chunks) {
            let ideal = extent as f64 * f64::from(*share) / 10.0;
            // Cumulative rounding keeps every chunk within 1 element of
            // its ideal proportional size.
            prop_assert!((chunk.len() as f64 - ideal).abs() <= 1.0);
        }
    }

    #[test]
    fn scaler_output_is_bounded_for_bounded_input(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 4), 2..40)
    ) {
        let sc = StandardScaler::fit(&rows);
        for row in sc.transform(&rows) {
            for v in row {
                prop_assert!(v.is_finite());
                // z-scores of n samples are bounded by sqrt(n-1).
                prop_assert!(v.abs() <= (rows.len() as f64).sqrt() + 1e-9);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Compiler/VM oracle: random integer expressions must evaluate exactly
// like a reference evaluator with C wrap semantics.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum IExpr {
    Const(i32),
    Gid,
    Add(Box<IExpr>, Box<IExpr>),
    Sub(Box<IExpr>, Box<IExpr>),
    Mul(Box<IExpr>, Box<IExpr>),
    And(Box<IExpr>, Box<IExpr>),
    Or(Box<IExpr>, Box<IExpr>),
    Xor(Box<IExpr>, Box<IExpr>),
    Shl(Box<IExpr>, u8),
    Shr(Box<IExpr>, u8),
    Neg(Box<IExpr>),
    Min(Box<IExpr>, Box<IExpr>),
    Max(Box<IExpr>, Box<IExpr>),
}

impl IExpr {
    fn to_source(&self) -> String {
        match self {
            IExpr::Const(v) => {
                // Negative literals need parens to survive as primary exprs.
                if *v < 0 {
                    format!("(0 - {})", i64::from(*v).abs())
                } else {
                    format!("{v}")
                }
            }
            IExpr::Gid => "i".to_string(),
            IExpr::Add(a, b) => format!("({} + {})", a.to_source(), b.to_source()),
            IExpr::Sub(a, b) => format!("({} - {})", a.to_source(), b.to_source()),
            IExpr::Mul(a, b) => format!("({} * {})", a.to_source(), b.to_source()),
            IExpr::And(a, b) => format!("({} & {})", a.to_source(), b.to_source()),
            IExpr::Or(a, b) => format!("({} | {})", a.to_source(), b.to_source()),
            IExpr::Xor(a, b) => format!("({} ^ {})", a.to_source(), b.to_source()),
            IExpr::Shl(a, k) => format!("({} << {})", a.to_source(), k),
            IExpr::Shr(a, k) => format!("({} >> {})", a.to_source(), k),
            IExpr::Neg(a) => format!("(-{})", a.to_source()),
            IExpr::Min(a, b) => format!("min({}, {})", a.to_source(), b.to_source()),
            IExpr::Max(a, b) => format!("max({}, {})", a.to_source(), b.to_source()),
        }
    }

    /// Reference semantics: 32-bit wrapping, shifts modulo 32.
    fn eval(&self, i: i32) -> i32 {
        match self {
            IExpr::Const(v) => *v,
            IExpr::Gid => i,
            IExpr::Add(a, b) => a.eval(i).wrapping_add(b.eval(i)),
            IExpr::Sub(a, b) => a.eval(i).wrapping_sub(b.eval(i)),
            IExpr::Mul(a, b) => a.eval(i).wrapping_mul(b.eval(i)),
            IExpr::And(a, b) => a.eval(i) & b.eval(i),
            IExpr::Or(a, b) => a.eval(i) | b.eval(i),
            IExpr::Xor(a, b) => a.eval(i) ^ b.eval(i),
            IExpr::Shl(a, k) => a.eval(i).wrapping_shl(u32::from(*k) & 31),
            IExpr::Shr(a, k) => a.eval(i).wrapping_shr(u32::from(*k) & 31),
            IExpr::Neg(a) => a.eval(i).wrapping_neg(),
            IExpr::Min(a, b) => a.eval(i).min(b.eval(i)),
            IExpr::Max(a, b) => a.eval(i).max(b.eval(i)),
        }
    }
}

fn iexpr_strategy() -> impl Strategy<Value = IExpr> {
    let leaf = prop_oneof![
        (-1000i32..1000).prop_map(IExpr::Const),
        Just(IExpr::Gid),
        (0i32..i32::MAX).prop_map(IExpr::Const),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Or(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Xor(a.into(), b.into())),
            (inner.clone(), 0u8..40).prop_map(|(a, k)| IExpr::Shl(a.into(), k)),
            (inner.clone(), 0u8..40).prop_map(|(a, k)| IExpr::Shr(a.into(), k)),
            inner.clone().prop_map(|a| IExpr::Neg(a.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| IExpr::Min(a.into(), b.into())),
            (inner.clone(), inner).prop_map(|(a, b)| IExpr::Max(a.into(), b.into())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn compiled_expressions_match_reference_semantics(expr in iexpr_strategy()) {
        let src = format!(
            "kernel void f(global int* out) {{
                 int i = get_global_id(0);
                 out[i] = {};
             }}",
            expr.to_source()
        );
        let kernel = compile(&src).unwrap_or_else(|e| panic!("source {src}\nerror {e}"));
        let n = 16usize;
        let mut bufs = vec![BufferData::I32(vec![0; n])];
        let mut vm = Vm::new();
        vm.run_range(&kernel.bytecode, &NdRange::d1(n), 0..n, &[ArgValue::Buffer(0)], &mut bufs)
            .unwrap();
        let got = bufs[0].as_i32().unwrap();
        for (i, g) in got.iter().enumerate() {
            let want = expr.eval(i as i32);
            prop_assert_eq!(*g, want, "expr {} at i={}", expr.to_source(), i);
        }
    }
}

// ---------------------------------------------------------------------
// Pretty-printer round-trip over the whole benchmark suite
// ---------------------------------------------------------------------

#[test]
fn every_suite_kernel_roundtrips_through_the_pretty_printer() {
    for bench in hetpart_suite::all() {
        let k1 = bench.compile();
        let text = hetpart_inspire::pretty::pretty(&k1.ir);
        let k2 = compile(&text).unwrap_or_else(|e| {
            panic!(
                "{}: pretty output failed to recompile: {e}\n{text}",
                bench.name
            )
        });
        assert_eq!(
            k1.static_features, k2.static_features,
            "{}: features changed across round-trip",
            bench.name
        );
    }
}

// ---------------------------------------------------------------------
// Interval arithmetic soundness against concrete i64 evaluation
// ---------------------------------------------------------------------

use hetpart_inspire::access::Interval;

/// Magnitude that exercises `i64` overflow in `mul` (2^41 * 2^41 > 2^63)
/// while keeping `add`/`sub` mostly in range, with plenty of negative
/// operands.
const IV_MAG: i64 = 1 << 41;

/// Deterministic sample point inside `[lo, hi]`.
fn iv_pick(lo: i64, hi: i64, s: u64) -> i64 {
    let span = (i128::from(hi) - i128::from(lo) + 1) as u128;
    (i128::from(lo) + (u128::from(s) % span) as i128) as i64
}

/// The soundness contract of every abstract operator: a `Range` result
/// must contain the exact (non-wrapped) concrete result; `Top` is always
/// sound.
fn iv_sound(result: Interval, exact: i128) -> bool {
    match result {
        Interval::Top => true,
        Interval::Range(lo, hi) => i128::from(lo) <= exact && exact <= i128::from(hi),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]
    #[test]
    fn interval_ops_contain_concrete_results(
        p in (
            (-IV_MAG..IV_MAG, -IV_MAG..IV_MAG),
            (-IV_MAG..IV_MAG, -IV_MAG..IV_MAG),
            (0u64..u64::MAX, 0u64..u64::MAX),
        )
    ) {
        let ((a, b), (c, d), (s, t)) = p;
        let (xlo, xhi) = (a.min(b), a.max(b));
        let (ylo, yhi) = (c.min(d), c.max(d));
        let x = Interval::Range(xlo, xhi);
        let y = Interval::Range(ylo, yhi);
        let px = iv_pick(xlo, xhi, s);
        let py = iv_pick(ylo, yhi, t);
        prop_assert!(x.contains(px) && y.contains(py));

        let (pxw, pyw) = (i128::from(px), i128::from(py));
        prop_assert!(iv_sound(x.add(y), pxw + pyw), "add {x:?} {y:?} @ {px} {py}");
        prop_assert!(iv_sound(x.sub(y), pxw - pyw), "sub {x:?} {y:?} @ {px} {py}");
        prop_assert!(iv_sound(x.mul(y), pxw * pyw), "mul {x:?} {y:?} @ {px} {py}");
        prop_assert!(iv_sound(x.min_i(y), pxw.min(pyw)), "min {x:?} {y:?}");
        prop_assert!(iv_sound(x.max_i(y), pxw.max(pyw)), "max {x:?} {y:?}");
        if py != 0 {
            // Truncated division/remainder, including negative operands —
            // the ops must either refuse (⊤) or contain the exact result.
            prop_assert!(iv_sound(x.div(y), pxw / pyw), "div {x:?} {y:?} @ {px} {py}");
            prop_assert!(iv_sound(x.rem(y), pxw % pyw), "rem {x:?} {y:?} @ {px} {py}");
        }

        // Lattice ops: union covers both points, intersection keeps any
        // shared point, widening only ever grows the new interval.
        prop_assert!(x.union(y).contains(px) && x.union(y).contains(py));
        if y.contains(px) {
            let i = x.intersect(y).expect("non-disjoint");
            prop_assert!(i.contains(px), "intersect {x:?} {y:?} lost {px}");
        }
        prop_assert!(x.widen_from(y).contains(px), "widen {x:?} from {y:?} lost {px}");
    }

    #[test]
    fn interval_ops_with_top_are_sound(q in (-IV_MAG..IV_MAG, -IV_MAG..IV_MAG, 0u64..u64::MAX)) {
        let (a, b, s) = q;
        let x = Interval::Range(a.min(b), a.max(b));
        let px = iv_pick(a.min(b), a.max(b), s);
        for r in [
            x.add(Interval::Top),
            Interval::Top.sub(x),
            x.mul(Interval::Top),
            x.div(Interval::Top),
            x.rem(Interval::Top),
            x.union(Interval::Top),
        ] {
            prop_assert_eq!(r, Interval::Top);
        }
        prop_assert!(x.intersect(Interval::Top) == Some(x));
        prop_assert!(Interval::Top.contains(px));
    }
}
