//! Sharded training databases: JSONL round-trips, crash resume, and the
//! merge-stability guarantees — sharded collection and shard merges must
//! be **bit-identical** to monolithic collection, and predictors must not
//! depend on record or shard order.

use std::path::PathBuf;

use hetpart_core::{
    collect_training_db, collect_training_db_sharded, FeatureSet, HarnessConfig,
    PartitionPredictor, ShardedDb, TrainingDb,
};
use hetpart_ml::ModelConfig;
use hetpart_oclsim::machines;
use hetpart_suite::Benchmark;

fn benches() -> Vec<Benchmark> {
    hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "nbody", "blackscholes", "sgemm"].contains(&b.name))
        .collect()
}

fn cfg() -> HarnessConfig {
    HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 24,
        step_tenths: 5,
        ..HarnessConfig::quick()
    }
}

fn tmp_root(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&root).ok();
    root
}

#[test]
fn sharded_collection_is_bit_identical_to_serial() {
    let machine = machines::mc2();
    let serial = collect_training_db(&machine, &benches(), &cfg()).unwrap();

    let root = tmp_root("hetpart_it_shard_serial");
    let shards = ShardedDb::open(&root, &machine).unwrap();
    let sharded = collect_training_db_sharded(&machine, &benches(), &cfg(), &shards).unwrap();
    assert_eq!(
        serial, sharded,
        "streaming persistence must not change the database"
    );

    // And the on-disk shards round-trip to the same database again.
    let reloaded = shards.to_training_db().unwrap();
    assert_eq!(serial, reloaded);
    // One shard file per program.
    assert_eq!(
        shards.programs().unwrap(),
        vec!["blackscholes", "nbody", "sgemm", "vec_add"]
    );
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn interrupted_collection_resumes_without_remeasuring() {
    let machine = machines::mc1();
    let all = benches();
    let root = tmp_root("hetpart_it_shard_resume");
    let shards = ShardedDb::open(&root, &machine).unwrap();

    // "First run": only part of the suite completes before the crash.
    collect_training_db_sharded(&machine, &all[..2], &cfg(), &shards).unwrap();

    // Simulate the crash arriving mid-append: chop the last record line.
    let victim = shards.programs().unwrap().pop().unwrap();
    let path = shards.shard_path(&victim);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() - 25]).unwrap();
    let before = shards.existing_keys().unwrap();

    // "Second run" over the full suite: finishes the missing work (the
    // torn record plus the never-measured benchmarks) and nothing else.
    let untouched: Vec<String> = shards
        .programs()
        .unwrap()
        .into_iter()
        .filter(|p| *p != victim)
        .collect();
    let before_bytes: Vec<(String, String)> = untouched
        .iter()
        .map(|p| {
            (
                p.clone(),
                std::fs::read_to_string(shards.shard_path(p)).unwrap(),
            )
        })
        .collect();

    let resumed = collect_training_db_sharded(&machine, &all, &cfg(), &shards).unwrap();
    let serial = collect_training_db(&machine, &all, &cfg()).unwrap();
    assert_eq!(
        resumed, serial,
        "resumed collection must equal a fresh serial one"
    );

    // Intact shards were not rewritten — resume appended only what was
    // missing.
    for (p, bytes) in before_bytes {
        assert_eq!(
            bytes,
            std::fs::read_to_string(shards.shard_path(&p)).unwrap(),
            "shard `{p}` was already complete and must not be touched"
        );
    }
    let after = shards.existing_keys().unwrap();
    assert!(after.is_superset(&before));
    assert!(
        after.len() > before.len(),
        "resume must add the missing records"
    );
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn merged_shards_train_a_bit_identical_predictor_in_any_order() {
    // The acceptance gate: per-benchmark shards collected by two
    // "processes", merged in either order, must train a predictor
    // bit-identical to one trained on the monolithic database.
    let machine = machines::mc2();
    let all = benches();
    let monolithic = collect_training_db(&machine, &all, &cfg()).unwrap();

    let root_a = tmp_root("hetpart_it_shard_proc_a");
    let root_b = tmp_root("hetpart_it_shard_proc_b");
    let proc_a = ShardedDb::open(&root_a, &machine).unwrap();
    let proc_b = ShardedDb::open(&root_b, &machine).unwrap();
    // Process A measures half the suite, process B the other half — note
    // B's slice is *reversed* so its local benchmark order differs too.
    collect_training_db_sharded(&machine, &all[..2], &cfg(), &proc_a).unwrap();
    let mut rest: Vec<Benchmark> = all[2..].to_vec();
    rest.reverse();
    collect_training_db_sharded(&machine, &rest, &cfg(), &proc_b).unwrap();

    let ab = ShardedDb::merge(&[&proc_a, &proc_b]).unwrap();
    let ba = ShardedDb::merge(&[&proc_b, &proc_a]).unwrap();
    assert_eq!(
        ab, monolithic,
        "merged view must equal monolithic collection"
    );
    assert_eq!(ba, monolithic, "merge must be shard-order independent");

    for model in [
        ModelConfig::Knn { k: 3 },
        ModelConfig::Tree(Default::default()),
        ModelConfig::Mlp(hetpart_ml::MlpConfig {
            epochs: 40,
            ..Default::default()
        }),
    ] {
        let mono = PartitionPredictor::train(&monolithic, &model, FeatureSet::Both);
        let from_ab =
            PartitionPredictor::train_from_shards(&[&proc_a, &proc_b], &model, FeatureSet::Both)
                .unwrap();
        let from_ba =
            PartitionPredictor::train_from_shards(&[&proc_b, &proc_a], &model, FeatureSet::Both)
                .unwrap();
        assert_eq!(mono, from_ab, "{model:?}: shard-trained predictor drifted");
        assert_eq!(mono, from_ba, "{model:?}: predictor depends on shard order");
    }
    std::fs::remove_dir_all(root_a).ok();
    std::fs::remove_dir_all(root_b).ok();
}

#[test]
fn reused_store_returns_only_the_requested_view() {
    // A store filled by an earlier, larger run must not leak
    // out-of-scope records into a later, smaller collection — the
    // returned database has to equal a fresh serial run over exactly the
    // requested benchmarks (and eval over it must not meet unknown
    // programs).
    let machine = machines::mc1();
    let all = benches();
    let root = tmp_root("hetpart_it_shard_scope");
    let shards = ShardedDb::open(&root, &machine).unwrap();
    collect_training_db_sharded(&machine, &all, &cfg(), &shards).unwrap();

    let subset = &all[..2];
    let from_store = collect_training_db_sharded(&machine, subset, &cfg(), &shards).unwrap();
    let serial = collect_training_db(&machine, subset, &cfg()).unwrap();
    assert_eq!(from_store, serial);
    // The extra programs are still on disk for a full merge.
    assert_eq!(
        shards.to_training_db().unwrap().records.len(),
        all.len() * 2
    );
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn resuming_with_a_different_oracle_config_is_refused() {
    // A shard store remembers the measurement-affecting config; resuming
    // with different sweep granularity / sampling would silently mix
    // incomparable records into one database.
    let machine = machines::mc1();
    let all = benches();
    let root = tmp_root("hetpart_it_shard_config");
    let shards = ShardedDb::open(&root, &machine).unwrap();
    collect_training_db_sharded(&machine, &all[..1], &cfg(), &shards).unwrap();
    let drifted = HarnessConfig {
        step_tenths: 2,
        ..cfg()
    };
    let err = collect_training_db_sharded(&machine, &all, &drifted, &shards).unwrap_err();
    assert!(
        matches!(
            err,
            hetpart_core::TrainError::Shard(hetpart_core::DbError::ConfigMismatch { .. })
        ),
        "{err:?}"
    );
    assert!(err.to_string().contains("incompatible"), "{err}");
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn resuming_with_a_drifted_opt_level_is_refused() {
    // The bytecode optimization level shapes the compiled code and with it
    // every simulated time and oracle label, so it is part of the oracle
    // fingerprint: a store recorded with optimized kernels must refuse to
    // resume under `INSPIRE_OPT=0` semantics (and vice versa) instead of
    // silently mixing records priced from different bytecode.
    let machine = machines::mc1();
    let all = benches();
    let root = tmp_root("hetpart_it_shard_opt_level");
    let shards = ShardedDb::open(&root, &machine).unwrap();
    let optimized = HarnessConfig {
        opt_level: hetpart_inspire::OptLevel::Full,
        ..cfg()
    };
    collect_training_db_sharded(&machine, &all[..1], &optimized, &shards).unwrap();
    let drifted = HarnessConfig {
        opt_level: hetpart_inspire::OptLevel::None,
        ..optimized.clone()
    };
    assert_ne!(optimized.oracle_fingerprint(), drifted.oracle_fingerprint());
    let err = collect_training_db_sharded(&machine, &all, &drifted, &shards).unwrap_err();
    assert!(
        matches!(
            err,
            hetpart_core::TrainError::Shard(hetpart_core::DbError::ConfigMismatch { .. })
        ),
        "{err:?}"
    );
    // Resuming with the original level still works.
    collect_training_db_sharded(&machine, &all[..1], &optimized, &shards).unwrap();
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn eval_context_from_shards_matches_direct_build() {
    // The evaluation harness' per-machine merge: building from shard
    // stores must produce the same databases as direct collection, and a
    // second build over the same root must resume (load) rather than
    // re-measure.
    let benches: Vec<Benchmark> = hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "nbody"].contains(&b.name))
        .collect();
    let direct = hetpart_core::EvalContext::build(cfg(), benches.clone());
    let root = tmp_root("hetpart_it_shard_eval");
    let sharded = hetpart_core::EvalContext::build_sharded(cfg(), benches.clone(), &root).unwrap();
    assert_eq!(direct.dbs, sharded.dbs);
    let resumed = hetpart_core::EvalContext::build_sharded(cfg(), benches, &root).unwrap();
    assert_eq!(direct.dbs, resumed.dbs);
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn record_shuffles_cannot_permute_labels_or_predictors() {
    // Regression for the order-dependent label space: a shuffled database
    // used to assign different class indices (first-appearance order) and
    // silently corrupt every predictor trained after a reorder.
    let machine = machines::mc2();
    let db = collect_training_db(&machine, &benches(), &cfg()).unwrap();
    let mut shuffled = TrainingDb {
        machine: db.machine.clone(),
        machine_fingerprint: db.machine_fingerprint,
        records: db.records.clone(),
    };
    // Deterministic pseudo-shuffle.
    let n = shuffled.records.len();
    for i in 0..n {
        shuffled.records.swap(i, (i * 5 + 3) % n);
    }
    assert_eq!(db.label_space(), shuffled.label_space());
    assert_eq!(
        db.to_dataset(FeatureSet::Both),
        shuffled.to_dataset(FeatureSet::Both)
    );
    let model = ModelConfig::Tree(Default::default());
    assert_eq!(
        PartitionPredictor::train(&db, &model, FeatureSet::Both),
        PartitionPredictor::train(&shuffled, &model, FeatureSet::Both),
        "record order leaked into the trained predictor"
    );
}
