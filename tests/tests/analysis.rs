//! Integration tests for the bytecode static-analysis framework: the IR
//! verifier over the whole benchmark suite, mutation coverage for each
//! corruption class, agreement between the bytecode-level bounds analysis
//! and the IR-level access-range analysis, and bit-identity of the
//! bounds-check-elision fast paths.

use hetpart_inspire::access::{self, BufferRange, LaunchBounds};
use hetpart_inspire::analysis::{bounds, verify};
use hetpart_inspire::bytecode::{Instr, Terminator};
use hetpart_inspire::ir::ParamKind;
use hetpart_inspire::vm::{ArgValue, BufferData, Vm};
use hetpart_inspire::{compile_with_modes, CompiledKernel, NdRange, OptLevel, RegAlloc, VmError};

const MODES: [(OptLevel, RegAlloc); 4] = [
    (OptLevel::None, RegAlloc::Off),
    (OptLevel::None, RegAlloc::On),
    (OptLevel::Full, RegAlloc::Off),
    (OptLevel::Full, RegAlloc::On),
];

// ---------------------------------------------------------------------
// Verifier: the whole suite at every compilation mode
// ---------------------------------------------------------------------

#[test]
fn verifier_accepts_every_suite_kernel_at_every_mode() {
    for bench in hetpart_suite::all() {
        for (level, ra) in MODES {
            let k = bench.compile_with_modes(level, ra);
            verify::verify_function("suite", &k.bytecode).unwrap_or_else(|e| {
                panic!(
                    "{} at {level:?}/{ra:?} failed verification: {e}",
                    bench.name
                )
            });
        }
    }
}

// ---------------------------------------------------------------------
// Mutation coverage: each corruption class must be rejected
// ---------------------------------------------------------------------

fn compiled(src: &str) -> CompiledKernel {
    compile_with_modes(src, OptLevel::Full, RegAlloc::On).expect("compiles")
}

const GUARDED: &str = "kernel void k(global const float* a, global float* o, int n) {
    int i = get_global_id(0);
    if (i < n) { o[i] = a[i] * 2.0f; }
}";

#[test]
fn verifier_rejects_out_of_range_branch_target() {
    let mut k = compiled(GUARDED);
    let last = k.bytecode.blocks.len() - 1;
    k.bytecode.blocks[last].term = Terminator::Jump(9999);
    let e = verify::verify_blocks(
        "mutation",
        &k.bytecode.name,
        &k.bytecode.blocks,
        &k.bytecode.params,
        k.bytecode.n_iregs,
        k.bytecode.n_fregs,
    )
    .expect_err("must reject");
    assert!(e.message.contains("target 9999"), "{}", e.message);
}

#[test]
fn verifier_rejects_out_of_range_register() {
    let mut k = compiled(GUARDED);
    // A write beyond the allocated I register file. The instruction list
    // check fires before the histogram comparison.
    k.bytecode.blocks[0]
        .instrs
        .push(Instr::GlobalId { dst: 9999, dim: 0 });
    let e = verify::verify_function("mutation", &k.bytecode).expect_err("must reject");
    assert!(
        e.message.contains("writes i-register 9999"),
        "{}",
        e.message
    );
}

#[test]
fn verifier_rejects_out_of_range_dimension() {
    let mut k = compiled(GUARDED);
    k.bytecode.blocks[0]
        .instrs
        .push(Instr::GlobalId { dst: 0, dim: 7 });
    // Recompute so the earlier histogram check cannot mask the kind check.
    let n_params = k.bytecode.params.len();
    k.bytecode.blocks[0].recompute_histo(n_params);
    let e = verify::verify_blocks(
        "mutation",
        &k.bytecode.name,
        &k.bytecode.blocks,
        &k.bytecode.params,
        k.bytecode.n_iregs,
        k.bytecode.n_fregs,
    )
    .expect_err("must reject");
    assert!(e.message.contains("dimension 7"), "{}", e.message);
}

#[test]
fn verifier_rejects_stale_histogram() {
    let mut k = compiled(GUARDED);
    // Doctor the cached counts without touching the instruction list —
    // exactly what a buggy pass that forgets `recompute_histo` produces.
    k.bytecode.blocks[0].histo.classes[0] = k.bytecode.blocks[0].histo.classes[0].wrapping_add(1);
    let e = verify::verify_blocks(
        "mutation",
        &k.bytecode.name,
        &k.bytecode.blocks,
        &k.bytecode.params,
        k.bytecode.n_iregs,
        k.bytecode.n_fregs,
    )
    .expect_err("must reject");
    assert!(e.message.contains("stale histogram"), "{}", e.message);
}

#[test]
fn verifier_names_the_offending_pass() {
    let mut k = compiled(GUARDED);
    let last = k.bytecode.blocks.len() - 1;
    k.bytecode.blocks[last].term = Terminator::Jump(42);
    let e = verify::verify_blocks(
        "const-fold",
        "my_kernel",
        &k.bytecode.blocks,
        &k.bytecode.params,
        k.bytecode.n_iregs,
        k.bytecode.n_fregs,
    )
    .expect_err("must reject");
    assert!(
        e.message.contains("[const-fold] my_kernel"),
        "{}",
        e.message
    );
}

// ---------------------------------------------------------------------
// Bounds analysis vs. the IR-level access-range analysis
// ---------------------------------------------------------------------

/// Hull of a `BufferRange` as an optional interval (`Untouched` = empty).
fn hull(r: &BufferRange) -> Option<(i64, i64)> {
    match r {
        BufferRange::Untouched => None,
        BufferRange::Exact { lo, hi } => Some((*lo, *hi)),
        BufferRange::Whole => Some((i64::MIN, i64::MAX)),
    }
}

fn launch_bounds(nd: &NdRange, args: &[ArgValue]) -> LaunchBounds {
    let mut gid = [(0i64, 0i64); 3];
    let mut gsize = [1i64; 3];
    for d in 0..3 {
        let e = nd.dim(d) as i64;
        gid[d] = (0, (e - 1).max(0));
        gsize[d] = e;
    }
    let scalars = args
        .iter()
        .map(|a| match a {
            ArgValue::Int(v) => Some(i64::from(*v)),
            ArgValue::UInt(v) => Some(i64::from(*v)),
            _ => None,
        })
        .collect();
    LaunchBounds {
        gid,
        gsize,
        scalars,
    }
}

#[test]
fn bounds_analysis_agrees_with_the_ir_access_ranges() {
    for bench in hetpart_suite::all() {
        let k = bench.compile();
        let inst = bench.instance(bench.smallest_size());
        let Some(seed) =
            bounds::LaunchSeed::from_launch(&k.bytecode, &inst.nd, &inst.args, &inst.bufs)
        else {
            panic!(
                "{}: launch seed must build for a suite instance",
                bench.name
            );
        };
        let facts = bounds::analyze_launch(&k.bytecode, &seed);
        let ir = access::access_ranges(&k.ir, &launch_bounds(&inst.nd, &inst.args));
        for (p, (byte_r, ir_r)) in facts.read.iter().zip(&ir.read).enumerate() {
            check_agrees(bench.name, p, "read", byte_r, ir_r);
        }
        for (p, (byte_w, ir_w)) in facts.write.iter().zip(&ir.write).enumerate() {
            check_agrees(bench.name, p, "write", byte_w, ir_w);
        }
    }
}

/// Both analyses over-approximate the same concrete access set, so they
/// need not *refine* each other — widening at a strided loop header can
/// cost the bytecode analysis a lower bound the structural IR analysis
/// keeps, and dead-code elimination can remove an access the IR still
/// counts. What must hold: an access the bytecode sees, the IR sees too,
/// and any two non-empty ranges for the same parameter overlap.
fn check_agrees(name: &str, p: usize, what: &str, byte: &BufferRange, ir: &BufferRange) {
    let Some((blo, bhi)) = hull(byte) else {
        return;
    };
    let Some((ilo, ihi)) = hull(ir) else {
        panic!("{name}: param {p} {what} seen by the bytecode analysis but not the IR analysis");
    };
    assert!(
        blo <= ihi && ilo <= bhi,
        "{name}: param {p} {what} range [{blo}, {bhi}] from bytecode is \
         disjoint from the IR range [{ilo}, {ihi}]"
    );
}

#[test]
fn elision_facts_are_within_the_buffer_length() {
    let mut proved_any = false;
    for bench in hetpart_suite::all() {
        let k = bench.compile();
        let inst = bench.instance(bench.smallest_size());
        let Some(seed) =
            bounds::LaunchSeed::from_launch(&k.bytecode, &inst.nd, &inst.args, &inst.bufs)
        else {
            continue;
        };
        let facts = bounds::analyze_launch(&k.bytecode, &seed);
        for (p, param) in k.bytecode.params.iter().enumerate() {
            if p >= 64 || facts.elide & (1 << p) == 0 {
                continue;
            }
            proved_any = true;
            assert!(matches!(param.kind, ParamKind::Buffer { .. }));
            let len = seed.buf_len[p].unwrap_or(0) as i64;
            for r in [&facts.read[p], &facts.write[p]] {
                if let Some((lo, hi)) = hull(r) {
                    assert!(
                        lo >= 0 && hi < len,
                        "{}: param {p} elided but range [{lo}, {hi}] vs len {len}",
                        bench.name
                    );
                }
            }
        }
    }
    assert!(
        proved_any,
        "the bounds analysis proved no suite access in bounds — elision is vacuous"
    );
}

// ---------------------------------------------------------------------
// Elision A/B: bit-identical results, faults preserved
// ---------------------------------------------------------------------

/// One elision-on and one elision-off run: (outcome, buffers) for each.
type AbOutcome = (
    Result<(), VmError>,
    Vec<BufferData>,
    Result<(), VmError>,
    Vec<BufferData>,
);

fn run_ab(
    k: &CompiledKernel,
    nd: &NdRange,
    args: &[ArgValue],
    bufs: &[BufferData],
    lanes: bool,
) -> AbOutcome {
    let mut on = bufs.to_vec();
    let mut off = bufs.to_vec();
    let mut vm = Vm::new();
    vm.set_bounds_elide(Some(true));
    let r_on = if lanes {
        vm.run_range_lanes(&k.bytecode, nd, 0..nd.split_extent(), args, &mut on)
    } else {
        vm.run_range_scalar(&k.bytecode, nd, 0..nd.split_extent(), args, &mut on)
    };
    vm.set_bounds_elide(Some(false));
    let r_off = if lanes {
        vm.run_range_lanes(&k.bytecode, nd, 0..nd.split_extent(), args, &mut off)
    } else {
        vm.run_range_scalar(&k.bytecode, nd, 0..nd.split_extent(), args, &mut off)
    };
    (r_on.map(|_| ()), on, r_off.map(|_| ()), off)
}

#[test]
fn elision_is_bit_identical_across_the_suite() {
    for bench in hetpart_suite::all() {
        for (level, ra) in MODES {
            let k = bench.compile_with_modes(level, ra);
            let inst = bench.instance(bench.smallest_size());
            for lanes in [false, true] {
                let (r_on, on, r_off, off) = run_ab(&k, &inst.nd, &inst.args, &inst.bufs, lanes);
                assert_eq!(
                    r_on.is_ok(),
                    r_off.is_ok(),
                    "{} {level:?}/{ra:?} lanes={lanes}: outcome differs",
                    bench.name
                );
                assert_eq!(
                    on, off,
                    "{} {level:?}/{ra:?} lanes={lanes}: buffers differ with elision",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn elision_triggers_for_a_guarded_streaming_kernel() {
    let k = compiled(GUARDED);
    let n = 128usize;
    let bufs = vec![BufferData::F32(vec![1.0; n]), BufferData::F32(vec![0.0; n])];
    let args = vec![
        ArgValue::Buffer(0),
        ArgValue::Buffer(1),
        ArgValue::Int(n as i32),
    ];
    let mask = bounds::elide_mask(&k.bytecode, &NdRange::d1(n), &args, &bufs);
    assert!(
        mask & 0b11 == 0b11,
        "guarded `o[i] = a[i] * 2` must prove both buffers in bounds, got {mask:#b}"
    );
}

#[test]
fn elision_never_claims_an_out_of_bounds_access() {
    // `o[i + n]` is out of bounds for every work-item when `len(o) == n`.
    let k = compiled(
        "kernel void k(global float* o, int n) {
            int i = get_global_id(0);
            o[i + n] = 1.0;
        }",
    );
    let n = 64usize;
    let bufs = vec![BufferData::F32(vec![0.0; n])];
    let args = vec![ArgValue::Buffer(0), ArgValue::Int(n as i32)];
    let nd = NdRange::d1(n);
    let mask = bounds::elide_mask(&k.bytecode, &nd, &args, &bufs);
    assert_eq!(mask & 1, 0, "faulting access must not be elided");
    // And forcing elision on still reports the same fault: the mask, not
    // the switch, is what licenses the unchecked path.
    for lanes in [false, true] {
        let (r_on, _, r_off, _) = run_ab(&k, &nd, &args, &bufs, lanes);
        let on = r_on.expect_err("must fault");
        let off = r_off.expect_err("must fault");
        assert_eq!(format!("{on}"), format!("{off}"), "lanes={lanes}");
    }
}

#[test]
fn boundary_crossing_guard_is_not_elided_but_stays_identical() {
    // In-bounds for most items, out of bounds for the last 4 — the
    // analysis must refuse to elide, and both settings must fault with
    // the same error.
    let k = compiled(
        "kernel void k(global float* o, int n) {
            int i = get_global_id(0);
            o[i + 4] = 1.0;
        }",
    );
    let n = 64usize;
    let bufs = vec![BufferData::F32(vec![0.0; n])];
    let args = vec![ArgValue::Buffer(0), ArgValue::Int(n as i32)];
    let nd = NdRange::d1(n);
    assert_eq!(bounds::elide_mask(&k.bytecode, &nd, &args, &bufs) & 1, 0);
    for lanes in [false, true] {
        let (r_on, on, r_off, off) = run_ab(&k, &nd, &args, &bufs, lanes);
        assert_eq!(
            format!("{}", r_on.expect_err("must fault")),
            format!("{}", r_off.expect_err("must fault")),
        );
        // Partial effects before the fault must also match bit for bit.
        assert_eq!(on, off, "lanes={lanes}");
    }
}
