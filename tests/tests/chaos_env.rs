//! The `SERVE_FAULTS=0` escape hatch: with the variable set, a service
//! configured with a live `FaultPlan` must come up *disarmed* and serve
//! launches exactly like a fault-free service.
//!
//! This lives in its own integration-test binary because the env var is
//! process-global: the main chaos suite must never see it.

use std::sync::Arc;

use hetpart_core::{
    collect_training_db, FeatureSet, Framework, HarnessConfig, PartitionPredictor, Service,
    ServiceConfig,
};
use hetpart_ml::{ModelConfig, TreeConfig};
use hetpart_oclsim::{machines, DeviceFaults, FaultPlan};
use hetpart_runtime::Executor;

#[test]
fn serve_faults_0_disarms_a_live_fault_plan() {
    // Set before any service exists; this whole binary runs one test.
    std::env::set_var("SERVE_FAULTS", "0");

    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "blackscholes"].contains(&b.name))
        .collect();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 32,
        step_tenths: 5,
        ..HarnessConfig::quick()
    };
    let db = collect_training_db(&machines::mc2(), &benches, &cfg).unwrap();
    let predictor = PartitionPredictor::train(
        &db,
        &ModelConfig::Tree(TreeConfig::default()),
        FeatureSet::Both,
    );
    let fw = Framework {
        executor: Executor::new(machines::mc2()),
        predictor,
    };

    // A plan that would otherwise kill every device on its first launch.
    let plan = FaultPlan {
        seed: 1,
        faults: (0..3)
            .map(|d| DeviceFaults {
                dies_at_launch: Some(0),
                ..DeviceFaults::none(d)
            })
            .collect(),
    };
    let service = Service::new(
        fw.clone(),
        ServiceConfig {
            fault_plan: Some(plan),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    assert!(
        service.fault_state().is_none(),
        "SERVE_FAULTS=0 must leave the plan disarmed"
    );

    // And launches behave exactly like the fault-free reference path.
    let bench = hetpart_suite::by_name("vec_add").unwrap();
    let kernel = Arc::new(bench.compile());
    let inst = bench.instance(bench.smallest_size());
    let mut reference = inst.bufs.clone();
    fw.run_auto(&kernel, &inst.nd, &inst.args, &mut reference)
        .unwrap();
    let served = service
        .submit(
            kernel,
            inst.nd.clone(),
            inst.args.clone(),
            inst.bufs.clone(),
        )
        .expect("admitted")
        .wait()
        .expect("faults disarmed, launch must succeed");
    assert_eq!(served.bufs, reference);
    let stats = service.stats();
    assert_eq!(stats.dead_devices, 0);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.replans, 0);
    service.shutdown();
}
