//! Determinism: the whole pipeline is reproducible bit-for-bit for a fixed
//! configuration — measurements, labels, trained models and predictions.

use hetpart_core::{collect_training_db, FeatureSet, HarnessConfig, PartitionPredictor};
use hetpart_ml::ModelConfig;
use hetpart_oclsim::machines;

fn benches() -> Vec<hetpart_suite::Benchmark> {
    hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "kmeans", "mandelbrot"].contains(&b.name))
        .collect()
}

fn cfg() -> HarnessConfig {
    HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 24,
        step_tenths: 5,
        ..HarnessConfig::quick()
    }
}

#[test]
fn training_db_is_deterministic() {
    let a = collect_training_db(&machines::mc1(), &benches(), &cfg()).unwrap();
    let b = collect_training_db(&machines::mc1(), &benches(), &cfg()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn trained_predictors_agree_exactly() {
    let db = collect_training_db(&machines::mc2(), &benches(), &cfg()).unwrap();
    let m = ModelConfig::Mlp(hetpart_ml::MlpConfig {
        epochs: 40,
        ..Default::default()
    });
    let p1 = PartitionPredictor::train(&db, &m, FeatureSet::Both);
    let p2 = PartitionPredictor::train(&db, &m, FeatureSet::Both);
    for r in &db.records {
        let f = r.features(FeatureSet::Both);
        assert_eq!(p1.predict_vec(&f), p2.predict_vec(&f));
    }
}

#[test]
fn suite_instances_are_reproducible() {
    for b in benches() {
        let x = b.instance(b.smallest_size());
        let y = b.instance(b.smallest_size());
        assert_eq!(x.bufs, y.bufs, "{}", b.name);
        assert_eq!(x.args, y.args, "{}", b.name);
    }
}
