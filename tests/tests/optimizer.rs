//! Workspace-level acceptance tests for the bytecode optimizer pipeline:
//! histogram consistency (the cost model prices blocks through their
//! stored `OpHistogram`, so a stale histogram silently corrupts every
//! simulated time) and the static-shrink target across the whole suite.

use hetpart_inspire::{compile_with_opt, OptLevel};

#[test]
fn stored_histograms_equal_recomputation_for_every_suite_kernel() {
    // Every pass must leave `Block::histo` equal to what a from-scratch
    // recount of the block's instructions produces — at both levels, for
    // every block of every suite kernel.
    for bench in hetpart_suite::all() {
        for level in [OptLevel::None, OptLevel::Full] {
            let k = compile_with_opt(bench.source, level).unwrap();
            let n_params = k.bytecode.params.len();
            for (bi, block) in k.bytecode.blocks.iter().enumerate() {
                let mut fresh = block.clone();
                fresh.recompute_histo(n_params);
                assert_eq!(
                    block.histo, fresh.histo,
                    "{} ({level:?}) bb{bi}: stored histogram drifted from the code",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn optimizer_shrinks_the_suite_by_at_least_15_percent_geomean() {
    let mut log_sum = 0.0f64;
    let mut report = Vec::new();
    let benches = hetpart_suite::all();
    for bench in &benches {
        let none = compile_with_opt(bench.source, OptLevel::None).unwrap();
        let full = compile_with_opt(bench.source, OptLevel::Full).unwrap();
        let before = none.bytecode.num_instrs();
        let after = full.bytecode.num_instrs();
        assert!(
            after <= before,
            "{}: the optimizer grew the code: {before} -> {after}",
            bench.name
        );
        log_sum += (after as f64 / before as f64).ln();
        report.push(format!("{}: {before} -> {after}", bench.name));
    }
    let geomean_ratio = (log_sum / benches.len() as f64).exp();
    assert!(
        geomean_ratio <= 0.85,
        "geomean optimized/unoptimized static size is {geomean_ratio:.3}, \
         need <= 0.85 (>= 15% reduction):\n{}",
        report.join("\n")
    );
}
