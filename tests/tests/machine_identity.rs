//! Machine-identity guards end to end: training data and saved predictors
//! are bound to the machine (registry name + hardware fingerprint) they
//! were measured on, and every cross-machine mix-up fails with a typed,
//! descriptive error instead of silently training or deploying wrong.

use std::path::PathBuf;

use hetpart_core::{
    collect_training_db, DbError, FeatureSet, Framework, HarnessConfig, PartitionPredictor,
    PredictError, ShardedDb,
};
use hetpart_ml::ModelConfig;
use hetpart_oclsim::{machines, Machine};
use hetpart_runtime::Executor;
use hetpart_suite::Benchmark;

fn benches() -> Vec<Benchmark> {
    hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "sgemm"].contains(&b.name))
        .collect()
}

fn cfg() -> HarnessConfig {
    HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 24,
        step_tenths: 5,
        ..HarnessConfig::quick()
    }
}

fn tmp_root(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&root).ok();
    root
}

/// A zoo machine whose profile was edited after collection: same registry
/// name, different hardware.
fn drifted(mut m: Machine) -> Machine {
    m.devices[0].clock_ghz *= 2.0;
    m
}

#[test]
fn resuming_shards_on_edited_hardware_is_a_typed_error() {
    let machine = machines::by_name("slow_interconnect");
    let root = tmp_root("hetpart_it_identity_shards");
    let shards = ShardedDb::open(&root, &machine).unwrap();
    let db = collect_training_db(&machine, &benches(), &cfg()).unwrap();
    for r in &db.records {
        shards.append(r).unwrap();
    }

    // The same directory viewed by a same-name machine whose profile
    // changed: every load path fails with the fingerprint error, naming
    // the machine and both fingerprints.
    let edited = ShardedDb::open(&root, &drifted(machine.clone())).unwrap();
    let err = edited.load_shard("vec_add").unwrap_err();
    assert!(
        matches!(err, DbError::MachineFingerprintMismatch { .. }),
        "{err}"
    );
    let msg = err.to_string();
    assert!(msg.contains("slow_interconnect"), "{msg}");
    assert!(msg.contains("device profiles changed"), "{msg}");
    // Resume discovery is blocked the same way — an edited machine can
    // never silently extend a foreign store.
    let err = edited.existing_keys().unwrap_err();
    assert!(
        matches!(err, DbError::MachineFingerprintMismatch { .. }),
        "{err}"
    );

    // The original machine still loads its own shards.
    let again = ShardedDb::open(&root, &machine).unwrap();
    assert_eq!(again.to_training_db().unwrap(), db);
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn deploying_a_foreign_or_stale_predictor_is_a_typed_error() {
    let machine = machines::mc2();
    let db = collect_training_db(&machine, &benches(), &cfg()).unwrap();
    let predictor = PartitionPredictor::train(&db, &ModelConfig::Knn { k: 3 }, FeatureSet::Both);

    // Round-trip through disk, as a deployment would load it.
    let json = serde_json::to_string(&predictor).unwrap();
    let loaded: PartitionPredictor = serde_json::from_str(&json).unwrap();
    assert_eq!(loaded.machine, "mc2");
    assert_eq!(loaded.machine_fingerprint, machine.fingerprint());

    // Deploying on the machine it was trained on passes.
    let ok = Framework {
        executor: Executor::new(machine.clone()),
        predictor: loaded.clone(),
    };
    ok.validate().unwrap();

    // A different 3-device machine (arity matches, identity does not).
    let foreign = Framework {
        executor: Executor::new(machines::by_name("biglittle")),
        predictor: loaded.clone(),
    };
    let err = foreign.validate().unwrap_err();
    assert!(matches!(err, PredictError::MachineMismatch { .. }), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("mc2") && msg.contains("biglittle"), "{msg}");

    // The same machine after a profile edit: fingerprint guard fires.
    let stale = Framework {
        executor: Executor::new(drifted(machine)),
        predictor: loaded,
    };
    let err = stale.validate().unwrap_err();
    assert!(
        matches!(err, PredictError::MachineFingerprintMismatch { .. }),
        "{err}"
    );
    assert!(err.to_string().contains("device profiles changed"), "{err}");
}
