//! Deployment-service correctness: concurrent, cached serving must be
//! observably identical to the serial `run_auto` loop.
//!
//! For every benchmark in the suite, N concurrent submissions produce
//! output buffers and chosen partitions bit-identical to running the same
//! launches serially through `Framework::run_auto`, and a cache-hit
//! launch returns the same partition (and outputs) as its cold-miss twin.

use std::sync::Arc;

use hetpart_core::{
    collect_training_db, FeatureSet, Framework, HarnessConfig, PartitionPredictor, Service,
    ServiceConfig,
};
use hetpart_ml::{ModelConfig, TreeConfig};
use hetpart_oclsim::machines;
use hetpart_runtime::Executor;

fn deployed_framework() -> Framework {
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "blackscholes", "sgemm", "spmv_csr"].contains(&b.name))
        .collect();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 32,
        step_tenths: 5,
        ..HarnessConfig::quick()
    };
    let db = collect_training_db(&machines::mc2(), &benches, &cfg).unwrap();
    let predictor = PartitionPredictor::train(
        &db,
        &ModelConfig::Tree(TreeConfig::default()),
        FeatureSet::Both,
    );
    Framework {
        executor: Executor::new(machines::mc2()),
        predictor,
    }
}

/// Every suite benchmark, submitted concurrently, matches the serial
/// deployment path bit for bit — partitions and output buffers.
#[test]
fn concurrent_service_is_bit_identical_to_serial_run_auto_for_every_benchmark() {
    let fw = deployed_framework();

    // Serial reference: the synchronous deployment loop.
    let suite = hetpart_suite::all();
    let mut serial = Vec::new();
    for bench in &suite {
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        let mut bufs = inst.bufs.clone();
        let (partition, _) = fw
            .run_auto(&kernel, &inst.nd, &inst.args, &mut bufs)
            .unwrap_or_else(|e| panic!("{}: serial launch failed: {e}", bench.name));
        serial.push((kernel, inst, partition, bufs));
    }

    // Concurrent: submit everything up front on a multi-worker service,
    // then collect.
    let service = Service::new(
        fw,
        ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    )
    .expect("trained framework deploys on its training machine");
    let tickets: Vec<_> = serial
        .iter()
        .map(|(kernel, inst, _, _)| {
            service
                .submit(
                    Arc::clone(kernel),
                    inst.nd.clone(),
                    inst.args.clone(),
                    inst.bufs.clone(),
                )
                .expect("admitted")
        })
        .collect();

    for (i, ticket) in tickets.into_iter().enumerate() {
        let (_, inst, partition, bufs) = &serial[i];
        let bench = &suite[i];
        let served = ticket
            .wait()
            .unwrap_or_else(|e| panic!("{}: served launch failed: {e}", bench.name));
        assert_eq!(
            served.partition, *partition,
            "{}: service chose a different partition than run_auto",
            bench.name
        );
        assert_eq!(
            served.bufs, *bufs,
            "{}: service outputs differ from run_auto",
            bench.name
        );
        bench
            .check_outputs(inst, &served.bufs)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    }

    let stats = service.stats();
    assert_eq!(stats.completed, suite.len() as u64);
    assert_eq!(stats.errors, 0);
    service.shutdown();
}

/// A cache-hit launch must return the same partition (and outputs) as its
/// cold-miss twin, for every suite benchmark.
#[test]
fn cache_hits_match_their_cold_miss_twins() {
    let fw = deployed_framework();
    let service = Service::new(fw, ServiceConfig::default()).expect("valid framework");
    for bench in hetpart_suite::all() {
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        let cold = service
            .submit(
                Arc::clone(&kernel),
                inst.nd.clone(),
                inst.args.clone(),
                inst.bufs.clone(),
            )
            .expect("admitted")
            .wait()
            .unwrap_or_else(|e| panic!("{}: cold launch failed: {e}", bench.name));
        assert!(!cold.cache_hit, "{}: first launch must miss", bench.name);
        let warm = service
            .submit(
                kernel,
                inst.nd.clone(),
                inst.args.clone(),
                inst.bufs.clone(),
            )
            .expect("admitted")
            .wait()
            .unwrap_or_else(|e| panic!("{}: warm launch failed: {e}", bench.name));
        assert!(warm.cache_hit, "{}: repeat launch must hit", bench.name);
        assert_eq!(warm.partition, cold.partition, "{}", bench.name);
        assert_eq!(warm.bufs, cold.bufs, "{}", bench.name);
    }
    let stats = service.stats();
    assert_eq!(stats.cache_hits, stats.cache_misses);
    service.shutdown();
}

/// The same, with the content-keyed result memo enabled: replayed results
/// are bit-identical to executed ones.
#[test]
fn result_memo_is_bit_identical_across_the_suite() {
    let fw = deployed_framework();
    let service = Service::new(
        fw,
        ServiceConfig {
            result_cache_capacity: 64,
            ..ServiceConfig::default()
        },
    )
    .expect("valid framework");
    for bench in hetpart_suite::all().into_iter().take(8) {
        let kernel = Arc::new(bench.compile());
        let inst = bench.instance(bench.smallest_size());
        let submit = || {
            service
                .submit(
                    Arc::clone(&kernel),
                    inst.nd.clone(),
                    inst.args.clone(),
                    inst.bufs.clone(),
                )
                .expect("admitted")
        };
        let cold = submit().wait().unwrap();
        assert!(!cold.result_hit, "{}", bench.name);
        let warm = submit().wait().unwrap();
        assert!(warm.result_hit, "{}", bench.name);
        assert_eq!(warm.partition, cold.partition, "{}", bench.name);
        assert_eq!(warm.bufs, cold.bufs, "{}", bench.name);
        assert_eq!(warm.report, cold.report, "{}", bench.name);
    }
    service.shutdown();
}
