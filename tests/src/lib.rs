//! Integration test harness for the hetpart workspace.
