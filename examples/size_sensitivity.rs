//! Show the paper's core observation: the optimal task partitioning moves
//! with the problem size (and the machine).
//!
//! For a few representative programs, sweep the whole partition space at
//! every ladder size on both machines and print the oracle-optimal
//! partitioning with its margin over the default strategies.
//!
//! Run with: `cargo run --release --example size_sensitivity`

use hetpart_oclsim::machines;
use hetpart_runtime::{sweep_partitions, Executor, Launch};

fn main() {
    let programs = ["vec_add", "blackscholes", "nbody", "sgemm"];
    for machine in machines::paper_machines() {
        println!("== machine {} ==", machine.name);
        let executor = Executor::new(machine);
        for name in programs {
            let bench = hetpart_suite::by_name(name).expect("benchmark exists");
            let kernel = bench.compile();
            println!("{name} (origin: {}):", bench.origin);
            println!(
                "  {:>10}  {:>12}  {:>10}  {:>10}  {:>10}",
                "size", "best (C/G/G)", "best ms", "cpu-only", "gpu-only"
            );
            for &n in bench.sizes {
                let inst = bench.instance(n);
                let launch = Launch::new(&kernel, inst.nd.clone(), inst.args.clone());
                let sweep =
                    sweep_partitions(&executor, &launch, &inst.bufs, 1).expect("sweep succeeds");
                let best = sweep.best();
                println!(
                    "  {n:>10}  {:>12}  {:>10.4}  {:>10.4}  {:>10.4}",
                    best.partition.to_string(),
                    best.time * 1e3,
                    sweep.cpu_only_time() * 1e3,
                    sweep.gpu_only_time() * 1e3,
                );
            }
        }
        println!();
    }
    println!(
        "Reading guide: small sizes pin work to the CPU (transfers + launch\n\
         overhead dominate); large sizes shift work to the GPUs, more so on\n\
         mc2 whose scalar SIMT GPUs run untuned kernels well."
    );
}
