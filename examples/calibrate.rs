//! Cost-model calibration walkthrough (and CI gate).
//!
//! For every device of every machine in the built-in registry — the paper
//! machines and the synthetic zoo — run the register-resident micro-bench
//! suite through the simulator, then fit the six per-op cycle costs back
//! from the timings alone by least squares. Two gates:
//!
//! * noise-free timings must recover the table to near machine precision
//!   (max relative coefficient error < 1e-6), and
//! * timings with ±0.5% alternating jitter must still land within 5%.
//!
//! Exits non-zero when either tolerance is missed, so CI catches a cost
//! model whose ALU term drifts away from the linear form calibration
//! assumes.

use hetpart_oclsim::{calibrate_device, machines};

const EXACT_TOL: f64 = 1e-6;
const NOISY_TOL: f64 = 5e-2;

fn main() {
    let registry = machines::builtin_registry();
    println!("cost-model calibration over {} machines", registry.len());
    println!(
        "{:<20} {:<34} {:>12} {:>12}",
        "machine", "device", "exact err", "noisy err"
    );
    let mut failures = 0usize;
    for m in registry.machines() {
        for d in &m.devices {
            let exact = calibrate_device(d, |_, t| t)
                .unwrap_or_else(|e| panic!("{}/{}: calibration failed: {e}", m.name, d.name));
            // Deterministic ±0.5% alternating jitter: the same simulated
            // "measurement noise" the unit tests use.
            let noisy = calibrate_device(d, |i, t| t * if i % 2 == 0 { 1.005 } else { 0.995 })
                .unwrap_or_else(|e| panic!("{}/{}: noisy calibration failed: {e}", m.name, d.name));
            let ok = exact.max_rel_err < EXACT_TOL && noisy.max_rel_err < NOISY_TOL;
            if !ok {
                failures += 1;
            }
            println!(
                "{:<20} {:<34} {:>12.3e} {:>12.3e}{}",
                m.name,
                d.name,
                exact.max_rel_err,
                noisy.max_rel_err,
                if ok { "" } else { "  <-- OUT OF TOLERANCE" }
            );
        }
    }
    if failures > 0 {
        eprintln!(
            "calibration FAILED: {failures} device(s) out of tolerance \
             (exact < {EXACT_TOL:.0e}, noisy < {NOISY_TOL:.0e})"
        );
        std::process::exit(1);
    }
    println!("all devices within tolerance (exact < {EXACT_TOL:.0e}, noisy < {NOISY_TOL:.0e})");
}
