//! Generate the complete evaluation report: Figure 1, both prose claims,
//! and all three extension experiments, printed to stdout and saved as
//! JSON + text under `reports/`.
//!
//! Run with: `cargo run --release --example full_report`
//! (set `HETPART_FAST=1` for a reduced configuration).

use std::fs;
use std::path::Path;

use hetpart_core::{eval, HarnessConfig};

fn save(dir: &Path, name: &str, text: &str, json: &impl serde::Serialize) {
    fs::write(dir.join(format!("{name}.txt")), text).expect("write txt");
    fs::write(
        dir.join(format!("{name}.json")),
        serde_json::to_string_pretty(json).expect("serialize"),
    )
    .expect("write json");
}

fn main() {
    let fast = std::env::var("HETPART_FAST").is_ok();
    let cfg = if fast {
        HarnessConfig {
            sizes_per_benchmark: 2,
            ..HarnessConfig::quick()
        }
    } else {
        HarnessConfig {
            sizes_per_benchmark: 4,
            ..HarnessConfig::paper()
        }
    };
    let dir = Path::new("reports");
    fs::create_dir_all(dir).expect("create reports dir");

    let t0 = std::time::Instant::now();
    eprintln!("collecting training databases (23 programs, 2 machines) ...");
    let ctx = eval::EvalContext::build_full_suite(cfg);
    eprintln!("  done in {:.1}s", t0.elapsed().as_secs_f64());

    let fig = eval::figure1(&ctx);
    let txt = fig.render();
    println!("{txt}");
    save(dir, "figure1", &txt, &fig);

    let p1 = eval::default_strategy_comparison(&ctx);
    let txt = p1.render();
    println!("{txt}");
    save(dir, "p1_default_strategies", &txt, &p1);

    let p2 = eval::oracle_sensitivity(&ctx);
    let txt = p2.render();
    println!("{txt}");
    save(dir, "p2_oracle_sensitivity", &txt, &p2);

    eprintln!("running model comparison (E1) ...");
    let e1 = eval::model_comparison(&ctx);
    let txt = e1.render();
    println!("{txt}");
    save(dir, "e1_model_comparison", &txt, &e1);

    eprintln!("running feature ablation (E2) ...");
    let e2 = eval::feature_ablation(&ctx);
    let txt = e2.render();
    println!("{txt}");
    save(dir, "e2_feature_ablation", &txt, &e2);

    eprintln!("running dynamic-scheduler baseline (E4) ...");
    let e4 = eval::scheduler_comparison(&ctx);
    let txt = e4.render();
    println!("{txt}");
    save(dir, "e4_scheduler_baseline", &txt, &e4);

    eprintln!("running feature importance (E5) ...");
    let e5 = eval::feature_importance(&ctx);
    let txt = e5.render();
    println!("{txt}");
    save(dir, "e5_feature_importance", &txt, &e5);

    let e3 = eval::step_sensitivity(&ctx);
    let txt = e3.render();
    println!("{txt}");
    save(dir, "e3_step_sensitivity", &txt, &e3);

    eprintln!(
        "full report generated in {:.1}s; artifacts in {}/",
        t0.elapsed().as_secs_f64(),
        dir.display()
    );
}
