//! Cross-machine transfer evaluation: train a predictor on each machine of
//! the zoo, evaluate it against every other machine's oracle, and write
//! the transfer matrix to `reports/cross_machine.json`.
//!
//! The diagonal shows same-machine (training-set) performance; the
//! off-diagonal cells show what silently deploying a foreign predictor
//! would cost — the empirical justification for the machine fingerprint
//! guards on shard stores and saved predictors.
//!
//! Run with: `cargo run --release --example cross_machine`
//! Set `CROSS_MACHINE_QUICK=1` for a reduced 2x2 matrix (CI smoke mode).

use std::fs;
use std::path::Path;

use hetpart_core::{collect_training_db, cross_machine_matrix, FeatureSet, HarnessConfig};
use hetpart_oclsim::{machines, Machine};

fn main() {
    let quick = std::env::var("CROSS_MACHINE_QUICK").is_ok_and(|v| v == "1");

    // Predictors only transfer between machines of equal device count, so
    // the matrix covers the 3-device members of the registry: both paper
    // machines plus the zoo's big.LITTLE and PCIe-starved configurations.
    let machine_list: Vec<Machine> = if quick {
        vec![machines::mc1(), machines::mc2()]
    } else {
        vec![
            machines::mc1(),
            machines::mc2(),
            machines::by_name("biglittle"),
            machines::by_name("slow_interconnect"),
        ]
    };

    let bench_names: &[&str] = if quick {
        &["vec_add", "nbody", "blackscholes", "sgemm"]
    } else {
        &[
            "vec_add",
            "triad",
            "nbody",
            "blackscholes",
            "mandelbrot",
            "sgemm",
            "kmeans",
            "spmv_csr",
        ]
    };
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| bench_names.contains(&b.name))
        .collect();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 32,
        step_tenths: 5,
        ..HarnessConfig::quick()
    };

    println!(
        "cross-machine evaluation: {} machines x {} programs{}",
        machine_list.len(),
        benches.len(),
        if quick { " (quick mode)" } else { "" }
    );
    let dbs: Vec<_> = machine_list
        .iter()
        .map(|m| {
            println!("  training phase on {} ...", m.name);
            collect_training_db(m, &benches, &cfg)
                .unwrap_or_else(|e| panic!("training on {}: {e}", m.name))
        })
        .collect();

    let matrix = cross_machine_matrix(&machine_list, &dbs, &cfg.model, FeatureSet::Both);
    println!("\n{}", matrix.render());

    // Every cell of this matrix compares equal-arity machines, and every
    // compatible cell must have priced all of its records.
    for c in &matrix.cells {
        assert!(c.compatible, "matrix machines all share one device count");
        assert!(c.records > 0, "every cell evaluated records: {c:?}");
        assert!(
            c.oracle_slowdown.is_finite() && c.oracle_slowdown >= 1.0 - 1e-9,
            "slowdown is oracle-relative: {c:?}"
        );
    }

    let out_dir = Path::new("reports");
    fs::create_dir_all(out_dir).expect("create reports dir");
    let path = out_dir.join("cross_machine.json");
    fs::write(
        &path,
        serde_json::to_string_pretty(&matrix).expect("serialize matrix"),
    )
    .expect("write matrix");
    println!("transfer matrix -> {}", path.display());
}
