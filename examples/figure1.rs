//! Reproduce **Figure 1** of the paper: speedup of the ML-guided task
//! partitioning over CPU-only and GPU-only execution for all 23 programs
//! on both target machines (`mc1`, `mc2`), under leave-one-program-out
//! cross-validation.
//!
//! Run with: `cargo run --release --example figure1`
//! (set `HETPART_FAST=1` for a reduced, faster configuration).

use hetpart_core::{eval, HarnessConfig};

fn main() {
    let fast = std::env::var("HETPART_FAST").is_ok();
    let cfg = if fast {
        HarnessConfig {
            sizes_per_benchmark: 3,
            ..HarnessConfig::quick()
        }
    } else {
        HarnessConfig {
            sizes_per_benchmark: 4,
            ..HarnessConfig::paper()
        }
    };
    eprintln!(
        "measuring 23 programs x {} sizes x {} partitionings on 2 machines ...",
        if fast { 3 } else { 4 },
        if cfg.step_tenths == 1 { 66 } else { 21 },
    );
    let start = std::time::Instant::now();
    let ctx = eval::EvalContext::build_full_suite(cfg);
    eprintln!(
        "training data collected in {:.1}s",
        start.elapsed().as_secs_f64()
    );

    let fig = eval::figure1(&ctx);
    println!("{}", fig.render());

    println!("{}", eval::default_strategy_comparison(&ctx).render());
    println!("{}", eval::oracle_sensitivity(&ctx).render());

    println!(
        "Paper reference points (axis peaks of the published Figure 1):\n\
         mc1: 13.5x over CPU-only, 19.8x over GPU-only\n\
         mc2:  5.7x over CPU-only,  4.9x over GPU-only"
    );
}
