//! Define a *custom* heterogeneous machine (a laptop-class CPU plus one
//! integrated-GPU-like device), retrain the partitioning model for it, and
//! compare its decisions with the paper machines' — demonstrating the
//! portability claim: the framework adapts to the target architecture by
//! retraining, with no code changes.
//!
//! Run with: `cargo run --release --example custom_machine`

use hetpart_core::{collect_training_db, FeatureSet, HarnessConfig, PartitionPredictor};
use hetpart_oclsim::{machines, DeviceClass, DeviceProfile, Machine, OpCosts};
use hetpart_runtime::RuntimeFeatures;

fn laptop() -> Machine {
    let cpu = DeviceProfile {
        name: "4-core mobile CPU".into(),
        class: DeviceClass::Cpu,
        compute_units: 4,
        lanes_per_unit: 1,
        ilp_width: 1,
        clock_ghz: 2.4,
        cost: OpCosts::cpu(),
        mem_bandwidth_gbs: 20.0,
        uncoalesced_efficiency: 0.7,
        link_bandwidth_gbs: None,
        link_latency_us: 0.0,
        launch_overhead_us: 8.0,
        divergence_penalty: 0.05,
        saturation_items: 16.0,
        base_ilp_fill: 1.0,
    };
    // An integrated GPU: shares host memory (no PCIe!), modest width.
    let igpu = DeviceProfile {
        name: "integrated GPU".into(),
        class: DeviceClass::GpuSimt,
        compute_units: 6,
        lanes_per_unit: 16,
        ilp_width: 1,
        clock_ghz: 1.1,
        cost: OpCosts::gpu_simt(),
        mem_bandwidth_gbs: 20.0,
        uncoalesced_efficiency: 0.25,
        link_bandwidth_gbs: None, // zero-copy shared memory
        link_latency_us: 0.0,
        launch_overhead_us: 15.0,
        divergence_penalty: 2.0,
        saturation_items: 768.0,
        base_ilp_fill: 1.0,
    };
    Machine::new("laptop", vec![cpu, igpu], 10.0)
}

fn main() {
    let cfg = HarnessConfig {
        sizes_per_benchmark: 3,
        ..HarnessConfig::quick()
    };
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| {
            [
                "vec_add",
                "blackscholes",
                "nbody",
                "sgemm",
                "stencil2d",
                "spmv_csr",
            ]
            .contains(&b.name)
        })
        .collect();

    // Train one predictor per machine (the paper's per-architecture
    // training).
    let targets = vec![laptop(), machines::mc1(), machines::mc2()];
    println!(
        "training a model per machine on {} programs ...\n",
        benches.len()
    );
    let mut predictors = Vec::new();
    for m in &targets {
        let db = collect_training_db(m, &benches, &cfg).expect("training succeeds");
        predictors.push(PartitionPredictor::train(&db, &cfg.model, FeatureSet::Both));
    }

    // Ask each machine's model where a big blackscholes launch should run.
    let bench = hetpart_suite::by_name("blackscholes").expect("exists");
    let kernel = bench.compile();
    println!("predicted partitioning for blackscholes, per machine and size:");
    println!(
        "{:>10}  {:>14}  {:>14}  {:>14}",
        "size", "laptop", "mc1", "mc2"
    );
    for &n in bench.sizes {
        let inst = bench.instance(n);
        let rt: RuntimeFeatures = hetpart_runtime::runtime_features(
            &kernel,
            &inst.nd,
            &inst.args,
            &inst.bufs,
            cfg.sample_items,
        )
        .expect("feature collection succeeds");
        let row: Vec<String> = predictors
            .iter()
            .map(|p| {
                p.predict(&kernel, &rt)
                    .expect("prediction succeeds")
                    .to_string()
            })
            .collect();
        println!("{n:>10}  {:>14}  {:>14}  {:>14}", row[0], row[1], row[2]);
    }
    println!(
        "\nThe laptop's integrated GPU has no PCIe cost, so it earns a share\n\
         much earlier than the discrete GPUs of mc1/mc2."
    );
}
