//! Define a *custom* heterogeneous machine (a laptop-class CPU plus one
//! integrated-GPU-like device) **as data** — a JSON device profile loaded
//! through the same registry path as the built-in machines — retrain the
//! partitioning model for it, and compare its decisions with the paper
//! machines' — demonstrating the portability claim: the framework adapts
//! to the target architecture by retraining, with no code changes.
//!
//! Run with: `cargo run --release --example custom_machine`

use hetpart_core::{collect_training_db, FeatureSet, HarnessConfig, PartitionPredictor};
use hetpart_oclsim::{machines, Machine};
use hetpart_runtime::RuntimeFeatures;

/// The custom machine, written the way a user would ship one: a profile
/// document, not Rust code. A laptop-class CPU plus an integrated GPU
/// that shares host memory (`link_bandwidth_gbs: null` — no PCIe!).
const LAPTOP_PROFILE: &str = r#"{
  "schema_version": 1,
  "name": "laptop",
  "devices": [
    {
      "name": "4-core mobile CPU",
      "class": "Cpu",
      "compute_units": 4,
      "lanes_per_unit": 1,
      "ilp_width": 1,
      "clock_ghz": 2.4,
      "cost": {
        "int_op": 1.1,
        "float_op": 1.2,
        "transcendental": 18.0,
        "cmp": 1.0,
        "branch": 1.5,
        "other": 0.6
      },
      "mem_bandwidth_gbs": 20.0,
      "uncoalesced_efficiency": 0.7,
      "link_bandwidth_gbs": null,
      "link_latency_us": 0.0,
      "launch_overhead_us": 8.0,
      "divergence_penalty": 0.05,
      "saturation_items": 16.0,
      "base_ilp_fill": 1.0
    },
    {
      "name": "integrated GPU",
      "class": "GpuSimt",
      "compute_units": 6,
      "lanes_per_unit": 16,
      "ilp_width": 1,
      "clock_ghz": 1.1,
      "cost": {
        "int_op": 1.0,
        "float_op": 1.0,
        "transcendental": 4.0,
        "cmp": 1.0,
        "branch": 2.0,
        "other": 0.5
      },
      "mem_bandwidth_gbs": 20.0,
      "uncoalesced_efficiency": 0.25,
      "link_bandwidth_gbs": null,
      "link_latency_us": 0.0,
      "launch_overhead_us": 15.0,
      "divergence_penalty": 2.0,
      "saturation_items": 768.0,
      "base_ilp_fill": 1.0
    }
  ],
  "multi_device_overhead_us": 10.0
}"#;

fn laptop() -> Machine {
    hetpart_oclsim::machine_from_profile_str("examples/custom_machine.rs", LAPTOP_PROFILE)
        .expect("profile validates")
}

fn main() {
    let cfg = HarnessConfig {
        sizes_per_benchmark: 3,
        ..HarnessConfig::quick()
    };
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| {
            [
                "vec_add",
                "blackscholes",
                "nbody",
                "sgemm",
                "stencil2d",
                "spmv_csr",
            ]
            .contains(&b.name)
        })
        .collect();

    // Train one predictor per machine (the paper's per-architecture
    // training).
    let targets = vec![laptop(), machines::mc1(), machines::mc2()];
    println!(
        "training a model per machine on {} programs ...\n",
        benches.len()
    );
    let mut predictors = Vec::new();
    for m in &targets {
        let db = collect_training_db(m, &benches, &cfg).expect("training succeeds");
        predictors.push(PartitionPredictor::train(&db, &cfg.model, FeatureSet::Both));
    }

    // Ask each machine's model where a big blackscholes launch should run.
    let bench = hetpart_suite::by_name("blackscholes").expect("exists");
    let kernel = bench.compile();
    println!("predicted partitioning for blackscholes, per machine and size:");
    println!(
        "{:>10}  {:>14}  {:>14}  {:>14}",
        "size", "laptop", "mc1", "mc2"
    );
    for &n in bench.sizes {
        let inst = bench.instance(n);
        let rt: RuntimeFeatures = hetpart_runtime::runtime_features(
            &kernel,
            &inst.nd,
            &inst.args,
            &inst.bufs,
            cfg.sample_items,
        )
        .expect("feature collection succeeds");
        let row: Vec<String> = predictors
            .iter()
            .map(|p| {
                p.predict(&kernel, &rt)
                    .expect("prediction succeeds")
                    .to_string()
            })
            .collect();
        println!("{n:>10}  {:>14}  {:>14}  {:>14}", row[0], row[1], row[2]);
    }
    println!(
        "\nThe laptop's integrated GPU has no PCIe cost, so it earns a share\n\
         much earlier than the discrete GPUs of mc1/mc2."
    );
}
