//! Runnable examples for the hetpart workspace.
//!
//! This crate exists only to host the `[[example]]` targets declared in
//! its manifest; run them with e.g. `cargo run --release --example
//! quickstart`.
