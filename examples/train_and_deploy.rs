//! The full two-phase workflow of the paper, with persistence:
//!
//! 1. **Training phase**: measure the suite on `mc2`, save the training
//!    database and the trained predictor to `reports/`.
//! 2. **Deployment phase**: reload the predictor from disk (as a freshly
//!    started runtime would) and auto-partition a program that was *held
//!    out* of training.
//!
//! Run with: `cargo run --release --example train_and_deploy`

use std::fs;
use std::path::Path;

use hetpart_core::{collect_training_db, FeatureSet, Framework, HarnessConfig, PartitionPredictor};
use hetpart_oclsim::machines;
use hetpart_runtime::{Executor, Partition};

fn main() {
    let out_dir = Path::new("reports");
    fs::create_dir_all(out_dir).expect("create reports dir");

    // ---- Training phase --------------------------------------------
    let machine = machines::mc2();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 3,
        ..HarnessConfig::quick()
    };
    let held_out = "blackscholes";
    let training_set: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| b.name != held_out)
        .collect();
    println!(
        "training phase: {} programs x 3 sizes on {} (holding out `{held_out}`) ...",
        training_set.len(),
        machine.name
    );
    let db = collect_training_db(&machine, &training_set, &cfg).expect("training succeeds");
    let db_path = out_dir.join("training_db_mc2.json");
    db.save(&db_path).expect("save db");
    println!(
        "  saved {} training records -> {}",
        db.records.len(),
        db_path.display()
    );

    let predictor = PartitionPredictor::train(&db, &cfg.model, FeatureSet::Both);
    let model_path = out_dir.join("predictor_mc2.json");
    fs::write(
        &model_path,
        serde_json::to_string_pretty(&predictor).expect("serialize"),
    )
    .expect("save predictor");
    println!("  saved trained predictor -> {}\n", model_path.display());

    // ---- Deployment phase ------------------------------------------
    let loaded: PartitionPredictor =
        serde_json::from_str(&fs::read_to_string(&model_path).expect("read model"))
            .expect("deserialize predictor");
    let framework = Framework {
        executor: Executor::new(machine),
        predictor: loaded,
    };
    // The loaded predictor carries the training machine's name and
    // hardware fingerprint; validate() refuses a predictor trained on a
    // different (or since-edited) machine before the first launch.
    framework
        .validate()
        .expect("predictor matches this machine");

    let bench = hetpart_suite::by_name(held_out).expect("exists");
    let kernel = bench.compile();
    println!("deployment phase: auto-partitioning unseen program `{held_out}`");
    for &n in bench.sizes {
        let inst = bench.instance(n);
        let mut bufs = inst.bufs.clone();
        let (partition, report) = framework
            .run_auto(&kernel, &inst.nd, &inst.args, &mut bufs)
            .expect("launch succeeds");
        bench.check_outputs(&inst, &bufs).expect("outputs verify");
        let marker = if partition == Partition::cpu_only(3) {
            "(cpu only)"
        } else if partition.is_single_device() {
            "(single device)"
        } else {
            "(split)"
        };
        println!(
            "  n = {n:>8}: partition {partition} {marker:>15}, time {:.3} ms, outputs verified",
            report.time * 1e3
        );
    }
}
