//! Sharded, resumable, multi-process training.
//!
//! Simulates the serving-fleet training story end to end:
//!
//! 1. Two "collector processes" each measure a disjoint half of the suite
//!    into JSONL shards (one file per (machine, program)).
//! 2. One collector crashes mid-append; re-running it resumes from the
//!    shards instead of restarting (the torn record is re-measured, the
//!    complete ones are loaded).
//! 3. The shards merge into one canonical training database and train a
//!    predictor **bit-identical** to a monolithic single-process run —
//!    regardless of shard order.
//!
//! Run with: `cargo run --release --example shard_train`

use hetpart_core::{
    collect_training_db, collect_training_db_sharded, FeatureSet, HarnessConfig,
    PartitionPredictor, ShardedDb,
};
use hetpart_oclsim::machines;

fn main() {
    let machine = machines::mc2();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 32,
        step_tenths: 5,
        ..HarnessConfig::quick()
    };
    let suite: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| {
            [
                "vec_add",
                "nbody",
                "blackscholes",
                "sgemm",
                "mandelbrot",
                "spmv_csr",
            ]
            .contains(&b.name)
        })
        .collect();

    let root = std::env::temp_dir().join("hetpart_shard_train");
    std::fs::remove_dir_all(&root).ok();

    // ---- Two collector processes, disjoint suite halves -------------
    let half = suite.len() / 2;
    let proc_a = ShardedDb::open(root.join("proc_a"), &machine).expect("open shards");
    let proc_b = ShardedDb::open(root.join("proc_b"), &machine).expect("open shards");
    println!(
        "collector A: {} programs x 2 sizes on {} ...",
        half, machine.name
    );
    collect_training_db_sharded(&machine, &suite[..half], &cfg, &proc_a)
        .expect("collector A succeeds");

    println!("collector B: {} programs x 2 sizes ...", suite.len() - half);
    collect_training_db_sharded(&machine, &suite[half..], &cfg, &proc_b)
        .expect("collector B succeeds");

    // ---- Crash + resume ---------------------------------------------
    // Tear the tail of one of B's shards, as if the process died inside
    // an append, then re-run collector B.
    let victim = proc_b.programs().expect("list shards")[0].clone();
    let path = proc_b.shard_path(&victim);
    let text = std::fs::read_to_string(&path).expect("read shard");
    std::fs::write(&path, &text[..text.len() - 30]).expect("tear shard");
    let before = proc_b.existing_keys().expect("scan shards").len();
    println!(
        "simulated crash: tore the tail of `{victim}` ({} records survive)",
        before
    );
    collect_training_db_sharded(&machine, &suite[half..], &cfg, &proc_b).expect("resume succeeds");
    let after = proc_b.existing_keys().expect("scan shards").len();
    println!(
        "resumed collector B: re-measured {} record(s)\n",
        after - before
    );

    // ---- Merge + train, against the monolithic reference ------------
    let merged = ShardedDb::merge(&[&proc_a, &proc_b]).expect("merge shards");
    let monolithic = collect_training_db(&machine, &suite, &cfg).expect("monolithic training");
    assert_eq!(
        merged, monolithic,
        "merged shard view must equal monolithic collection bit for bit"
    );

    let model = &cfg.model;
    let mono_pred = PartitionPredictor::train(&monolithic, model, FeatureSet::Both);
    let shard_pred =
        PartitionPredictor::train_from_shards(&[&proc_b, &proc_a], model, FeatureSet::Both)
            .expect("train from shards");
    assert_eq!(
        mono_pred, shard_pred,
        "shard-trained predictor must be bit-identical, regardless of shard order"
    );

    println!("shard layout under {}:", root.display());
    for (name, store) in [("proc_a", &proc_a), ("proc_b", &proc_b)] {
        for program in store.programs().expect("list shards") {
            let lines = std::fs::read_to_string(store.shard_path(&program))
                .map(|t| t.lines().count())
                .unwrap_or(0);
            println!(
                "  {name}/{}/{program}.jsonl  (header + {} records)",
                store.machine(),
                lines - 1
            );
        }
    }
    println!(
        "\nmerged {} records over {} programs; label space {} partitions",
        merged.records.len(),
        suite.len(),
        merged.label_space().len()
    );
    println!("shard-trained predictor == monolithic predictor: OK");
    std::fs::remove_dir_all(&root).ok();
}
