//! The deployment phase as a *service*: train once, then serve a stream
//! of repeat launches through the concurrent deployment service — cold
//! launches are planned (feature probe + model inference) and the plan is
//! cached, so warm launches skip straight to execution.
//!
//! Run with: `cargo run --release --example serve_deploy`

use std::sync::Arc;

use hetpart_core::{
    collect_training_db, FeatureSet, Framework, HarnessConfig, PartitionPredictor, Service,
    ServiceConfig,
};
use hetpart_oclsim::machines;
use hetpart_runtime::Executor;

fn main() {
    // ---- Training phase (condensed; see train_and_deploy) -----------
    let machine = machines::mc2();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        ..HarnessConfig::quick()
    };
    let held_out = "blackscholes";
    let training_set: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "nbody", "sgemm", "dot_product"].contains(&b.name))
        .collect();
    println!(
        "training phase: {} programs on {} (holding out `{held_out}`) ...",
        training_set.len(),
        machine.name
    );
    let db = collect_training_db(&machine, &training_set, &cfg).expect("training succeeds");
    let predictor = PartitionPredictor::train(&db, &cfg.model, FeatureSet::Both);

    // ---- Serving phase ---------------------------------------------
    let framework = Framework {
        executor: Executor::new(machine),
        predictor,
    };
    let service = Service::new(
        framework,
        ServiceConfig {
            // Memoize whole results for bit-identical repeats, too.
            result_cache_capacity: 256,
            ..ServiceConfig::default()
        },
    )
    .expect("predictor fits the deployment machine");

    let bench = hetpart_suite::by_name(held_out).expect("exists");
    let kernel = Arc::new(bench.compile());

    // Repeat traffic: two problem sizes, several launches each — the
    // shape of a deployed program being called in a loop.
    let sizes = [bench.sizes[0], bench.sizes[2]];
    println!(
        "serving `{held_out}` traffic: 2 sizes x 6 launches on {} worker(s)\n",
        ServiceConfig::default().workers
    );
    println!(
        "{:>10} {:>7} {:>12} {:>7} {:>12} {:>12}",
        "size", "launch", "partition", "hit", "plan ms", "service ms"
    );
    for &n in &sizes {
        let inst = bench.instance(n);
        for launch in 0..6 {
            let served = service
                .submit(
                    Arc::clone(&kernel),
                    inst.nd.clone(),
                    inst.args.clone(),
                    inst.bufs.clone(),
                )
                .expect("admitted")
                .wait()
                .expect("launch succeeds");
            bench
                .check_outputs(&inst, &served.bufs)
                .expect("outputs verify");
            let hit = if served.result_hit {
                "memo"
            } else if served.cache_hit {
                "plan"
            } else {
                "miss"
            };
            println!(
                "{n:>10} {launch:>7} {:>12} {hit:>7} {:>12.4} {:>12.4}",
                served.partition.to_string(),
                served.plan_seconds * 1e3,
                served.service_seconds * 1e3,
            );
        }
    }

    let stats = service.stats();
    println!(
        "\nservice stats: {} completed, {} plan misses, {} cache hits \
         ({} from the result memo), hit rate {:.0}%",
        stats.completed,
        stats.cache_misses,
        stats.cache_hits,
        stats.result_hits,
        stats.hit_rate() * 100.0
    );
    println!(
        "cumulative planning {:.3} ms vs execution {:.3} ms — repeat launches paid \
         the planning cost once per (kernel, size)",
        stats.plan_seconds * 1e3,
        stats.exec_seconds * 1e3
    );
    service.shutdown();
}
