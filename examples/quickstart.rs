//! Quickstart: compile a kernel, train a small partitioning model, and let
//! the framework place the launch across a heterogeneous machine.
//!
//! Run with: `cargo run --release --example quickstart`

use hetpart_core::{collect_training_db, FeatureSet, Framework, HarnessConfig, PartitionPredictor};
use hetpart_inspire::compile;
use hetpart_inspire::vm::{ArgValue, BufferData};
use hetpart_inspire::NdRange;
use hetpart_oclsim::machines;
use hetpart_runtime::Executor;

fn main() {
    // 1. A user kernel, written in the OpenCL-C-like kernel language.
    let kernel = compile(
        r#"
        kernel void waves(global const float* a, global float* o, int n, int steps) {
            int i = get_global_id(0);
            if (i < n) {
                float x = a[i];
                for (int s = 0; s < steps; s++) {
                    x = x + 0.01 * sin(x);
                }
                o[i] = x;
            }
        }
        "#,
    )
    .expect("kernel compiles");
    println!("compiled `{}`:", kernel.name);
    println!("  static features: {:?}\n", kernel.static_features);

    // 2. Train a partition predictor on a handful of suite programs
    //    (training phase: exhaustive partition sweeps on the simulated
    //    machine mc2 — dual Xeon + two GTX 480s).
    let machine = machines::mc2();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 3,
        ..HarnessConfig::quick()
    };
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| {
            [
                "vec_add",
                "blackscholes",
                "nbody",
                "sgemm",
                "mandelbrot",
                "spmv_csr",
            ]
            .contains(&b.name)
        })
        .collect();
    println!(
        "training on {} programs x 3 sizes on {} ...",
        benches.len(),
        machine.name
    );
    let db = collect_training_db(&machine, &benches, &cfg).expect("training succeeds");
    let predictor = PartitionPredictor::train(&db, &cfg.model, FeatureSet::Both);
    println!(
        "label space: {} distinct optimal partitionings\n",
        predictor.label_space.len()
    );

    // 3. Deployment phase: the framework predicts a partitioning for the
    //    *new* kernel at two very different problem sizes and executes it.
    let framework = Framework {
        executor: Executor::new(machine),
        predictor,
    };
    for (n, steps) in [(2_048usize, 4i32), (1_048_576, 400)] {
        let a: Vec<f32> = (0..n).map(|i| (i % 97) as f32 / 97.0).collect();
        let mut bufs = vec![BufferData::F32(a), BufferData::F32(vec![0.0; n])];
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Int(n as i32),
            ArgValue::Int(steps),
        ];
        let (partition, report) = framework
            .run_auto(&kernel, &NdRange::d1(n), &args, &mut bufs)
            .expect("launch succeeds");
        println!(
            "n = {n:>8}, steps = {steps:>3}  ->  partition CPU/GPU0/GPU1 = {partition}, \
             simulated time {:.3} ms",
            report.time * 1e3
        );
        for run in &report.device_runs {
            println!(
                "    device {}: items {:>8}  time {:.3} ms",
                run.device.0,
                run.shape.items,
                run.time.total * 1e3
            );
        }
    }
    println!("\nSmall launches stay on the CPU; large compute-heavy ones spread out.");
}
