//! # hetpart-inspire
//!
//! The compiler front end of the hetpart framework: a small OpenCL-C-like
//! kernel language, an INSPIRE-like typed intermediate representation,
//! static program-feature extraction, a buffer access-range analysis, and a
//! register-bytecode virtual machine that functionally executes kernels on
//! host buffers while counting dynamic operations per basic block.
//!
//! The paper's Insieme compiler translates single-device OpenCL programs
//! into the INSPIRE IR, extracts *static program features* from it, and
//! hands the IR to a backend that emits multi-device code. This crate plays
//! the same role: [`compile`] takes kernel source text and produces a
//! [`CompiledKernel`] bundling the typed IR, the static feature vector, the
//! per-buffer access summaries used by the runtime to plan partial
//! transfers, and executable bytecode.
//!
//! ## Example
//!
//! ```
//! use hetpart_inspire::{compile, vm::{Vm, BufferData, ArgValue}, NdRange};
//!
//! let src = r#"
//!     kernel void vec_add(global const float* a, global const float* b,
//!                         global float* c, int n) {
//!         int i = get_global_id(0);
//!         if (i < n) { c[i] = a[i] + b[i]; }
//!     }
//! "#;
//! let k = compile(src).unwrap();
//! assert_eq!(k.name, "vec_add");
//!
//! let mut bufs = vec![
//!     BufferData::F32(vec![1.0, 2.0, 3.0, 4.0]),
//!     BufferData::F32(vec![10.0, 20.0, 30.0, 40.0]),
//!     BufferData::F32(vec![0.0; 4]),
//! ];
//! let args = vec![
//!     ArgValue::Buffer(0), ArgValue::Buffer(1), ArgValue::Buffer(2),
//!     ArgValue::Int(4),
//! ];
//! let mut vm = Vm::new();
//! vm.run_range(&k.bytecode, &NdRange::d1(4), 0..4, &args, &mut bufs)
//!   .unwrap();
//! assert_eq!(bufs[2].as_f32().unwrap(), &[11.0, 22.0, 33.0, 44.0]);
//! ```

// Panics in the compiler are miscompiles waiting to happen: outside of
// tests, every fallible step must surface a typed `CompileError` (or an
// explicitly justified `unreachable!`) instead of unwrapping.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod access;
pub mod analysis;
pub mod ast;
pub mod builtins;
pub mod bytecode;
pub mod cfg;
pub mod error;
pub mod features;
pub mod ir;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;
pub mod vm;
mod vm_batch;

pub use access::{AccessSummary, BufferAccess};
pub use bytecode::Function;
pub use error::{CompileError, VmError};
pub use features::StaticFeatures;
pub use ir::{Kernel, NdRange, ScalarType};
pub use opt::{OptLevel, RegAlloc};

/// A fully compiled kernel: typed IR plus every analysis product the
/// runtime and the machine-learning pipeline consume.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Kernel name as written in the source.
    pub name: String,
    /// Typed INSPIRE-like IR (used by analyses and for inspection).
    pub ir: Kernel,
    /// Static program features extracted from the IR at "compile time".
    pub static_features: StaticFeatures,
    /// Per-buffer access summaries for transfer planning.
    pub access: AccessSummary,
    /// Executable register bytecode.
    pub bytecode: Function,
    /// Cheap stable identity: FNV-1a over the kernel name and a canonical
    /// rendering of the **optimized bytecode** (params + blocks). Two
    /// kernels that compile to identical code share a fingerprint — in
    /// particular, source-level differences the optimizer erases (dead
    /// statements after an early `return`, constant spelling) collapse to
    /// one fingerprint, so the deployment service's prediction cache sees
    /// one `PlanKey` for them. Compiling at a different [`OptLevel`]
    /// changes the bytecode and therefore the fingerprint.
    pub fingerprint: u64,
}

/// FNV-1a over a byte string (the fingerprint hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Compile kernel source text containing exactly one `kernel` function.
///
/// Returns a [`CompileError`] describing the first problem found, with a
/// byte offset into `src`.
pub fn compile(src: &str) -> Result<CompiledKernel, CompileError> {
    compile_with_opt(src, OptLevel::from_env())
}

/// [`compile`] at an explicit optimization level (the backend
/// register-allocation tier follows the environment).
pub fn compile_with_opt(src: &str, level: OptLevel) -> Result<CompiledKernel, CompileError> {
    compile_with_modes(src, level, RegAlloc::from_env())
}

/// [`compile`] at an explicit optimization level and backend mode.
pub fn compile_with_modes(
    src: &str,
    level: OptLevel,
    regalloc: RegAlloc,
) -> Result<CompiledKernel, CompileError> {
    let kernels = compile_all_with_modes(src, level, regalloc)?;
    let n = kernels.len();
    match kernels.into_iter().next() {
        Some(k) if n == 1 => Ok(k),
        _ => Err(CompileError::other(format!(
            "expected exactly one kernel in translation unit, found {n}"
        ))),
    }
}

/// Compile kernel source text containing one or more `kernel` functions.
pub fn compile_all(src: &str) -> Result<Vec<CompiledKernel>, CompileError> {
    compile_all_with_opt(src, OptLevel::from_env())
}

/// [`compile_all`] at an explicit optimization level.
pub fn compile_all_with_opt(
    src: &str,
    level: OptLevel,
) -> Result<Vec<CompiledKernel>, CompileError> {
    compile_all_with_modes(src, level, RegAlloc::from_env())
}

/// [`compile_all`] at an explicit optimization level and backend mode.
pub fn compile_all_with_modes(
    src: &str,
    level: OptLevel,
    regalloc: RegAlloc,
) -> Result<Vec<CompiledKernel>, CompileError> {
    let tokens = lexer::lex(src)?;
    let program = parser::parse(&tokens)?;
    program
        .kernels
        .into_iter()
        .map(|k| {
            let ir = sema::analyze(&k)?;
            let mut static_features = features::extract(&ir);
            let access = access::analyze(&ir);
            let bytecode = bytecode::compile_with_modes(&ir, level, regalloc)?;
            // The uniformity analysis runs on the optimized bytecode, so
            // its branch classification lands here rather than in
            // `features::extract`.
            let uni = analysis::uniform::analyze(&bytecode);
            static_features.uniform_branches = uni.uniform_branches;
            static_features.divergent_branches = uni.divergent_branches;
            let fingerprint = fnv1a(
                format!(
                    "{}\u{0}{:?}\u{0}{:?}",
                    bytecode.name, bytecode.params, bytecode.blocks
                )
                .as_bytes(),
            );
            Ok(CompiledKernel {
                name: ir.name.clone(),
                ir,
                static_features,
                access,
                bytecode,
                fingerprint,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_rejects_empty_source() {
        assert!(compile("").is_err());
    }

    #[test]
    fn compile_rejects_two_kernels_via_single_entry() {
        let src = "kernel void a(int n) { } kernel void b(int n) { }";
        assert!(compile(src).is_err());
        assert_eq!(compile_all(src).unwrap().len(), 2);
    }

    #[test]
    fn uniformity_features_are_filled_after_codegen() {
        let guarded =
            compile("kernel void k(global float* o, int n) { int i = get_global_id(0); if (i < n) { o[i] = 1.0; } }")
                .unwrap();
        assert!(guarded.static_features.divergent_branches >= 1);
        let unguarded =
            compile("kernel void k(global float* o) { o[get_global_id(0)] = 1.0; }").unwrap();
        assert_eq!(unguarded.static_features.divergent_branches, 0);
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_kernels() {
        let a = "kernel void k(global float* o) { o[get_global_id(0)] = 1.0; }";
        let b = "kernel void k(global float* o) { o[get_global_id(0)] = 2.0; }";
        assert_eq!(
            compile(a).unwrap().fingerprint,
            compile(a).unwrap().fingerprint
        );
        assert_ne!(
            compile(a).unwrap().fingerprint,
            compile(b).unwrap().fingerprint
        );
    }

    #[test]
    fn dead_code_after_return_does_not_change_the_fingerprint() {
        // Statements after `return` compile into orphan blocks that the
        // optimizer eliminates, so these two semantically identical
        // kernels must share a fingerprint (and therefore a `PlanKey`).
        let clean = "kernel void k(global float* o, int n) {
            int i = get_global_id(0);
            if (i >= n) { return; }
            o[i] = 1.0;
        }";
        let with_dead = "kernel void k(global float* o, int n) {
            int i = get_global_id(0);
            if (i >= n) { return; o[i] = 3.0; o[i] = 4.0; }
            o[i] = 1.0;
        }";
        let a = compile_with_opt(clean, OptLevel::Full).unwrap();
        let b = compile_with_opt(with_dead, OptLevel::Full).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.bytecode.blocks, b.bytecode.blocks);
        // Unoptimized, the dead statements inflate the code and split the
        // fingerprints — the regression this guards against.
        let an = compile_with_opt(clean, OptLevel::None).unwrap();
        let bn = compile_with_opt(with_dead, OptLevel::None).unwrap();
        assert_ne!(an.fingerprint, bn.fingerprint);
    }

    #[test]
    fn regalloc_mode_changes_the_fingerprint() {
        // Register allocation rewrites the blocks, so the fingerprint —
        // FNV over params + blocks — distinguishes the two modes whenever
        // the allocation is not the identity (this kernel has a
        // collapsible temp chain, so it is not).
        let src = "kernel void k(global const float* a, global float* o, int n) {
            int i = get_global_id(0);
            float x = a[i % n];
            float y = x * 2.0;
            float z = y + 1.0;
            if (i < n) { o[i] = z; }
        }";
        let on = compile_with_modes(src, OptLevel::Full, RegAlloc::On).unwrap();
        let off = compile_with_modes(src, OptLevel::Full, RegAlloc::Off).unwrap();
        assert_ne!(on.fingerprint, off.fingerprint);
        assert!(on.bytecode.n_fregs <= off.bytecode.n_fregs);
        assert_eq!(on.bytecode.num_instrs(), off.bytecode.num_instrs());
    }

    #[test]
    fn opt_level_changes_the_fingerprint() {
        let src = "kernel void k(global float* o, int n) {
            int i = get_global_id(0);
            if (i < n) { o[i] = 2.0 * 3.0; }
        }";
        let full = compile_with_opt(src, OptLevel::Full).unwrap();
        let none = compile_with_opt(src, OptLevel::None).unwrap();
        assert_ne!(full.fingerprint, none.fingerprint);
        assert!(full.bytecode.num_instrs() < none.bytecode.num_instrs());
    }
}
