//! The register-bytecode virtual machine.
//!
//! Functionally executes compiled kernels over host buffers, exactly as an
//! OpenCL device would run the kernel body for each global id. While
//! executing it counts basic-block executions; dot multiplying the block
//! counters with the per-block static histograms yields exact dynamic
//! operation counts at a cost of one increment per block.
//!
//! Two engines share the bytecode semantics:
//! - the **scalar engine** ([`Vm::run_range_scalar`]) interprets one
//!   work-item at a time — the reference implementation;
//! - the **lane engine** ([`Vm::run_range_lanes`], [`crate::vm_batch`])
//!   executes batches of up to [`LANES`] work-items in lockstep over
//!   structure-of-arrays register files, handling divergent branches with
//!   masked SIMT execution and a post-dominator reconvergence stack (or,
//!   with [`DivergenceMode::Replay`], by finishing each diverged lane on
//!   the scalar engine).
//!
//! The public entry points ([`Vm::run_range`], [`Vm::run_sampled`],
//! [`Vm::run_items`]) dispatch to the lane engine for anything beyond a
//! handful of items; the differential test suite keeps the two engines
//! bit-identical on buffers, counters, and sample statistics.

use std::ops::Range;

use crate::bytecode::{
    CmpOp, FBinOp, Function, IBinOp, Instr, MathFn1, MathFn2, OpClass, Terminator, N_OP_CLASSES,
};
use crate::error::VmError;
use crate::ir::{NdRange, ParamKind, ScalarType};
use crate::opt::decode::{f_eval, i_eval, DecOp, DecodedProgram, OpCode};
use crate::vm_batch::{CountSink, LaneEngine};

pub use crate::vm_batch::{DivergenceMode, LANES};

/// A typed host buffer, the VM's model of an OpenCL `cl_mem` object.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferData {
    F32(Vec<f32>),
    I32(Vec<i32>),
    U32(Vec<u32>),
}

impl BufferData {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            BufferData::F32(v) => v.len(),
            BufferData::I32(v) => v.len(),
            BufferData::U32(v) => v.len(),
        }
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len() * self.elem_bytes()
    }

    /// Bytes per element of this buffer's scalar type. Every current
    /// variant is 4 bytes wide, but transfer planning must ask the buffer
    /// rather than hardcode the width (see `runtime`'s `transfer_bytes`).
    pub fn elem_bytes(&self) -> usize {
        match self {
            BufferData::F32(_) => std::mem::size_of::<f32>(),
            BufferData::I32(_) => std::mem::size_of::<i32>(),
            BufferData::U32(_) => std::mem::size_of::<u32>(),
        }
    }

    /// Element scalar type.
    pub fn elem_type(&self) -> ScalarType {
        match self {
            BufferData::F32(_) => ScalarType::Float,
            BufferData::I32(_) => ScalarType::Int,
            BufferData::U32(_) => ScalarType::UInt,
        }
    }

    /// View as `f32` slice if this is a float buffer.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            BufferData::F32(v) => Some(v),
            _ => None,
        }
    }

    /// View as `i32` slice if this is an int buffer.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            BufferData::I32(v) => Some(v),
            _ => None,
        }
    }

    /// View as `u32` slice if this is a uint buffer.
    pub fn as_u32(&self) -> Option<&[u32]> {
        match self {
            BufferData::U32(v) => Some(v),
            _ => None,
        }
    }

    /// Allocate a zero-filled buffer of the same type/length as `self`.
    pub fn zeros_like(&self) -> BufferData {
        match self {
            BufferData::F32(v) => BufferData::F32(vec![0.0; v.len()]),
            BufferData::I32(v) => BufferData::I32(vec![0; v.len()]),
            BufferData::U32(v) => BufferData::U32(vec![0; v.len()]),
        }
    }
}

/// A kernel argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    Int(i32),
    UInt(u32),
    Float(f32),
    /// Index into the buffer slice passed to the run call.
    Buffer(usize),
}

/// Per-run execution counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Executions of each basic block.
    pub block_counts: Vec<u64>,
    /// Work-items executed.
    pub items: u64,
}

impl Counters {
    /// Fresh counters for `f`.
    pub fn new(f: &Function) -> Self {
        Self {
            block_counts: vec![0; f.blocks.len()],
            items: 0,
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        assert_eq!(self.block_counts.len(), other.block_counts.len());
        for (a, b) in self.block_counts.iter_mut().zip(&other.block_counts) {
            *a += b;
        }
        self.items += other.items;
    }
}

/// Exact dynamic operation counts derived from block counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DynamicCounts {
    /// Dynamic executions per [`OpClass`].
    pub per_class: [u64; N_OP_CLASSES],
    /// Elements loaded per kernel parameter.
    pub buf_reads: Vec<u64>,
    /// Elements stored per kernel parameter.
    pub buf_writes: Vec<u64>,
    /// Work-items covered by these counts.
    pub items: u64,
}

impl DynamicCounts {
    /// Total ALU operations (int + float + transcendental).
    pub fn alu_ops(&self) -> u64 {
        self.per_class[OpClass::IntOp as usize]
            + self.per_class[OpClass::FloatOp as usize]
            + self.per_class[OpClass::Transcendental as usize]
    }

    /// Total dynamic instructions of every class.
    pub fn total_ops(&self) -> u64 {
        self.per_class.iter().sum()
    }

    /// Total bytes moved by loads and stores (4-byte elements).
    pub fn mem_bytes(&self) -> u64 {
        4 * (self.per_class[OpClass::Load as usize] + self.per_class[OpClass::Store as usize])
    }

    /// Scale all counts by `factor` (used to extrapolate sampled runs).
    pub fn scaled(&self, factor: f64) -> DynamicCounts {
        let s = |v: u64| (v as f64 * factor).round() as u64;
        DynamicCounts {
            per_class: self.per_class.map(s),
            buf_reads: self.buf_reads.iter().map(|&v| s(v)).collect(),
            buf_writes: self.buf_writes.iter().map(|&v| s(v)).collect(),
            items: s(self.items),
        }
    }
}

/// Aggregate block counters into dynamic operation counts.
pub fn dynamic_counts(f: &Function, c: &Counters) -> DynamicCounts {
    let n_params = f.params.len();
    let mut out = DynamicCounts {
        per_class: [0; N_OP_CLASSES],
        buf_reads: vec![0; n_params],
        buf_writes: vec![0; n_params],
        items: c.items,
    };
    for (block, &count) in f.blocks.iter().zip(&c.block_counts) {
        if count == 0 {
            continue;
        }
        for (cls, &n) in block.histo.classes.iter().enumerate() {
            out.per_class[cls] += count * u64::from(n);
        }
        for (p, &n) in block.histo.buf_reads.iter().enumerate() {
            out.buf_reads[p] += count * u64::from(n);
        }
        for (p, &n) in block.histo.buf_writes.iter().enumerate() {
            out.buf_writes[p] += count * u64::from(n);
        }
    }
    out
}

/// Default per-work-item instruction budget.
pub const DEFAULT_STEP_LIMIT: u64 = 200_000_000;

/// Runs of at most this many work-items stay on the scalar engine: the
/// lane engine's register-file broadcast costs more than interpreting a
/// couple of items outright. Both engines produce identical results, so
/// the cutoff is purely a performance choice.
const SCALAR_CUTOFF_ITEMS: usize = 8;

/// Numerically stable online mean/variance (Welford's algorithm).
///
/// The naive `sum_sq/n - mean²` form catastrophically cancels for large
/// per-item op counts (both terms can exceed 1e18 while their difference
/// is tiny); Welford keeps full precision at any magnitude.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`/n`, matching the divergence convention).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Coefficient of variation: `stddev / mean`, 0 for a non-positive
    /// mean.
    pub fn cv(&self) -> f64 {
        if self.mean > 0.0 {
            self.population_variance().sqrt() / self.mean
        } else {
            0.0
        }
    }
}

/// The virtual machine. Reusable across runs; holds only register state.
#[derive(Debug, Clone)]
pub struct Vm {
    pub(crate) iregs: Vec<i64>,
    pub(crate) fregs: Vec<f64>,
    /// Maximum instructions one work-item may execute (runaway-loop guard).
    pub step_limit: u64,
    /// How the lane engine handles divergent branches. Defaults from the
    /// environment (`INSPIRE_NO_RECONVERGE=1` selects the scalar-replay
    /// fallback); both modes are bit-identical to the scalar engine.
    pub divergence_mode: DivergenceMode,
    /// Per-parameter bounds-check elision mask for the current launch:
    /// bit `p` set means the interval analysis proved **every** access to
    /// buffer parameter `p` in bounds, so loads/stores on it skip the
    /// per-access check. Recomputed at every run entry by
    /// [`crate::analysis::bounds`]; 0 disables elision entirely.
    pub(crate) bounds_elide: u64,
    /// Explicit override of the `INSPIRE_BOUNDS_ELIDE` environment knob
    /// (`Some(false)` forces the checked paths, `Some(true)` forces the
    /// analysis on). Tests and benches use this to A/B without races on
    /// the process environment.
    bounds_elide_override: Option<bool>,
}

impl Default for Vm {
    fn default() -> Self {
        Self::new()
    }
}

/// Environment default for bounds-check elision: on unless
/// `INSPIRE_BOUNDS_ELIDE=0`. Read per run entry (not cached) so tests
/// can toggle it; the [`Vm::set_bounds_elide`] override avoids the env
/// entirely.
fn bounds_elide_env() -> bool {
    match std::env::var_os("INSPIRE_BOUNDS_ELIDE") {
        Some(v) => v != "0",
        None => true,
    }
}

impl Vm {
    /// Create a VM with the default step limit and the divergence mode
    /// selected by the environment.
    pub fn new() -> Self {
        Self {
            iregs: Vec::new(),
            fregs: Vec::new(),
            step_limit: DEFAULT_STEP_LIMIT,
            divergence_mode: DivergenceMode::from_env(),
            bounds_elide: 0,
            bounds_elide_override: None,
        }
    }

    /// Force bounds-check elision on or off for this VM regardless of the
    /// `INSPIRE_BOUNDS_ELIDE` environment variable (`None` restores the
    /// environment default). `INSPIRE_BOUNDS_ELIDE=0` — or
    /// `Some(false)` here — makes every access take the checked path,
    /// bit-identical to a build without the analysis.
    pub fn set_bounds_elide(&mut self, v: Option<bool>) {
        self.bounds_elide_override = v;
    }

    /// Recompute the per-parameter elision mask for one launch. Called by
    /// every run entry after argument validation.
    fn prepare_bounds(
        &mut self,
        f: &Function,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &[BufferData],
    ) {
        let on = self.bounds_elide_override.unwrap_or_else(bounds_elide_env);
        self.bounds_elide = if on {
            crate::analysis::bounds::elide_mask(f, nd, args, bufs)
        } else {
            0
        };
    }

    /// Is buffer parameter `p` proven in bounds for the current launch?
    #[inline(always)]
    pub(crate) fn elided(&self, p: u16) -> bool {
        p < 64 && self.bounds_elide & (1u64 << p) != 0
    }

    /// Validate `args` against the kernel signature and buffer types.
    pub fn check_args(f: &Function, args: &[ArgValue], bufs: &[BufferData]) -> Result<(), VmError> {
        if args.len() != f.params.len() {
            return Err(VmError::ArgumentMismatch(format!(
                "kernel `{}` expects {} arguments, got {}",
                f.name,
                f.params.len(),
                args.len()
            )));
        }
        for (i, (p, a)) in f.params.iter().zip(args).enumerate() {
            match (p.kind, a) {
                (ParamKind::Scalar(ScalarType::Int), ArgValue::Int(_))
                | (ParamKind::Scalar(ScalarType::UInt), ArgValue::UInt(_))
                | (ParamKind::Scalar(ScalarType::Float), ArgValue::Float(_)) => {}
                (ParamKind::Buffer { elem, .. }, ArgValue::Buffer(b)) => {
                    let Some(buf) = bufs.get(*b) else {
                        return Err(VmError::ArgumentMismatch(format!(
                            "argument {i}: buffer index {b} out of range"
                        )));
                    };
                    if buf.elem_type() != elem {
                        return Err(VmError::ArgumentMismatch(format!(
                            "argument {i}: buffer element type {} does not match parameter type {}",
                            buf.elem_type().name(),
                            elem.name()
                        )));
                    }
                }
                _ => {
                    return Err(VmError::ArgumentMismatch(format!(
                        "argument {i} does not match the kernel signature"
                    )))
                }
            }
        }
        Ok(())
    }

    fn bind_scalars(&mut self, f: &Function, args: &[ArgValue]) {
        self.iregs.clear();
        self.iregs.resize(f.n_iregs as usize, 0);
        self.fregs.clear();
        self.fregs.resize(f.n_fregs as usize, 0.0);
        for (p, a) in f.params.iter().zip(args) {
            match (p.kind, a) {
                (ParamKind::Scalar(ScalarType::Int), ArgValue::Int(v)) => {
                    self.iregs[p.reg as usize] = i64::from(*v)
                }
                (ParamKind::Scalar(ScalarType::UInt), ArgValue::UInt(v)) => {
                    self.iregs[p.reg as usize] = i64::from(*v)
                }
                (ParamKind::Scalar(ScalarType::Float), ArgValue::Float(v)) => {
                    self.fregs[p.reg as usize] = f64::from(*v)
                }
                _ => {}
            }
        }
    }

    /// Map buffer-parameter positions to indices into `bufs`.
    fn buffer_map(f: &Function, args: &[ArgValue]) -> Vec<usize> {
        f.params
            .iter()
            .zip(args)
            .map(|(p, a)| match (p.kind, a) {
                (ParamKind::Buffer { .. }, ArgValue::Buffer(b)) => *b,
                _ => usize::MAX,
            })
            .collect()
    }

    /// Execute every work-item whose split-dimension coordinate lies in
    /// `split_range`, in row-major order. Returns the block counters.
    ///
    /// Dispatches to the lane-batched engine; tiny runs stay scalar. Both
    /// engines are bit-identical for race-free kernels.
    pub fn run_range(
        &mut self,
        f: &Function,
        nd: &NdRange,
        split_range: Range<usize>,
        args: &[ArgValue],
        bufs: &mut [BufferData],
    ) -> Result<Counters, VmError> {
        if split_range.len() * nd.items_per_slice() <= SCALAR_CUTOFF_ITEMS {
            self.run_range_scalar(f, nd, split_range, args, bufs)
        } else {
            self.run_range_lanes(f, nd, split_range, args, bufs)
        }
    }

    /// [`Vm::run_range`] on the scalar reference engine: one work-item at
    /// a time, in item order.
    pub fn run_range_scalar(
        &mut self,
        f: &Function,
        nd: &NdRange,
        split_range: Range<usize>,
        args: &[ArgValue],
        bufs: &mut [BufferData],
    ) -> Result<Counters, VmError> {
        Self::check_args(f, args, bufs)?;
        assert!(
            split_range.end <= nd.split_extent(),
            "split range {split_range:?} exceeds NDRange extent {}",
            nd.split_extent()
        );
        let mut counters = Counters::new(f);
        let bmap = Self::buffer_map(f, args);
        self.bind_scalars(f, args);
        self.prepare_bounds(f, nd, args, bufs);
        let gsize = [nd.dim(0), nd.dim(1), nd.dim(2)];
        let inner: usize = nd.items_per_slice();
        let split_dim = nd.split_dim();
        let total = split_range.len() * inner;
        for li in 0..total {
            let gid = gid_at(li, split_range.start, inner, split_dim, gsize);
            self.exec_item(f, gid, gsize, &bmap, bufs, &mut counters)?;
        }
        Ok(counters)
    }

    /// [`Vm::run_range`] on the lane-batched engine: batches of up to
    /// [`LANES`] consecutive work-items execute each instruction in
    /// lockstep (see [`crate::vm_batch`]).
    pub fn run_range_lanes(
        &mut self,
        f: &Function,
        nd: &NdRange,
        split_range: Range<usize>,
        args: &[ArgValue],
        bufs: &mut [BufferData],
    ) -> Result<Counters, VmError> {
        Self::check_args(f, args, bufs)?;
        assert!(
            split_range.end <= nd.split_extent(),
            "split range {split_range:?} exceeds NDRange extent {}",
            nd.split_extent()
        );
        let mut counters = Counters::new(f);
        let bmap = Self::buffer_map(f, args);
        self.bind_scalars(f, args);
        self.prepare_bounds(f, nd, args, bufs);
        let gsize = [nd.dim(0), nd.dim(1), nd.dim(2)];
        let inner: usize = nd.items_per_slice();
        let split_dim = nd.split_dim();
        let total = split_range.len() * inner;
        let mut engine = LaneEngine::new(f, self);
        let mut gids = [[0usize; 3]; LANES];
        let mut done = 0usize;
        while done < total {
            let n = LANES.min(total - done);
            for (k, gid) in gids[..n].iter_mut().enumerate() {
                *gid = gid_at(done + k, split_range.start, inner, split_dim, gsize);
            }
            counters.items += n as u64;
            engine.exec_batch(
                self,
                f,
                &gids[..n],
                gsize,
                &bmap,
                bufs,
                CountSink::Aggregate(&mut counters),
            )?;
            done += n;
        }
        Ok(counters)
    }

    /// Execute a deterministic stratified sample of at most `max_items`
    /// work-items from the given split range, returning the counters (for
    /// extrapolation) and the per-item total-op statistics used to estimate
    /// control-flow divergence.
    ///
    /// The sampled items *do* write to `bufs`; pass scratch copies when the
    /// results must not be observed.
    pub fn run_sampled(
        &mut self,
        f: &Function,
        nd: &NdRange,
        split_range: Range<usize>,
        args: &[ArgValue],
        bufs: &mut [BufferData],
        max_items: usize,
    ) -> Result<SampleResult, VmError> {
        let chunk_items = split_range.len() * nd.items_per_slice();
        if chunk_items.min(max_items.max(1)) <= SCALAR_CUTOFF_ITEMS {
            self.run_sampled_scalar(f, nd, split_range, args, bufs, max_items)
        } else {
            self.run_sampled_lanes(f, nd, split_range, args, bufs, max_items)
        }
    }

    /// [`Vm::run_sampled`] on the scalar reference engine.
    pub fn run_sampled_scalar(
        &mut self,
        f: &Function,
        nd: &NdRange,
        split_range: Range<usize>,
        args: &[ArgValue],
        bufs: &mut [BufferData],
        max_items: usize,
    ) -> Result<SampleResult, VmError> {
        Self::check_args(f, args, bufs)?;
        let mut counters = Counters::new(f);
        let bmap = Self::buffer_map(f, args);
        self.bind_scalars(f, args);
        self.prepare_bounds(f, nd, args, bufs);
        let gsize = [nd.dim(0), nd.dim(1), nd.dim(2)];
        let inner = nd.items_per_slice();
        let split_dim = nd.split_dim();
        let chunk_items = split_range.len() * inner;
        let n = chunk_items.min(max_items.max(1));
        let mut stats = OnlineStats::default();
        // Evenly spaced global linear indices over the chunk.
        for j in 0..n {
            let li = sample_index(j, n, chunk_items);
            let gid = gid_at(li, split_range.start, inner, split_dim, gsize);
            let steps = self.exec_item(f, gid, gsize, &bmap, bufs, &mut counters)?;
            stats.push(steps as f64);
        }
        Ok(SampleResult {
            counters,
            sampled_items: n as u64,
            total_items: chunk_items as u64,
            mean_ops_per_item: stats.mean(),
            ops_cv: stats.cv(),
        })
    }

    /// [`Vm::run_sampled`] on the lane-batched engine.
    pub fn run_sampled_lanes(
        &mut self,
        f: &Function,
        nd: &NdRange,
        split_range: Range<usize>,
        args: &[ArgValue],
        bufs: &mut [BufferData],
        max_items: usize,
    ) -> Result<SampleResult, VmError> {
        Self::check_args(f, args, bufs)?;
        let mut counters = Counters::new(f);
        let bmap = Self::buffer_map(f, args);
        self.bind_scalars(f, args);
        self.prepare_bounds(f, nd, args, bufs);
        let gsize = [nd.dim(0), nd.dim(1), nd.dim(2)];
        let inner = nd.items_per_slice();
        let split_dim = nd.split_dim();
        let chunk_items = split_range.len() * inner;
        let n = chunk_items.min(max_items.max(1));
        let mut engine = LaneEngine::new(f, self);
        let mut gids = [[0usize; 3]; LANES];
        let mut stats = OnlineStats::default();
        let mut done = 0usize;
        while done < n {
            let bn = LANES.min(n - done);
            for (k, gid) in gids[..bn].iter_mut().enumerate() {
                let li = sample_index(done + k, n, chunk_items);
                *gid = gid_at(li, split_range.start, inner, split_dim, gsize);
            }
            counters.items += bn as u64;
            engine.exec_batch(
                self,
                f,
                &gids[..bn],
                gsize,
                &bmap,
                bufs,
                CountSink::Aggregate(&mut counters),
            )?;
            for &steps in &engine.lane_steps()[..bn] {
                stats.push(steps as f64);
            }
            done += bn;
        }
        Ok(SampleResult {
            counters,
            sampled_items: n as u64,
            total_items: chunk_items as u64,
            mean_ops_per_item: stats.mean(),
            ops_cv: stats.cv(),
        })
    }

    /// Execute an explicit list of work-items (lane-batched), returning
    /// one [`Counters`] per item. This is the launch-profiler's entry
    /// point: it turns hundreds of single-item probe executions into a
    /// handful of lockstep batches.
    ///
    /// Each returned counter set covers exactly one work-item
    /// (`items == 1`), bit-identical to running that item alone on the
    /// scalar engine.
    pub fn run_items(
        &mut self,
        f: &Function,
        nd: &NdRange,
        gids: &[[usize; 3]],
        args: &[ArgValue],
        bufs: &mut [BufferData],
    ) -> Result<Vec<Counters>, VmError> {
        Self::check_args(f, args, bufs)?;
        let gsize = [nd.dim(0), nd.dim(1), nd.dim(2)];
        for g in gids {
            assert!(
                g.iter().zip(gsize).all(|(&c, s)| c < s),
                "work-item {g:?} outside NDRange {gsize:?}"
            );
        }
        let bmap = Self::buffer_map(f, args);
        self.bind_scalars(f, args);
        self.prepare_bounds(f, nd, args, bufs);
        let mut engine = LaneEngine::new(f, self);
        let mut per_item: Vec<Counters> = gids.iter().map(|_| Counters::new(f)).collect();
        for (batch, counters) in gids.chunks(LANES).zip(per_item.chunks_mut(LANES)) {
            for c in counters.iter_mut() {
                c.items = 1;
            }
            engine.exec_batch(
                self,
                f,
                batch,
                gsize,
                &bmap,
                bufs,
                CountSink::PerLane(counters),
            )?;
        }
        Ok(per_item)
    }

    /// Scalar reference for [`Vm::run_items`].
    pub fn run_items_scalar(
        &mut self,
        f: &Function,
        nd: &NdRange,
        gids: &[[usize; 3]],
        args: &[ArgValue],
        bufs: &mut [BufferData],
    ) -> Result<Vec<Counters>, VmError> {
        Self::check_args(f, args, bufs)?;
        let gsize = [nd.dim(0), nd.dim(1), nd.dim(2)];
        let bmap = Self::buffer_map(f, args);
        self.bind_scalars(f, args);
        self.prepare_bounds(f, nd, args, bufs);
        gids.iter()
            .map(|&gid| {
                let mut c = Counters::new(f);
                self.exec_item(f, gid, gsize, &bmap, bufs, &mut c)?;
                Ok(c)
            })
            .collect()
    }

    /// Execute one work-item from block 0, returning its step count.
    fn exec_item(
        &mut self,
        f: &Function,
        gid: [usize; 3],
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
        counters: &mut Counters,
    ) -> Result<u64, VmError> {
        counters.items += 1;
        let mut steps: u64 = 0;
        self.exec_from(f, 0, gid, gsize, bmap, bufs, counters, &mut steps)?;
        Ok(steps)
    }

    /// Run the scalar engine from `block` until `Ret` with the current
    /// register state, accumulating into `steps` against the step limit.
    /// The lane engine's divergent-branch replay continues items here.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_from(
        &mut self,
        f: &Function,
        mut block: usize,
        gid: [usize; 3],
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
        counters: &mut Counters,
        steps: &mut u64,
    ) -> Result<(), VmError> {
        if let Some(dec) = &f.decoded {
            return self.exec_from_decoded(dec, block, gid, gsize, bmap, bufs, counters, steps);
        }
        loop {
            counters.block_counts[block] += 1;
            let b = &f.blocks[block];
            *steps += b.step_cost();
            if *steps > self.step_limit {
                return Err(VmError::StepLimitExceeded {
                    limit: self.step_limit,
                });
            }
            for ins in &b.instrs {
                self.exec_instr(ins, gid, gsize, bmap, bufs)?;
            }
            match b.term {
                Terminator::Jump(t) => block = t as usize,
                Terminator::Branch { cond, then, els } => {
                    block = if self.iregs[cond as usize] != 0 {
                        then as usize
                    } else {
                        els as usize
                    };
                }
                Terminator::BranchCmp {
                    op,
                    float,
                    a,
                    b,
                    then,
                    els,
                } => {
                    let taken = if float {
                        cmp(op, &self.fregs[a as usize], &self.fregs[b as usize])
                    } else {
                        cmp(op, &self.iregs[a as usize], &self.iregs[b as usize])
                    };
                    block = if taken { then as usize } else { els as usize };
                }
                Terminator::Ret => return Ok(()),
            }
        }
    }

    /// [`Vm::exec_from`] over the pre-decoded op array: same block loop,
    /// counters, step accounting, and terminator evaluation, but the
    /// instruction walk steps a PC over one contiguous slice with a flat
    /// one-level dispatch per op.
    #[allow(clippy::too_many_arguments)]
    fn exec_from_decoded(
        &mut self,
        dec: &DecodedProgram,
        mut block: usize,
        gid: [usize; 3],
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
        counters: &mut Counters,
        steps: &mut u64,
    ) -> Result<(), VmError> {
        loop {
            counters.block_counts[block] += 1;
            *steps += dec.costs[block];
            if *steps > self.step_limit {
                return Err(VmError::StepLimitExceeded {
                    limit: self.step_limit,
                });
            }
            let (s, e) = dec.spans[block];
            for op in &dec.ops[s as usize..e as usize] {
                self.exec_dec_op(op, gid, gsize, bmap, bufs)?;
            }
            match dec.terms[block] {
                Terminator::Jump(t) => block = t as usize,
                Terminator::Branch { cond, then, els } => {
                    block = if self.iregs[cond as usize] != 0 {
                        then as usize
                    } else {
                        els as usize
                    };
                }
                Terminator::BranchCmp {
                    op,
                    float,
                    a,
                    b,
                    then,
                    els,
                } => {
                    let taken = if float {
                        cmp(op, &self.fregs[a as usize], &self.fregs[b as usize])
                    } else {
                        cmp(op, &self.iregs[a as usize], &self.iregs[b as usize])
                    };
                    block = if taken { then as usize } else { els as usize };
                }
                Terminator::Ret => return Ok(()),
            }
        }
    }

    /// Execute one decoded op, bit-identically to [`Vm::exec_instr`] on
    /// the corresponding [`Instr`] (integer arms mirror [`int_bin`]).
    #[inline]
    fn exec_dec_op(
        &mut self,
        op: &DecOp,
        gid: [usize; 3],
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        let d = op.dst as usize;
        let a = op.a as usize;
        let b = op.b as usize;
        match op.code {
            OpCode::ConstI => self.iregs[d] = op.imm,
            OpCode::ConstF => self.fregs[d] = op.fimm,
            OpCode::MovI => self.iregs[d] = self.iregs[a],
            OpCode::MovF => self.fregs[d] = self.fregs[a],
            OpCode::IAdd => {
                self.iregs[d] = wrap32(self.iregs[a].wrapping_add(self.iregs[b]), op.unsigned);
            }
            OpCode::ISub => {
                self.iregs[d] = wrap32(self.iregs[a].wrapping_sub(self.iregs[b]), op.unsigned);
            }
            OpCode::IMul => {
                self.iregs[d] = wrap32(self.iregs[a].wrapping_mul(self.iregs[b]), op.unsigned);
            }
            OpCode::IDiv => {
                self.iregs[d] = int_bin(IBinOp::Div, self.iregs[a], self.iregs[b], op.unsigned)?;
            }
            OpCode::IRem => {
                self.iregs[d] = int_bin(IBinOp::Rem, self.iregs[a], self.iregs[b], op.unsigned)?;
            }
            OpCode::IAnd => self.iregs[d] = wrap32(self.iregs[a] & self.iregs[b], op.unsigned),
            OpCode::IOr => self.iregs[d] = wrap32(self.iregs[a] | self.iregs[b], op.unsigned),
            OpCode::IXor => self.iregs[d] = wrap32(self.iregs[a] ^ self.iregs[b], op.unsigned),
            OpCode::IShl => {
                let s = (self.iregs[b] & 31) as u32;
                self.iregs[d] = wrap32(self.iregs[a].wrapping_shl(s), op.unsigned);
            }
            OpCode::IShr => {
                let s = (self.iregs[b] & 31) as u32;
                let x = self.iregs[a];
                let r = if op.unsigned {
                    ((x as u64) >> s) as i64
                } else {
                    (x as i32 >> s) as i64
                };
                self.iregs[d] = wrap32(r, op.unsigned);
            }
            OpCode::ImmAdd => {
                self.iregs[d] = wrap32(self.iregs[a].wrapping_add(op.imm), op.unsigned);
            }
            OpCode::ImmSub => {
                self.iregs[d] = wrap32(self.iregs[a].wrapping_sub(op.imm), op.unsigned);
            }
            OpCode::ImmMul => {
                self.iregs[d] = wrap32(self.iregs[a].wrapping_mul(op.imm), op.unsigned);
            }
            OpCode::ImmDiv => {
                self.iregs[d] = int_bin(IBinOp::Div, self.iregs[a], op.imm, op.unsigned)?;
            }
            OpCode::ImmRem => {
                self.iregs[d] = int_bin(IBinOp::Rem, self.iregs[a], op.imm, op.unsigned)?;
            }
            OpCode::ImmAnd => self.iregs[d] = wrap32(self.iregs[a] & op.imm, op.unsigned),
            OpCode::ImmOr => self.iregs[d] = wrap32(self.iregs[a] | op.imm, op.unsigned),
            OpCode::ImmXor => self.iregs[d] = wrap32(self.iregs[a] ^ op.imm, op.unsigned),
            OpCode::ImmShl => {
                let s = (op.imm & 31) as u32;
                self.iregs[d] = wrap32(self.iregs[a].wrapping_shl(s), op.unsigned);
            }
            OpCode::ImmShr => {
                let s = (op.imm & 31) as u32;
                let x = self.iregs[a];
                let r = if op.unsigned {
                    ((x as u64) >> s) as i64
                } else {
                    (x as i32 >> s) as i64
                };
                self.iregs[d] = wrap32(r, op.unsigned);
            }
            OpCode::FAdd => self.fregs[d] = self.fregs[a] + self.fregs[b],
            OpCode::FSub => self.fregs[d] = self.fregs[a] - self.fregs[b],
            OpCode::FMul => self.fregs[d] = self.fregs[a] * self.fregs[b],
            OpCode::FDiv => self.fregs[d] = self.fregs[a] / self.fregs[b],
            OpCode::ICmpLt => self.iregs[d] = i64::from(self.iregs[a] < self.iregs[b]),
            OpCode::ICmpLe => self.iregs[d] = i64::from(self.iregs[a] <= self.iregs[b]),
            OpCode::ICmpGt => self.iregs[d] = i64::from(self.iregs[a] > self.iregs[b]),
            OpCode::ICmpGe => self.iregs[d] = i64::from(self.iregs[a] >= self.iregs[b]),
            OpCode::ICmpEq => self.iregs[d] = i64::from(self.iregs[a] == self.iregs[b]),
            OpCode::ICmpNe => self.iregs[d] = i64::from(self.iregs[a] != self.iregs[b]),
            OpCode::FCmpLt => self.iregs[d] = i64::from(self.fregs[a] < self.fregs[b]),
            OpCode::FCmpLe => self.iregs[d] = i64::from(self.fregs[a] <= self.fregs[b]),
            OpCode::FCmpGt => self.iregs[d] = i64::from(self.fregs[a] > self.fregs[b]),
            OpCode::FCmpGe => self.iregs[d] = i64::from(self.fregs[a] >= self.fregs[b]),
            OpCode::FCmpEq => self.iregs[d] = i64::from(self.fregs[a] == self.fregs[b]),
            OpCode::FCmpNe => self.iregs[d] = i64::from(self.fregs[a] != self.fregs[b]),
            OpCode::NegI => {
                self.iregs[d] = wrap32(0i64.wrapping_sub(self.iregs[a]), op.unsigned);
            }
            OpCode::NegF => self.fregs[d] = -self.fregs[a],
            OpCode::NotI => self.iregs[d] = i64::from(self.iregs[a] == 0),
            OpCode::BitNotI => self.iregs[d] = wrap32(!self.iregs[a], op.unsigned),
            OpCode::CastIF => self.fregs[d] = self.iregs[a] as f64,
            OpCode::CastFI => {
                let v = self.fregs[a];
                self.iregs[d] = if op.unsigned {
                    i64::from(v as u32)
                } else {
                    i64::from(v as i32)
                };
            }
            OpCode::CastII => self.iregs[d] = wrap32(self.iregs[a], op.unsigned),
            OpCode::Sqrt => self.fregs[d] = self.fregs[a].sqrt(),
            OpCode::Rsqrt => self.fregs[d] = 1.0 / self.fregs[a].sqrt(),
            OpCode::Exp => self.fregs[d] = self.fregs[a].exp(),
            OpCode::Log => self.fregs[d] = self.fregs[a].ln(),
            OpCode::Sin => self.fregs[d] = self.fregs[a].sin(),
            OpCode::Cos => self.fregs[d] = self.fregs[a].cos(),
            OpCode::Tan => self.fregs[d] = self.fregs[a].tan(),
            OpCode::Fabs => self.fregs[d] = self.fregs[a].abs(),
            OpCode::Floor => self.fregs[d] = self.fregs[a].floor(),
            OpCode::Ceil => self.fregs[d] = self.fregs[a].ceil(),
            OpCode::Pow => self.fregs[d] = self.fregs[a].powf(self.fregs[b]),
            OpCode::Fmin => self.fregs[d] = self.fregs[a].min(self.fregs[b]),
            OpCode::Fmax => self.fregs[d] = self.fregs[a].max(self.fregs[b]),
            OpCode::Fmod => self.fregs[d] = self.fregs[a] % self.fregs[b],
            OpCode::IMin => self.iregs[d] = self.iregs[a].min(self.iregs[b]),
            OpCode::IMax => self.iregs[d] = self.iregs[a].max(self.iregs[b]),
            OpCode::IAbs => self.iregs[d] = wrap32(self.iregs[a].wrapping_abs(), false),
            OpCode::LoadF => self.dec_load_f(op.dst, op.a, op.b, bmap, bufs)?,
            OpCode::LoadI => {
                let i = self.iregs[a];
                let bd = &bufs[bmap[b]];
                if self.elided(op.b) {
                    debug_assert!((0..bd.len() as i64).contains(&i), "elision proof violated");
                    // SAFETY: see `dec_load_f`.
                    self.iregs[d] = unsafe {
                        match bd {
                            BufferData::I32(v) => i64::from(*v.get_unchecked(i as usize)),
                            BufferData::U32(v) => i64::from(*v.get_unchecked(i as usize)),
                            BufferData::F32(_) => unreachable!("type-checked load"),
                        }
                    };
                } else {
                    let val = match bd {
                        BufferData::I32(v) => usize::try_from(i)
                            .ok()
                            .and_then(|i| v.get(i))
                            .map(|&x| i64::from(x)),
                        BufferData::U32(v) => usize::try_from(i)
                            .ok()
                            .and_then(|i| v.get(i))
                            .map(|&x| i64::from(x)),
                        BufferData::F32(_) => unreachable!("type-checked load"),
                    };
                    let Some(val) = val else {
                        return Err(VmError::OutOfBounds {
                            buffer: b,
                            index: i,
                            len: bd.len(),
                        });
                    };
                    self.iregs[d] = val;
                }
            }
            OpCode::StoreF => self.dec_store_f(op.dst, op.a, op.b, bmap, bufs)?,
            OpCode::StoreI => {
                let i = self.iregs[a];
                let val = self.iregs[d];
                let bd = &mut bufs[bmap[b]];
                let len = bd.len();
                if self.elided(op.b) {
                    debug_assert!((0..len as i64).contains(&i), "elision proof violated");
                    // SAFETY: see `dec_load_f`.
                    unsafe {
                        match bd {
                            BufferData::I32(v) => *v.get_unchecked_mut(i as usize) = val as i32,
                            BufferData::U32(v) => *v.get_unchecked_mut(i as usize) = val as u32,
                            BufferData::F32(_) => unreachable!("type-checked store"),
                        }
                    }
                } else {
                    match bd {
                        BufferData::I32(v) => {
                            let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i))
                            else {
                                return Err(VmError::OutOfBounds {
                                    buffer: b,
                                    index: i,
                                    len,
                                });
                            };
                            *slot = val as i32;
                        }
                        BufferData::U32(v) => {
                            let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i))
                            else {
                                return Err(VmError::OutOfBounds {
                                    buffer: b,
                                    index: i,
                                    len,
                                });
                            };
                            *slot = val as u32;
                        }
                        BufferData::F32(_) => unreachable!("type-checked store"),
                    }
                }
            }
            OpCode::GlobalId => self.iregs[d] = gid[a] as i64,
            OpCode::GlobalSize => self.iregs[d] = gsize[a] as i64,
            // Fused superinstructions: on the scalar engine the two
            // halves simply execute in sequence, so aliasing and fault
            // order are trivially those of the unfused pair.
            OpCode::FOp2 => {
                self.fregs[op.c as usize] = f_eval(op.sub1, self.fregs[a], self.fregs[b], op.fimm);
                self.fregs[d] = f_eval(
                    op.sub2,
                    self.fregs[op.d as usize],
                    self.fregs[op.e as usize],
                    op.fimm,
                );
            }
            OpCode::IOp2 => {
                self.iregs[op.c as usize] = i_eval(op.sub1, self.iregs[a], self.iregs[b]);
                self.iregs[d] = i_eval(
                    op.sub2,
                    self.iregs[op.d as usize],
                    self.iregs[op.e as usize],
                );
            }
            OpCode::Load2F => {
                self.dec_load_f(op.c, op.a, op.b, bmap, bufs)?;
                self.dec_load_f(op.dst, op.d, op.e, bmap, bufs)?;
            }
            OpCode::LoadFOp => {
                self.dec_load_f(op.c, op.a, op.b, bmap, bufs)?;
                self.fregs[d] = f_eval(
                    op.sub2,
                    self.fregs[op.d as usize],
                    self.fregs[op.e as usize],
                    op.fimm,
                );
            }
            OpCode::FOpStore => {
                self.fregs[d] = f_eval(op.sub1, self.fregs[a], self.fregs[b], op.fimm);
                self.dec_store_f(op.dst, op.c, op.d, bmap, bufs)?;
            }
        }
        Ok(())
    }

    /// The `LoadF` semantics shared by the plain and fused decoded arms:
    /// load `buf[iregs[idx]]` into `fregs[dst]` with the interpreter's
    /// exact bounds fault.
    #[inline]
    fn dec_load_f(
        &mut self,
        dst: u16,
        idx: u16,
        buf: u16,
        bmap: &[usize],
        bufs: &[BufferData],
    ) -> Result<(), VmError> {
        let i = self.iregs[idx as usize];
        let bd = &bufs[bmap[buf as usize]];
        let BufferData::F32(v) = bd else {
            unreachable!("type-checked load");
        };
        if self.elided(buf) {
            debug_assert!((0..v.len() as i64).contains(&i), "elision proof violated");
            // SAFETY: the elision bit is set only when the launch-seeded
            // interval analysis proved every access on this parameter
            // lies in `[0, len)`.
            self.fregs[dst as usize] = f64::from(unsafe { *v.get_unchecked(i as usize) });
            return Ok(());
        }
        let Some(val) = usize::try_from(i).ok().and_then(|i| v.get(i)) else {
            return Err(VmError::OutOfBounds {
                buffer: buf as usize,
                index: i,
                len: v.len(),
            });
        };
        self.fregs[dst as usize] = f64::from(*val);
        Ok(())
    }

    /// The `StoreF` semantics shared by the plain and fused decoded arms.
    #[inline]
    fn dec_store_f(
        &mut self,
        src: u16,
        idx: u16,
        buf: u16,
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        let i = self.iregs[idx as usize];
        let val = self.fregs[src as usize] as f32;
        let bd = &mut bufs[bmap[buf as usize]];
        let len = bd.len();
        let BufferData::F32(v) = bd else {
            unreachable!("type-checked store");
        };
        if self.elided(buf) {
            debug_assert!((0..len as i64).contains(&i), "elision proof violated");
            // SAFETY: see `dec_load_f`.
            unsafe { *v.get_unchecked_mut(i as usize) = val };
            return Ok(());
        }
        let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i)) else {
            return Err(VmError::OutOfBounds {
                buffer: buf as usize,
                index: i,
                len,
            });
        };
        *slot = val;
        Ok(())
    }

    #[inline]
    fn exec_instr(
        &mut self,
        ins: &Instr,
        gid: [usize; 3],
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        use Instr::*;
        match *ins {
            ConstI { dst, v } => self.iregs[dst as usize] = v,
            ConstF { dst, v } => self.fregs[dst as usize] = v,
            MovI { dst, src } => self.iregs[dst as usize] = self.iregs[src as usize],
            MovF { dst, src } => self.fregs[dst as usize] = self.fregs[src as usize],
            IBin {
                op,
                dst,
                a,
                b,
                unsigned,
            } => {
                let x = self.iregs[a as usize];
                let y = self.iregs[b as usize];
                self.iregs[dst as usize] = int_bin(op, x, y, unsigned)?;
            }
            IBinImm {
                op,
                dst,
                a,
                imm,
                unsigned,
            } => {
                let x = self.iregs[a as usize];
                self.iregs[dst as usize] = int_bin(op, x, imm, unsigned)?;
            }
            FBin { op, dst, a, b } => {
                let x = self.fregs[a as usize];
                let y = self.fregs[b as usize];
                self.fregs[dst as usize] = match op {
                    FBinOp::Add => x + y,
                    FBinOp::Sub => x - y,
                    FBinOp::Mul => x * y,
                    FBinOp::Div => x / y,
                };
            }
            CmpI { op, dst, a, b } => {
                let x = self.iregs[a as usize];
                let y = self.iregs[b as usize];
                self.iregs[dst as usize] = i64::from(cmp(op, &x, &y));
            }
            CmpF { op, dst, a, b } => {
                let x = self.fregs[a as usize];
                let y = self.fregs[b as usize];
                let r = match op {
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                };
                self.iregs[dst as usize] = i64::from(r);
            }
            NegI { dst, a, unsigned } => {
                let v = self.iregs[a as usize];
                self.iregs[dst as usize] = wrap32(0i64.wrapping_sub(v), unsigned);
            }
            NegF { dst, a } => self.fregs[dst as usize] = -self.fregs[a as usize],
            NotI { dst, a } => self.iregs[dst as usize] = i64::from(self.iregs[a as usize] == 0),
            BitNotI { dst, a, unsigned } => {
                self.iregs[dst as usize] = wrap32(!self.iregs[a as usize], unsigned);
            }
            CastIF { dst, a } => self.fregs[dst as usize] = self.iregs[a as usize] as f64,
            CastFI { dst, a, unsigned } => {
                let v = self.fregs[a as usize];
                self.iregs[dst as usize] = if unsigned {
                    i64::from(v as u32)
                } else {
                    i64::from(v as i32)
                };
            }
            CastII {
                dst,
                a,
                to_unsigned,
            } => {
                self.iregs[dst as usize] = wrap32(self.iregs[a as usize], to_unsigned);
            }
            Math1 { f, dst, a } => {
                let x = self.fregs[a as usize];
                self.fregs[dst as usize] = match f {
                    MathFn1::Sqrt => x.sqrt(),
                    MathFn1::Rsqrt => 1.0 / x.sqrt(),
                    MathFn1::Exp => x.exp(),
                    MathFn1::Log => x.ln(),
                    MathFn1::Sin => x.sin(),
                    MathFn1::Cos => x.cos(),
                    MathFn1::Tan => x.tan(),
                    MathFn1::Fabs => x.abs(),
                    MathFn1::Floor => x.floor(),
                    MathFn1::Ceil => x.ceil(),
                };
            }
            Math2 { f, dst, a, b } => {
                let x = self.fregs[a as usize];
                let y = self.fregs[b as usize];
                self.fregs[dst as usize] = match f {
                    MathFn2::Pow => x.powf(y),
                    MathFn2::Fmin => x.min(y),
                    MathFn2::Fmax => x.max(y),
                    MathFn2::Fmod => x % y,
                };
            }
            IMin { dst, a, b } => {
                self.iregs[dst as usize] = self.iregs[a as usize].min(self.iregs[b as usize])
            }
            IMax { dst, a, b } => {
                self.iregs[dst as usize] = self.iregs[a as usize].max(self.iregs[b as usize])
            }
            IAbs { dst, a } => {
                self.iregs[dst as usize] = wrap32(self.iregs[a as usize].wrapping_abs(), false)
            }
            LoadF { dst, buf, idx } => {
                let i = self.iregs[idx as usize];
                let b = &bufs[bmap[buf as usize]];
                let BufferData::F32(v) = b else {
                    unreachable!("type-checked load");
                };
                if self.elided(buf) {
                    debug_assert!((0..v.len() as i64).contains(&i), "elision proof violated");
                    // SAFETY: bit `buf` of `bounds_elide` is set only when
                    // the launch-seeded interval analysis proved every
                    // access on this parameter lies in `[0, len)`.
                    self.fregs[dst as usize] = f64::from(unsafe { *v.get_unchecked(i as usize) });
                } else {
                    let Some(val) = usize::try_from(i).ok().and_then(|i| v.get(i)) else {
                        return Err(VmError::OutOfBounds {
                            buffer: buf as usize,
                            index: i,
                            len: v.len(),
                        });
                    };
                    self.fregs[dst as usize] = f64::from(*val);
                }
            }
            LoadI { dst, buf, idx } => {
                let i = self.iregs[idx as usize];
                let b = &bufs[bmap[buf as usize]];
                if self.elided(buf) {
                    debug_assert!((0..b.len() as i64).contains(&i), "elision proof violated");
                    // SAFETY: see `LoadF` — the elision bit is a proof
                    // that `i` is in `[0, len)`.
                    self.iregs[dst as usize] = unsafe {
                        match b {
                            BufferData::I32(v) => i64::from(*v.get_unchecked(i as usize)),
                            BufferData::U32(v) => i64::from(*v.get_unchecked(i as usize)),
                            BufferData::F32(_) => unreachable!("type-checked load"),
                        }
                    };
                } else {
                    let val = match b {
                        BufferData::I32(v) => usize::try_from(i)
                            .ok()
                            .and_then(|i| v.get(i))
                            .map(|&x| i64::from(x)),
                        BufferData::U32(v) => usize::try_from(i)
                            .ok()
                            .and_then(|i| v.get(i))
                            .map(|&x| i64::from(x)),
                        BufferData::F32(_) => unreachable!("type-checked load"),
                    };
                    let Some(val) = val else {
                        return Err(VmError::OutOfBounds {
                            buffer: buf as usize,
                            index: i,
                            len: b.len(),
                        });
                    };
                    self.iregs[dst as usize] = val;
                }
            }
            StoreF { buf, idx, src } => {
                let i = self.iregs[idx as usize];
                let val = self.fregs[src as usize] as f32;
                let b = &mut bufs[bmap[buf as usize]];
                let len = b.len();
                let BufferData::F32(v) = b else {
                    unreachable!("type-checked store");
                };
                if self.elided(buf) {
                    debug_assert!((0..len as i64).contains(&i), "elision proof violated");
                    // SAFETY: see `LoadF`.
                    unsafe { *v.get_unchecked_mut(i as usize) = val };
                } else {
                    let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i)) else {
                        return Err(VmError::OutOfBounds {
                            buffer: buf as usize,
                            index: i,
                            len,
                        });
                    };
                    *slot = val;
                }
            }
            StoreI { buf, idx, src } => {
                let i = self.iregs[idx as usize];
                let val = self.iregs[src as usize];
                let b = &mut bufs[bmap[buf as usize]];
                let len = b.len();
                if self.elided(buf) {
                    debug_assert!((0..len as i64).contains(&i), "elision proof violated");
                    // SAFETY: see `LoadF`.
                    unsafe {
                        match b {
                            BufferData::I32(v) => *v.get_unchecked_mut(i as usize) = val as i32,
                            BufferData::U32(v) => *v.get_unchecked_mut(i as usize) = val as u32,
                            BufferData::F32(_) => unreachable!("type-checked store"),
                        }
                    }
                } else {
                    match b {
                        BufferData::I32(v) => {
                            let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i))
                            else {
                                return Err(VmError::OutOfBounds {
                                    buffer: buf as usize,
                                    index: i,
                                    len,
                                });
                            };
                            *slot = val as i32;
                        }
                        BufferData::U32(v) => {
                            let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i))
                            else {
                                return Err(VmError::OutOfBounds {
                                    buffer: buf as usize,
                                    index: i,
                                    len,
                                });
                            };
                            *slot = val as u32;
                        }
                        BufferData::F32(_) => unreachable!("type-checked store"),
                    }
                }
            }
            GlobalId { dst, dim } => self.iregs[dst as usize] = gid[dim as usize] as i64,
            GlobalSize { dst, dim } => self.iregs[dst as usize] = gsize[dim as usize] as i64,
        }
        Ok(())
    }
}

/// Global id of the `li`-th work-item (row-major) of a chunk starting at
/// `split_start` in the split dimension.
#[inline]
fn gid_at(
    li: usize,
    split_start: usize,
    inner: usize,
    split_dim: usize,
    gsize: [usize; 3],
) -> [usize; 3] {
    let mut gid = [0usize; 3];
    gid[split_dim] = split_start + li / inner;
    // Decompose the inner linear index over the non-split dims.
    let mut rem = li % inner;
    for d in 0..split_dim {
        gid[d] = rem % gsize[d];
        rem /= gsize[d];
    }
    gid
}

/// Chunk-linear index of the `j`-th of `n` evenly spaced samples over
/// `chunk_items` work-items.
#[inline]
fn sample_index(j: usize, n: usize, chunk_items: usize) -> usize {
    if n == chunk_items {
        j
    } else {
        (j as u128 * chunk_items as u128 / n as u128) as usize
    }
}

/// Result of a sampled execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleResult {
    /// Block counters accumulated over the sampled items.
    pub counters: Counters,
    /// Items actually executed.
    pub sampled_items: u64,
    /// Items in the full chunk the sample represents.
    pub total_items: u64,
    /// Mean dynamic instructions per sampled item.
    pub mean_ops_per_item: f64,
    /// Coefficient of variation of per-item instruction counts — the
    /// dynamic divergence estimate (0 for uniform control flow).
    pub ops_cv: f64,
}

impl SampleResult {
    /// Extrapolate the sampled counters to the full chunk.
    pub fn extrapolated(&self, f: &Function) -> DynamicCounts {
        let d = dynamic_counts(f, &self.counters);
        if self.sampled_items == 0 {
            return d;
        }
        d.scaled(self.total_items as f64 / self.sampled_items as f64)
    }
}

pub(crate) fn cmp<T: PartialOrd>(op: CmpOp, x: &T, y: &T) -> bool {
    match op {
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
    }
}

/// Canonicalize a 64-bit value to 32-bit semantics (sign- or zero-extend).
#[inline]
pub(crate) fn wrap32(v: i64, unsigned: bool) -> i64 {
    if unsigned {
        i64::from(v as u32)
    } else {
        i64::from(v as i32)
    }
}

pub(crate) fn int_bin(op: IBinOp, x: i64, y: i64, unsigned: bool) -> Result<i64, VmError> {
    let r = match op {
        IBinOp::Add => x.wrapping_add(y),
        IBinOp::Sub => x.wrapping_sub(y),
        IBinOp::Mul => x.wrapping_mul(y),
        IBinOp::Div => {
            if y == 0 {
                return Err(VmError::DivisionByZero);
            }
            // Values are canonical 32-bit; i64 division cannot overflow
            // except i32::MIN / -1, which wraps like C on x86 would trap —
            // we define it to wrap.
            x.wrapping_div(y)
        }
        IBinOp::Rem => {
            if y == 0 {
                return Err(VmError::DivisionByZero);
            }
            x.wrapping_rem(y)
        }
        IBinOp::And => x & y,
        IBinOp::Or => x | y,
        IBinOp::Xor => x ^ y,
        IBinOp::Shl => {
            // OpenCL defines shifts modulo the bit width.
            let s = (y & 31) as u32;
            x.wrapping_shl(s)
        }
        IBinOp::Shr => {
            let s = (y & 31) as u32;
            if unsigned {
                // Value is zero-extended (non-negative): logical shift.
                ((x as u64) >> s) as i64
            } else {
                (x as i32 >> s) as i64
            }
        }
    };
    Ok(wrap32(r, unsigned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn run1d(src: &str, n: usize, args: Vec<ArgValue>, bufs: &mut [BufferData]) -> Counters {
        let k = compile(src).unwrap();
        let mut vm = Vm::new();
        vm.run_range(&k.bytecode, &NdRange::d1(n), 0..n, &args, bufs)
            .unwrap()
    }

    #[test]
    fn vec_add_computes() {
        let src = "kernel void k(global const float* a, global const float* b,
                                 global float* c, int n) {
            int i = get_global_id(0);
            if (i < n) { c[i] = a[i] + b[i]; }
        }";
        let mut bufs = vec![
            BufferData::F32(vec![1.0, 2.0, 3.0]),
            BufferData::F32(vec![0.5, 0.25, 0.125]),
            BufferData::F32(vec![0.0; 3]),
        ];
        run1d(
            src,
            3,
            vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Buffer(2),
                ArgValue::Int(3),
            ],
            &mut bufs,
        );
        assert_eq!(bufs[2].as_f32().unwrap(), &[1.5, 2.25, 3.125]);
    }

    #[test]
    fn loop_sum_matches_reference() {
        let src = "kernel void k(global const float* a, global float* o, int n) {
            int i = get_global_id(0);
            float s = 0.0;
            for (int j = 0; j <= i; j++) { s += a[j]; }
            o[i] = s;
        }";
        let a: Vec<f32> = (0..8).map(|v| v as f32).collect();
        let mut bufs = vec![BufferData::F32(a.clone()), BufferData::F32(vec![0.0; 8])];
        run1d(
            src,
            8,
            vec![ArgValue::Buffer(0), ArgValue::Buffer(1), ArgValue::Int(8)],
            &mut bufs,
        );
        let out = bufs[1].as_f32().unwrap();
        let mut acc = 0.0f32;
        for (i, &o) in out.iter().enumerate() {
            acc += a[i];
            assert_eq!(o, acc, "prefix sum at {i}");
        }
    }

    #[test]
    fn two_dimensional_ids() {
        let src = "kernel void k(global float* o, int w) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            o[y * w + x] = (float)(y * w + x);
        }";
        let k = compile(src).unwrap();
        let mut bufs = vec![BufferData::F32(vec![0.0; 12])];
        let mut vm = Vm::new();
        vm.run_range(
            &k.bytecode,
            &NdRange::d2(4, 3),
            0..3,
            &[ArgValue::Buffer(0), ArgValue::Int(4)],
            &mut bufs,
        )
        .unwrap();
        let out = bufs[0].as_f32().unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }

    #[test]
    fn chunked_execution_only_touches_chunk_rows() {
        let src = "kernel void k(global float* o, int w) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            o[y * w + x] = 1.0;
        }";
        let k = compile(src).unwrap();
        let mut bufs = vec![BufferData::F32(vec![0.0; 12])];
        let mut vm = Vm::new();
        vm.run_range(
            &k.bytecode,
            &NdRange::d2(4, 3),
            1..2,
            &[ArgValue::Buffer(0), ArgValue::Int(4)],
            &mut bufs,
        )
        .unwrap();
        let out = bufs[0].as_f32().unwrap();
        assert_eq!(&out[0..4], &[0.0; 4]);
        assert_eq!(&out[4..8], &[1.0; 4]);
        assert_eq!(&out[8..12], &[0.0; 4]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let src = "kernel void k(global float* o, int n) {
            int i = get_global_id(0);
            o[i + n] = 1.0;
        }";
        let k = compile(src).unwrap();
        let mut bufs = vec![BufferData::F32(vec![0.0; 4])];
        let mut vm = Vm::new();
        let err = vm
            .run_range(
                &k.bytecode,
                &NdRange::d1(4),
                0..4,
                &[ArgValue::Buffer(0), ArgValue::Int(4)],
                &mut bufs,
            )
            .unwrap_err();
        assert!(matches!(err, VmError::OutOfBounds { .. }));
    }

    #[test]
    fn negative_index_is_out_of_bounds() {
        let src = "kernel void k(global float* o) {
            int i = get_global_id(0);
            o[i - 10] = 1.0;
        }";
        let k = compile(src).unwrap();
        let mut bufs = vec![BufferData::F32(vec![0.0; 16])];
        let mut vm = Vm::new();
        let err = vm
            .run_range(
                &k.bytecode,
                &NdRange::d1(1),
                0..1,
                &[ArgValue::Buffer(0)],
                &mut bufs,
            )
            .unwrap_err();
        assert!(matches!(err, VmError::OutOfBounds { index: -10, .. }));
    }

    #[test]
    fn division_by_zero_detected() {
        let src = "kernel void k(global int* o, int n) {
            int i = get_global_id(0);
            o[i] = 10 / n;
        }";
        let k = compile(src).unwrap();
        let mut bufs = vec![BufferData::I32(vec![0; 1])];
        let mut vm = Vm::new();
        let err = vm
            .run_range(
                &k.bytecode,
                &NdRange::d1(1),
                0..1,
                &[ArgValue::Buffer(0), ArgValue::Int(0)],
                &mut bufs,
            )
            .unwrap_err();
        assert_eq!(err, VmError::DivisionByZero);
    }

    #[test]
    fn step_limit_stops_runaway_loop() {
        let src = "kernel void k(global int* o, int n) {
            int i = 0;
            while (n < 1) { i = i + 1; }
            o[0] = i;
        }";
        let k = compile(src).unwrap();
        let mut bufs = vec![BufferData::I32(vec![0; 1])];
        let mut vm = Vm::new();
        vm.step_limit = 10_000;
        let err = vm
            .run_range(
                &k.bytecode,
                &NdRange::d1(1),
                0..1,
                &[ArgValue::Buffer(0), ArgValue::Int(0)],
                &mut bufs,
            )
            .unwrap_err();
        assert!(matches!(err, VmError::StepLimitExceeded { .. }));
    }

    #[test]
    fn uint_arithmetic_wraps_like_opencl() {
        let src = "kernel void k(global uint* o, uint seed) {
            uint x = seed;
            x = x ^ (x << 13);
            x = x ^ (x >> 17);
            x = x ^ (x << 5);
            o[0] = x;
        }";
        let k = compile(src).unwrap();
        let mut bufs = vec![BufferData::U32(vec![0; 1])];
        let mut vm = Vm::new();
        vm.run_range(
            &k.bytecode,
            &NdRange::d1(1),
            0..1,
            &[ArgValue::Buffer(0), ArgValue::UInt(2463534242)],
            &mut bufs,
        )
        .unwrap();
        // Reference xorshift32 step in Rust.
        let mut x: u32 = 2463534242;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        assert_eq!(bufs[0].as_u32().unwrap()[0], x);
    }

    #[test]
    fn signed_shift_right_is_arithmetic() {
        let src = "kernel void k(global int* o, int v) { o[0] = v >> 1; }";
        let k = compile(src).unwrap();
        let mut bufs = vec![BufferData::I32(vec![0; 1])];
        let mut vm = Vm::new();
        vm.run_range(
            &k.bytecode,
            &NdRange::d1(1),
            0..1,
            &[ArgValue::Buffer(0), ArgValue::Int(-8)],
            &mut bufs,
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32().unwrap()[0], -4);
    }

    #[test]
    fn int_overflow_wraps_to_32_bits() {
        let src = "kernel void k(global int* o, int v) { o[0] = v * v; }";
        let k = compile(src).unwrap();
        let mut bufs = vec![BufferData::I32(vec![0; 1])];
        let mut vm = Vm::new();
        vm.run_range(
            &k.bytecode,
            &NdRange::d1(1),
            0..1,
            &[ArgValue::Buffer(0), ArgValue::Int(100_000)],
            &mut bufs,
        )
        .unwrap();
        assert_eq!(
            bufs[0].as_i32().unwrap()[0],
            100_000i32.wrapping_mul(100_000)
        );
    }

    #[test]
    fn dynamic_counts_scale_with_range() {
        let src = "kernel void k(global const float* a, global float* o, int n) {
            int i = get_global_id(0);
            o[i] = a[i] * 2.0;
        }";
        let k = compile(src).unwrap();
        let mk = || {
            vec![
                BufferData::F32(vec![1.0; 64]),
                BufferData::F32(vec![0.0; 64]),
            ]
        };
        let args = vec![ArgValue::Buffer(0), ArgValue::Buffer(1), ArgValue::Int(64)];
        let mut vm = Vm::new();
        let mut b1 = mk();
        let c16 = vm
            .run_range(&k.bytecode, &NdRange::d1(64), 0..16, &args, &mut b1)
            .unwrap();
        let mut b2 = mk();
        let c64 = vm
            .run_range(&k.bytecode, &NdRange::d1(64), 0..64, &args, &mut b2)
            .unwrap();
        let d16 = dynamic_counts(&k.bytecode, &c16);
        let d64 = dynamic_counts(&k.bytecode, &c64);
        assert_eq!(d16.items, 16);
        assert_eq!(d64.items, 64);
        assert_eq!(d64.per_class[OpClass::Load as usize], 64);
        assert_eq!(d16.per_class[OpClass::Load as usize], 16);
        assert_eq!(d64.buf_reads[0], 64);
        assert_eq!(d64.buf_writes[1], 64);
        assert_eq!(d64.alu_ops(), d16.alu_ops() * 4);
    }

    #[test]
    fn sampled_execution_extrapolates_uniform_kernel_exactly() {
        let src = "kernel void k(global const float* a, global float* o, int n) {
            int i = get_global_id(0);
            o[i] = a[i] + 1.0;
        }";
        let k = compile(src).unwrap();
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Int(1024),
        ];
        let mut vm = Vm::new();
        let mut scratch = vec![
            BufferData::F32(vec![0.0; 1024]),
            BufferData::F32(vec![0.0; 1024]),
        ];
        let s = vm
            .run_sampled(
                &k.bytecode,
                &NdRange::d1(1024),
                0..1024,
                &args,
                &mut scratch,
                32,
            )
            .unwrap();
        assert_eq!(s.sampled_items, 32);
        assert_eq!(s.total_items, 1024);
        assert!(s.ops_cv < 1e-9, "uniform kernel must have zero divergence");
        let d = s.extrapolated(&k.bytecode);
        assert_eq!(d.per_class[OpClass::Load as usize], 1024);
        assert_eq!(d.per_class[OpClass::Store as usize], 1024);
    }

    #[test]
    fn sampled_execution_detects_divergence() {
        let src = "kernel void k(global float* o, int n) {
            int i = get_global_id(0);
            float s = 0.0;
            for (int j = 0; j < i % 64; j++) { s += (float)j; }
            o[i] = s;
        }";
        let k = compile(src).unwrap();
        let args = vec![ArgValue::Buffer(0), ArgValue::Int(256)];
        let mut vm = Vm::new();
        let mut scratch = vec![BufferData::F32(vec![0.0; 256])];
        let s = vm
            .run_sampled(
                &k.bytecode,
                &NdRange::d1(256),
                0..256,
                &args,
                &mut scratch,
                64,
            )
            .unwrap();
        assert!(
            s.ops_cv > 0.2,
            "variable-trip-count kernel must show divergence, cv={}",
            s.ops_cv
        );
    }

    #[test]
    fn check_args_rejects_bad_shapes() {
        let src = "kernel void k(global const float* a, int n) { }";
        let k = compile(src).unwrap();
        let bufs = vec![BufferData::I32(vec![0; 4])];
        // Wrong count.
        assert!(Vm::check_args(&k.bytecode, &[ArgValue::Int(1)], &bufs).is_err());
        // Wrong buffer element type.
        assert!(
            Vm::check_args(&k.bytecode, &[ArgValue::Buffer(0), ArgValue::Int(1)], &bufs).is_err()
        );
        // Scalar/buffer mixup.
        assert!(
            Vm::check_args(&k.bytecode, &[ArgValue::Int(0), ArgValue::Buffer(0)], &bufs).is_err()
        );
        // Buffer index out of range.
        assert!(
            Vm::check_args(&k.bytecode, &[ArgValue::Buffer(7), ArgValue::Int(1)], &bufs).is_err()
        );
    }

    #[test]
    fn counters_merge_accumulates() {
        let src = "kernel void k(global float* o) { o[get_global_id(0)] = 1.0; }";
        let k = compile(src).unwrap();
        let mut vm = Vm::new();
        let mut b1 = vec![BufferData::F32(vec![0.0; 8])];
        let mut c1 = vm
            .run_range(
                &k.bytecode,
                &NdRange::d1(8),
                0..4,
                &[ArgValue::Buffer(0)],
                &mut b1,
            )
            .unwrap();
        let c2 = vm
            .run_range(
                &k.bytecode,
                &NdRange::d1(8),
                4..8,
                &[ArgValue::Buffer(0)],
                &mut b1,
            )
            .unwrap();
        c1.merge(&c2);
        assert_eq!(c1.items, 8);
        assert_eq!(
            dynamic_counts(&k.bytecode, &c1).per_class[OpClass::Store as usize],
            8
        );
    }

    #[test]
    fn select_evaluates_only_taken_arm() {
        // The untaken arm would be out of bounds; short-circuit Select must
        // not evaluate it.
        let src = "kernel void k(global const float* a, global float* o, int n) {
            int i = get_global_id(0);
            o[i] = i < n ? a[i] : a[i + 1000000];
        }";
        let k = compile(src).unwrap();
        let mut bufs = vec![BufferData::F32(vec![7.0; 4]), BufferData::F32(vec![0.0; 4])];
        let mut vm = Vm::new();
        vm.run_range(
            &k.bytecode,
            &NdRange::d1(4),
            0..4,
            &[ArgValue::Buffer(0), ArgValue::Buffer(1), ArgValue::Int(4)],
            &mut bufs,
        )
        .unwrap();
        assert_eq!(bufs[1].as_f32().unwrap(), &[7.0; 4]);
    }

    #[test]
    fn lane_engine_matches_scalar_on_divergent_kernel() {
        // Variable trip counts force divergent replay; an odd size forces
        // a partial tail batch. Buffers and counters must agree exactly.
        let src = "kernel void k(global const float* a, global float* o, int n) {
            int i = get_global_id(0);
            float s = a[i % n];
            for (int j = 0; j < i % 13; j++) { s = s * 1.5 + (float)j; }
            if (i % 3 == 0) { s = -s; }
            o[i] = s;
        }";
        let k = compile(src).unwrap();
        let n = 197usize; // not divisible by LANES
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Int(n as i32),
        ];
        let mk = || {
            vec![
                BufferData::F32((0..n).map(|i| i as f32 * 0.25).collect()),
                BufferData::F32(vec![0.0; n]),
            ]
        };
        let mut vm = Vm::new();
        let mut b_scalar = mk();
        let c_scalar = vm
            .run_range_scalar(&k.bytecode, &NdRange::d1(n), 0..n, &args, &mut b_scalar)
            .unwrap();
        let mut b_lanes = mk();
        let c_lanes = vm
            .run_range_lanes(&k.bytecode, &NdRange::d1(n), 0..n, &args, &mut b_lanes)
            .unwrap();
        assert_eq!(b_scalar, b_lanes);
        assert_eq!(c_scalar, c_lanes);
    }

    #[test]
    fn lane_engine_sampled_statistics_match_scalar() {
        let src = "kernel void k(global float* o, int n) {
            int i = get_global_id(0);
            float s = 0.0;
            for (int j = 0; j < i % 64; j++) { s += (float)j; }
            o[i] = s;
        }";
        let k = compile(src).unwrap();
        let n = 500usize;
        let args = vec![ArgValue::Buffer(0), ArgValue::Int(n as i32)];
        let mut vm = Vm::new();
        let mut b1 = vec![BufferData::F32(vec![0.0; n])];
        let s_scalar = vm
            .run_sampled_scalar(&k.bytecode, &NdRange::d1(n), 0..n, &args, &mut b1, 77)
            .unwrap();
        let mut b2 = vec![BufferData::F32(vec![0.0; n])];
        let s_lanes = vm
            .run_sampled_lanes(&k.bytecode, &NdRange::d1(n), 0..n, &args, &mut b2, 77)
            .unwrap();
        assert_eq!(b1, b2);
        assert_eq!(s_scalar.counters, s_lanes.counters);
        assert_eq!(
            s_scalar.mean_ops_per_item.to_bits(),
            s_lanes.mean_ops_per_item.to_bits()
        );
        assert_eq!(s_scalar.ops_cv.to_bits(), s_lanes.ops_cv.to_bits());
    }

    #[test]
    fn run_items_per_item_counters_match_scalar() {
        let src = "kernel void k(global const float* a, global float* o, int n) {
            int i = get_global_id(0);
            float s = 0.0;
            for (int j = 0; j <= i % 7; j++) { s += a[(i + j) % n]; }
            o[i] = s;
        }";
        let k = compile(src).unwrap();
        let n = 300usize;
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Int(n as i32),
        ];
        let gids: Vec<[usize; 3]> = (0..n).step_by(3).map(|i| [i, 0, 0]).collect();
        let mk = || vec![BufferData::F32(vec![1.0; n]), BufferData::F32(vec![0.0; n])];
        let mut vm = Vm::new();
        let mut b1 = mk();
        let per_scalar = vm
            .run_items_scalar(&k.bytecode, &NdRange::d1(n), &gids, &args, &mut b1)
            .unwrap();
        let mut b2 = mk();
        let per_lanes = vm
            .run_items(&k.bytecode, &NdRange::d1(n), &gids, &args, &mut b2)
            .unwrap();
        assert_eq!(b1, b2);
        assert_eq!(per_scalar, per_lanes);
        for c in &per_lanes {
            assert_eq!(c.items, 1);
        }
    }

    #[test]
    fn online_stats_is_stable_for_huge_op_counts() {
        // The naive sum_sq/n - mean² form loses all precision here: the
        // values are ~1e9 with a spread of 1, so sum_sq ~ 1e18.
        let mut s = OnlineStats::default();
        for i in 0..1000u64 {
            s.push(1.0e9 + (i % 2) as f64);
        }
        assert_eq!(s.count(), 1000);
        assert!((s.mean() - 1.0e9 - 0.5).abs() < 1e-6);
        assert!((s.population_variance() - 0.25).abs() < 1e-9);
        assert!(s.cv() > 0.0);
        let mut c = OnlineStats::default();
        for _ in 0..10 {
            c.push(42.0);
        }
        assert_eq!(c.population_variance(), 0.0);
        assert_eq!(c.cv(), 0.0);
    }

    #[test]
    fn logical_and_short_circuits() {
        let src = "kernel void k(global const float* a, global float* o, int n) {
            int i = get_global_id(0);
            if (i < n && a[i] > 0.0) { o[i] = 1.0; } else { o[i] = 0.0; }
        }";
        let k = compile(src).unwrap();
        // a has only n=2 valid entries but the range is 4: i<n guards a[i].
        let mut bufs = vec![
            BufferData::F32(vec![1.0, -1.0]),
            BufferData::F32(vec![9.0; 4]),
        ];
        let mut vm = Vm::new();
        vm.run_range(
            &k.bytecode,
            &NdRange::d1(4),
            0..4,
            &[ArgValue::Buffer(0), ArgValue::Buffer(1), ArgValue::Int(2)],
            &mut bufs,
        )
        .unwrap();
        assert_eq!(bufs[1].as_f32().unwrap(), &[1.0, 0.0, 0.0, 0.0]);
    }
}
