//! Builtin functions of the kernel language.
//!
//! The language has no user-defined functions; every call resolves to one
//! of these intrinsics. `get_global_id` / `get_global_size` are handled
//! directly by semantic analysis (they become dedicated IR nodes) and do
//! not appear here.

use crate::ir::ScalarType;

/// A resolved builtin call target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    // Float unary.
    Sqrt,
    Rsqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Tan,
    Fabs,
    Floor,
    Ceil,
    // Float binary.
    Pow,
    Fmin,
    Fmax,
    Fmod,
    // Integer intrinsics (operate on `Int`/`UInt`, compare per `unsigned`).
    IMin,
    IMax,
    IAbs,
    // Ternary clamp.
    FClamp,
    IClamp,
}

impl Builtin {
    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        use Builtin::*;
        match self {
            Sqrt | Rsqrt | Exp | Log | Sin | Cos | Tan | Fabs | Floor | Ceil | IAbs => 1,
            Pow | Fmin | Fmax | Fmod | IMin | IMax => 2,
            FClamp | IClamp => 3,
        }
    }

    /// Whether this builtin is a transcendental / special function (the
    /// feature extractor and the device cost model weight these separately,
    /// since GPUs have dedicated SFUs for them).
    pub fn is_transcendental(self) -> bool {
        use Builtin::*;
        matches!(self, Sqrt | Rsqrt | Exp | Log | Sin | Cos | Tan | Pow)
    }

    /// Result/operand scalar type class: true if float-typed.
    pub fn is_float(self) -> bool {
        use Builtin::*;
        !matches!(self, IMin | IMax | IAbs | IClamp)
    }

    /// Human-readable name (as written in source).
    pub fn name(self) -> &'static str {
        use Builtin::*;
        match self {
            Sqrt => "sqrt",
            Rsqrt => "rsqrt",
            Exp => "exp",
            Log => "log",
            Sin => "sin",
            Cos => "cos",
            Tan => "tan",
            Fabs => "fabs",
            Floor => "floor",
            Ceil => "ceil",
            Pow => "pow",
            Fmin => "fmin",
            Fmax => "fmax",
            Fmod => "fmod",
            IMin => "min",
            IMax => "max",
            IAbs => "abs",
            FClamp => "clamp",
            IClamp => "clamp",
        }
    }
}

/// Resolve a call by name and argument types.
///
/// Polymorphic names (`min`, `max`, `abs`, `clamp`) resolve on whether any
/// argument is float; `fmin`/`fmax`/`fabs` force the float form. Returns
/// `None` for unknown names.
pub fn resolve(name: &str, arg_types: &[ScalarType]) -> Option<Builtin> {
    use Builtin::*;
    let any_float = arg_types.contains(&ScalarType::Float);
    let b = match name {
        "sqrt" => Sqrt,
        "rsqrt" | "native_rsqrt" => Rsqrt,
        "exp" | "native_exp" => Exp,
        "log" | "native_log" => Log,
        "sin" | "native_sin" => Sin,
        "cos" | "native_cos" => Cos,
        "tan" => Tan,
        "fabs" => Fabs,
        "floor" => Floor,
        "ceil" => Ceil,
        "pow" | "powr" => Pow,
        "fmin" => Fmin,
        "fmax" => Fmax,
        "fmod" => Fmod,
        "min" => {
            if any_float {
                Fmin
            } else {
                IMin
            }
        }
        "max" => {
            if any_float {
                Fmax
            } else {
                IMax
            }
        }
        "abs" => {
            if any_float {
                Fabs
            } else {
                IAbs
            }
        }
        "clamp" => {
            if any_float {
                FClamp
            } else {
                IClamp
            }
        }
        _ => return None,
    };
    Some(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScalarType::*;

    #[test]
    fn resolves_fixed_names() {
        assert_eq!(resolve("sqrt", &[Float]), Some(Builtin::Sqrt));
        assert_eq!(resolve("pow", &[Float, Float]), Some(Builtin::Pow));
        assert_eq!(resolve("nope", &[Float]), None);
    }

    #[test]
    fn resolves_polymorphic_names_by_arg_type() {
        assert_eq!(resolve("min", &[Int, Int]), Some(Builtin::IMin));
        assert_eq!(resolve("min", &[Float, Int]), Some(Builtin::Fmin));
        assert_eq!(resolve("abs", &[Int]), Some(Builtin::IAbs));
        assert_eq!(resolve("abs", &[Float]), Some(Builtin::Fabs));
        assert_eq!(resolve("clamp", &[Int, Int, Int]), Some(Builtin::IClamp));
        assert_eq!(
            resolve("clamp", &[Float, Float, Float]),
            Some(Builtin::FClamp)
        );
    }

    #[test]
    fn arity_matches_shape() {
        assert_eq!(Builtin::Sqrt.arity(), 1);
        assert_eq!(Builtin::Pow.arity(), 2);
        assert_eq!(Builtin::FClamp.arity(), 3);
    }

    #[test]
    fn transcendental_classification() {
        assert!(Builtin::Exp.is_transcendental());
        assert!(Builtin::Sqrt.is_transcendental());
        assert!(!Builtin::Fabs.is_transcendental());
        assert!(!Builtin::IMin.is_transcendental());
    }
}
