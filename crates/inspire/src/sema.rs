//! Semantic analysis: name resolution, type checking, desugaring.
//!
//! Turns the untyped [`crate::ast`] into the typed [`crate::ir`]. All
//! implicit conversions become explicit [`ir::ExprKind::Cast`] nodes;
//! compound assignments and increments are desugared; `get_global_id` /
//! `get_global_size` become dedicated IR nodes.

use std::collections::HashMap;

use crate::ast::{
    self, AssignOp, BinOp, ExprKind as AK, ParamKind as AstParamKind, TypeName, UnOp,
};
use crate::builtins;
use crate::error::CompileError;
use crate::ir::{Expr, ExprKind, Kernel, Param, ParamId, ParamKind, ScalarType, Stmt, VarId};
use crate::token::Span;

/// Type-check one kernel declaration.
pub fn analyze(decl: &ast::KernelDecl) -> Result<Kernel, CompileError> {
    let mut ctx = Ctx::new(decl)?;
    let body = ctx.block(&decl.body)?;
    Ok(Kernel {
        name: decl.name.clone(),
        params: ctx.params,
        body,
        var_types: ctx.var_types,
    })
}

fn scalar_of(t: TypeName) -> ScalarType {
    match t {
        TypeName::Int => ScalarType::Int,
        TypeName::UInt => ScalarType::UInt,
        TypeName::Float => ScalarType::Float,
        TypeName::Bool => ScalarType::Bool,
    }
}

#[derive(Clone, Copy)]
enum Binding {
    Var(VarId),
    Param(ParamId),
}

struct Ctx {
    params: Vec<Param>,
    param_names: HashMap<String, ParamId>,
    scopes: Vec<HashMap<String, Binding>>,
    var_types: Vec<ScalarType>,
    loop_depth: usize,
}

impl Ctx {
    fn new(decl: &ast::KernelDecl) -> Result<Self, CompileError> {
        let mut params = Vec::with_capacity(decl.params.len());
        let mut param_names = HashMap::new();
        for (i, p) in decl.params.iter().enumerate() {
            let kind = match p.kind {
                AstParamKind::Buffer { elem, is_const } => {
                    let elem = scalar_of(elem);
                    if elem == ScalarType::Bool {
                        return Err(CompileError::sema(
                            "bool buffers are not supported",
                            p.span.start,
                        ));
                    }
                    ParamKind::Buffer { elem, is_const }
                }
                AstParamKind::Scalar(t) => ParamKind::Scalar(scalar_of(t)),
            };
            if param_names
                .insert(p.name.clone(), ParamId(i as u32))
                .is_some()
            {
                return Err(CompileError::sema(
                    format!("duplicate parameter name `{}`", p.name),
                    p.span.start,
                ));
            }
            params.push(Param {
                name: p.name.clone(),
                kind,
            });
        }
        Ok(Self {
            params,
            param_names,
            scopes: vec![HashMap::new()],
            var_types: Vec::new(),
            loop_depth: 0,
        })
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(*b);
            }
        }
        self.param_names.get(name).map(|&p| Binding::Param(p))
    }

    fn declare(&mut self, name: &str, ty: ScalarType, span: Span) -> Result<VarId, CompileError> {
        let Some(scope) = self.scopes.last_mut() else {
            return Err(CompileError::sema(
                "internal error: declaration outside any scope",
                span.start,
            ));
        };
        if scope.contains_key(name) {
            return Err(CompileError::sema(
                format!("`{name}` is already declared in this scope"),
                span.start,
            ));
        }
        let id = VarId(self.var_types.len() as u32);
        self.var_types.push(ty);
        scope.insert(name.to_string(), Binding::Var(id));
        Ok(id)
    }

    fn block(&mut self, stmts: &[ast::Stmt]) -> Result<Vec<Stmt>, CompileError> {
        self.scopes.push(HashMap::new());
        let out = stmts.iter().map(|s| self.stmt(s)).collect();
        self.scopes.pop();
        out
    }

    fn stmt(&mut self, s: &ast::Stmt) -> Result<Stmt, CompileError> {
        match s {
            ast::Stmt::Decl {
                ty,
                name,
                init,
                span,
            } => {
                let ty = scalar_of(*ty);
                let init = self.expr(init)?;
                let init = self.coerce(init, ty, *span)?;
                // Declare after checking the initializer so `int x = x;`
                // cannot read the new variable.
                let var = self.declare(name, ty, *span)?;
                Ok(Stmt::Decl { var, init })
            }
            ast::Stmt::Assign {
                target,
                op,
                value,
                span,
            } => self.assign(target, *op, value, *span),
            ast::Stmt::If {
                cond, then, els, ..
            } => {
                let cond = self.condition(cond)?;
                let then = self.block(then)?;
                let els = self.block(els)?;
                Ok(Stmt::If { cond, then, els })
            }
            ast::Stmt::While { cond, body, .. } => {
                let cond = self.condition(cond)?;
                self.loop_depth += 1;
                let body = self.block(body);
                self.loop_depth -= 1;
                Ok(Stmt::While { cond, body: body? })
            }
            ast::Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                // The init declaration scopes over cond/step/body.
                self.scopes.push(HashMap::new());
                let result = (|| {
                    let init = init.as_ref().map(|s| self.stmt(s)).transpose()?;
                    let cond = cond.as_ref().map(|c| self.condition(c)).transpose()?;
                    let step = step.as_ref().map(|s| self.stmt(s)).transpose()?;
                    self.loop_depth += 1;
                    let body = self.block(body);
                    self.loop_depth -= 1;
                    Ok(Stmt::For {
                        init: init.map(Box::new),
                        cond,
                        step: step.map(Box::new),
                        body: body?,
                    })
                })();
                self.scopes.pop();
                result
            }
            ast::Stmt::Break(span) => {
                if self.loop_depth == 0 {
                    return Err(CompileError::sema("`break` outside of loop", span.start));
                }
                Ok(Stmt::Break)
            }
            ast::Stmt::Continue(span) => {
                if self.loop_depth == 0 {
                    return Err(CompileError::sema("`continue` outside of loop", span.start));
                }
                Ok(Stmt::Continue)
            }
            ast::Stmt::Return(_) => Ok(Stmt::Return),
            ast::Stmt::Block(stmts, _) => Ok(Stmt::Block(self.block(stmts)?)),
        }
    }

    fn assign(
        &mut self,
        target: &ast::Expr,
        op: AssignOp,
        value: &ast::Expr,
        span: Span,
    ) -> Result<Stmt, CompileError> {
        let rhs = self.expr(value)?;
        match &target.kind {
            AK::Ident(name) => {
                let Some(Binding::Var(var)) = self.lookup(name) else {
                    return Err(CompileError::sema(
                        format!("cannot assign to `{name}` (not a local variable)"),
                        target.span.start,
                    ));
                };
                let ty = self.var_types[var.0 as usize];
                let value = match assign_binop(op) {
                    None => self.coerce(rhs, ty, span)?,
                    Some(bop) => {
                        let cur = Expr::new(ExprKind::Var(var), ty);
                        let combined = self.binary(bop, cur, rhs, span)?;
                        self.coerce(combined, ty, span)?
                    }
                };
                Ok(Stmt::AssignVar { var, value })
            }
            AK::Index { base, index } => {
                let (buf, elem) = self.buffer_of(base)?;
                if let ParamKind::Buffer { is_const: true, .. } = self.params[buf.0 as usize].kind {
                    return Err(CompileError::sema(
                        format!(
                            "cannot store to `const` buffer `{}`",
                            self.params[buf.0 as usize].name
                        ),
                        target.span.start,
                    ));
                }
                let index = self.index_expr(index)?;
                let value = match assign_binop(op) {
                    None => self.coerce(rhs, elem, span)?,
                    Some(bop) => {
                        let cur = Expr::new(
                            ExprKind::Load {
                                buf,
                                index: Box::new(index.clone()),
                            },
                            elem,
                        );
                        let combined = self.binary(bop, cur, rhs, span)?;
                        self.coerce(combined, elem, span)?
                    }
                };
                Ok(Stmt::Store { buf, index, value })
            }
            _ => Err(CompileError::sema(
                "assignment target must be a variable or buffer element",
                target.span.start,
            )),
        }
    }

    /// Resolve an expression that must denote a buffer parameter.
    fn buffer_of(&self, e: &ast::Expr) -> Result<(ParamId, ScalarType), CompileError> {
        match &e.kind {
            AK::Ident(name) => match self.lookup(name) {
                Some(Binding::Param(p)) => match self.params[p.0 as usize].kind {
                    ParamKind::Buffer { elem, .. } => Ok((p, elem)),
                    ParamKind::Scalar(_) => Err(CompileError::sema(
                        format!("`{name}` is a scalar, not a buffer"),
                        e.span.start,
                    )),
                },
                Some(Binding::Var(_)) => Err(CompileError::sema(
                    format!("`{name}` is a local variable, not a buffer"),
                    e.span.start,
                )),
                None => Err(CompileError::sema(
                    format!("unknown name `{name}`"),
                    e.span.start,
                )),
            },
            _ => Err(CompileError::sema(
                "only kernel buffer parameters can be indexed",
                e.span.start,
            )),
        }
    }

    fn index_expr(&mut self, e: &ast::Expr) -> Result<Expr, CompileError> {
        let idx = self.expr(e)?;
        if !idx.ty.is_integer() {
            return Err(CompileError::sema(
                format!("buffer index must be an integer, found `{}`", idx.ty.name()),
                e.span.start,
            ));
        }
        // Normalize to Int so the VM has a single index form.
        Ok(self.cast_to(idx, ScalarType::Int))
    }

    fn condition(&mut self, e: &ast::Expr) -> Result<Expr, CompileError> {
        let c = self.expr(e)?;
        self.to_bool(c, e.span)
    }

    fn to_bool(&self, e: Expr, span: Span) -> Result<Expr, CompileError> {
        match e.ty {
            ScalarType::Bool => Ok(e),
            t if t.is_numeric() => {
                let zero = match t {
                    ScalarType::Float => Expr::new(ExprKind::FloatConst(0.0), t),
                    _ => Expr::new(ExprKind::IntConst(0), t),
                };
                Ok(Expr::new(
                    ExprKind::Binary {
                        op: BinOp::Ne,
                        lhs: Box::new(e),
                        rhs: Box::new(zero),
                    },
                    ScalarType::Bool,
                ))
            }
            _ => Err(CompileError::sema(
                "expected a boolean or numeric condition",
                span.start,
            )),
        }
    }

    /// Insert a cast if needed; errors if the conversion is not allowed.
    fn coerce(&self, e: Expr, to: ScalarType, span: Span) -> Result<Expr, CompileError> {
        if e.ty == to {
            return Ok(e);
        }
        let ok = (e.ty.is_numeric() && to.is_numeric())
            || (e.ty == ScalarType::Bool && to.is_numeric())
            || (e.ty.is_numeric() && to == ScalarType::Bool);
        if !ok {
            return Err(CompileError::sema(
                format!("cannot convert `{}` to `{}`", e.ty.name(), to.name()),
                span.start,
            ));
        }
        if to == ScalarType::Bool {
            return self.to_bool(e, span);
        }
        Ok(self.cast_to(e, to))
    }

    fn cast_to(&self, e: Expr, to: ScalarType) -> Expr {
        if e.ty == to {
            e
        } else {
            Expr::new(ExprKind::Cast(Box::new(e)), to)
        }
    }

    fn promote_pair(
        &self,
        a: Expr,
        b: Expr,
        span: Span,
    ) -> Result<(Expr, Expr, ScalarType), CompileError> {
        if !a.ty.is_numeric() || !b.ty.is_numeric() {
            return Err(CompileError::sema(
                format!(
                    "operands must be numeric, found `{}` and `{}`",
                    a.ty.name(),
                    b.ty.name()
                ),
                span.start,
            ));
        }
        let common = if a.ty == ScalarType::Float || b.ty == ScalarType::Float {
            ScalarType::Float
        } else if a.ty == ScalarType::UInt || b.ty == ScalarType::UInt {
            ScalarType::UInt
        } else {
            ScalarType::Int
        };
        Ok((self.cast_to(a, common), self.cast_to(b, common), common))
    }

    fn binary(
        &mut self,
        op: BinOp,
        lhs: Expr,
        rhs: Expr,
        span: Span,
    ) -> Result<Expr, CompileError> {
        use BinOp::*;
        match op {
            Add | Sub | Mul | Div => {
                let (l, r, t) = self.promote_pair(lhs, rhs, span)?;
                Ok(Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    t,
                ))
            }
            Rem | BitAnd | BitOr | BitXor => {
                let (l, r, t) = self.promote_pair(lhs, rhs, span)?;
                if !t.is_integer() {
                    return Err(CompileError::sema(
                        format!("operator requires integer operands, found `{}`", t.name()),
                        span.start,
                    ));
                }
                Ok(Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    t,
                ))
            }
            Shl | Shr => {
                if !lhs.ty.is_integer() || !rhs.ty.is_integer() {
                    return Err(CompileError::sema(
                        "shift requires integer operands",
                        span.start,
                    ));
                }
                let t = lhs.ty;
                let r = self.cast_to(rhs, ScalarType::Int);
                Ok(Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(r),
                    },
                    t,
                ))
            }
            Lt | Le | Gt | Ge => {
                let (l, r, _) = self.promote_pair(lhs, rhs, span)?;
                Ok(Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    ScalarType::Bool,
                ))
            }
            Eq | Ne => {
                if lhs.ty == ScalarType::Bool && rhs.ty == ScalarType::Bool {
                    return Ok(Expr::new(
                        ExprKind::Binary {
                            op,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                        ScalarType::Bool,
                    ));
                }
                let (l, r, _) = self.promote_pair(lhs, rhs, span)?;
                Ok(Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    ScalarType::Bool,
                ))
            }
            LogAnd | LogOr => {
                let l = self.to_bool(lhs, span)?;
                let r = self.to_bool(rhs, span)?;
                Ok(Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    ScalarType::Bool,
                ))
            }
        }
    }

    fn expr(&mut self, e: &ast::Expr) -> Result<Expr, CompileError> {
        let span = e.span;
        match &e.kind {
            AK::IntLit { value, unsigned } => {
                let ty = if *unsigned {
                    ScalarType::UInt
                } else {
                    ScalarType::Int
                };
                Ok(Expr::new(ExprKind::IntConst(*value), ty))
            }
            AK::FloatLit(v) => Ok(Expr::new(ExprKind::FloatConst(*v), ScalarType::Float)),
            AK::BoolLit(b) => Ok(Expr::new(ExprKind::BoolConst(*b), ScalarType::Bool)),
            AK::Ident(name) => match self.lookup(name) {
                Some(Binding::Var(v)) => {
                    Ok(Expr::new(ExprKind::Var(v), self.var_types[v.0 as usize]))
                }
                Some(Binding::Param(p)) => match self.params[p.0 as usize].kind {
                    ParamKind::Scalar(t) => Ok(Expr::new(ExprKind::Param(p), t)),
                    ParamKind::Buffer { .. } => Err(CompileError::sema(
                        format!("buffer `{name}` must be indexed with `[...]`"),
                        span.start,
                    )),
                },
                None => Err(CompileError::sema(
                    format!("unknown name `{name}`"),
                    span.start,
                )),
            },
            AK::Binary { op, lhs, rhs } => {
                let l = self.expr(lhs)?;
                let r = self.expr(rhs)?;
                self.binary(*op, l, r, span)
            }
            AK::Unary { op, operand } => {
                let o = self.expr(operand)?;
                match op {
                    UnOp::Neg => {
                        if !o.ty.is_numeric() {
                            return Err(CompileError::sema(
                                "unary `-` requires a numeric operand",
                                span.start,
                            ));
                        }
                        let ty = o.ty;
                        Ok(Expr::new(
                            ExprKind::Unary {
                                op: UnOp::Neg,
                                operand: Box::new(o),
                            },
                            ty,
                        ))
                    }
                    UnOp::Not => {
                        let b = self.to_bool(o, span)?;
                        Ok(Expr::new(
                            ExprKind::Unary {
                                op: UnOp::Not,
                                operand: Box::new(b),
                            },
                            ScalarType::Bool,
                        ))
                    }
                    UnOp::BitNot => {
                        if !o.ty.is_integer() {
                            return Err(CompileError::sema(
                                "`~` requires an integer operand",
                                span.start,
                            ));
                        }
                        let ty = o.ty;
                        Ok(Expr::new(
                            ExprKind::Unary {
                                op: UnOp::BitNot,
                                operand: Box::new(o),
                            },
                            ty,
                        ))
                    }
                }
            }
            AK::Cast { ty, operand } => {
                let o = self.expr(operand)?;
                self.coerce(o, scalar_of(*ty), span)
            }
            AK::Index { base, index } => {
                let (buf, elem) = self.buffer_of(base)?;
                let index = self.index_expr(index)?;
                Ok(Expr::new(
                    ExprKind::Load {
                        buf,
                        index: Box::new(index),
                    },
                    elem,
                ))
            }
            AK::Ternary { cond, then, els } => {
                let c = self.condition(cond)?;
                let t = self.expr(then)?;
                let f = self.expr(els)?;
                if t.ty == ScalarType::Bool && f.ty == ScalarType::Bool {
                    return Ok(Expr::new(
                        ExprKind::Select {
                            cond: Box::new(c),
                            then: Box::new(t),
                            els: Box::new(f),
                        },
                        ScalarType::Bool,
                    ));
                }
                let (t, f, ty) = self.promote_pair(t, f, span)?;
                Ok(Expr::new(
                    ExprKind::Select {
                        cond: Box::new(c),
                        then: Box::new(t),
                        els: Box::new(f),
                    },
                    ty,
                ))
            }
            AK::Call { name, args } => self.call(name, args, span),
        }
    }

    fn call(&mut self, name: &str, args: &[ast::Expr], span: Span) -> Result<Expr, CompileError> {
        // get_global_id / get_global_size take a literal dimension 0..=2.
        if name == "get_global_id" || name == "get_global_size" {
            if args.len() != 1 {
                return Err(CompileError::sema(
                    format!("`{name}` takes exactly one argument"),
                    span.start,
                ));
            }
            let AK::IntLit { value, .. } = args[0].kind else {
                return Err(CompileError::sema(
                    format!("`{name}` dimension must be an integer literal"),
                    args[0].span.start,
                ));
            };
            if !(0..=2).contains(&value) {
                return Err(CompileError::sema(
                    format!("`{name}` dimension must be 0, 1 or 2"),
                    args[0].span.start,
                ));
            }
            let kind = if name == "get_global_id" {
                ExprKind::GlobalId(value as u8)
            } else {
                ExprKind::GlobalSize(value as u8)
            };
            return Ok(Expr::new(kind, ScalarType::Int));
        }

        let mut checked: Vec<Expr> = args
            .iter()
            .map(|a| self.expr(a))
            .collect::<Result<_, _>>()?;
        let arg_types: Vec<ScalarType> = checked.iter().map(|a| a.ty).collect();
        let Some(b) = builtins::resolve(name, &arg_types) else {
            return Err(CompileError::sema(
                format!("unknown function `{name}` (the language has builtins only)"),
                span.start,
            ));
        };
        if checked.len() != b.arity() {
            return Err(CompileError::sema(
                format!(
                    "`{name}` takes {} argument(s), found {}",
                    b.arity(),
                    checked.len()
                ),
                span.start,
            ));
        }
        let (target, ret) = if b.is_float() {
            (ScalarType::Float, ScalarType::Float)
        } else {
            // Integer intrinsics: promote to a common integer type.
            let common = if arg_types.contains(&ScalarType::UInt) {
                ScalarType::UInt
            } else {
                ScalarType::Int
            };
            (common, common)
        };
        for a in &mut checked {
            if !a.ty.is_numeric() {
                return Err(CompileError::sema(
                    format!("`{name}` arguments must be numeric"),
                    span.start,
                ));
            }
            let taken = std::mem::replace(a, Expr::int(0));
            *a = self.coerce(taken, target, span)?;
        }
        Ok(Expr::new(
            ExprKind::Call {
                f: b,
                args: checked,
            },
            ret,
        ))
    }
}

fn assign_binop(op: AssignOp) -> Option<BinOp> {
    match op {
        AssignOp::Set => None,
        AssignOp::Add => Some(BinOp::Add),
        AssignOp::Sub => Some(BinOp::Sub),
        AssignOp::Mul => Some(BinOp::Mul),
        AssignOp::Div => Some(BinOp::Div),
        AssignOp::Rem => Some(BinOp::Rem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn sema(src: &str) -> Result<Kernel, CompileError> {
        let prog = parse(&lex(src).unwrap()).unwrap();
        analyze(&prog.kernels[0])
    }

    #[test]
    fn resolves_params_and_vars() {
        let k = sema(
            "kernel void k(global float* a, int n) { int i = get_global_id(0); a[i] = (float)n; }",
        )
        .unwrap();
        assert_eq!(k.var_types, vec![ScalarType::Int]);
        assert!(matches!(k.body[0], Stmt::Decl { var: VarId(0), .. }));
        assert!(matches!(
            k.body[1],
            Stmt::Store {
                buf: ParamId(0),
                ..
            }
        ));
    }

    #[test]
    fn inserts_implicit_casts() {
        let k = sema("kernel void k(int n) { float x = n; }").unwrap();
        let Stmt::Decl { init, .. } = &k.body[0] else {
            panic!()
        };
        assert_eq!(init.ty, ScalarType::Float);
        assert!(matches!(init.kind, ExprKind::Cast(_)));
    }

    #[test]
    fn promotes_mixed_arithmetic_to_float() {
        let k = sema("kernel void k(int n) { float x = n * 2.0; }").unwrap();
        let Stmt::Decl { init, .. } = &k.body[0] else {
            panic!()
        };
        let ExprKind::Binary { lhs, rhs, .. } = &init.kind else {
            panic!()
        };
        assert_eq!(lhs.ty, ScalarType::Float);
        assert_eq!(rhs.ty, ScalarType::Float);
    }

    #[test]
    fn rejects_store_to_const_buffer() {
        let err = sema("kernel void k(global const float* a) { a[0] = 1.0; }").unwrap_err();
        assert!(err.message.contains("const"), "{err}");
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(sema("kernel void k(int n) { int x = y; }").is_err());
        assert!(sema("kernel void k(int n) { int x = frob(n); }").is_err());
    }

    #[test]
    fn rejects_buffer_without_index() {
        assert!(sema("kernel void k(global float* a, int n) { float x = a + 1.0; }").is_err());
    }

    #[test]
    fn rejects_indexing_scalar() {
        assert!(sema("kernel void k(int n) { int x = n[0]; }").is_err());
    }

    #[test]
    fn rejects_float_index() {
        assert!(sema("kernel void k(global float* a) { a[1.5] = 0.0; }").is_err());
    }

    #[test]
    fn rejects_break_outside_loop() {
        assert!(sema("kernel void k(int n) { break; }").is_err());
        assert!(sema("kernel void k(int n) { continue; }").is_err());
    }

    #[test]
    fn allows_break_inside_loop() {
        assert!(sema("kernel void k(int n) { while (true) { break; } }").is_ok());
    }

    #[test]
    fn numeric_condition_coerced_to_bool() {
        let k = sema("kernel void k(int n) { if (n) { } }").unwrap();
        let Stmt::If { cond, .. } = &k.body[0] else {
            panic!()
        };
        assert_eq!(cond.ty, ScalarType::Bool);
        assert!(matches!(cond.kind, ExprKind::Binary { op: BinOp::Ne, .. }));
    }

    #[test]
    fn compound_assignment_desugars() {
        let k = sema("kernel void k(global float* a, int n) { a[n] += 2.0; }").unwrap();
        let Stmt::Store { value, .. } = &k.body[0] else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            lhs,
            ..
        } = &value.kind
        else {
            panic!()
        };
        assert!(matches!(lhs.kind, ExprKind::Load { .. }));
    }

    #[test]
    fn shadowing_in_inner_scope_is_allowed() {
        let k = sema("kernel void k(int n) { int x = 1; { int x = 2; } }").unwrap();
        assert_eq!(k.var_types.len(), 2);
    }

    #[test]
    fn duplicate_in_same_scope_rejected() {
        assert!(sema("kernel void k(int n) { int x = 1; int x = 2; }").is_err());
    }

    #[test]
    fn global_id_requires_literal_dim() {
        assert!(sema("kernel void k(int n) { int i = get_global_id(n); }").is_err());
        assert!(sema("kernel void k(int n) { int i = get_global_id(3); }").is_err());
        assert!(sema("kernel void k(int n) { int i = get_global_id(2); }").is_ok());
    }

    #[test]
    fn rem_requires_integers() {
        assert!(sema("kernel void k(float x) { float y = x % 2.0; }").is_err());
        assert!(sema("kernel void k(int n) { int y = n % 2; }").is_ok());
    }

    #[test]
    fn shift_requires_integers() {
        assert!(sema("kernel void k(float x) { float y = x << 1; }").is_err());
    }

    #[test]
    fn unsigned_promotion() {
        let k = sema("kernel void k(uint u, int n) { uint x = u + n; }").unwrap();
        let Stmt::Decl { init, .. } = &k.body[0] else {
            panic!()
        };
        assert_eq!(init.ty, ScalarType::UInt);
    }

    #[test]
    fn builtin_polymorphism_resolves() {
        let k = sema("kernel void k(int a, int b) { int m = min(a, b); }").unwrap();
        let Stmt::Decl { init, .. } = &k.body[0] else {
            panic!()
        };
        let ExprKind::Call { f, .. } = &init.kind else {
            panic!()
        };
        assert_eq!(*f, crate::builtins::Builtin::IMin);
    }

    #[test]
    fn builtin_arity_checked() {
        assert!(sema("kernel void k(float x) { float y = pow(x); }").is_err());
    }

    #[test]
    fn ternary_promotes_arms() {
        let k = sema("kernel void k(int n) { float x = n > 0 ? 1 : 0.5; }").unwrap();
        let Stmt::Decl { init, .. } = &k.body[0] else {
            panic!()
        };
        assert_eq!(init.ty, ScalarType::Float);
    }

    #[test]
    fn decl_initializer_cannot_see_itself() {
        assert!(sema("kernel void k(int n) { int x = x; }").is_err());
    }

    #[test]
    fn for_init_scopes_over_body() {
        assert!(
            sema("kernel void k(int n) { for (int i = 0; i < n; i++) { int y = i; } }").is_ok()
        );
        // …but not past the loop.
        assert!(
            sema("kernel void k(int n) { for (int i = 0; i < n; i++) { } int y = i; }").is_err()
        );
    }
}
