//! Buffer access-range analysis.
//!
//! The multi-device runtime only wants to move the bytes a device chunk
//! will actually touch. This module computes, for a kernel and a concrete
//! launch (scalar argument values + a sub-range of the NDRange), a
//! conservative interval of element indices each buffer parameter may read
//! and may write, via interval abstract interpretation of the IR:
//!
//! * `get_global_id(d)` evaluates to the chunk's bounds in dimension `d`;
//! * integer scalar parameters evaluate to their exact runtime values;
//! * canonical `for (v = a; v < b; v += s)` loops bound their induction
//!   variable; every other variable assigned inside a loop is widened to ⊤;
//! * values loaded from memory are ⊤ (data-dependent indexing ⇒ transfer
//!   the whole buffer — the same conservative policy the Insieme runtime
//!   applies when its analysis cannot prove an access range).
//!
//! Any ⊤ index widens that buffer's range to "whole buffer".

use crate::ast::BinOp;
use crate::builtins::Builtin;
use crate::ir::{Expr, ExprKind, Kernel, ParamId, ScalarType, Stmt, VarId};

/// Static per-buffer read/write classification (computed at compile time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSummary {
    /// One entry per kernel parameter (scalars get `is_read = is_written =
    /// false`).
    pub buffers: Vec<BufferAccess>,
}

/// Whether a parameter's buffer is read and/or written anywhere in the
/// kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferAccess {
    pub param: ParamId,
    pub is_read: bool,
    pub is_written: bool,
}

/// Compute the static read/write sets of a kernel.
pub fn analyze(k: &Kernel) -> AccessSummary {
    let mut buffers: Vec<BufferAccess> = (0..k.params.len())
        .map(|i| BufferAccess {
            param: ParamId(i as u32),
            is_read: false,
            is_written: false,
        })
        .collect();
    fn walk_expr(e: &Expr, buffers: &mut [BufferAccess]) {
        match &e.kind {
            ExprKind::Load { buf, index } => {
                buffers[buf.0 as usize].is_read = true;
                walk_expr(index, buffers);
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, buffers);
                walk_expr(rhs, buffers);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Cast(operand) => {
                walk_expr(operand, buffers)
            }
            ExprKind::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, buffers)),
            ExprKind::Select { cond, then, els } => {
                walk_expr(cond, buffers);
                walk_expr(then, buffers);
                walk_expr(els, buffers);
            }
            _ => {}
        }
    }
    fn walk_stmt(s: &Stmt, buffers: &mut [BufferAccess]) {
        match s {
            Stmt::Decl { init, .. } | Stmt::AssignVar { value: init, .. } => {
                walk_expr(init, buffers)
            }
            Stmt::Store { buf, index, value } => {
                buffers[buf.0 as usize].is_written = true;
                walk_expr(index, buffers);
                walk_expr(value, buffers);
            }
            Stmt::If { cond, then, els } => {
                walk_expr(cond, buffers);
                then.iter().for_each(|s| walk_stmt(s, buffers));
                els.iter().for_each(|s| walk_stmt(s, buffers));
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    walk_stmt(i, buffers);
                }
                if let Some(c) = cond {
                    walk_expr(c, buffers);
                }
                if let Some(st) = step {
                    walk_stmt(st, buffers);
                }
                body.iter().for_each(|s| walk_stmt(s, buffers));
            }
            Stmt::While { cond, body } => {
                walk_expr(cond, buffers);
                body.iter().for_each(|s| walk_stmt(s, buffers));
            }
            Stmt::Block(body) => body.iter().for_each(|s| walk_stmt(s, buffers)),
            Stmt::Break | Stmt::Continue | Stmt::Return => {}
        }
    }
    for s in &k.body {
        walk_stmt(s, &mut buffers);
    }
    AccessSummary { buffers }
}

/// An integer interval, or ⊤ (unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interval {
    /// `lo..=hi` (always `lo <= hi`).
    Range(i64, i64),
    /// Unknown.
    Top,
}

// The arithmetic methods deliberately shadow the `std::ops` names: they
// are abstract transfer functions over intervals (with ⊤ and overflow
// fallbacks), not the concrete operators, and spelling them `x.add(y)`
// keeps the abstract-interpretation transfer tables readable.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// Exact singleton value.
    pub fn exact(v: i64) -> Self {
        Interval::Range(v, v)
    }

    /// Does the interval contain the concrete value `v`?
    pub fn contains(self, v: i64) -> bool {
        match self {
            Interval::Range(lo, hi) => lo <= v && v <= hi,
            Interval::Top => true,
        }
    }

    /// Smallest interval containing both operands (the lattice join).
    pub fn union(self, other: Interval) -> Interval {
        match (self, other) {
            (Interval::Range(a, b), Interval::Range(c, d)) => Interval::Range(a.min(c), b.max(d)),
            _ => Interval::Top,
        }
    }

    /// Largest interval contained in both operands, or `None` when they
    /// are disjoint. Used for branch-condition refinement.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        match (self, other) {
            (Interval::Range(a, b), Interval::Range(c, d)) => {
                let (lo, hi) = (a.max(c), b.min(d));
                (lo <= hi).then_some(Interval::Range(lo, hi))
            }
            (x, Interval::Top) | (Interval::Top, x) => Some(x),
        }
    }

    /// Standard widening: any bound that moved since `prev` jumps to the
    /// corresponding infinity (the saturated `i64` extreme), so ascending
    /// chains at loop headers stabilize in at most two steps per bound.
    pub fn widen_from(self, prev: Interval) -> Interval {
        match (prev, self) {
            (Interval::Range(a, b), Interval::Range(c, d)) => {
                let lo = if c < a { i64::MIN } else { a.min(c) };
                let hi = if d > b { i64::MAX } else { b.max(d) };
                Interval::Range(lo, hi)
            }
            _ => Interval::Top,
        }
    }

    /// Evaluate `f` at the four endpoint pairs and take the hull.
    ///
    /// Sound only for operators that attain their extremes at box corners
    /// — i.e. operators monotone in each argument separately over the
    /// given intervals (add, sub, mul, min, max, and div with a
    /// single-signed divisor all qualify; rem does **not**, see
    /// [`Interval::rem`]). `None` from `f` (overflow) goes to ⊤.
    fn map2(self, other: Interval, f: impl Fn(i64, i64) -> Option<i64>) -> Interval {
        let (Interval::Range(a, b), Interval::Range(c, d)) = (self, other) else {
            return Interval::Top;
        };
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for &x in &[a, b] {
            for &y in &[c, d] {
                match f(x, y) {
                    Some(v) => {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    None => return Interval::Top,
                }
            }
        }
        Interval::Range(lo, hi)
    }

    pub fn add(self, o: Interval) -> Interval {
        self.map2(o, i64::checked_add)
    }

    pub fn sub(self, o: Interval) -> Interval {
        self.map2(o, i64::checked_sub)
    }

    /// Negative-operand soundness: `x*y` is monotone in `x` for fixed `y`
    /// (increasing for `y >= 0`, decreasing for `y < 0`) and vice versa,
    /// so the extremes over a box lie at its corners regardless of sign;
    /// `checked_mul` turns the sole wrapping corner (overflow) into ⊤.
    pub fn mul(self, o: Interval) -> Interval {
        self.map2(o, i64::checked_mul)
    }

    /// Negative-operand soundness: guarded on a divisor interval that
    /// excludes 0, truncated division is monotone in the dividend and —
    /// separately on the all-positive / all-negative divisor ranges the
    /// guard enforces — monotone in the divisor, so endpoint evaluation
    /// is exact; `checked_div` turns `i64::MIN / -1` into ⊤.
    pub fn div(self, o: Interval) -> Interval {
        // Conservative: only divide when the divisor interval excludes 0.
        match o {
            Interval::Range(c, d) if c > 0 || d < 0 => self.map2(o, i64::checked_div),
            _ => Interval::Top,
        }
    }

    /// `rem` is **not** corner-monotone (`7 % 4 = 3` beats both `7 % 3`
    /// and `7 % 5`), so it never uses [`Interval::map2`]: for `x >= 0`
    /// and divisors in `[c, d]` with `c > 0`, `x % y` lies in
    /// `[0, min(d-1, x_hi)]` (`x % y <= x` for non-negative `x`). Any
    /// negative operand falls to ⊤ — the sign of a truncated remainder
    /// follows the dividend, so a corner formula would be unsound there.
    pub fn rem(self, o: Interval) -> Interval {
        match (self, o) {
            (Interval::Range(a, b), Interval::Range(c, d)) if a >= 0 && c > 0 => {
                Interval::Range(0, (d - 1).min(b))
            }
            _ => Interval::Top,
        }
    }

    pub fn min_i(self, o: Interval) -> Interval {
        self.map2(o, |x, y| Some(x.min(y)))
    }

    pub fn max_i(self, o: Interval) -> Interval {
        self.map2(o, |x, y| Some(x.max(y)))
    }
}

/// Concrete launch context for the range analysis.
#[derive(Debug, Clone)]
pub struct LaunchBounds {
    /// Inclusive `get_global_id(d)` bounds per dimension (index 0..3).
    pub gid: [(i64, i64); 3],
    /// `get_global_size(d)` per dimension.
    pub gsize: [i64; 3],
    /// Per-parameter scalar values (`None` for buffers and float scalars).
    pub scalars: Vec<Option<i64>>,
}

/// The result of the range analysis for one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferRange {
    /// The kernel does not access this buffer in this chunk context.
    Untouched,
    /// Accesses lie within `lo..=hi` (element indices; may need clamping to
    /// the actual buffer length by the caller).
    Exact { lo: i64, hi: i64 },
    /// The analysis could not bound the accesses: treat as whole-buffer.
    Whole,
}

impl BufferRange {
    /// Grow the range to also cover `iv` (⊤ forces [`BufferRange::Whole`]).
    pub fn widen(&mut self, iv: Interval) {
        let new = match iv {
            Interval::Top => BufferRange::Whole,
            Interval::Range(lo, hi) => BufferRange::Exact { lo, hi },
        };
        *self = match (*self, new) {
            (BufferRange::Whole, _) | (_, BufferRange::Whole) => BufferRange::Whole,
            (BufferRange::Untouched, n) => n,
            (e @ BufferRange::Exact { .. }, BufferRange::Untouched) => e,
            (BufferRange::Exact { lo: a, hi: b }, BufferRange::Exact { lo: c, hi: d }) => {
                BufferRange::Exact {
                    lo: a.min(c),
                    hi: b.max(d),
                }
            }
        };
    }
}

/// Per-buffer read and write ranges for one launch chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRanges {
    /// Indexed by parameter position.
    pub read: Vec<BufferRange>,
    /// Indexed by parameter position.
    pub write: Vec<BufferRange>,
}

/// Run the interval analysis for a kernel under the given launch bounds.
pub fn access_ranges(k: &Kernel, bounds: &LaunchBounds) -> AccessRanges {
    let mut interp = AbstractInterp {
        k,
        bounds,
        env: vec![Interval::Top; k.var_types.len()],
        read: vec![BufferRange::Untouched; k.params.len()],
        write: vec![BufferRange::Untouched; k.params.len()],
    };
    for s in &k.body {
        interp.stmt(s);
    }
    AccessRanges {
        read: interp.read,
        write: interp.write,
    }
}

struct AbstractInterp<'a> {
    k: &'a Kernel,
    bounds: &'a LaunchBounds,
    env: Vec<Interval>,
    read: Vec<BufferRange>,
    write: Vec<BufferRange>,
}

impl<'a> AbstractInterp<'a> {
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { var, init } | Stmt::AssignVar { var, value: init } => {
                let iv = self.eval(init);
                self.env[var.0 as usize] = iv;
            }
            Stmt::Store { buf, index, value } => {
                let iv = self.eval(index);
                self.write[buf.0 as usize].widen(iv);
                self.eval(value);
            }
            Stmt::If { cond, then, els } => {
                self.eval(cond);
                let before = self.env.clone();
                then.iter().for_each(|s| self.stmt(s));
                let after_then = std::mem::replace(&mut self.env, before);
                els.iter().for_each(|s| self.stmt(s));
                for (e, t) in self.env.iter_mut().zip(after_then) {
                    *e = e.union(t);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                // Try the canonical bounded-loop pattern.
                let canonical = canonical_for_var(init.as_deref(), cond.as_ref());
                let mut assigned = Vec::new();
                body.iter().for_each(|s| collect_assigned(s, &mut assigned));
                if let Some(st) = step {
                    collect_assigned(st, &mut assigned);
                }
                match canonical {
                    Some((var, limit, inclusive)) => {
                        let init_iv = self.env[var.0 as usize];
                        let limit_iv = self.eval(limit);
                        let var_iv = match (init_iv, limit_iv) {
                            (Interval::Range(a, _), Interval::Range(_, d)) => {
                                let hi = if inclusive { d } else { d - 1 };
                                if hi >= a {
                                    Interval::Range(a, hi)
                                } else {
                                    // Loop may not execute; keep the init
                                    // value as the only possibility.
                                    init_iv
                                }
                            }
                            _ => Interval::Top,
                        };
                        for v in &assigned {
                            if *v != var {
                                self.env[v.0 as usize] = Interval::Top;
                            }
                        }
                        self.env[var.0 as usize] = var_iv;
                    }
                    None => {
                        for v in &assigned {
                            self.env[v.0 as usize] = Interval::Top;
                        }
                        if let Some(c) = cond {
                            self.eval(c);
                        }
                    }
                }
                body.iter().for_each(|s| self.stmt(s));
                if let Some(st) = step {
                    self.stmt(st);
                }
                // After the loop the induction variable has stepped past the
                // bound; widen everything that the loop touched.
                for v in &assigned {
                    self.env[v.0 as usize] = Interval::Top;
                }
                if let Some((var, _, _)) = canonical {
                    self.env[var.0 as usize] = Interval::Top;
                }
            }
            Stmt::While { cond, body } => {
                let mut assigned = Vec::new();
                body.iter().for_each(|s| collect_assigned(s, &mut assigned));
                for v in &assigned {
                    self.env[v.0 as usize] = Interval::Top;
                }
                self.eval(cond);
                body.iter().for_each(|s| self.stmt(s));
            }
            Stmt::Block(body) => body.iter().for_each(|s| self.stmt(s)),
            Stmt::Break | Stmt::Continue | Stmt::Return => {}
        }
    }

    fn eval(&mut self, e: &Expr) -> Interval {
        match &e.kind {
            ExprKind::IntConst(v) => Interval::exact(*v),
            ExprKind::FloatConst(_) => Interval::Top,
            ExprKind::BoolConst(b) => Interval::exact(i64::from(*b)),
            ExprKind::Var(v) => {
                if self.k.var_types[v.0 as usize].is_integer()
                    || self.k.var_types[v.0 as usize] == ScalarType::Bool
                {
                    self.env[v.0 as usize]
                } else {
                    Interval::Top
                }
            }
            ExprKind::Param(p) => self
                .bounds
                .scalars
                .get(p.0 as usize)
                .copied()
                .flatten()
                .map_or(Interval::Top, Interval::exact),
            ExprKind::GlobalId(d) => {
                let (lo, hi) = self.bounds.gid[*d as usize];
                Interval::Range(lo, hi)
            }
            ExprKind::GlobalSize(d) => Interval::exact(self.bounds.gsize[*d as usize]),
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs);
                let r = self.eval(rhs);
                match op {
                    BinOp::Add => l.add(r),
                    BinOp::Sub => l.sub(r),
                    BinOp::Mul => l.mul(r),
                    BinOp::Div => l.div(r),
                    BinOp::Rem => l.rem(r),
                    BinOp::Shl => l.mul(pow2(r)),
                    BinOp::Shr => l.div(pow2(r)),
                    BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge
                    | BinOp::Eq
                    | BinOp::Ne
                    | BinOp::LogAnd
                    | BinOp::LogOr => Interval::Range(0, 1),
                    BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => {
                        // Masking with a non-negative constant bounds the result.
                        if *op == BinOp::BitAnd {
                            if let Interval::Range(c, d) = r {
                                if c >= 0 {
                                    return Interval::Range(0, d);
                                }
                            }
                            if let Interval::Range(c, d) = l {
                                if c >= 0 {
                                    return Interval::Range(0, d);
                                }
                            }
                        }
                        Interval::Top
                    }
                }
            }
            ExprKind::Unary { op, operand } => {
                let o = self.eval(operand);
                match op {
                    crate::ast::UnOp::Neg => Interval::exact(0).sub(o),
                    crate::ast::UnOp::Not => Interval::Range(0, 1),
                    crate::ast::UnOp::BitNot => Interval::Top,
                }
            }
            ExprKind::Cast(inner) => {
                let iv = self.eval(inner);
                // int<->uint casts preserve small non-negative ranges;
                // float-involved casts are unbounded.
                if inner.ty == ScalarType::Float || e.ty == ScalarType::Float {
                    Interval::Top
                } else {
                    iv
                }
            }
            ExprKind::Load { buf, index } => {
                let iv = self.eval(index);
                self.read[buf.0 as usize].widen(iv);
                Interval::Top
            }
            ExprKind::Call { f, args } => {
                let ivs: Vec<Interval> = args.iter().map(|a| self.eval(a)).collect();
                match f {
                    Builtin::IMin => ivs[0].min_i(ivs[1]),
                    Builtin::IMax => ivs[0].max_i(ivs[1]),
                    Builtin::IAbs => match ivs[0] {
                        Interval::Range(a, b) if a >= 0 => Interval::Range(a, b),
                        Interval::Range(a, b) => {
                            Interval::Range(0, b.abs().max(a.checked_abs().unwrap_or(i64::MAX)))
                        }
                        Interval::Top => Interval::Top,
                    },
                    Builtin::IClamp => ivs[0].max_i(ivs[1]).min_i(ivs[2]),
                    _ => Interval::Top,
                }
            }
            ExprKind::Select { cond, then, els } => {
                self.eval(cond);
                let t = self.eval(then);
                let f = self.eval(els);
                t.union(f)
            }
        }
    }
}

fn pow2(iv: Interval) -> Interval {
    match iv {
        Interval::Range(a, b) if a >= 0 && b < 63 => Interval::Range(1 << a, 1 << b),
        _ => Interval::Top,
    }
}

/// Recognize `for (v = ...; v < limit; ...)` and return `(v, limit,
/// inclusive)`.
fn canonical_for_var<'a>(
    init: Option<&Stmt>,
    cond: Option<&'a Expr>,
) -> Option<(VarId, &'a Expr, bool)> {
    let var = match init? {
        Stmt::Decl { var, .. } | Stmt::AssignVar { var, .. } => *var,
        _ => return None,
    };
    let ExprKind::Binary { op, lhs, rhs } = &cond?.kind else {
        return None;
    };
    let ExprKind::Var(cv) = lhs.kind else {
        return None;
    };
    if cv != var {
        return None;
    }
    match op {
        BinOp::Lt => Some((var, rhs, false)),
        BinOp::Le => Some((var, rhs, true)),
        _ => None,
    }
}

fn collect_assigned(s: &Stmt, out: &mut Vec<VarId>) {
    match s {
        Stmt::Decl { var, .. } | Stmt::AssignVar { var, .. } => out.push(*var),
        Stmt::If { then, els, .. } => {
            then.iter().for_each(|s| collect_assigned(s, out));
            els.iter().for_each(|s| collect_assigned(s, out));
        }
        Stmt::For {
            init, step, body, ..
        } => {
            if let Some(i) = init {
                collect_assigned(i, out);
            }
            if let Some(st) = step {
                collect_assigned(st, out);
            }
            body.iter().for_each(|s| collect_assigned(s, out));
        }
        Stmt::While { body, .. } => body.iter().for_each(|s| collect_assigned(s, out)),
        Stmt::Block(body) => body.iter().for_each(|s| collect_assigned(s, out)),
        Stmt::Store { .. } | Stmt::Break | Stmt::Continue | Stmt::Return => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::sema::analyze as sema;

    fn kernel(src: &str) -> Kernel {
        let prog = parse(&lex(src).unwrap()).unwrap();
        sema(&prog.kernels[0]).unwrap()
    }

    fn bounds_1d(lo: i64, hi: i64, scalars: Vec<Option<i64>>) -> LaunchBounds {
        LaunchBounds {
            gid: [(lo, hi), (0, 0), (0, 0)],
            gsize: [hi + 1, 1, 1],
            scalars,
        }
    }

    #[test]
    fn static_read_write_sets() {
        let k = kernel(
            "kernel void k(global const float* a, global float* b, int n) {
                int i = get_global_id(0);
                b[i] = a[i] + b[i];
            }",
        );
        let s = analyze(&k);
        assert!(s.buffers[0].is_read && !s.buffers[0].is_written);
        assert!(s.buffers[1].is_read && s.buffers[1].is_written);
        assert!(!s.buffers[2].is_read && !s.buffers[2].is_written);
    }

    #[test]
    fn direct_gid_access_gives_chunk_range() {
        let k = kernel(
            "kernel void k(global const float* a, global float* c, int n) {
                int i = get_global_id(0);
                if (i < n) { c[i] = a[i]; }
            }",
        );
        let r = access_ranges(&k, &bounds_1d(10, 19, vec![None, None, Some(100)]));
        assert_eq!(r.read[0], BufferRange::Exact { lo: 10, hi: 19 });
        assert_eq!(r.write[1], BufferRange::Exact { lo: 10, hi: 19 });
        assert_eq!(r.read[1], BufferRange::Untouched);
    }

    #[test]
    fn row_major_2d_access_scales_by_width() {
        let k = kernel(
            "kernel void k(global const float* a, global float* c, int w) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                c[y * w + x] = a[y * w + x];
            }",
        );
        let b = LaunchBounds {
            gid: [(0, 7), (4, 5), (0, 0)],
            gsize: [8, 16, 1],
            scalars: vec![None, None, Some(8)],
        };
        let r = access_ranges(&k, &b);
        assert_eq!(r.read[0], BufferRange::Exact { lo: 32, hi: 47 });
        assert_eq!(r.write[1], BufferRange::Exact { lo: 32, hi: 47 });
    }

    #[test]
    fn indirect_access_is_whole_buffer() {
        let k = kernel(
            "kernel void k(global const int* idx, global const float* v, global float* o) {
                int i = get_global_id(0);
                o[i] = v[idx[i]];
            }",
        );
        let r = access_ranges(&k, &bounds_1d(0, 3, vec![None, None, None]));
        assert_eq!(r.read[0], BufferRange::Exact { lo: 0, hi: 3 });
        assert_eq!(r.read[1], BufferRange::Whole);
        assert_eq!(r.write[2], BufferRange::Exact { lo: 0, hi: 3 });
    }

    #[test]
    fn canonical_loop_bounds_induction_variable() {
        let k = kernel(
            "kernel void k(global const float* a, global float* o, int n) {
                int i = get_global_id(0);
                float s = 0.0;
                for (int j = 0; j < n; j++) { s += a[i * n + j]; }
                o[i] = s;
            }",
        );
        let r = access_ranges(&k, &bounds_1d(2, 3, vec![None, None, Some(10)]));
        // i in [2,3], j in [0,9] → index in [20, 39].
        assert_eq!(r.read[0], BufferRange::Exact { lo: 20, hi: 39 });
        assert_eq!(r.write[1], BufferRange::Exact { lo: 2, hi: 3 });
    }

    #[test]
    fn non_canonical_loop_widens_to_whole() {
        let k = kernel(
            "kernel void k(global const float* a, global float* o, int n) {
                int i = get_global_id(0);
                int j = 0;
                float s = 0.0;
                while (j < n) { s += a[j]; j += 1; }
                o[i] = s;
            }",
        );
        let r = access_ranges(&k, &bounds_1d(0, 1, vec![None, None, Some(10)]));
        assert_eq!(r.read[0], BufferRange::Whole);
    }

    #[test]
    fn stencil_halo_is_captured() {
        let k = kernel(
            "kernel void k(global const float* a, global float* o, int n) {
                int i = get_global_id(0);
                if (i > 0 && i < n - 1) {
                    o[i] = a[i - 1] + a[i] + a[i + 1];
                }
            }",
        );
        let r = access_ranges(&k, &bounds_1d(16, 31, vec![None, None, Some(64)]));
        assert_eq!(r.read[0], BufferRange::Exact { lo: 15, hi: 32 });
        assert_eq!(r.write[1], BufferRange::Exact { lo: 16, hi: 31 });
    }

    #[test]
    fn scalar_param_times_gsize() {
        let k = kernel(
            "kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                o[i + get_global_size(0)] = 1.0;
            }",
        );
        let r = access_ranges(&k, &bounds_1d(0, 7, vec![None, Some(0)]));
        assert_eq!(r.write[0], BufferRange::Exact { lo: 8, hi: 15 });
    }

    #[test]
    fn if_branches_join() {
        let k = kernel(
            "kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                int j = 0;
                if (i > 2) { j = 1; } else { j = 5; }
                o[j] = 0.0;
            }",
        );
        let r = access_ranges(&k, &bounds_1d(0, 7, vec![None, Some(0)]));
        assert_eq!(r.write[0], BufferRange::Exact { lo: 1, hi: 5 });
    }

    #[test]
    fn interval_arithmetic_is_sound_under_negation_and_mul() {
        let a = Interval::Range(-3, 4);
        let b = Interval::Range(2, 5);
        assert_eq!(a.mul(b), Interval::Range(-15, 20));
        assert_eq!(Interval::exact(0).sub(a), Interval::Range(-4, 3));
        assert_eq!(a.add(b), Interval::Range(-1, 9));
        assert_eq!(a.union(Interval::Top), Interval::Top);
    }

    #[test]
    fn division_by_interval_containing_zero_is_top() {
        let a = Interval::Range(0, 100);
        assert_eq!(a.div(Interval::Range(-1, 1)), Interval::Top);
        assert_eq!(a.div(Interval::Range(2, 2)), Interval::Range(0, 50));
    }

    #[test]
    fn modulo_bounds_result() {
        let k = kernel(
            "kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                o[i % n] = 1.0;
            }",
        );
        let r = access_ranges(&k, &bounds_1d(0, 1000, vec![None, Some(16)]));
        assert_eq!(r.write[0], BufferRange::Exact { lo: 0, hi: 15 });
    }
}
