//! Recursive-descent parser with precedence climbing.

use crate::ast::*;
use crate::error::CompileError;
use crate::token::{Span, Token, TokenKind};

/// Parse a token stream (as produced by [`crate::lexer::lex`]) into a
/// [`Program`].
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut kernels = Vec::new();
    while !p.at(&TokenKind::Eof) {
        kernels.push(p.kernel()?);
    }
    if kernels.is_empty() {
        return Err(CompileError::parse("no kernel found in source", 0));
    }
    Ok(Program { kernels })
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, CompileError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.err_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek_kind().describe()
            )))
        }
    }

    fn err_here(&self, msg: String) -> CompileError {
        CompileError::parse(msg, self.peek().span.start)
    }

    fn type_name(&mut self) -> Result<TypeName, CompileError> {
        let t = self.bump();
        match t.kind {
            TokenKind::KwInt => Ok(TypeName::Int),
            TokenKind::KwUInt => Ok(TypeName::UInt),
            TokenKind::KwFloat => Ok(TypeName::Float),
            TokenKind::KwBool => Ok(TypeName::Bool),
            other => Err(CompileError::parse(
                format!("expected type name, found {}", other.describe()),
                t.span.start,
            )),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek_kind(),
            TokenKind::KwInt | TokenKind::KwUInt | TokenKind::KwFloat | TokenKind::KwBool
        )
    }

    // kernel void name ( params ) { body }
    fn kernel(&mut self) -> Result<KernelDecl, CompileError> {
        let start = self.peek().span;
        self.expect(TokenKind::KwKernel)?;
        self.expect(TokenKind::KwVoid)?;
        let name_tok = self.bump();
        let name = match name_tok.kind {
            TokenKind::Ident(s) => s,
            other => {
                return Err(CompileError::parse(
                    format!("expected kernel name, found {}", other.describe()),
                    name_tok.span.start,
                ))
            }
        };
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        let end = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(KernelDecl {
            name,
            params,
            body,
            span: start.merge(end),
        })
    }

    // global [const] T * name   |   T name
    fn param(&mut self) -> Result<ParamDecl, CompileError> {
        let start = self.peek().span;
        if self.eat(&TokenKind::KwGlobal) {
            let is_const = self.eat(&TokenKind::KwConst);
            let elem = self.type_name()?;
            self.expect(TokenKind::Star)?;
            let name = self.ident()?;
            Ok(ParamDecl {
                name,
                kind: ParamKind::Buffer { elem, is_const },
                span: start.merge(self.prev_span()),
            })
        } else {
            // Also accept `const T name` for scalars.
            self.eat(&TokenKind::KwConst);
            let ty = self.type_name()?;
            if self.at(&TokenKind::Star) {
                return Err(self.err_here(
                    "pointer parameters must be `global` (no local/private pointers)".to_string(),
                ));
            }
            let name = self.ident()?;
            Ok(ParamDecl {
                name,
                kind: ParamKind::Scalar(ty),
                span: start.merge(self.prev_span()),
            })
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Ident(s) => Ok(s),
            other => Err(CompileError::parse(
                format!("expected identifier, found {}", other.describe()),
                t.span.start,
            )),
        }
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.err_here("unexpected end of input inside block".into()));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    /// A statement body: either a braced block or a single statement.
    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.at(&TokenKind::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let start = self.peek().span;
        match self.peek_kind() {
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then = self.stmt_or_block()?;
                let els = if self.eat(&TokenKind::KwElse) {
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    els,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::While {
                    cond,
                    body,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let init = if self.at(&TokenKind::Semicolon) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(TokenKind::Semicolon)?;
                let cond = if self.at(&TokenKind::Semicolon) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semicolon)?;
                let step = if self.at(&TokenKind::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(TokenKind::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semicolon)?;
                Ok(Stmt::Break(start))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semicolon)?;
                Ok(Stmt::Continue(start))
            }
            TokenKind::KwReturn => {
                self.bump();
                self.expect(TokenKind::Semicolon)?;
                Ok(Stmt::Return(start))
            }
            TokenKind::LBrace => {
                let body = self.block()?;
                Ok(Stmt::Block(body, start.merge(self.prev_span())))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(TokenKind::Semicolon)?;
                Ok(s)
            }
        }
    }

    /// Declaration, assignment, or increment/decrement — the statement forms
    /// allowed in `for` headers (no trailing semicolon).
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let start = self.peek().span;
        if self.is_type_start() {
            let ty = self.type_name()?;
            let name = self.ident()?;
            self.expect(TokenKind::Assign)?;
            let init = self.expr()?;
            return Ok(Stmt::Decl {
                ty,
                name,
                init,
                span: start.merge(self.prev_span()),
            });
        }
        // Prefix increment/decrement: ++i / --i.
        if matches!(
            self.peek_kind(),
            TokenKind::PlusPlus | TokenKind::MinusMinus
        ) {
            let op_tok = self.bump();
            let target = self.postfix_expr()?;
            return self.incdec(target, &op_tok.kind, start);
        }
        let target = self.postfix_expr()?;
        match self.peek_kind().clone() {
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let op = self.bump().kind;
                self.incdec(target, &op, start)
            }
            k => {
                let op = match k {
                    TokenKind::Assign => AssignOp::Set,
                    TokenKind::PlusAssign => AssignOp::Add,
                    TokenKind::MinusAssign => AssignOp::Sub,
                    TokenKind::StarAssign => AssignOp::Mul,
                    TokenKind::SlashAssign => AssignOp::Div,
                    TokenKind::PercentAssign => AssignOp::Rem,
                    other => {
                        return Err(self.err_here(format!(
                            "expected assignment operator, found {}",
                            other.describe()
                        )))
                    }
                };
                self.bump();
                let value = self.expr()?;
                self.check_assign_target(&target)?;
                Ok(Stmt::Assign {
                    target,
                    op,
                    value,
                    span: start.merge(self.prev_span()),
                })
            }
        }
    }

    fn incdec(&mut self, target: Expr, op: &TokenKind, start: Span) -> Result<Stmt, CompileError> {
        self.check_assign_target(&target)?;
        let one = Expr {
            kind: ExprKind::IntLit {
                value: 1,
                unsigned: false,
            },
            span: target.span,
        };
        let aop = if matches!(op, TokenKind::PlusPlus) {
            AssignOp::Add
        } else {
            AssignOp::Sub
        };
        Ok(Stmt::Assign {
            target,
            op: aop,
            value: one,
            span: start.merge(self.prev_span()),
        })
    }

    fn check_assign_target(&self, target: &Expr) -> Result<(), CompileError> {
        match &target.kind {
            ExprKind::Ident(_) | ExprKind::Index { .. } => Ok(()),
            _ => Err(CompileError::parse(
                "assignment target must be a variable or a buffer element".to_string(),
                target.span.start,
            )),
        }
    }

    // ---- Expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let els = self.ternary()?;
            let span = cond.span.merge(els.span);
            Ok(Expr {
                kind: ExprKind::Ternary {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                },
                span,
            })
        } else {
            Ok(cond)
        }
    }

    fn bin_op_of(kind: &TokenKind) -> Option<(BinOp, u8)> {
        use BinOp::*;
        use TokenKind as T;
        Some(match kind {
            T::PipePipe => (LogOr, 1),
            T::AmpAmp => (LogAnd, 2),
            T::Pipe => (BitOr, 3),
            T::Caret => (BitXor, 4),
            T::Amp => (BitAnd, 5),
            T::EqEq => (Eq, 6),
            T::BangEq => (Ne, 6),
            T::Lt => (Lt, 7),
            T::Le => (Le, 7),
            T::Gt => (Gt, 7),
            T::Ge => (Ge, 7),
            T::Shl => (Shl, 8),
            T::Shr => (Shr, 8),
            T::Plus => (Add, 9),
            T::Minus => (Sub, 9),
            T::Star => (Mul, 10),
            T::Slash => (Div, 10),
            T::Percent => (Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = Self::bin_op_of(self.peek_kind()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let start = self.peek().span;
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            let span = start.merge(operand.span);
            return Ok(Expr {
                kind: ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
                span,
            });
        }
        // Cast: `(T) unary`.
        if self.at(&TokenKind::LParen) {
            if let Some(next) = self.tokens.get(self.pos + 1) {
                let is_cast = matches!(
                    next.kind,
                    TokenKind::KwInt | TokenKind::KwUInt | TokenKind::KwFloat | TokenKind::KwBool
                ) && self
                    .tokens
                    .get(self.pos + 2)
                    .is_some_and(|t| t.kind == TokenKind::RParen);
                if is_cast {
                    self.bump(); // (
                    let ty = self.type_name()?;
                    self.bump(); // )
                    let operand = self.unary()?;
                    let span = start.merge(operand.span);
                    return Ok(Expr {
                        kind: ExprKind::Cast {
                            ty,
                            operand: Box::new(operand),
                        },
                        span,
                    });
                }
            }
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            if self.at(&TokenKind::LBracket) {
                self.bump();
                let index = self.expr()?;
                let rb = self.expect(TokenKind::RBracket)?;
                let span = e.span.merge(rb.span);
                e = Expr {
                    kind: ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    },
                    span,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let t = self.bump();
        let span = t.span;
        match t.kind {
            TokenKind::IntLit { value, unsigned } => Ok(Expr {
                kind: ExprKind::IntLit { value, unsigned },
                span,
            }),
            TokenKind::FloatLit(v) => Ok(Expr {
                kind: ExprKind::FloatLit(v),
                span,
            }),
            TokenKind::KwTrue => Ok(Expr {
                kind: ExprKind::BoolLit(true),
                span,
            }),
            TokenKind::KwFalse => Ok(Expr {
                kind: ExprKind::BoolLit(false),
                span,
            }),
            TokenKind::Ident(name) => {
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let rp = self.expect(TokenKind::RParen)?;
                    Ok(Expr {
                        kind: ExprKind::Call { name, args },
                        span: span.merge(rp.span),
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Ident(name),
                        span,
                    })
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::parse(
                format!("expected expression, found {}", other.describe()),
                span.start,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Program, CompileError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parses_minimal_kernel() {
        let p = parse_src("kernel void k(int n) { }").unwrap();
        assert_eq!(p.kernels.len(), 1);
        assert_eq!(p.kernels[0].name, "k");
        assert_eq!(p.kernels[0].params.len(), 1);
    }

    #[test]
    fn parses_buffer_params() {
        let p =
            parse_src("kernel void k(global const float* a, global int* b, uint m) { }").unwrap();
        let params = &p.kernels[0].params;
        assert_eq!(
            params[0].kind,
            ParamKind::Buffer {
                elem: TypeName::Float,
                is_const: true
            }
        );
        assert_eq!(
            params[1].kind,
            ParamKind::Buffer {
                elem: TypeName::Int,
                is_const: false
            }
        );
        assert_eq!(params[2].kind, ParamKind::Scalar(TypeName::UInt));
    }

    #[test]
    fn rejects_non_global_pointer() {
        assert!(parse_src("kernel void k(float* a) { }").is_err());
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse_src("kernel void k(int n) { int x = 1 + 2 * 3; }").unwrap();
        let Stmt::Decl { init, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &init.kind
        else {
            panic!("expected + at top: {init:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn shift_binds_tighter_than_compare() {
        let p = parse_src("kernel void k(int n) { bool b = 1 << 2 < n; }").unwrap();
        let Stmt::Decl { init, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        assert!(matches!(init.kind, ExprKind::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn parses_for_loop_with_incdec() {
        let p = parse_src("kernel void k(int n) { for (int i = 0; i < n; i++) { int y = i; } }")
            .unwrap();
        let Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } = &p.kernels[0].body[0]
        else {
            panic!()
        };
        assert!(init.is_some());
        assert!(cond.is_some());
        assert!(matches!(
            step.as_deref(),
            Some(Stmt::Assign {
                op: AssignOp::Add,
                ..
            })
        ));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse_src(
            "kernel void k(int n) { if (n < 0) { return; } else if (n == 0) { } else { } }",
        )
        .unwrap();
        let Stmt::If { els, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        assert!(matches!(els[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_ternary_right_associative() {
        let p = parse_src("kernel void k(int n) { int x = n ? 1 : n ? 2 : 3; }").unwrap();
        let Stmt::Decl { init, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        let ExprKind::Ternary { els, .. } = &init.kind else {
            panic!()
        };
        assert!(matches!(els.kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn parses_casts_and_calls() {
        let p = parse_src(
            "kernel void k(global float* a) { a[0] = (float) get_global_id(0) + sqrt(2.0); }",
        )
        .unwrap();
        let Stmt::Assign { value, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            value.kind,
            ExprKind::Binary { op: BinOp::Add, .. }
        ));
    }

    #[test]
    fn parses_nested_indexing() {
        let p = parse_src(
            "kernel void k(global int* idx, global float* v, global float* o) { o[0] = v[idx[0]]; }",
        )
        .unwrap();
        let Stmt::Assign { value, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        let ExprKind::Index { index, .. } = &value.kind else {
            panic!()
        };
        assert!(matches!(index.kind, ExprKind::Index { .. }));
    }

    #[test]
    fn rejects_assignment_to_literal() {
        assert!(parse_src("kernel void k(int n) { 3 = 4; }").is_err());
    }

    #[test]
    fn rejects_garbage_after_kernel() {
        assert!(parse_src("kernel void k(int n) { } trailing").is_err());
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse_src("kernel void k(int n) { int x = 1 }").is_err());
    }

    #[test]
    fn parses_compound_assignment_targets() {
        let p = parse_src("kernel void k(global float* a, int n) { a[n] += 1.0; }").unwrap();
        let Stmt::Assign { op, target, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        assert_eq!(*op, AssignOp::Add);
        assert!(matches!(target.kind, ExprKind::Index { .. }));
    }

    #[test]
    fn parses_while_and_break_continue() {
        let p = parse_src("kernel void k(int n) { while (true) { if (n < 0) break; continue; } }")
            .unwrap();
        let Stmt::While { body, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn paren_expr_is_not_cast_when_ident() {
        // `(n) + 1` is a parenthesized expr, not a cast.
        let p = parse_src("kernel void k(int n) { int x = (n) + 1; }").unwrap();
        let Stmt::Decl { init, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        assert!(matches!(init.kind, ExprKind::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn logical_ops_have_lowest_precedence() {
        let p = parse_src("kernel void k(int n) { bool b = n < 1 && n > -1 || n == 5; }").unwrap();
        let Stmt::Decl { init, .. } = &p.kernels[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            init.kind,
            ExprKind::Binary {
                op: BinOp::LogOr,
                ..
            }
        ));
    }
}
