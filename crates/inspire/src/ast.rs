//! Untyped abstract syntax tree produced by the parser.

use crate::token::Span;

/// A parsed translation unit: one or more kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub kernels: Vec<KernelDecl>,
}

/// A `kernel void name(params) { body }` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDecl {
    pub name: String,
    pub params: Vec<ParamDecl>,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// Scalar type names that can appear in source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    Int,
    UInt,
    Float,
    Bool,
}

/// A kernel parameter: either a global buffer pointer or a scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    pub name: String,
    pub kind: ParamKind,
    pub span: Span,
}

/// What sort of parameter a [`ParamDecl`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// `global [const] T*`; `is_const` records the `const` qualifier.
    Buffer { elem: TypeName, is_const: bool },
    /// A scalar passed by value.
    Scalar(TypeName),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `T name = init;` (initializer required).
    Decl {
        ty: TypeName,
        name: String,
        init: Expr,
        span: Span,
    },
    /// `target op= value;` where `target` is a variable or buffer element.
    Assign {
        target: Expr,
        op: AssignOp,
        value: Expr,
        span: Span,
    },
    /// `if (cond) then [else els]`.
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
        span: Span,
    },
    /// C-style `for (init; cond; step) body`. All three headers optional.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
        span: Span,
    },
    /// `while (cond) body`.
    While {
        cond: Expr,
        body: Vec<Stmt>,
        span: Span,
    },
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// `return;` (kernels are `void`, so no value).
    Return(Span),
    /// A bare block `{ ... }`.
    Block(Vec<Stmt>, Span),
}

impl Stmt {
    /// The source span of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Break(span)
            | Stmt::Continue(span)
            | Stmt::Return(span)
            | Stmt::Block(_, span) => *span,
        }
    }
}

/// Compound-assignment operators (plain `=` is `Set`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    Set,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit {
        value: i64,
        unsigned: bool,
    },
    FloatLit(f64),
    BoolLit(bool),
    Ident(String),
    /// `a OP b`.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `OP a`.
    Unary {
        op: UnOp,
        operand: Box<Expr>,
    },
    /// `name(args...)` — builtins only; the language has no user functions.
    Call {
        name: String,
        args: Vec<Expr>,
    },
    /// `buf[index]`.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    /// `(T) expr`.
    Cast {
        ty: TypeName,
        operand: Box<Expr>,
    },
    /// `cond ? a : b`.
    Ternary {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stmt_span_accessor_covers_all_variants() {
        let s = Span::new(1, 2);
        let e = Expr {
            kind: ExprKind::BoolLit(true),
            span: s,
        };
        let all = vec![
            Stmt::Break(s),
            Stmt::Continue(s),
            Stmt::Return(s),
            Stmt::Block(vec![], s),
            Stmt::While {
                cond: e,
                body: vec![],
                span: s,
            },
        ];
        for st in all {
            assert_eq!(st.span(), s);
        }
    }
}
