//! The typed, INSPIRE-like intermediate representation.
//!
//! The IR mirrors the structured form of the source (it is not a CFG — the
//! bytecode compiler lowers it to basic blocks), but every expression node
//! carries its resolved [`ScalarType`], every name is resolved to a
//! [`VarId`] or [`ParamId`], and all implicit conversions have been made
//! explicit as [`ExprKind::Cast`] nodes. All analyses (static features,
//! access ranges) and the bytecode compiler consume this form.

use serde::{Deserialize, Serialize};

pub use crate::ast::{BinOp, UnOp};
use crate::builtins::Builtin;

/// Scalar value types of the kernel language.
///
/// `Int`/`UInt` are 32-bit; `Float` is `f32` in buffers and computed in
/// `f64` registers (matching how scalar OpenCL code runs on CPUs, and a
/// strict superset of `f32` precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarType {
    Int,
    UInt,
    Float,
    Bool,
}

impl ScalarType {
    /// Whether this type participates in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, ScalarType::Int | ScalarType::UInt | ScalarType::Float)
    }

    /// Whether this type is an integer type.
    pub fn is_integer(self) -> bool {
        matches!(self, ScalarType::Int | ScalarType::UInt)
    }

    /// Size in bytes of one element of this type in a buffer.
    pub fn size_bytes(self) -> usize {
        4
    }

    /// Name as written in source.
    pub fn name(self) -> &'static str {
        match self {
            ScalarType::Int => "int",
            ScalarType::UInt => "uint",
            ScalarType::Float => "float",
            ScalarType::Bool => "bool",
        }
    }
}

/// Index of a local variable within a kernel (unique across scopes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Index of a kernel parameter (position in the signature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub u32);

/// A kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub kind: ParamKind,
}

/// Buffer or scalar parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// A `global` pointer; `is_const` means the kernel may not store to it.
    Buffer { elem: ScalarType, is_const: bool },
    /// A scalar passed by value.
    Scalar(ScalarType),
}

impl ParamKind {
    /// Element type for buffers, value type for scalars.
    pub fn scalar_type(self) -> ScalarType {
        match self {
            ParamKind::Buffer { elem, .. } => elem,
            ParamKind::Scalar(t) => t,
        }
    }

    /// Whether this is a buffer parameter.
    pub fn is_buffer(self) -> bool {
        matches!(self, ParamKind::Buffer { .. })
    }
}

/// A type-checked kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
    /// Type of each declared local variable, indexed by [`VarId`].
    pub var_types: Vec<ScalarType>,
}

impl Kernel {
    /// Indices of the buffer parameters, in signature order.
    pub fn buffer_params(&self) -> impl Iterator<Item = ParamId> + '_ {
        self.params
            .iter()
            .enumerate()
            .filter(|(_, p)| p.kind.is_buffer())
            .map(|(i, _)| ParamId(i as u32))
    }

    /// Number of buffer parameters.
    pub fn num_buffers(&self) -> usize {
        self.buffer_params().count()
    }

    /// Look up a parameter.
    pub fn param(&self, id: ParamId) -> &Param {
        &self.params[id.0 as usize]
    }
}

/// Typed statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Declare local `var` and initialize it.
    Decl {
        var: VarId,
        init: Expr,
    },
    /// `var = value` (compound assignments are desugared).
    AssignVar {
        var: VarId,
        value: Expr,
    },
    /// `buf[index] = value`.
    Store {
        buf: ParamId,
        index: Expr,
        value: Expr,
    },
    /// Two-armed conditional; either arm may be empty.
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// Structured `for` (kept structured so the access analysis can bound
    /// the induction variable).
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    /// `while (cond) body`.
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    Break,
    Continue,
    Return,
    /// Scoped block.
    Block(Vec<Stmt>),
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub ty: ScalarType,
}

impl Expr {
    /// Shorthand constructor.
    pub fn new(kind: ExprKind, ty: ScalarType) -> Self {
        Self { kind, ty }
    }

    /// An `Int` constant.
    pub fn int(v: i64) -> Self {
        Self::new(ExprKind::IntConst(v), ScalarType::Int)
    }
}

/// Typed expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer constant (`Int` or `UInt` per the node type).
    IntConst(i64),
    /// Float constant.
    FloatConst(f64),
    /// Boolean constant.
    BoolConst(bool),
    /// Read a local variable.
    Var(VarId),
    /// Read a scalar parameter.
    Param(ParamId),
    /// `get_global_id(dim)`.
    GlobalId(u8),
    /// `get_global_size(dim)`.
    GlobalSize(u8),
    /// Binary operation; operand type is `lhs.ty` (both sides equal after
    /// promotion), except shifts where `rhs` is `Int`.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// Explicit or compiler-inserted conversion to the node's type.
    Cast(Box<Expr>),
    /// `buf[index]` read; `index` is `Int`.
    Load { buf: ParamId, index: Box<Expr> },
    /// Builtin call.
    Call { f: Builtin, args: Vec<Expr> },
    /// `cond ? then : els` — short-circuit (only the chosen arm executes).
    Select {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
}

/// An N-dimensional launch range (1, 2 or 3 dimensions).
///
/// `dims[0]` is the innermost (x) dimension; partitioning always splits the
/// **last** (outermost) dimension, which for row-major 2D kernels yields
/// contiguous row blocks.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NdRange {
    dims: Vec<usize>,
}

impl NdRange {
    /// Create a range with the given per-dimension sizes (1–3 dims, all
    /// non-zero).
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            (1..=3).contains(&dims.len()),
            "NdRange must have 1..=3 dimensions, got {}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "NdRange dimensions must be non-zero"
        );
        Self {
            dims: dims.to_vec(),
        }
    }

    /// 1-D range.
    pub fn d1(n: usize) -> Self {
        Self::new(&[n])
    }

    /// 2-D range (`x` innermost, `y` outermost).
    pub fn d2(x: usize, y: usize) -> Self {
        Self::new(&[x, y])
    }

    /// Per-dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Size of dimension `d` (1 for dimensions beyond the rank, matching
    /// OpenCL's `get_global_size` behaviour).
    pub fn dim(&self, d: usize) -> usize {
        self.dims.get(d).copied().unwrap_or(1)
    }

    /// Total number of work-items.
    pub fn total(&self) -> usize {
        self.dims.iter().product()
    }

    /// The dimension along which partitioning splits this range.
    pub fn split_dim(&self) -> usize {
        self.dims.len() - 1
    }

    /// Extent of the split dimension.
    pub fn split_extent(&self) -> usize {
        self.dims[self.split_dim()]
    }

    /// Work-items per unit of the split dimension.
    pub fn items_per_slice(&self) -> usize {
        self.total() / self.split_extent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndrange_basics() {
        let r = NdRange::d2(8, 4);
        assert_eq!(r.total(), 32);
        assert_eq!(r.split_dim(), 1);
        assert_eq!(r.split_extent(), 4);
        assert_eq!(r.items_per_slice(), 8);
        assert_eq!(r.dim(0), 8);
        assert_eq!(r.dim(2), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn ndrange_rejects_zero_dim() {
        NdRange::new(&[4, 0]);
    }

    #[test]
    #[should_panic(expected = "1..=3")]
    fn ndrange_rejects_rank_4() {
        NdRange::new(&[1, 1, 1, 1]);
    }

    #[test]
    fn scalar_type_properties() {
        assert!(ScalarType::Float.is_numeric());
        assert!(!ScalarType::Bool.is_numeric());
        assert!(ScalarType::UInt.is_integer());
        assert!(!ScalarType::Float.is_integer());
        assert_eq!(ScalarType::Int.size_bytes(), 4);
        assert_eq!(ScalarType::Float.name(), "float");
    }

    #[test]
    fn param_kind_helpers() {
        let b = ParamKind::Buffer {
            elem: ScalarType::Float,
            is_const: true,
        };
        assert!(b.is_buffer());
        assert_eq!(b.scalar_type(), ScalarType::Float);
        let s = ParamKind::Scalar(ScalarType::Int);
        assert!(!s.is_buffer());
    }
}
