//! Typed IR verifier.
//!
//! Runs after every optimizer pass (and once more after register
//! allocation + pre-decoding) when [`verify_enabled`] says so, and turns
//! a miscompile into a [`CompileError`] naming the offending pass, block,
//! and instruction — instead of a wrong answer caught (or missed) later
//! by the differential suite.
//!
//! Checks, in order of how often passes have historically broken them:
//!
//! - **terminator targets** point at existing blocks
//! - **operand kinds**: buffer operands name buffer params of the right
//!   element class (F-ops on float buffers, I-ops on int/uint buffers),
//!   `GlobalId`/`GlobalSize` dims are `< 3`
//! - **register-file bounds**: every register read or written (including
//!   by terminators) fits the function's allocated register files
//! - **histogram-vs-body consistency**: each block's cached
//!   [`OpHistogram`] matches a recount of its instruction list — the
//!   dynamic statistics the partition predictor trains on depend on it
//! - **decode-table agreement**: the pre-decoded direct-threaded program
//!   equals a fresh re-decode of the enum blocks

use crate::bytecode::{Block, FnParam, Function, Instr};
use crate::cfg::{reg_def, reg_uses, term_uses};
use crate::error::CompileError;
use crate::ir::{ParamKind, ScalarType};

/// Whether IR verification is on: `INSPIRE_VERIFY` (any value but `0`)
/// forces it; otherwise it follows `debug_assertions`.
pub fn verify_enabled() -> bool {
    match std::env::var("INSPIRE_VERIFY") {
        Ok(v) => v != "0",
        Err(_) => cfg!(debug_assertions),
    }
}

fn err(pass: &str, func: &str, detail: String) -> CompileError {
    CompileError::verify(format!("[{pass}] {func}: {detail}"))
}

/// Structural verification of a block list mid-pipeline, before register
/// allocation fixes the register-file sizes. `n_iregs`/`n_fregs` bound
/// the register checks; pass `u16::MAX` when the files are not yet
/// allocated.
pub fn verify_blocks(
    pass: &str,
    func: &str,
    blocks: &[Block],
    params: &[FnParam],
    n_iregs: u16,
    n_fregs: u16,
) -> Result<(), CompileError> {
    let n_blocks = blocks.len() as u32;
    if n_blocks == 0 {
        return Err(err(pass, func, "function has no blocks".into()));
    }
    for (b, block) in blocks.iter().enumerate() {
        for (i, ins) in block.instrs.iter().enumerate() {
            let at =
                |what: String| err(pass, func, format!("block {b} instr {i} ({ins:?}): {what}"));
            // Register-file bounds (reads, then the def).
            let bad = std::cell::Cell::new(None::<(char, u16)>);
            reg_uses(
                ins,
                |r| {
                    if r >= n_iregs && bad.get().is_none() {
                        bad.set(Some(('i', r)));
                    }
                },
                |r| {
                    if r >= n_fregs && bad.get().is_none() {
                        bad.set(Some(('f', r)));
                    }
                },
            );
            if let Some((file, r)) = bad.get() {
                return Err(at(format!("reads {file}-register {r} out of range")));
            }
            if let Some((is_float, r)) = reg_def(ins) {
                let limit = if is_float { n_fregs } else { n_iregs };
                if r >= limit {
                    let file = if is_float { 'f' } else { 'i' };
                    return Err(at(format!("writes {file}-register {r} out of range")));
                }
            }
            // Operand kinds.
            match *ins {
                Instr::LoadF { buf, .. }
                | Instr::LoadI { buf, .. }
                | Instr::StoreF { buf, .. }
                | Instr::StoreI { buf, .. } => {
                    let Some(p) = params.get(buf as usize) else {
                        return Err(at(format!(
                            "buffer operand {buf} out of range ({} params)",
                            params.len()
                        )));
                    };
                    let ParamKind::Buffer { elem, .. } = p.kind else {
                        return Err(at(format!("buffer operand {buf} is a scalar param")));
                    };
                    let wants_float = matches!(ins, Instr::LoadF { .. } | Instr::StoreF { .. });
                    let is_float = elem == ScalarType::Float;
                    if wants_float != is_float {
                        return Err(at(format!(
                            "element class mismatch on buffer {buf} ({elem:?})"
                        )));
                    }
                }
                Instr::GlobalId { dim, .. } | Instr::GlobalSize { dim, .. } if dim >= 3 => {
                    return Err(at(format!("dimension {dim} out of range")));
                }
                _ => {}
            }
        }
        // Terminator: register bounds and target validity.
        let bad = std::cell::Cell::new(None::<(char, u16)>);
        term_uses(
            &block.term,
            |r| {
                if r >= n_iregs && bad.get().is_none() {
                    bad.set(Some(('i', r)));
                }
            },
            |r| {
                if r >= n_fregs && bad.get().is_none() {
                    bad.set(Some(('f', r)));
                }
            },
        );
        if let Some((file, r)) = bad.get() {
            return Err(err(
                pass,
                func,
                format!(
                    "block {b} terminator ({:?}): reads {file}-register {r} out of range",
                    block.term
                ),
            ));
        }
        for t in crate::analysis::term_targets(&block.term) {
            if t >= n_blocks {
                return Err(err(
                    pass,
                    func,
                    format!(
                        "block {b} terminator ({:?}): target {t} out of range ({n_blocks} blocks)",
                        block.term
                    ),
                ));
            }
        }
        // Histogram consistency.
        let mut fresh = block.clone();
        fresh.recompute_histo(params.len());
        if fresh.histo != block.histo {
            return Err(err(
                pass,
                func,
                format!(
                    "block {b}: stale histogram (cached {:?}, recounted {:?})",
                    block.histo, fresh.histo
                ),
            ));
        }
    }
    Ok(())
}

/// Full verification of a finished [`Function`]: structural checks
/// against the allocated register files, plus agreement between the
/// cached pre-decoded program and a fresh re-decode of the enum blocks.
pub fn verify_function(pass: &str, f: &Function) -> Result<(), CompileError> {
    verify_blocks(pass, &f.name, &f.blocks, &f.params, f.n_iregs, f.n_fregs)?;
    if let Some(dec) = &f.decoded {
        let fresh = crate::opt::decode::decode(&f.blocks);
        if *dec != fresh {
            // Name the first differing op so the diagnostic is actionable.
            let detail = dec
                .ops
                .iter()
                .zip(fresh.ops.iter())
                .position(|(a, b)| a != b)
                .map(|i| {
                    format!(
                        "first differing op at index {i}: cached {:?} vs re-decoded {:?}",
                        dec.ops[i], fresh.ops[i]
                    )
                })
                .unwrap_or_else(|| "op arrays differ in length or spans/terms/costs differ".into());
            return Err(err(
                pass,
                &f.name,
                format!("pre-decoded program disagrees with re-decode: {detail}"),
            ));
        }
        // The decoded spans/terms must cover exactly the same block
        // structure the engines will walk.
        if dec.spans.len() != f.blocks.len() {
            return Err(err(
                pass,
                &f.name,
                format!(
                    "decoded span count {} != block count {}",
                    dec.spans.len(),
                    f.blocks.len()
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{OptLevel, RegAlloc};

    fn compiled(src: &str) -> Function {
        let tokens = crate::lexer::lex(src).expect("lex");
        let program = crate::parser::parse(&tokens).expect("parse");
        let ir = crate::sema::analyze(&program.kernels[0]).expect("sema");
        crate::bytecode::compile_with_modes(&ir, OptLevel::Full, RegAlloc::On).expect("bytecode")
    }

    const K: &str = "kernel void k(global float* o, global const float* a, int n) {\n\
                     int i = get_global_id(0);\n\
                     if (i < n) { o[i] = a[i] * 2.0f; }\n\
                     }";

    #[test]
    fn accepts_well_formed() {
        let f = compiled(K);
        verify_function("test", &f).expect("verifies");
    }

    #[test]
    fn rejects_decode_disagreement() {
        let mut f = compiled(K);
        let dec = f.decoded.as_mut().expect("decoded tier present");
        // Corrupt one pre-decoded register operand; the enum blocks stay
        // intact, so a re-decode must disagree.
        dec.ops[0].dst ^= 1;
        let e = verify_function("test", &f).expect_err("must reject");
        assert!(
            e.message.contains("disagrees with re-decode"),
            "{}",
            e.message
        );
    }
}
