//! Static analyses over the compiled bytecode.
//!
//! A small forward-dataflow framework ([`ForwardAnalysis`] / [`solve`])
//! over the basic blocks and the cached [`CfgInfo`](crate::cfg::CfgInfo),
//! with three clients:
//!
//! - [`verify`] — a typed IR checker that runs after every optimizer pass
//!   (under `debug_assertions`, or when `INSPIRE_VERIFY=1`) and turns
//!   miscompiles into compile-time diagnostics naming the offending pass
//!   and instruction.
//! - [`bounds`] — launch-seeded interval abstract interpretation (with
//!   widening at loop headers and branch-condition narrowing) that proves
//!   buffer accesses in bounds, letting both VM engines elide per-access
//!   bounds checks (`INSPIRE_BOUNDS_ELIDE=0` restores the checked paths).
//! - [`uniform`] — gid/load taint plus control-dependence propagation
//!   that classifies every branch as work-item-uniform or divergent,
//!   feeding the partition predictor's static feature vector.
//!
//! The framework is deliberately minimal: states are per-block *entry*
//! facts, joined over incoming edges, transferred through instruction
//! lists, and optionally refined along terminator edges (branch-condition
//! narrowing). Widening is delegated to the client so finite-height
//! domains (taint) pay nothing for it.

pub mod bounds;
pub mod uniform;
pub mod verify;

use crate::bytecode::{Block, Instr, Terminator};

/// A forward dataflow problem over basic blocks.
pub trait ForwardAnalysis {
    /// Per-block-entry abstract state.
    type State: Clone;

    /// Entry state of block 0 (function boundary).
    fn boundary(&self) -> Self::State;

    /// `into ⊔= from`; returns whether `into` changed.
    fn join(&self, into: &mut Self::State, from: &Self::State) -> bool;

    /// Widening applied at blocks whose entry state keeps changing (loop
    /// headers): accelerate `next` with respect to the previous state
    /// `prev`. The default is no acceleration, which is fine for
    /// finite-height domains.
    fn widen(&self, _next: &mut Self::State, _prev: &Self::State) {}

    /// Transfer one instruction in place (`block`/`idx` locate it for
    /// clients that record per-site facts).
    fn transfer_instr(&self, ins: &Instr, block: usize, idx: usize, state: &mut Self::State);

    /// Refine the out-state along one terminator edge (`succ_idx` is the
    /// position in [`term_targets`]'s order: 0 = jump target / `then`,
    /// 1 = `els`). Default: no refinement.
    fn transfer_edge(
        &self,
        _term: &Terminator,
        _succ_idx: usize,
        _block: usize,
        _state: &mut Self::State,
    ) {
    }
}

/// Successor blocks of a terminator, in edge order (`then` before `els`).
pub fn term_targets(term: &Terminator) -> impl Iterator<Item = u32> + '_ {
    let (a, b) = match *term {
        Terminator::Jump(t) => (Some(t), None),
        Terminator::Branch { then, els, .. } | Terminator::BranchCmp { then, els, .. } => {
            (Some(then), Some(els))
        }
        Terminator::Ret => (None, None),
    };
    a.into_iter().chain(b)
}

/// After how many joins that change a block's entry state the solver
/// starts widening it. Two plain iterations let short ascending chains
/// (e.g. `[0,0] ⊔ [1,1]`) settle exactly before bounds get thrown away.
const WIDEN_AFTER: u32 = 2;

/// Narrowing sweeps run after the widened fixpoint. Decreasing iteration
/// from a post-fixpoint is sound for monotone transfers; two sweeps
/// recover loop-header bounds cut by branch conditions.
const NARROW_SWEEPS: usize = 2;

/// Solve a forward dataflow problem to a (widened, then narrowed)
/// fixpoint. Returns the entry state of every block; `None` marks blocks
/// the analysis proved unreachable from the entry.
pub fn solve<A: ForwardAnalysis>(a: &A, blocks: &[Block]) -> Vec<Option<A::State>> {
    let n = blocks.len();
    let mut in_states: Vec<Option<A::State>> = vec![None; n];
    if n == 0 {
        return in_states;
    }
    in_states[0] = Some(a.boundary());
    let mut change_count = vec![0u32; n];
    let mut dirty = vec![false; n];
    let mut worklist: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    worklist.push_back(0);
    dirty[0] = true;

    while let Some(b) = worklist.pop_front() {
        dirty[b] = false;
        let Some(mut state) = in_states[b].clone() else {
            continue;
        };
        for (idx, ins) in blocks[b].instrs.iter().enumerate() {
            a.transfer_instr(ins, b, idx, &mut state);
        }
        for (succ_idx, target) in term_targets(&blocks[b].term).enumerate() {
            let t = target as usize;
            let mut out = state.clone();
            a.transfer_edge(&blocks[b].term, succ_idx, b, &mut out);
            let changed = match &mut in_states[t] {
                Some(existing) => {
                    let prev = existing.clone();
                    let mut changed = a.join(existing, &out);
                    if changed && change_count[t] >= WIDEN_AFTER {
                        a.widen(existing, &prev);
                        changed = true;
                    }
                    changed
                }
                slot @ None => {
                    *slot = Some(out);
                    true
                }
            };
            if changed {
                change_count[t] += 1;
                if !dirty[t] {
                    dirty[t] = true;
                    worklist.push_back(t);
                }
            }
        }
    }

    // Narrowing: recompute entry states from predecessors without joining
    // into the old value. The widened solution is a post-fixpoint, so
    // plain decreasing iteration stays a sound over-approximation while
    // clawing back the bounds branch conditions establish.
    for _ in 0..NARROW_SWEEPS {
        for b in 0..n {
            if b == 0 {
                continue; // The boundary state is not recomputed.
            }
            if in_states[b].is_none() {
                continue;
            }
            let mut new_in: Option<A::State> = None;
            for p in 0..n {
                let Some(pin) = in_states[p].clone() else {
                    continue;
                };
                let mut pstate = pin;
                for (idx, ins) in blocks[p].instrs.iter().enumerate() {
                    a.transfer_instr(ins, p, idx, &mut pstate);
                }
                for (succ_idx, target) in term_targets(&blocks[p].term).enumerate() {
                    if target as usize != b {
                        continue;
                    }
                    let mut out = pstate.clone();
                    a.transfer_edge(&blocks[p].term, succ_idx, p, &mut out);
                    match &mut new_in {
                        Some(acc) => {
                            a.join(acc, &out);
                        }
                        slot @ None => *slot = Some(out),
                    }
                }
            }
            if new_in.is_some() {
                in_states[b] = new_in;
            }
        }
    }
    in_states
}

/// Walk a solved analysis over every reachable instruction, invoking
/// `visit` with the state holding *before* each instruction executes.
/// This is how clients extract per-site facts after [`solve`].
pub fn visit_sites<A: ForwardAnalysis>(
    a: &A,
    blocks: &[Block],
    in_states: &[Option<A::State>],
    mut visit: impl FnMut(usize, usize, &Instr, &A::State),
) {
    for (b, block) in blocks.iter().enumerate() {
        let Some(entry) = &in_states[b] else {
            continue;
        };
        let mut state = entry.clone();
        for (idx, ins) in block.instrs.iter().enumerate() {
            visit(b, idx, ins, &state);
            a.transfer_instr(ins, b, idx, &mut state);
        }
    }
}
