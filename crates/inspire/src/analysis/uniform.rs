//! Static uniformity / divergence analysis.
//!
//! Classifies every branch in the compiled bytecode as **work-item
//! uniform** (all work-items of a launch take the same direction) or
//! **potentially divergent**. A value is divergent when it depends on
//! `get_global_id` — directly, through arithmetic, through a load whose
//! *index* is divergent (different work-items read different elements),
//! or through **control dependence**: any value defined inside the
//! influence region of a divergent branch (the blocks between the branch
//! and its immediate post-dominator) differs across work-items that took
//! different paths.
//!
//! The counts feed the partition predictor's static feature vector
//! ([`crate::features::StaticFeatures`]), and a kernel with *zero*
//! divergent branches lets the runtime skip the dynamic divergence probe
//! entirely: per-item operation counts are then provably identical, so
//! `ops_cv` is exactly 0.
//!
//! Registers are treated flow-insensitively (a register is divergent if
//! any reachable definition of it is) — sound, and precise enough after
//! register allocation keeps disjoint live ranges apart.

use crate::bytecode::{Function, Instr, Terminator};
use crate::cfg::{reg_def, reg_uses, term_uses, NO_POST_DOM};

/// Per-function uniformity facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformityFacts {
    /// Conditional branches whose condition is gid-uniform.
    pub uniform_branches: u32,
    /// Conditional branches whose condition may diverge across work-items.
    pub divergent_branches: u32,
    /// Per-block: does the block end in a divergent conditional branch?
    pub divergent_term: Vec<bool>,
}

impl UniformityFacts {
    /// Whether every work-item provably executes the same instruction
    /// sequence (no divergent branch anywhere).
    pub fn fully_uniform(&self) -> bool {
        self.divergent_branches == 0
    }
}

struct Taint {
    i: Vec<bool>,
    f: Vec<bool>,
}

impl Taint {
    fn instr_input_divergent(&self, ins: &Instr) -> bool {
        match *ins {
            // The divergence source.
            Instr::GlobalId { .. } => true,
            // A load is divergent iff its index is: a uniform index means
            // every work-item reads the same element.
            Instr::LoadF { idx, .. } | Instr::LoadI { idx, .. } => self.i[idx as usize],
            _ => {
                let tainted = std::cell::Cell::new(false);
                reg_uses(
                    ins,
                    |r| tainted.set(tainted.get() | self.i[r as usize]),
                    |r| tainted.set(tainted.get() | self.f[r as usize]),
                );
                tainted.get()
            }
        }
    }

    fn term_divergent(&self, term: &Terminator) -> bool {
        let tainted = std::cell::Cell::new(false);
        term_uses(
            term,
            |r| tainted.set(tainted.get() | self.i[r as usize]),
            |r| tainted.set(tainted.get() | self.f[r as usize]),
        );
        tainted.get()
    }
}

/// Blocks strictly between `block`'s successors and its immediate
/// post-dominator — the region whose execution depends on the branch
/// direction. `NO_POST_DOM` (no common post-dominator) taints every
/// block reachable from the successors.
fn influence_region(f: &Function, block: usize) -> Vec<usize> {
    let stop = f.cfg.ipdom[block];
    let mut seen = vec![false; f.blocks.len()];
    let mut stack: Vec<u32> = f.cfg.succs[block].clone();
    let mut region = Vec::new();
    while let Some(b) = stack.pop() {
        if (stop != NO_POST_DOM && b == stop) || seen[b as usize] {
            continue;
        }
        seen[b as usize] = true;
        region.push(b as usize);
        stack.extend_from_slice(&f.cfg.succs[b as usize]);
    }
    region
}

/// Run the uniformity analysis over a compiled function.
pub fn analyze(f: &Function) -> UniformityFacts {
    let mut t = Taint {
        i: vec![false; f.n_iregs as usize],
        f: vec![false; f.n_fregs as usize],
    };
    // Fixpoint: data taint and control-dependence taint feed each other
    // (a divergent branch taints defs in its region, which may make more
    // branches divergent).
    loop {
        let mut changed = false;
        for block in &f.blocks {
            for ins in &block.instrs {
                let Some((is_float, r)) = reg_def(ins) else {
                    continue;
                };
                let already = if is_float {
                    t.f[r as usize]
                } else {
                    t.i[r as usize]
                };
                if !already && t.instr_input_divergent(ins) {
                    if is_float {
                        t.f[r as usize] = true;
                    } else {
                        t.i[r as usize] = true;
                    }
                    changed = true;
                }
            }
        }
        for (b, block) in f.blocks.iter().enumerate() {
            if !matches!(
                block.term,
                Terminator::Branch { .. } | Terminator::BranchCmp { .. }
            ) || !t.term_divergent(&block.term)
            {
                continue;
            }
            for r in influence_region(f, b) {
                for ins in &f.blocks[r].instrs {
                    if let Some((is_float, reg)) = reg_def(ins) {
                        let slot = if is_float {
                            &mut t.f[reg as usize]
                        } else {
                            &mut t.i[reg as usize]
                        };
                        if !*slot {
                            *slot = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut uniform = 0u32;
    let mut divergent = 0u32;
    let mut divergent_term = vec![false; f.blocks.len()];
    for (b, block) in f.blocks.iter().enumerate() {
        if !matches!(
            block.term,
            Terminator::Branch { .. } | Terminator::BranchCmp { .. }
        ) {
            continue;
        }
        if t.term_divergent(&block.term) {
            divergent += 1;
            divergent_term[b] = true;
        } else {
            uniform += 1;
        }
    }
    UniformityFacts {
        uniform_branches: uniform,
        divergent_branches: divergent,
        divergent_term,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{OptLevel, RegAlloc};

    fn compiled(src: &str, level: OptLevel) -> Function {
        let tokens = crate::lexer::lex(src).expect("lex");
        let program = crate::parser::parse(&tokens).expect("parse");
        let ir = crate::sema::analyze(&program.kernels[0]).expect("sema");
        crate::bytecode::compile_with_modes(&ir, level, RegAlloc::On).expect("bytecode")
    }

    #[test]
    fn gid_guard_is_divergent() {
        let f = compiled(
            "kernel void k(global float* o, int n) {\n\
             int i = get_global_id(0);\n\
             if (i < n) { o[i] = 1.0; }\n\
             }",
            OptLevel::Full,
        );
        let u = analyze(&f);
        assert!(u.divergent_branches >= 1);
        assert!(!u.fully_uniform());
    }

    #[test]
    fn scalar_arg_loop_is_uniform() {
        let f = compiled(
            "kernel void k(global float* o, int n) {\n\
             int i = get_global_id(0);\n\
             float s = 0.0;\n\
             for (int j = 0; j < n; j++) { s += 2.0; }\n\
             o[i] = s;\n\
             }",
            OptLevel::Full,
        );
        let u = analyze(&f);
        assert_eq!(u.divergent_branches, 0, "{u:?}");
        assert!(u.fully_uniform());
    }

    #[test]
    fn control_dependence_propagates_divergence() {
        // `x` is assigned under a gid-dependent branch, so the later
        // branch on `x` is divergent even though no gid flows into it
        // as data.
        let f = compiled(
            "kernel void k(global float* o, int n) {\n\
             int i = get_global_id(0);\n\
             int x = 0;\n\
             if (i < n) { x = 1; }\n\
             if (x > 0) { o[0] = 1.0; }\n\
             }",
            OptLevel::None,
        );
        let u = analyze(&f);
        assert!(u.divergent_branches >= 2, "{u:?}");
    }
}
