//! Launch-seeded interval bounds analysis over the bytecode.
//!
//! This ports the AST-level interval machinery in [`crate::access`] to an
//! abstract interpretation of the *optimized bytecode* — the code the VM
//! actually executes, after constant folding, fusion, and register
//! allocation have rewritten it. The abstract state maps every I-file
//! register to an [`Interval`]; `get_global_id` and scalar arguments are
//! seeded from the concrete launch, loop headers are widened by the
//! framework solver, and branch conditions narrow register ranges along
//! the edges they guard.
//!
//! The product is a per-load/store *provably-in-bounds* fact, folded into
//! a per-parameter elision bitmask ([`BoundsFacts::elide`]): bit `p` is
//! set when **every** access site on parameter `p` is proven inside the
//! bound buffer. Both VM engines consult the mask to skip per-access
//! bounds checks (the row-traffic cost PR 8 identified), and the same
//! per-site intervals are exported as [`BufferRange`]s so the bytecode
//! ranges can be checked against (or refine) the AST-level
//! `access_ranges` the runtime uses for transfer sizing.
//!
//! # Soundness
//!
//! Every VM integer result passes through `wrap32` (canonical 32-bit,
//! sign- or zero-extended into `i64`). The abstract counterpart computes
//! the exact `i64` interval of the operation and keeps it only when it
//! already lies inside the canonical range — otherwise it falls back to
//! the full canonical range (NOT ⊤: `wrap32` output always lies there).
//! `Mul` may overflow `i64` in the exact interval (`checked_mul` → ⊤),
//! but `wrap32(wrapping_mul)` is still congruent mod 2³², so the
//! canonical fallback remains a sound over-approximation.

use crate::access::{BufferRange, Interval};
use crate::analysis::{solve, visit_sites, ForwardAnalysis};
use crate::bytecode::{Function, IBinOp, Instr, Terminator};
use crate::ir::{NdRange, ParamKind, ScalarType};
use crate::vm::{ArgValue, BufferData};

/// Canonical 32-bit value range for a signedness.
fn canon(unsigned: bool) -> Interval {
    if unsigned {
        Interval::Range(0, i64::from(u32::MAX))
    } else {
        Interval::Range(i64::from(i32::MIN), i64::from(i32::MAX))
    }
}

/// Abstract counterpart of `vm::wrap32`: keep the exact interval when it
/// is already canonical, otherwise fall back to the canonical range.
fn wrap_check(iv: Interval, unsigned: bool) -> Interval {
    let c = canon(unsigned);
    match (iv, c) {
        (Interval::Range(lo, hi), Interval::Range(clo, chi)) if lo >= clo && hi <= chi => iv,
        _ => c,
    }
}

/// Concrete launch context seeding the analysis. Built once per run
/// entry from the **full** [`NdRange`] (not the chunk — chunks of one
/// launch share the seed, so the facts hold for every chunk).
#[derive(Debug, Clone)]
pub struct LaunchSeed {
    /// Inclusive `get_global_id(d)` bounds per dimension.
    pub gid: [(i64, i64); 3],
    /// `get_global_size(d)` per dimension.
    pub gsize: [i64; 3],
    /// Exact integer scalar argument per parameter position.
    pub iscalars: Vec<Option<i64>>,
    /// Bound buffer length per parameter position.
    pub buf_len: Vec<Option<u64>>,
}

impl LaunchSeed {
    /// Build a seed from a launch. Returns `None` when the arguments do
    /// not match the signature (the run entry will fault before any
    /// access anyway).
    pub fn from_launch(
        f: &Function,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &[BufferData],
    ) -> Option<LaunchSeed> {
        if args.len() != f.params.len() {
            return None;
        }
        let mut gid = [(0i64, 0i64); 3];
        let mut gsize = [1i64; 3];
        for d in 0..3 {
            let n = nd.dim(d) as i64;
            gid[d] = (0, (n - 1).max(0));
            gsize[d] = n;
        }
        let mut iscalars = vec![None; f.params.len()];
        let mut buf_len = vec![None; f.params.len()];
        for (p, (fp, arg)) in f.params.iter().zip(args.iter()).enumerate() {
            match (fp.kind, arg) {
                (ParamKind::Scalar(ScalarType::Int), ArgValue::Int(v)) => {
                    iscalars[p] = Some(i64::from(*v));
                }
                (ParamKind::Scalar(ScalarType::UInt), ArgValue::UInt(v)) => {
                    iscalars[p] = Some(i64::from(*v));
                }
                (ParamKind::Buffer { .. }, ArgValue::Buffer(b)) => {
                    buf_len[p] = Some(bufs.get(*b)?.len() as u64);
                }
                (ParamKind::Scalar(ScalarType::Float), ArgValue::Float(_)) => {}
                _ => return None,
            }
        }
        Some(LaunchSeed {
            gid,
            gsize,
            iscalars,
            buf_len,
        })
    }
}

/// One load/store site and what the analysis proved about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteFact {
    /// Block containing the access.
    pub block: usize,
    /// Instruction index within the block.
    pub instr: usize,
    /// Parameter position of the accessed buffer.
    pub param: usize,
    /// Store (`true`) or load (`false`).
    pub is_store: bool,
    /// Interval of the index register at the site.
    pub idx: Interval,
    /// Whether `idx ⊆ [0, len)` for the bound buffer.
    pub in_bounds: bool,
}

/// The analysis result for one launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsFacts {
    /// Every reachable load/store site.
    pub sites: Vec<SiteFact>,
    /// Bit `p` set ⇔ every site on parameter `p` is provably in bounds
    /// (parameters beyond bit 63 never elide).
    pub elide: u64,
    /// Union of load-index intervals per parameter position.
    pub read: Vec<BufferRange>,
    /// Union of store-index intervals per parameter position.
    pub write: Vec<BufferRange>,
}

struct BoundsAnalysis<'a> {
    f: &'a Function,
    seed: &'a LaunchSeed,
}

type IState = Vec<Interval>;

impl BoundsAnalysis<'_> {
    /// Canonical range of values a `LoadI` from parameter `p` can yield.
    fn load_range(&self, p: usize) -> Interval {
        match self.f.params.get(p).map(|fp| fp.kind) {
            Some(ParamKind::Buffer {
                elem: ScalarType::UInt,
                ..
            }) => canon(true),
            _ => canon(false),
        }
    }

    /// Refine `a` and `b` under `a <op> b` being true. Missing entries
    /// (empty intersections = infeasible edge) leave the state unchanged,
    /// which is sound.
    fn refine_cmp(op: crate::bytecode::CmpOp, a: u16, b: u16, state: &mut IState) {
        use crate::bytecode::CmpOp::*;
        let (ia, ib) = (state[a as usize], state[b as usize]);
        // ⊤ participates as the full i64 range, so `i < n` still caps a
        // widened `i` even when the other side is unbounded.
        let full = |iv: Interval| match iv {
            Interval::Range(lo, hi) => (lo, hi),
            Interval::Top => (i64::MIN, i64::MAX),
        };
        let ((alo, ahi), (blo, bhi)) = (full(ia), full(ib));
        let (na, nb) = match op {
            Lt => (
                ia.intersect(Interval::Range(i64::MIN, bhi.saturating_sub(1))),
                ib.intersect(Interval::Range(alo.saturating_add(1), i64::MAX)),
            ),
            Le => (
                ia.intersect(Interval::Range(i64::MIN, bhi)),
                ib.intersect(Interval::Range(alo, i64::MAX)),
            ),
            Gt => (
                ia.intersect(Interval::Range(blo.saturating_add(1), i64::MAX)),
                ib.intersect(Interval::Range(i64::MIN, ahi.saturating_sub(1))),
            ),
            Ge => (
                ia.intersect(Interval::Range(blo, i64::MAX)),
                ib.intersect(Interval::Range(i64::MIN, ahi)),
            ),
            Eq => (ia.intersect(ib), ib.intersect(ia)),
            Ne => (Some(ia), Some(ib)),
        };
        if let Some(x) = na {
            state[a as usize] = x;
        }
        if let Some(x) = nb {
            state[b as usize] = x;
        }
    }
}

impl ForwardAnalysis for BoundsAnalysis<'_> {
    type State = IState;

    fn boundary(&self) -> IState {
        // Registers the VM does not initialize carry leftover values from
        // earlier work-items, so everything starts at ⊤ except the
        // dedicated scalar-parameter registers, which `bind_scalars`
        // writes before every run.
        let mut s = vec![Interval::Top; self.f.n_iregs as usize];
        for (p, fp) in self.f.params.iter().enumerate() {
            if let ParamKind::Scalar(t) = fp.kind {
                if t != ScalarType::Float {
                    let r = fp.reg as usize;
                    if r < s.len() {
                        s[r] = match self.seed.iscalars[p] {
                            Some(v) => Interval::exact(v),
                            None => canon(t == ScalarType::UInt),
                        };
                    }
                }
            }
        }
        s
    }

    fn join(&self, into: &mut IState, from: &IState) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from.iter()) {
            let j = a.union(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }

    fn widen(&self, next: &mut IState, prev: &IState) {
        for (n, p) in next.iter_mut().zip(prev.iter()) {
            *n = n.widen_from(*p);
        }
    }

    fn transfer_instr(&self, ins: &Instr, _block: usize, _idx: usize, s: &mut IState) {
        use Instr::*;
        let r = |s: &IState, r: u16| s[r as usize];
        let result: Option<(u16, Interval)> = match *ins {
            ConstI { dst, v } => Some((dst, Interval::exact(v))),
            MovI { dst, src } => Some((dst, r(s, src))),
            IBin {
                op,
                dst,
                a,
                b,
                unsigned,
            } => Some((dst, int_bin(op, r(s, a), r(s, b), unsigned))),
            IBinImm {
                op,
                dst,
                a,
                imm,
                unsigned,
            } => Some((dst, int_bin(op, r(s, a), Interval::exact(imm), unsigned))),
            CmpI { dst, .. } | CmpF { dst, .. } | NotI { dst, .. } => {
                Some((dst, Interval::Range(0, 1)))
            }
            NegI { dst, a, unsigned } => {
                Some((dst, wrap_check(Interval::exact(0).sub(r(s, a)), unsigned)))
            }
            BitNotI { dst, unsigned, .. } => Some((dst, canon(unsigned))),
            CastFI { dst, unsigned, .. } => Some((dst, canon(unsigned))),
            CastII {
                dst,
                a,
                to_unsigned,
            } => Some((dst, wrap_check(r(s, a), to_unsigned))),
            IMin { dst, a, b } => Some((dst, r(s, a).min_i(r(s, b)))),
            IMax { dst, a, b } => Some((dst, r(s, a).max_i(r(s, b)))),
            IAbs { dst, a } => {
                // |x| over an interval: reflect the negative part and
                // hull with the non-negative part, then wrap like the VM
                // (`wrap32(wrapping_abs, signed)`).
                let x = r(s, a);
                let refl = Interval::exact(0).sub(x);
                let abs = match x.union(refl).intersect(Interval::Range(0, i64::MAX)) {
                    Some(v) => v,
                    None => Interval::Top,
                };
                Some((dst, wrap_check(abs, false)))
            }
            GlobalId { dst, dim } => {
                let (lo, hi) = self.seed.gid[(dim as usize).min(2)];
                Some((dst, Interval::Range(lo, hi)))
            }
            GlobalSize { dst, dim } => {
                Some((dst, Interval::exact(self.seed.gsize[(dim as usize).min(2)])))
            }
            LoadI { dst, buf, .. } => Some((dst, self.load_range(buf as usize))),
            // Float-file defs and stores do not touch the I-state.
            ConstF { .. }
            | MovF { .. }
            | FBin { .. }
            | NegF { .. }
            | CastIF { .. }
            | Math1 { .. }
            | Math2 { .. }
            | LoadF { .. }
            | StoreF { .. }
            | StoreI { .. } => None,
        };
        if let Some((dst, iv)) = result {
            s[dst as usize] = iv;
        }
    }

    fn transfer_edge(&self, term: &Terminator, succ_idx: usize, _block: usize, s: &mut IState) {
        match *term {
            Terminator::Branch { cond, .. } => {
                let c = s[cond as usize];
                if succ_idx == 1 {
                    // `els` edge: the condition register is zero.
                    if let Some(z) = c.intersect(Interval::exact(0)) {
                        s[cond as usize] = z;
                    }
                } else if let Interval::Range(lo, hi) = c {
                    // `then` edge: nonzero — trim a zero endpoint.
                    if lo == 0 && hi > 0 {
                        s[cond as usize] = Interval::Range(1, hi);
                    } else if hi == 0 && lo < 0 {
                        s[cond as usize] = Interval::Range(lo, -1);
                    }
                }
            }
            Terminator::BranchCmp {
                op,
                float: false,
                a,
                b,
                ..
            } => {
                let op = if succ_idx == 1 { negate(op) } else { op };
                BoundsAnalysis::refine_cmp(op, a, b, s);
            }
            _ => {}
        }
    }
}

fn negate(op: crate::bytecode::CmpOp) -> crate::bytecode::CmpOp {
    use crate::bytecode::CmpOp::*;
    match op {
        Lt => Ge,
        Le => Gt,
        Gt => Le,
        Ge => Lt,
        Eq => Ne,
        Ne => Eq,
    }
}

/// Abstract transfer of `vm::int_bin`: exact `i64` interval of the
/// operation, wrap-checked against the canonical 32-bit range.
fn int_bin(op: IBinOp, x: Interval, y: Interval, unsigned: bool) -> Interval {
    use IBinOp::*;
    let exact = match op {
        Add => x.add(y),
        Sub => x.sub(y),
        Mul => x.mul(y),
        // Div/Rem fault on a zero divisor; `Interval::div`/`rem` already
        // require a zero-free divisor interval and go to ⊤ otherwise.
        // States after a fault never execute further instructions, so
        // over-approximating the non-faulting result is sound.
        Div => x.div(y),
        Rem => x.rem(y),
        // Both operands non-negative: `x & y <= min(x, y)` and `>= 0`.
        And => match (x, y) {
            (Interval::Range(a, b), Interval::Range(c, d)) if a >= 0 && c >= 0 => {
                Interval::Range(0, b.min(d))
            }
            _ => Interval::Top,
        },
        Or | Xor | Shl | Shr => Interval::Top,
    };
    wrap_check(exact, unsigned)
}

/// Run the bounds analysis for one launch.
pub fn analyze_launch(f: &Function, seed: &LaunchSeed) -> BoundsFacts {
    let analysis = BoundsAnalysis { f, seed };
    let states = solve(&analysis, &f.blocks);
    let n_params = f.params.len();
    let mut sites = Vec::new();
    let mut read = vec![BufferRange::Untouched; n_params];
    let mut write = vec![BufferRange::Untouched; n_params];
    visit_sites(&analysis, &f.blocks, &states, |block, instr, ins, state| {
        let (param, idx_reg, is_store) = match *ins {
            Instr::LoadF { buf, idx, .. } | Instr::LoadI { buf, idx, .. } => {
                (buf as usize, idx, false)
            }
            Instr::StoreF { buf, idx, .. } | Instr::StoreI { buf, idx, .. } => {
                (buf as usize, idx, true)
            }
            _ => return,
        };
        let idx = state[idx_reg as usize];
        let in_bounds = match (idx, seed.buf_len.get(param).copied().flatten()) {
            (Interval::Range(lo, hi), Some(len)) => lo >= 0 && (hi as u64) < len && hi >= 0,
            _ => false,
        };
        let range = if is_store { &mut write } else { &mut read };
        range[param].widen(idx);
        sites.push(SiteFact {
            block,
            instr,
            param,
            is_store,
            idx,
            in_bounds,
        });
    });
    let mut elide: u64 = 0;
    for p in 0..n_params.min(64) {
        if seed.buf_len[p].is_some() && sites.iter().filter(|s| s.param == p).all(|s| s.in_bounds) {
            elide |= 1 << p;
        }
    }
    BoundsFacts {
        sites,
        elide,
        read,
        write,
    }
}

/// Convenience wrapper: the elision mask for a launch, or 0 when the
/// arguments do not match the signature.
pub fn elide_mask(f: &Function, nd: &NdRange, args: &[ArgValue], bufs: &[BufferData]) -> u64 {
    match LaunchSeed::from_launch(f, nd, args, bufs) {
        Some(seed) => analyze_launch(f, &seed).elide,
        None => 0,
    }
}
