//! Pretty-printer for the typed IR, and a bytecode disassembler.
//!
//! Renders a [`Kernel`] back to kernel-language-like text with resolved
//! names and explicit casts — the INSPIRE-style "dump" used for debugging
//! analyses and in error reports. The output round-trips through the
//! compiler for every kernel of the benchmark suite (verified by tests):
//! pretty-printing then re-compiling yields a semantically identical
//! program.
//!
//! [`disasm`] renders compiled bytecode as one instruction per line. The
//! optimizer's `INSPIRE_DUMP_IR=1` per-pass dump uses the same renderer.

use std::fmt::Write;

use crate::ast::{BinOp, UnOp};
use crate::bytecode::{Block, CmpOp, FBinOp, Function, IBinOp, Instr, Terminator};
use crate::ir::{Expr, ExprKind, Kernel, ParamKind, Stmt};

/// Render a kernel to text.
pub fn pretty(kernel: &Kernel) -> String {
    // Pick a variable-name prefix that cannot collide with any parameter
    // (parameters keep their source names).
    let collides = |prefix: &str| {
        kernel.params.iter().any(|p| {
            p.name
                .strip_prefix(prefix)
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
        })
    };
    let mut prefix = "v".to_string();
    while collides(&prefix) {
        prefix.insert(0, '_');
    }
    let mut p = Printer {
        k: kernel,
        out: String::new(),
        indent: 0,
        prefix,
    };
    p.kernel();
    p.out
}

struct Printer<'a> {
    k: &'a Kernel,
    out: String,
    indent: usize,
    prefix: String,
}

impl<'a> Printer<'a> {
    fn kernel(&mut self) {
        let params: Vec<String> = self
            .k
            .params
            .iter()
            .map(|p| match p.kind {
                ParamKind::Buffer { elem, is_const } => {
                    let c = if is_const { "const " } else { "" };
                    format!("global {c}{}* {}", elem.name(), p.name)
                }
                ParamKind::Scalar(t) => format!("{} {}", t.name(), p.name),
            })
            .collect();
        let _ = writeln!(
            self.out,
            "kernel void {}({}) {{",
            self.k.name,
            params.join(", ")
        );
        self.indent = 1;
        for s in &self.k.body {
            self.stmt(s);
        }
        self.out.push_str("}\n");
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn var_name(&self, v: crate::ir::VarId) -> String {
        format!("{}{}", self.prefix, v.0)
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { var, init } => {
                let t = self.k.var_types[var.0 as usize].name();
                let line = format!("{t} {} = {};", self.var_name(*var), self.expr(init));
                self.line(&line);
            }
            Stmt::AssignVar { var, value } => {
                let line = format!("{} = {};", self.var_name(*var), self.expr(value));
                self.line(&line);
            }
            Stmt::Store { buf, index, value } => {
                let name = &self.k.params[buf.0 as usize].name;
                let line = format!("{name}[{}] = {};", self.expr(index), self.expr(value));
                self.line(&line);
            }
            Stmt::If { cond, then, els } => {
                let line = format!("if ({}) {{", self.expr(cond));
                self.line(&line);
                self.indent += 1;
                for s in then {
                    self.stmt(s);
                }
                self.indent -= 1;
                if els.is_empty() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.indent += 1;
                    for s in els {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                    self.line("}");
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let init_s = init.as_deref().map_or(String::new(), |s| self.simple(s));
                let cond_s = cond.as_ref().map_or(String::new(), |c| self.expr(c));
                let step_s = step.as_deref().map_or(String::new(), |s| self.simple(s));
                let line = format!("for ({init_s}; {cond_s}; {step_s}) {{");
                self.line(&line);
                self.indent += 1;
                for s in body {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line("}");
            }
            Stmt::While { cond, body } => {
                let line = format!("while ({}) {{", self.expr(cond));
                self.line(&line);
                self.indent += 1;
                for s in body {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line("}");
            }
            Stmt::Break => self.line("break;"),
            Stmt::Continue => self.line("continue;"),
            Stmt::Return => self.line("return;"),
            Stmt::Block(body) => {
                self.line("{");
                self.indent += 1;
                for s in body {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line("}");
            }
        }
    }

    /// A statement rendered without the trailing semicolon/newline (for
    /// `for` headers).
    fn simple(&mut self, s: &Stmt) -> String {
        match s {
            Stmt::Decl { var, init } => {
                let t = self.k.var_types[var.0 as usize].name();
                format!("{t} {} = {}", self.var_name(*var), self.expr(init))
            }
            Stmt::AssignVar { var, value } => {
                format!("{} = {}", self.var_name(*var), self.expr(value))
            }
            _ => String::from("/* complex */"),
        }
    }

    fn expr(&self, e: &Expr) -> String {
        match &e.kind {
            ExprKind::IntConst(v) => {
                if e.ty == crate::ir::ScalarType::UInt {
                    format!("{}u", *v as u32)
                } else if *v < 0 {
                    format!("(0 - {})", (i64::from(*v as i32)).unsigned_abs())
                } else {
                    format!("{v}")
                }
            }
            ExprKind::FloatConst(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v:e}")
                }
            }
            ExprKind::BoolConst(b) => b.to_string(),
            ExprKind::Var(v) => self.var_name(*v),
            ExprKind::Param(p) => self.k.params[p.0 as usize].name.clone(),
            ExprKind::GlobalId(d) => format!("get_global_id({d})"),
            ExprKind::GlobalSize(d) => format!("get_global_size({d})"),
            ExprKind::Binary { op, lhs, rhs } => {
                format!("({} {} {})", self.expr(lhs), binop_str(*op), self.expr(rhs))
            }
            ExprKind::Unary { op, operand } => {
                let o = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                };
                format!("({o}{})", self.expr(operand))
            }
            ExprKind::Cast(inner) => format!("({}){}", e.ty.name(), self.expr(inner)),
            ExprKind::Load { buf, index } => {
                format!(
                    "{}[{}]",
                    self.k.params[buf.0 as usize].name,
                    self.expr(index)
                )
            }
            ExprKind::Call { f, args } => {
                let rendered: Vec<String> = args.iter().map(|a| self.expr(a)).collect();
                format!("{}({})", f.name(), rendered.join(", "))
            }
            ExprKind::Select { cond, then, els } => format!(
                "({} ? {} : {})",
                self.expr(cond),
                self.expr(then),
                self.expr(els)
            ),
        }
    }
}

/// Disassemble compiled bytecode: a header line with the register-file
/// sizes, then every block with one instruction per line.
///
/// Register numbers are the final (allocated) ones: after the backend
/// tier runs, the blocks hold the renamed registers, so the listing shows
/// the allocation. When the function carries a pre-decoded program, each
/// block label is annotated with its span — the op offsets of the flat
/// direct-threaded array the hot loops actually execute (and the decoded
/// jump target of every edge into that block).
pub fn disasm(f: &Function) -> String {
    let spans = f.decoded.as_ref().map(|d| d.spans.as_slice());
    format!(
        "fn {}(params={}, iregs={}, fregs={})\n{}",
        f.name,
        f.params.len(),
        f.n_iregs,
        f.n_fregs,
        disasm_blocks_spanned(&f.blocks, spans)
    )
}

/// Disassemble a bare block list (used by the optimizer's per-pass dump,
/// where no [`Function`] exists yet).
pub(crate) fn disasm_blocks(blocks: &[Block]) -> String {
    disasm_blocks_spanned(blocks, None)
}

/// [`disasm_blocks`] with optional per-block decoded-op spans to annotate
/// the labels with (the `INSPIRE_DUMP_IR=1` after-regalloc dump uses it).
pub(crate) fn disasm_blocks_spanned(blocks: &[Block], spans: Option<&[(u32, u32)]>) -> String {
    let mut out = String::new();
    for (i, b) in blocks.iter().enumerate() {
        match spans.and_then(|s| s.get(i)) {
            Some(&(s, e)) => {
                let _ = writeln!(out, "bb{i}:  ; ops[{s}..{e})");
            }
            None => {
                let _ = writeln!(out, "bb{i}:");
            }
        }
        for ins in &b.instrs {
            let _ = writeln!(out, "    {}", fmt_instr(ins));
        }
        let _ = writeln!(out, "    {}", fmt_term(&b.term));
    }
    out
}

fn ibinop_str(op: IBinOp) -> &'static str {
    match op {
        IBinOp::Add => "add",
        IBinOp::Sub => "sub",
        IBinOp::Mul => "mul",
        IBinOp::Div => "div",
        IBinOp::Rem => "rem",
        IBinOp::And => "and",
        IBinOp::Or => "or",
        IBinOp::Xor => "xor",
        IBinOp::Shl => "shl",
        IBinOp::Shr => "shr",
    }
}

fn fbinop_str(op: FBinOp) -> &'static str {
    match op {
        FBinOp::Add => "fadd",
        FBinOp::Sub => "fsub",
        FBinOp::Mul => "fmul",
        FBinOp::Div => "fdiv",
    }
}

fn cmpop_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
    }
}

fn u_suffix(unsigned: bool) -> &'static str {
    if unsigned {
        ".u"
    } else {
        ""
    }
}

fn fmt_instr(ins: &Instr) -> String {
    use Instr::*;
    match *ins {
        ConstI { dst, v } => format!("i{dst} = const {v}"),
        ConstF { dst, v } => format!("f{dst} = const {v:?}"),
        MovI { dst, src } => format!("i{dst} = mov i{src}"),
        MovF { dst, src } => format!("f{dst} = mov f{src}"),
        IBin {
            op,
            dst,
            a,
            b,
            unsigned,
        } => format!(
            "i{dst} = {}{} i{a}, i{b}",
            ibinop_str(op),
            u_suffix(unsigned)
        ),
        IBinImm {
            op,
            dst,
            a,
            imm,
            unsigned,
        } => format!(
            "i{dst} = {}{} i{a}, #{imm}",
            ibinop_str(op),
            u_suffix(unsigned)
        ),
        FBin { op, dst, a, b } => format!("f{dst} = {} f{a}, f{b}", fbinop_str(op)),
        CmpI { op, dst, a, b } => format!("i{dst} = cmp.{} i{a}, i{b}", cmpop_str(op)),
        CmpF { op, dst, a, b } => format!("i{dst} = fcmp.{} f{a}, f{b}", cmpop_str(op)),
        NegI { dst, a, unsigned } => format!("i{dst} = neg{} i{a}", u_suffix(unsigned)),
        NegF { dst, a } => format!("f{dst} = fneg f{a}"),
        NotI { dst, a } => format!("i{dst} = not i{a}"),
        BitNotI { dst, a, unsigned } => format!("i{dst} = bitnot{} i{a}", u_suffix(unsigned)),
        CastIF { dst, a } => format!("f{dst} = i2f i{a}"),
        CastFI { dst, a, unsigned } => format!("i{dst} = f2i{} f{a}", u_suffix(unsigned)),
        CastII {
            dst,
            a,
            to_unsigned,
        } => format!("i{dst} = i2i{} i{a}", u_suffix(to_unsigned)),
        Math1 { f, dst, a } => format!("f{dst} = {:?} f{a}", f).to_lowercase(),
        Math2 { f, dst, a, b } => format!("f{dst} = {:?} f{a}, f{b}", f).to_lowercase(),
        IMin { dst, a, b } => format!("i{dst} = min i{a}, i{b}"),
        IMax { dst, a, b } => format!("i{dst} = max i{a}, i{b}"),
        IAbs { dst, a } => format!("i{dst} = abs i{a}"),
        LoadF { dst, buf, idx } => format!("f{dst} = load buf{buf}[i{idx}]"),
        LoadI { dst, buf, idx } => format!("i{dst} = load buf{buf}[i{idx}]"),
        StoreF { buf, idx, src } => format!("store buf{buf}[i{idx}] = f{src}"),
        StoreI { buf, idx, src } => format!("store buf{buf}[i{idx}] = i{src}"),
        GlobalId { dst, dim } => format!("i{dst} = global_id {dim}"),
        GlobalSize { dst, dim } => format!("i{dst} = global_size {dim}"),
    }
}

fn fmt_term(term: &Terminator) -> String {
    match *term {
        Terminator::Jump(t) => format!("jump bb{t}"),
        Terminator::Branch { cond, then, els } => {
            format!("branch i{cond} ? bb{then} : bb{els}")
        }
        Terminator::BranchCmp {
            op,
            float,
            a,
            b,
            then,
            els,
        } => {
            let (p, file) = if float {
                ("fbranch", 'f')
            } else {
                ("branch", 'i')
            };
            format!(
                "{p}.{} {file}{a}, {file}{b} ? bb{then} : bb{els}",
                cmpop_str(op)
            )
        }
        Terminator::Ret => "ret".to_string(),
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::LogAnd => "&&",
        BinOp::LogOr => "||",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn renders_a_simple_kernel() {
        let k = compile(
            "kernel void k(global const float* a, global float* o, int n) {
                int i = get_global_id(0);
                if (i < n) { o[i] = a[i] * 2.0; }
            }",
        )
        .unwrap();
        let text = pretty(&k.ir);
        assert!(text.contains("kernel void k(global const float* a, global float* o, int n) {"));
        assert!(text.contains("int v0 = get_global_id(0);"));
        assert!(text.contains("o[v0] = (a[v0] * 2.0);"));
    }

    #[test]
    fn pretty_output_recompiles_to_equivalent_features() {
        // Round-trip: pretty(compile(src)) compiles again with identical
        // static features and bytecode shape.
        let src = "kernel void rt(global const float* a, global float* o, int n, float s) {
            int i = get_global_id(0);
            float acc = 0.0;
            for (int j = 0; j < n; j++) {
                acc += a[i] * s - (float)(j % 3);
                if (acc > 100.0) { break; }
            }
            o[i] = acc > 0.0 ? acc : -acc;
        }";
        let k1 = compile(src).unwrap();
        let text = pretty(&k1.ir);
        let k2 = compile(&text).unwrap_or_else(|e| panic!("pretty output:\n{text}\nerror: {e}"));
        assert_eq!(k1.static_features, k2.static_features, "output:\n{text}");
        assert_eq!(k1.bytecode.blocks.len(), k2.bytecode.blocks.len());
    }

    #[test]
    fn disasm_covers_every_block_and_names_the_function() {
        let k = compile(
            "kernel void dd(global const float* a, global float* o, int n) {
                int i = get_global_id(0);
                if (i < n) { o[i] = a[i] + 1.0; }
            }",
        )
        .unwrap();
        let text = disasm(&k.bytecode);
        assert!(text.starts_with("fn dd("), "{text}");
        for b in 0..k.bytecode.blocks.len() {
            assert!(text.contains(&format!("bb{b}:")), "missing bb{b}:\n{text}");
        }
        assert!(text.contains("load"), "{text}");
        assert!(text.contains("store"), "{text}");
    }

    #[test]
    fn disasm_annotates_decoded_op_offsets() {
        use crate::{compile_with_modes, OptLevel, RegAlloc};
        let src = "kernel void sp(global const float* a, global float* o, int n) {
            int i = get_global_id(0);
            if (i < n) { o[i] = a[i] + 1.0; }
        }";
        // With the backend tier on, every block label carries its span
        // into the decoded op array; block 0 always starts at op 0.
        let on = compile_with_modes(src, OptLevel::Full, RegAlloc::On).unwrap();
        let text = disasm(&on.bytecode);
        assert!(text.contains("bb0:  ; ops[0.."), "{text}");
        // Without the tier there is no decoded program and no annotation.
        let off = compile_with_modes(src, OptLevel::Full, RegAlloc::Off).unwrap();
        let text = disasm(&off.bytecode);
        assert!(!text.contains("; ops["), "{text}");
    }
}
