//! Lowering from the typed IR to register bytecode.
//!
//! The VM executes straight-line basic blocks of register instructions
//! with explicit terminators. Each block carries a statically computed
//! operation histogram, so exact dynamic operation counts cost one counter
//! increment per block execution (see [`crate::vm`]).
//!
//! Registers live in two files: `I` registers hold `i64` (all integer and
//! boolean values, canonically sign- or zero-extended 32-bit), `F`
//! registers hold `f64`. Local variables get dedicated registers;
//! expression temporaries are allocated above a per-statement watermark
//! and recycled.

use crate::ast::{BinOp, UnOp};
use crate::builtins::Builtin;
use crate::error::CompileError;
use crate::ir::{Expr, ExprKind, Kernel, ParamKind, ScalarType, Stmt, VarId};

/// Dynamic operation classes tracked by the per-block histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Integer ALU operations.
    IntOp = 0,
    /// Floating-point ALU operations (including conversions).
    FloatOp = 1,
    /// Transcendental / special-function operations.
    Transcendental = 2,
    /// Comparisons.
    Cmp = 3,
    /// Buffer loads.
    Load = 4,
    /// Buffer stores.
    Store = 5,
    /// Conditional branches.
    Branch = 6,
    /// Register moves, constants, id queries.
    Other = 7,
}

/// Number of [`OpClass`] values.
pub const N_OP_CLASSES: usize = 8;

/// Human-readable op-class names aligned with the histogram layout.
pub const OP_CLASS_NAMES: [&str; N_OP_CLASSES] = [
    "int",
    "float",
    "transcendental",
    "cmp",
    "load",
    "store",
    "branch",
    "other",
];

/// Integer binary ALU operations (wrap to 32 bits per `unsigned`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Float binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Unary float math intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathFn1 {
    Sqrt,
    Rsqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Tan,
    Fabs,
    Floor,
    Ceil,
}

/// Binary float math intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathFn2 {
    Pow,
    Fmin,
    Fmax,
    Fmod,
}

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    ConstI {
        dst: u16,
        v: i64,
    },
    ConstF {
        dst: u16,
        v: f64,
    },
    MovI {
        dst: u16,
        src: u16,
    },
    MovF {
        dst: u16,
        src: u16,
    },
    IBin {
        op: IBinOp,
        dst: u16,
        a: u16,
        b: u16,
        unsigned: bool,
    },
    /// Fused `const + op` immediate form: `dst = a <op> imm`. Produced by
    /// the optimizer's superinstruction fusion; codegen never emits it.
    /// `imm` is already canonical 32-bit.
    IBinImm {
        op: IBinOp,
        dst: u16,
        a: u16,
        imm: i64,
        unsigned: bool,
    },
    FBin {
        op: FBinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    CmpI {
        op: CmpOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    CmpF {
        op: CmpOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// Arithmetic negation (wraps like C).
    NegI {
        dst: u16,
        a: u16,
        unsigned: bool,
    },
    NegF {
        dst: u16,
        a: u16,
    },
    /// Logical not: `dst = (a == 0)`.
    NotI {
        dst: u16,
        a: u16,
    },
    BitNotI {
        dst: u16,
        a: u16,
        unsigned: bool,
    },
    /// int → float.
    CastIF {
        dst: u16,
        a: u16,
    },
    /// float → int/uint (saturating, like Rust `as`).
    CastFI {
        dst: u16,
        a: u16,
        unsigned: bool,
    },
    /// Reinterpret between int and uint 32-bit canonical forms.
    CastII {
        dst: u16,
        a: u16,
        to_unsigned: bool,
    },
    Math1 {
        f: MathFn1,
        dst: u16,
        a: u16,
    },
    Math2 {
        f: MathFn2,
        dst: u16,
        a: u16,
        b: u16,
    },
    IMin {
        dst: u16,
        a: u16,
        b: u16,
    },
    IMax {
        dst: u16,
        a: u16,
        b: u16,
    },
    IAbs {
        dst: u16,
        a: u16,
    },
    /// Load from a float buffer into an F register.
    LoadF {
        dst: u16,
        buf: u16,
        idx: u16,
    },
    /// Load from an int/uint buffer into an I register (extension per the
    /// buffer's element type).
    LoadI {
        dst: u16,
        buf: u16,
        idx: u16,
    },
    StoreF {
        buf: u16,
        idx: u16,
        src: u16,
    },
    StoreI {
        buf: u16,
        idx: u16,
        src: u16,
    },
    GlobalId {
        dst: u16,
        dim: u8,
    },
    GlobalSize {
        dst: u16,
        dim: u8,
    },
}

impl Instr {
    /// The histogram class of this instruction.
    pub fn class(&self) -> OpClass {
        use Instr::*;
        match self {
            ConstI { .. }
            | ConstF { .. }
            | MovI { .. }
            | MovF { .. }
            | GlobalId { .. }
            | GlobalSize { .. } => OpClass::Other,
            IBin { .. }
            | IBinImm { .. }
            | NegI { .. }
            | NotI { .. }
            | BitNotI { .. }
            | IMin { .. }
            | IMax { .. }
            | IAbs { .. }
            | CastII { .. } => OpClass::IntOp,
            FBin { .. } | NegF { .. } | CastIF { .. } | CastFI { .. } => OpClass::FloatOp,
            Math1 { f, .. } => match f {
                MathFn1::Fabs | MathFn1::Floor | MathFn1::Ceil => OpClass::FloatOp,
                _ => OpClass::Transcendental,
            },
            Math2 { f, .. } => match f {
                MathFn2::Fmin | MathFn2::Fmax | MathFn2::Fmod => OpClass::FloatOp,
                MathFn2::Pow => OpClass::Transcendental,
            },
            CmpI { .. } | CmpF { .. } => OpClass::Cmp,
            LoadF { .. } | LoadI { .. } => OpClass::Load,
            StoreF { .. } | StoreI { .. } => OpClass::Store,
        }
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    Jump(u32),
    Branch {
        cond: u16,
        then: u32,
        els: u32,
    },
    /// Fused `cmp + branch`: branch on `a <op> b` without materializing
    /// the boolean in a register. Produced by the optimizer when the
    /// compare feeding a branch is otherwise dead; codegen never emits it.
    BranchCmp {
        op: CmpOp,
        /// Operands live in the F register file (a [`Instr::CmpF`] was
        /// fused) rather than the I file.
        float: bool,
        a: u16,
        b: u16,
        then: u32,
        els: u32,
    },
    Ret,
}

/// Static operation histogram of one basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpHistogram {
    /// Counts per [`OpClass`].
    pub classes: [u32; N_OP_CLASSES],
    /// Load element counts per kernel parameter.
    pub buf_reads: Vec<u32>,
    /// Store element counts per kernel parameter.
    pub buf_writes: Vec<u32>,
}

/// One basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub instrs: Vec<Instr>,
    pub term: Terminator,
    pub histo: OpHistogram,
}

impl Block {
    /// Step-budget cost of one execution of this block: its instructions
    /// plus the terminator. Both VM engines charge exactly this amount per
    /// block execution, which is what makes their per-item instruction
    /// statistics comparable bit for bit.
    pub fn step_cost(&self) -> u64 {
        self.instrs.len() as u64 + 1
    }

    /// Rebuild [`Block::histo`] from the current instruction list and
    /// terminator. Codegen and every optimizer pass go through this one
    /// function, so the per-block counts that the VM's dynamic statistics
    /// rely on can never drift from the instructions actually executed.
    pub fn recompute_histo(&mut self, n_params: usize) {
        let mut classes = [0u32; N_OP_CLASSES];
        let mut buf_reads = vec![0u32; n_params];
        let mut buf_writes = vec![0u32; n_params];
        for i in &self.instrs {
            classes[i.class() as usize] += 1;
            match i {
                Instr::LoadF { buf, .. } | Instr::LoadI { buf, .. } => {
                    buf_reads[*buf as usize] += 1
                }
                Instr::StoreF { buf, .. } | Instr::StoreI { buf, .. } => {
                    buf_writes[*buf as usize] += 1
                }
                _ => {}
            }
        }
        match self.term {
            Terminator::Branch { .. } => classes[OpClass::Branch as usize] += 1,
            // The fused form still performs both the comparison and the
            // branch, so dynamic operation counts are invariant under
            // cmp+branch fusion.
            Terminator::BranchCmp { .. } => {
                classes[OpClass::Branch as usize] += 1;
                classes[OpClass::Cmp as usize] += 1;
            }
            Terminator::Jump(_) | Terminator::Ret => {}
        }
        self.histo = OpHistogram {
            classes,
            buf_reads,
            buf_writes,
        };
    }
}

/// Kernel parameter metadata the VM needs to validate and bind arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnParam {
    pub kind: ParamKind,
    /// For scalar params: the dedicated register holding the value.
    pub reg: u16,
}

/// A compiled kernel function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    pub params: Vec<FnParam>,
    pub blocks: Vec<Block>,
    pub n_iregs: u16,
    pub n_fregs: u16,
    /// CFG analyses computed once at compile time. The lane engine's SIMT
    /// reconvergence consumes the immediate post-dominators and its scalar
    /// replay fallback the per-block live-in registers; the
    /// successor/predecessor graphs and reverse post-order are exposed for
    /// further analyses.
    pub cfg: crate::cfg::CfgInfo,
    /// Pre-decoded direct-threaded form of `blocks` (flat op array with
    /// pre-resolved registers, immediates, and span offsets). Present only
    /// when the backend tier ran ([`RegAlloc::On`](crate::opt::RegAlloc)
    /// at an enabled [`OptLevel`](crate::opt::OptLevel)); both VM engines
    /// prefer it over the enum blocks when set. Always semantically
    /// identical to `blocks`.
    pub(crate) decoded: Option<crate::opt::decode::DecodedProgram>,
}

impl Function {
    /// Total static instruction count across all blocks.
    pub fn num_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len() + 1).sum()
    }
}

/// Compile a type-checked kernel to bytecode at the optimization level
/// and backend mode selected by the environment (`INSPIRE_OPT=0` disables
/// the optimizer, `INSPIRE_REGALLOC=0` the register-allocation/decoded-
/// dispatch tier).
pub fn compile(k: &Kernel) -> Result<Function, CompileError> {
    compile_with_modes(
        k,
        crate::opt::OptLevel::from_env(),
        crate::opt::RegAlloc::from_env(),
    )
}

/// Compile a type-checked kernel to bytecode at an explicit optimization
/// level. [`OptLevel::None`](crate::opt::OptLevel::None) yields the naive
/// per-statement codegen output untouched — the reference the differential
/// suite compares optimized execution against. The backend tier follows
/// the environment (`INSPIRE_REGALLOC=0` disables it).
pub fn compile_with_opt(k: &Kernel, level: crate::opt::OptLevel) -> Result<Function, CompileError> {
    compile_with_modes(k, level, crate::opt::RegAlloc::from_env())
}

/// Compile a type-checked kernel to bytecode at an explicit optimization
/// level and backend mode. The backend tier (liveness-driven register
/// allocation + pre-decoded direct-threaded dispatch) runs only when the
/// optimizer is enabled *and* `regalloc` is [`RegAlloc::On`]; at
/// [`OptLevel::None`] the naive codegen output is always left untouched.
///
/// [`RegAlloc::On`]: crate::opt::RegAlloc::On
/// [`OptLevel::None`]: crate::opt::OptLevel::None
pub fn compile_with_modes(
    k: &Kernel,
    level: crate::opt::OptLevel,
    regalloc: crate::opt::RegAlloc,
) -> Result<Function, CompileError> {
    let mut c = Compiler::new(k)?;
    for s in &k.body {
        c.stmt(s)?;
    }
    c.terminate(Terminator::Ret);
    c.finish(k, level, regalloc)
}

const MAX_REGS: u32 = u16::MAX as u32;

struct BlockBuilder {
    instrs: Vec<Instr>,
    term: Option<Terminator>,
}

struct Compiler<'a> {
    k: &'a Kernel,
    blocks: Vec<BlockBuilder>,
    current: usize,
    /// Per-variable dedicated register.
    var_regs: Vec<u16>,
    params: Vec<FnParam>,
    next_i: u32,
    next_f: u32,
    max_i: u32,
    max_f: u32,
    /// (break_target, continue_target) stack.
    loop_stack: Vec<(u32, u32)>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Reg {
    I(u16),
    F(u16),
}

impl Reg {
    /// The I-file register number. A class mismatch here means sema let a
    /// float value reach an integer position — surfaced as a typed
    /// [`CompileError`] so a codegen bug fails the compile instead of
    /// aborting the process (and with it a whole rayon sweep worker).
    fn i(self) -> Result<u16, CompileError> {
        match self {
            Reg::I(r) => Ok(r),
            Reg::F(r) => Err(CompileError::codegen(format!(
                "register class mismatch: expected I register, found f{r}"
            ))),
        }
    }
    /// The F-file register number (see [`Reg::i`]).
    fn f(self) -> Result<u16, CompileError> {
        match self {
            Reg::F(r) => Ok(r),
            Reg::I(r) => Err(CompileError::codegen(format!(
                "register class mismatch: expected F register, found i{r}"
            ))),
        }
    }
}

fn is_float(t: ScalarType) -> bool {
    t == ScalarType::Float
}

impl<'a> Compiler<'a> {
    fn new(k: &'a Kernel) -> Result<Self, CompileError> {
        let mut next_i = 0u32;
        let mut next_f = 0u32;
        // Dedicated registers for scalar parameters.
        let params = k
            .params
            .iter()
            .map(|p| {
                let reg = match p.kind {
                    ParamKind::Scalar(t) if is_float(t) => {
                        let r = next_f;
                        next_f += 1;
                        r as u16
                    }
                    ParamKind::Scalar(_) => {
                        let r = next_i;
                        next_i += 1;
                        r as u16
                    }
                    ParamKind::Buffer { .. } => 0,
                };
                FnParam { kind: p.kind, reg }
            })
            .collect();
        // Dedicated registers for variables.
        let var_regs = k
            .var_types
            .iter()
            .map(|&t| {
                if is_float(t) {
                    let r = next_f;
                    next_f += 1;
                    r as u16
                } else {
                    let r = next_i;
                    next_i += 1;
                    r as u16
                }
            })
            .collect();
        if next_i > MAX_REGS || next_f > MAX_REGS {
            return Err(CompileError::codegen("too many variables"));
        }
        Ok(Self {
            k,
            blocks: vec![BlockBuilder {
                instrs: Vec::new(),
                term: None,
            }],
            current: 0,
            var_regs,
            params,
            max_i: next_i,
            max_f: next_f,
            next_i,
            next_f,
            loop_stack: Vec::new(),
        })
    }

    fn emit(&mut self, i: Instr) {
        let b = &mut self.blocks[self.current];
        if b.term.is_none() {
            b.instrs.push(i);
        }
        // Instructions after a terminator are unreachable; drop them.
    }

    fn new_block(&mut self) -> u32 {
        self.blocks.push(BlockBuilder {
            instrs: Vec::new(),
            term: None,
        });
        (self.blocks.len() - 1) as u32
    }

    fn switch_to(&mut self, b: u32) {
        self.current = b as usize;
    }

    fn terminate(&mut self, t: Terminator) {
        let b = &mut self.blocks[self.current];
        if b.term.is_none() {
            b.term = Some(t);
        }
    }

    fn temp_i(&mut self) -> Result<u16, CompileError> {
        let r = self.next_i;
        self.next_i += 1;
        self.max_i = self.max_i.max(self.next_i);
        if r >= MAX_REGS {
            return Err(CompileError::codegen(
                "expression too complex (I registers)",
            ));
        }
        Ok(r as u16)
    }

    fn temp_f(&mut self) -> Result<u16, CompileError> {
        let r = self.next_f;
        self.next_f += 1;
        self.max_f = self.max_f.max(self.next_f);
        if r >= MAX_REGS {
            return Err(CompileError::codegen(
                "expression too complex (F registers)",
            ));
        }
        Ok(r as u16)
    }

    fn temp(&mut self, t: ScalarType) -> Result<Reg, CompileError> {
        if is_float(t) {
            Ok(Reg::F(self.temp_f()?))
        } else {
            Ok(Reg::I(self.temp_i()?))
        }
    }

    /// Save/restore the temp watermarks around a statement.
    fn with_temp_scope<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, CompileError>,
    ) -> Result<T, CompileError> {
        let (si, sf) = (self.next_i, self.next_f);
        let r = f(self);
        self.next_i = si;
        self.next_f = sf;
        r
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Decl { var, init } | Stmt::AssignVar { var, value: init } => self
                .with_temp_scope(|c| {
                    let v = c.expr(init)?;
                    c.store_var(*var, v);
                    Ok(())
                }),
            Stmt::Store { buf, index, value } => self.with_temp_scope(|c| {
                let idx = c.expr(index)?.i()?;
                let val = c.expr(value)?;
                let b = buf.0 as u16;
                match val {
                    Reg::F(r) => c.emit(Instr::StoreF {
                        buf: b,
                        idx,
                        src: r,
                    }),
                    Reg::I(r) => c.emit(Instr::StoreI {
                        buf: b,
                        idx,
                        src: r,
                    }),
                }
                Ok(())
            }),
            Stmt::If { cond, then, els } => {
                let cond_reg = self.with_temp_scope(|c| {
                    // The condition temp must survive until the branch, so
                    // materialize it into a fresh temp *outside* the scope
                    // of subexpression temps. Since the branch consumes it
                    // immediately at the end of this block, reuse is safe.
                    c.expr(cond)?.i()
                })?;
                let then_bb = self.new_block();
                let els_bb = self.new_block();
                let join_bb = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: cond_reg,
                    then: then_bb,
                    els: els_bb,
                });
                self.switch_to(then_bb);
                for s in then {
                    self.stmt(s)?;
                }
                self.terminate(Terminator::Jump(join_bb));
                self.switch_to(els_bb);
                for s in els {
                    self.stmt(s)?;
                }
                self.terminate(Terminator::Jump(join_bb));
                self.switch_to(join_bb);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Jump(head));
                self.switch_to(head);
                let cond_reg = self.with_temp_scope(|c| c.expr(cond)?.i())?;
                self.terminate(Terminator::Branch {
                    cond: cond_reg,
                    then: body_bb,
                    els: exit,
                });
                self.switch_to(body_bb);
                self.loop_stack.push((exit, head));
                for s in body {
                    self.stmt(s)?;
                }
                self.loop_stack.pop();
                self.terminate(Terminator::Jump(head));
                self.switch_to(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let head = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Jump(head));
                self.switch_to(head);
                match cond {
                    Some(c) => {
                        let r = self.with_temp_scope(|cc| cc.expr(c)?.i())?;
                        self.terminate(Terminator::Branch {
                            cond: r,
                            then: body_bb,
                            els: exit,
                        });
                    }
                    None => self.terminate(Terminator::Jump(body_bb)),
                }
                self.switch_to(body_bb);
                self.loop_stack.push((exit, step_bb));
                for s in body {
                    self.stmt(s)?;
                }
                self.loop_stack.pop();
                self.terminate(Terminator::Jump(step_bb));
                self.switch_to(step_bb);
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.terminate(Terminator::Jump(head));
                self.switch_to(exit);
                Ok(())
            }
            Stmt::Break => {
                let Some(&(exit, _)) = self.loop_stack.last() else {
                    return Err(CompileError::codegen("break outside loop"));
                };
                self.terminate(Terminator::Jump(exit));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Continue => {
                let Some(&(_, cont)) = self.loop_stack.last() else {
                    return Err(CompileError::codegen("continue outside loop"));
                };
                self.terminate(Terminator::Jump(cont));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Return => {
                self.terminate(Terminator::Ret);
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Block(body) => {
                for s in body {
                    self.stmt(s)?;
                }
                Ok(())
            }
        }
    }

    fn store_var(&mut self, var: VarId, value: Reg) {
        let dst = self.var_regs[var.0 as usize];
        match value {
            Reg::F(src) => self.emit(Instr::MovF { dst, src }),
            Reg::I(src) => self.emit(Instr::MovI { dst, src }),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        match &e.kind {
            ExprKind::IntConst(v) => {
                let dst = self.temp_i()?;
                // Canonicalize the constant per the node type.
                let v = if e.ty == ScalarType::UInt {
                    i64::from(*v as u32)
                } else {
                    i64::from(*v as i32)
                };
                self.emit(Instr::ConstI { dst, v });
                Ok(Reg::I(dst))
            }
            ExprKind::FloatConst(v) => {
                let dst = self.temp_f()?;
                self.emit(Instr::ConstF { dst, v: *v });
                Ok(Reg::F(dst))
            }
            ExprKind::BoolConst(b) => {
                let dst = self.temp_i()?;
                self.emit(Instr::ConstI {
                    dst,
                    v: i64::from(*b),
                });
                Ok(Reg::I(dst))
            }
            ExprKind::Var(v) => {
                let r = self.var_regs[v.0 as usize];
                Ok(if is_float(self.k.var_types[v.0 as usize]) {
                    Reg::F(r)
                } else {
                    Reg::I(r)
                })
            }
            ExprKind::Param(p) => {
                let fp = self.params[p.0 as usize];
                let ParamKind::Scalar(t) = fp.kind else {
                    return Err(CompileError::codegen("buffer parameter used as scalar"));
                };
                Ok(if is_float(t) {
                    Reg::F(fp.reg)
                } else {
                    Reg::I(fp.reg)
                })
            }
            ExprKind::GlobalId(d) => {
                let dst = self.temp_i()?;
                self.emit(Instr::GlobalId { dst, dim: *d });
                Ok(Reg::I(dst))
            }
            ExprKind::GlobalSize(d) => {
                let dst = self.temp_i()?;
                self.emit(Instr::GlobalSize { dst, dim: *d });
                Ok(Reg::I(dst))
            }
            ExprKind::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs, e.ty),
            ExprKind::Unary { op, operand } => {
                let o = self.expr(operand)?;
                match (op, o) {
                    (UnOp::Neg, Reg::F(a)) => {
                        let dst = self.temp_f()?;
                        self.emit(Instr::NegF { dst, a });
                        Ok(Reg::F(dst))
                    }
                    (UnOp::Neg, Reg::I(a)) => {
                        let dst = self.temp_i()?;
                        self.emit(Instr::NegI {
                            dst,
                            a,
                            unsigned: e.ty == ScalarType::UInt,
                        });
                        Ok(Reg::I(dst))
                    }
                    (UnOp::Not, Reg::I(a)) => {
                        let dst = self.temp_i()?;
                        self.emit(Instr::NotI { dst, a });
                        Ok(Reg::I(dst))
                    }
                    (UnOp::BitNot, Reg::I(a)) => {
                        let dst = self.temp_i()?;
                        self.emit(Instr::BitNotI {
                            dst,
                            a,
                            unsigned: e.ty == ScalarType::UInt,
                        });
                        Ok(Reg::I(dst))
                    }
                    _ => Err(CompileError::codegen("type error in unary op")),
                }
            }
            ExprKind::Cast(inner) => {
                let o = self.expr(inner)?;
                match (inner.ty, e.ty) {
                    (a, b) if a == b => Ok(o),
                    (ScalarType::Float, t) if t.is_integer() => {
                        let dst = self.temp_i()?;
                        self.emit(Instr::CastFI {
                            dst,
                            a: o.f()?,
                            unsigned: t == ScalarType::UInt,
                        });
                        Ok(Reg::I(dst))
                    }
                    (src, ScalarType::Float) if src.is_integer() || src == ScalarType::Bool => {
                        let dst = self.temp_f()?;
                        self.emit(Instr::CastIF { dst, a: o.i()? });
                        Ok(Reg::F(dst))
                    }
                    (a, b)
                        if (a.is_integer() || a == ScalarType::Bool)
                            && (b.is_integer() || b == ScalarType::Bool) =>
                    {
                        let dst = self.temp_i()?;
                        self.emit(Instr::CastII {
                            dst,
                            a: o.i()?,
                            to_unsigned: b == ScalarType::UInt,
                        });
                        Ok(Reg::I(dst))
                    }
                    _ => Err(CompileError::codegen("unsupported cast")),
                }
            }
            ExprKind::Load { buf, index } => {
                let idx = self.expr(index)?.i()?;
                let b = buf.0 as u16;
                let ParamKind::Buffer { elem, .. } = self.k.params[buf.0 as usize].kind else {
                    return Err(CompileError::codegen("load from non-buffer"));
                };
                if is_float(elem) {
                    let dst = self.temp_f()?;
                    self.emit(Instr::LoadF { dst, buf: b, idx });
                    Ok(Reg::F(dst))
                } else {
                    let dst = self.temp_i()?;
                    self.emit(Instr::LoadI { dst, buf: b, idx });
                    Ok(Reg::I(dst))
                }
            }
            ExprKind::Call { f, args } => self.call(*f, args),
            ExprKind::Select { cond, then, els } => {
                let dst = self.temp(e.ty)?;
                let cond_reg = self.expr(cond)?.i()?;
                let then_bb = self.new_block();
                let els_bb = self.new_block();
                let join = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: cond_reg,
                    then: then_bb,
                    els: els_bb,
                });
                self.switch_to(then_bb);
                let tv = self.expr(then)?;
                self.mov(dst, tv)?;
                self.terminate(Terminator::Jump(join));
                self.switch_to(els_bb);
                let fv = self.expr(els)?;
                self.mov(dst, fv)?;
                self.terminate(Terminator::Jump(join));
                self.switch_to(join);
                Ok(dst)
            }
        }
    }

    fn mov(&mut self, dst: Reg, src: Reg) -> Result<(), CompileError> {
        match (dst, src) {
            (Reg::I(d), Reg::I(s)) => self.emit(Instr::MovI { dst: d, src: s }),
            (Reg::F(d), Reg::F(s)) => self.emit(Instr::MovF { dst: d, src: s }),
            _ => {
                return Err(CompileError::codegen(format!(
                    "register class mismatch in mov: {dst:?} = {src:?}"
                )))
            }
        }
        Ok(())
    }

    fn binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        result_ty: ScalarType,
    ) -> Result<Reg, CompileError> {
        use BinOp::*;
        // Short-circuit logical operators compile to control flow.
        if matches!(op, LogAnd | LogOr) {
            let dst = self.temp_i()?;
            let l = self.expr(lhs)?.i()?;
            let rhs_bb = self.new_block();
            let join = self.new_block();
            let short_val = i64::from(op == LogOr);
            self.emit(Instr::ConstI { dst, v: short_val });
            let (then, els) = if op == LogAnd {
                (rhs_bb, join)
            } else {
                (join, rhs_bb)
            };
            self.terminate(Terminator::Branch { cond: l, then, els });
            self.switch_to(rhs_bb);
            let r = self.expr(rhs)?.i()?;
            self.emit(Instr::MovI { dst, src: r });
            self.terminate(Terminator::Jump(join));
            self.switch_to(join);
            return Ok(Reg::I(dst));
        }

        let l = self.expr(lhs)?;
        let r = self.expr(rhs)?;
        let operand_float = matches!(l, Reg::F(_));
        match op {
            Add | Sub | Mul | Div if operand_float => {
                let fop = match op {
                    Add => FBinOp::Add,
                    Sub => FBinOp::Sub,
                    Mul => FBinOp::Mul,
                    _ => FBinOp::Div,
                };
                let dst = self.temp_f()?;
                self.emit(Instr::FBin {
                    op: fop,
                    dst,
                    a: l.f()?,
                    b: r.f()?,
                });
                Ok(Reg::F(dst))
            }
            Add | Sub | Mul | Div | Rem | BitAnd | BitOr | BitXor | Shl | Shr => {
                let iop = match op {
                    Add => IBinOp::Add,
                    Sub => IBinOp::Sub,
                    Mul => IBinOp::Mul,
                    Div => IBinOp::Div,
                    Rem => IBinOp::Rem,
                    BitAnd => IBinOp::And,
                    BitOr => IBinOp::Or,
                    BitXor => IBinOp::Xor,
                    Shl => IBinOp::Shl,
                    _ => IBinOp::Shr,
                };
                let dst = self.temp_i()?;
                self.emit(Instr::IBin {
                    op: iop,
                    dst,
                    a: l.i()?,
                    b: r.i()?,
                    unsigned: result_ty == ScalarType::UInt || lhs.ty == ScalarType::UInt,
                });
                Ok(Reg::I(dst))
            }
            Lt | Le | Gt | Ge | Eq | Ne => {
                let cop = match op {
                    Lt => CmpOp::Lt,
                    Le => CmpOp::Le,
                    Gt => CmpOp::Gt,
                    Ge => CmpOp::Ge,
                    Eq => CmpOp::Eq,
                    _ => CmpOp::Ne,
                };
                let dst = self.temp_i()?;
                if operand_float {
                    self.emit(Instr::CmpF {
                        op: cop,
                        dst,
                        a: l.f()?,
                        b: r.f()?,
                    });
                } else {
                    self.emit(Instr::CmpI {
                        op: cop,
                        dst,
                        a: l.i()?,
                        b: r.i()?,
                    });
                }
                Ok(Reg::I(dst))
            }
            LogAnd | LogOr => unreachable!("handled above"),
        }
    }

    fn call(&mut self, f: Builtin, args: &[Expr]) -> Result<Reg, CompileError> {
        use Builtin::*;
        let regs: Vec<Reg> = args
            .iter()
            .map(|a| self.expr(a))
            .collect::<Result<_, _>>()?;
        let m1 = |f| match f {
            Sqrt => MathFn1::Sqrt,
            Rsqrt => MathFn1::Rsqrt,
            Exp => MathFn1::Exp,
            Log => MathFn1::Log,
            Sin => MathFn1::Sin,
            Cos => MathFn1::Cos,
            Tan => MathFn1::Tan,
            Fabs => MathFn1::Fabs,
            Floor => MathFn1::Floor,
            Ceil => MathFn1::Ceil,
            _ => unreachable!(),
        };
        match f {
            Sqrt | Rsqrt | Exp | Log | Sin | Cos | Tan | Fabs | Floor | Ceil => {
                let dst = self.temp_f()?;
                self.emit(Instr::Math1 {
                    f: m1(f),
                    dst,
                    a: regs[0].f()?,
                });
                Ok(Reg::F(dst))
            }
            Pow | Fmin | Fmax | Fmod => {
                let f2 = match f {
                    Pow => MathFn2::Pow,
                    Fmin => MathFn2::Fmin,
                    Fmax => MathFn2::Fmax,
                    _ => MathFn2::Fmod,
                };
                let dst = self.temp_f()?;
                self.emit(Instr::Math2 {
                    f: f2,
                    dst,
                    a: regs[0].f()?,
                    b: regs[1].f()?,
                });
                Ok(Reg::F(dst))
            }
            IMin | IMax => {
                let dst = self.temp_i()?;
                let i = Instr::IMin {
                    dst,
                    a: regs[0].i()?,
                    b: regs[1].i()?,
                };
                let i = if f == IMax {
                    Instr::IMax {
                        dst,
                        a: regs[0].i()?,
                        b: regs[1].i()?,
                    }
                } else {
                    i
                };
                self.emit(i);
                Ok(Reg::I(dst))
            }
            IAbs => {
                let dst = self.temp_i()?;
                self.emit(Instr::IAbs {
                    dst,
                    a: regs[0].i()?,
                });
                Ok(Reg::I(dst))
            }
            IClamp => {
                // clamp(x, lo, hi) = min(max(x, lo), hi)
                let t = self.temp_i()?;
                self.emit(Instr::IMax {
                    dst: t,
                    a: regs[0].i()?,
                    b: regs[1].i()?,
                });
                let dst = self.temp_i()?;
                self.emit(Instr::IMin {
                    dst,
                    a: t,
                    b: regs[2].i()?,
                });
                Ok(Reg::I(dst))
            }
            FClamp => {
                let t = self.temp_f()?;
                self.emit(Instr::Math2 {
                    f: MathFn2::Fmax,
                    dst: t,
                    a: regs[0].f()?,
                    b: regs[1].f()?,
                });
                let dst = self.temp_f()?;
                self.emit(Instr::Math2 {
                    f: MathFn2::Fmin,
                    dst,
                    a: t,
                    b: regs[2].f()?,
                });
                Ok(Reg::F(dst))
            }
        }
    }

    fn finish(
        self,
        k: &Kernel,
        level: crate::opt::OptLevel,
        regalloc: crate::opt::RegAlloc,
    ) -> Result<Function, CompileError> {
        let n_params = k.params.len();
        let mut params = self.params;
        let mut blocks = self
            .blocks
            .into_iter()
            .map(|b| {
                let mut block = Block {
                    instrs: b.instrs,
                    term: b.term.unwrap_or(Terminator::Ret),
                    histo: OpHistogram {
                        classes: [0; N_OP_CLASSES],
                        buf_reads: Vec::new(),
                        buf_writes: Vec::new(),
                    },
                };
                block.recompute_histo(n_params);
                block
            })
            .collect::<Vec<Block>>();
        let mut n_iregs = self.max_i.min(MAX_REGS) as u16;
        let mut n_fregs = self.max_f.min(MAX_REGS) as u16;
        let mut decoded = None;
        if level.enabled() {
            blocks = crate::opt::optimize(&k.name, blocks, &params, n_params, level)?;
            // Trailing registers the optimized code no longer touches need
            // no register-file slots — but parameter registers must stay
            // allocated even when unused: argument binding writes them
            // unconditionally.
            let (ni, nf) = crate::opt::reg_span(&blocks, &params);
            n_iregs = ni.min(n_iregs);
            n_fregs = nf.min(n_fregs);
            if regalloc.enabled() {
                let (ni, nf) =
                    crate::opt::regalloc::allocate(&mut blocks, &mut params, n_iregs, n_fregs);
                n_iregs = ni;
                n_fregs = nf;
                for b in &mut blocks {
                    b.recompute_histo(n_params);
                }
                let dec = crate::opt::decode::decode(&blocks);
                if crate::opt::dump_enabled() {
                    eprintln!(
                        "[inspire-opt] {}: after regalloc (iregs={n_iregs}, fregs={n_fregs}, \
                         decoded_ops={})\n{}",
                        k.name,
                        dec.ops.len(),
                        crate::pretty::disasm_blocks_spanned(&blocks, Some(&dec.spans))
                    );
                }
                decoded = Some(dec);
            }
        }
        // Re-run the CFG analyses on the final block list so SIMT
        // reconvergence (post-dominators) and replay (live-ins) see the
        // optimized CFG.
        let cfg = crate::cfg::CfgInfo::build(&blocks, n_iregs, n_fregs);
        let f = Function {
            name: k.name.clone(),
            params,
            blocks,
            n_iregs,
            n_fregs,
            cfg,
            decoded,
        };
        // Final gate over the whole backend: codegen output, allocated
        // register files, and decode-table agreement.
        if crate::analysis::verify::verify_enabled() {
            crate::analysis::verify::verify_function("backend", &f)?;
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::sema::analyze;

    /// These tests assert the shape of the naive codegen output, so they
    /// compile with the optimizer off (the opt pipeline has its own
    /// tests in [`crate::opt`]).
    fn compile_src(src: &str) -> Function {
        let prog = parse(&lex(src).unwrap()).unwrap();
        compile_with_opt(
            &analyze(&prog.kernels[0]).unwrap(),
            crate::opt::OptLevel::None,
        )
        .unwrap()
    }

    #[test]
    fn compiles_vec_add_shape() {
        let f = compile_src(
            "kernel void vec_add(global const float* a, global const float* b,
                                 global float* c, int n) {
                int i = get_global_id(0);
                if (i < n) { c[i] = a[i] + b[i]; }
            }",
        );
        assert_eq!(f.name, "vec_add");
        assert_eq!(f.params.len(), 4);
        // entry + then + else + join = 4 blocks.
        assert_eq!(f.blocks.len(), 4);
        let total_loads: u32 = f
            .blocks
            .iter()
            .map(|b| b.histo.classes[OpClass::Load as usize])
            .sum();
        assert_eq!(total_loads, 2);
        let total_stores: u32 = f
            .blocks
            .iter()
            .map(|b| b.histo.classes[OpClass::Store as usize])
            .sum();
        assert_eq!(total_stores, 1);
    }

    #[test]
    fn every_block_is_terminated() {
        let f = compile_src(
            "kernel void k(global float* o, int n) {
                for (int i = 0; i < n; i++) {
                    if (i > 2) { break; }
                    if (i == 1) { continue; }
                    o[i] = 1.0;
                }
                return;
            }",
        );
        // All blocks have terminators by construction (enforced by type) —
        // check branch targets are in range.
        for b in &f.blocks {
            match b.term {
                Terminator::Jump(t) => assert!((t as usize) < f.blocks.len()),
                Terminator::Branch { then, els, .. } | Terminator::BranchCmp { then, els, .. } => {
                    assert!((then as usize) < f.blocks.len());
                    assert!((els as usize) < f.blocks.len());
                }
                Terminator::Ret => {}
            }
        }
    }

    #[test]
    fn histogram_counts_match_instrs() {
        let f = compile_src(
            "kernel void k(global float* o) {
                int i = get_global_id(0);
                o[i] = sqrt((float)i) + 1.0;
            }",
        );
        let h: u32 = f
            .blocks
            .iter()
            .map(|b| b.histo.classes[OpClass::Transcendental as usize])
            .sum();
        assert_eq!(h, 1);
        let fl: u32 = f
            .blocks
            .iter()
            .map(|b| b.histo.classes[OpClass::FloatOp as usize])
            .sum();
        assert!(fl >= 2); // cast + add
    }

    #[test]
    fn scalar_params_get_dedicated_registers() {
        let f = compile_src("kernel void k(int a, float b, uint c) { }");
        assert_eq!(f.params[0].reg, 0); // first I reg
        assert_eq!(f.params[1].reg, 0); // first F reg
        assert_eq!(f.params[2].reg, 1); // second I reg
    }

    #[test]
    fn buffer_read_write_block_counts() {
        let f = compile_src(
            "kernel void k(global const float* a, global float* b) {
                int i = get_global_id(0);
                b[i] = a[i] * a[i];
            }",
        );
        let reads: u32 = f.blocks.iter().map(|b| b.histo.buf_reads[0]).sum();
        let writes: u32 = f.blocks.iter().map(|b| b.histo.buf_writes[1]).sum();
        assert_eq!(reads, 2);
        assert_eq!(writes, 1);
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let f = compile_src(
            "kernel void k(global float* o) {
                return;
                o[0] = 1.0;
            }",
        );
        // Compute the blocks reachable from entry; the store must not be in
        // any of them.
        let mut reachable = vec![false; f.blocks.len()];
        let mut stack = vec![0u32];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut reachable[b as usize], true) {
                continue;
            }
            match f.blocks[b as usize].term {
                Terminator::Jump(t) => stack.push(t),
                Terminator::Branch { then, els, .. } | Terminator::BranchCmp { then, els, .. } => {
                    stack.push(then);
                    stack.push(els);
                }
                Terminator::Ret => {}
            }
        }
        for (b, r) in f.blocks.iter().zip(&reachable) {
            if *r {
                assert_eq!(b.histo.classes[OpClass::Store as usize], 0);
            }
        }
    }
}
