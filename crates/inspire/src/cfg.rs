//! Control-flow-graph analyses over compiled bytecode.
//!
//! The lane engine's SIMT reconvergence (see [`crate::vm_batch`]) needs to
//! know, for every divergent branch, where the diverged lane subsets are
//! guaranteed to meet again: the branch block's **immediate
//! post-dominator**. This module computes, once per compiled
//! [`Function`](crate::bytecode::Function) and cached on it:
//!
//! - the successor and predecessor graphs of the basic blocks,
//! - a reverse post-order of the forward CFG,
//! - immediate post-dominators (over the CFG extended with a single
//!   virtual exit node that every `Ret` block jumps to), and
//! - per-block **live-in register sets** (registers read before written on
//!   some path from the block), which let the scalar replay fallback copy
//!   only the registers a diverged lane's continuation can observe.
//!
//! All analyses are straight textbook implementations: post-dominators via
//! the Cooper–Harvey–Kennedy iterative dominator algorithm run on the
//! reversed graph, liveness via backward bit-vector dataflow to a
//! fixpoint. Functions are small (tens of blocks), so simplicity wins over
//! asymptotics.

use crate::bytecode::{Block, Instr, Terminator};

/// Sentinel for "no immediate post-dominator": the block cannot reach the
/// function exit (it sits in an infinite loop), so no reconvergence point
/// exists. The lane engine treats this like the virtual exit — such lanes
/// can only terminate via the step limit, exactly as on the scalar engine.
pub const NO_POST_DOM: u32 = u32::MAX;

/// Cached CFG analyses of one compiled function.
///
/// Built by [`CfgInfo::build`] during bytecode compilation; every field is
/// a pure function of the block list, so two equal functions always carry
/// equal `CfgInfo` (keeping the derived `PartialEq` on `Function` honest).
#[derive(Debug, Clone, PartialEq)]
pub struct CfgInfo {
    /// Forward successors of each block (branch targets in `then`, `els`
    /// order; `Ret` blocks have none — their successor is the virtual
    /// exit).
    pub succs: Vec<Vec<u32>>,
    /// Forward predecessors of each block.
    pub preds: Vec<Vec<u32>>,
    /// Reverse post-order of the forward CFG from block 0 (unreachable
    /// blocks are absent).
    pub rpo: Vec<u32>,
    /// Immediate post-dominator of each block: a block index, the virtual
    /// exit ([`CfgInfo::exit`]), or [`NO_POST_DOM`].
    pub ipdom: Vec<u32>,
    /// I registers live at entry of each block, ascending.
    pub live_in_i: Vec<Vec<u16>>,
    /// F registers live at entry of each block, ascending.
    pub live_in_f: Vec<Vec<u16>>,
    n_blocks: u32,
}

impl CfgInfo {
    /// The virtual exit node id (one past the last block). `Ret`
    /// terminators conceptually jump here; it is the reconvergence point
    /// of divergent branches whose paths only meet by returning.
    pub fn exit(&self) -> u32 {
        self.n_blocks
    }

    /// Compute all analyses for `blocks`.
    pub fn build(blocks: &[Block], n_iregs: u16, n_fregs: u16) -> Self {
        let n = blocks.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (b, block) in blocks.iter().enumerate() {
            match block.term {
                Terminator::Jump(t) => succs[b].push(t),
                Terminator::Branch { then, els, .. } | Terminator::BranchCmp { then, els, .. } => {
                    succs[b].push(then);
                    if els != then {
                        succs[b].push(els);
                    }
                }
                Terminator::Ret => {}
            }
        }
        for (b, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s as usize].push(b as u32);
            }
        }

        let rpo = forward_rpo(&succs);
        let ipdom = post_dominators(blocks, &succs);
        let (live_in_i, live_in_f) = liveness(blocks, &succs, n_iregs, n_fregs);

        Self {
            succs,
            preds,
            rpo,
            ipdom,
            live_in_i,
            live_in_f,
            n_blocks: n as u32,
        }
    }
}

/// Reverse post-order of the forward CFG from block 0.
fn forward_rpo(succs: &[Vec<u32>]) -> Vec<u32> {
    let n = succs.len();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit (node, next-child) stack.
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if let Some(&s) = succs[v as usize].get(*i) {
            *i += 1;
            if state[s as usize] == 0 {
                state[s as usize] = 1;
                stack.push((s, 0));
            }
        } else {
            state[v as usize] = 2;
            post.push(v);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate post-dominators: the CHK iterative dominator algorithm on the
/// reversed CFG, rooted at a virtual exit node `n` that every `Ret` block
/// feeds into. Blocks that cannot reach the exit get [`NO_POST_DOM`].
fn post_dominators(blocks: &[Block], succs: &[Vec<u32>]) -> Vec<u32> {
    let n = blocks.len();
    let exit = n as u32;
    // Reverse-graph successors: exit -> every Ret block; v -> u for each
    // forward edge u -> v. Node ids 0..n are blocks, n is the exit.
    let mut rsuccs: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
    for (b, block) in blocks.iter().enumerate() {
        if matches!(block.term, Terminator::Ret) {
            rsuccs[n].push(b as u32);
        }
        for &s in &succs[b] {
            rsuccs[s as usize].push(b as u32);
        }
    }

    // Post-order of the reverse graph from the exit; nodes not reached
    // cannot reach the exit in the forward graph.
    let mut state = vec![0u8; n + 1];
    let mut post: Vec<u32> = Vec::with_capacity(n + 1);
    let mut stack: Vec<(u32, usize)> = vec![(exit, 0)];
    state[exit as usize] = 1;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if let Some(&s) = rsuccs[v as usize].get(*i) {
            *i += 1;
            if state[s as usize] == 0 {
                state[s as usize] = 1;
                stack.push((s, 0));
            }
        } else {
            post.push(v);
            stack.pop();
        }
    }
    // rpo_num[v] = position in reverse post-order of the reverse graph.
    let mut rpo_num = vec![usize::MAX; n + 1];
    for (i, &v) in post.iter().rev().enumerate() {
        rpo_num[v as usize] = i;
    }

    let mut idom = vec![NO_POST_DOM; n + 1];
    idom[exit as usize] = exit;
    let mut changed = true;
    while changed {
        changed = false;
        // Process in reverse post-order of the reverse graph (skip the
        // root). `post` is post-order, so iterate it backwards.
        for &v in post.iter().rev() {
            if v == exit {
                continue;
            }
            // Predecessors of `v` in the reverse graph are its forward
            // successors — plus the exit if `v` returns.
            let mut new_idom = NO_POST_DOM;
            let fwd = &succs[v as usize];
            let ret = matches!(blocks[v as usize].term, Terminator::Ret);
            for &p in fwd.iter().chain(ret.then_some(&exit)) {
                if idom[p as usize] == NO_POST_DOM {
                    continue; // not yet processed / can't reach exit
                }
                new_idom = if new_idom == NO_POST_DOM {
                    p
                } else {
                    intersect(&idom, &rpo_num, new_idom, p)
                };
            }
            if new_idom != NO_POST_DOM && idom[v as usize] != new_idom {
                idom[v as usize] = new_idom;
                changed = true;
            }
        }
    }
    idom.truncate(n);
    idom
}

/// CHK finger intersection in reverse-graph RPO numbering.
fn intersect(idom: &[u32], rpo_num: &[usize], mut a: u32, mut b: u32) -> u32 {
    while a != b {
        while rpo_num[a as usize] > rpo_num[b as usize] {
            a = idom[a as usize];
        }
        while rpo_num[b as usize] > rpo_num[a as usize] {
            b = idom[b as usize];
        }
    }
    a
}

/// Dense bitset over register indices.
#[derive(Clone, PartialEq)]
pub(crate) struct RegSet(Vec<u64>);

impl RegSet {
    pub(crate) fn new(n_regs: u16) -> Self {
        Self(vec![0; (n_regs as usize).div_ceil(64).max(1)])
    }
    pub(crate) fn set(&mut self, r: u16) {
        self.0[r as usize / 64] |= 1 << (r % 64);
    }
    pub(crate) fn clear(&mut self, r: u16) {
        self.0[r as usize / 64] &= !(1 << (r % 64));
    }
    pub(crate) fn contains(&self, r: u16) -> bool {
        self.0[r as usize / 64] & (1 << (r % 64)) != 0
    }
    /// `self |= other & !mask`; returns whether `self` changed.
    fn union_minus(&mut self, other: &RegSet, mask: &RegSet) -> bool {
        let mut changed = false;
        for ((s, &o), &m) in self.0.iter_mut().zip(&other.0).zip(&mask.0) {
            let new = *s | (o & !m);
            changed |= new != *s;
            *s = new;
        }
        changed
    }
    fn to_vec(&self) -> Vec<u16> {
        let mut out = Vec::new();
        for (w, &bits) in self.0.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((w * 64) as u16 + b as u16);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// Invoke `read_i` / `read_f` for every register one instruction reads.
pub(crate) fn reg_uses(ins: &Instr, mut read_i: impl FnMut(u16), mut read_f: impl FnMut(u16)) {
    use Instr::*;
    match *ins {
        ConstI { .. } | ConstF { .. } | GlobalId { .. } | GlobalSize { .. } => {}
        MovI { src, .. } => read_i(src),
        MovF { src, .. } => read_f(src),
        IBin { a, b, .. } | CmpI { a, b, .. } | IMin { a, b, .. } | IMax { a, b, .. } => {
            read_i(a);
            read_i(b);
        }
        IBinImm { a, .. } => read_i(a),
        FBin { a, b, .. } | CmpF { a, b, .. } | Math2 { a, b, .. } => {
            read_f(a);
            read_f(b);
        }
        NegI { a, .. } | NotI { a, .. } | BitNotI { a, .. } | CastII { a, .. } | IAbs { a, .. } => {
            read_i(a)
        }
        NegF { a, .. } | CastFI { a, .. } | Math1 { a, .. } => read_f(a),
        CastIF { a, .. } => read_i(a),
        LoadF { idx, .. } | LoadI { idx, .. } => read_i(idx),
        StoreF { idx, src, .. } => {
            read_i(idx);
            read_f(src);
        }
        StoreI { idx, src, .. } => {
            read_i(idx);
            read_i(src);
        }
    }
}

/// The register one instruction writes, if any: `(is_float, reg)`.
pub(crate) fn reg_def(ins: &Instr) -> Option<(bool, u16)> {
    use Instr::*;
    match *ins {
        ConstI { dst, .. }
        | MovI { dst, .. }
        | IBin { dst, .. }
        | IBinImm { dst, .. }
        | CmpI { dst, .. }
        | CmpF { dst, .. }
        | NegI { dst, .. }
        | NotI { dst, .. }
        | BitNotI { dst, .. }
        | CastFI { dst, .. }
        | CastII { dst, .. }
        | IMin { dst, .. }
        | IMax { dst, .. }
        | IAbs { dst, .. }
        | LoadI { dst, .. }
        | GlobalId { dst, .. }
        | GlobalSize { dst, .. } => Some((false, dst)),
        ConstF { dst, .. }
        | MovF { dst, .. }
        | FBin { dst, .. }
        | NegF { dst, .. }
        | CastIF { dst, .. }
        | Math1 { dst, .. }
        | Math2 { dst, .. }
        | LoadF { dst, .. } => Some((true, dst)),
        StoreF { .. } | StoreI { .. } => None,
    }
}

/// Invoke `read_i` / `read_f` for every register a terminator reads.
pub(crate) fn term_uses(
    term: &Terminator,
    mut read_i: impl FnMut(u16),
    mut read_f: impl FnMut(u16),
) {
    match *term {
        Terminator::Jump(_) | Terminator::Ret => {}
        Terminator::Branch { cond, .. } => read_i(cond),
        Terminator::BranchCmp { float, a, b, .. } => {
            if float {
                read_f(a);
                read_f(b);
            } else {
                read_i(a);
                read_i(b);
            }
        }
    }
}

/// Backward bit-vector liveness to a fixpoint; returns per-block live-in
/// sets as sorted register lists (I, F).
#[allow(clippy::type_complexity)]
fn liveness(
    blocks: &[Block],
    succs: &[Vec<u32>],
    n_iregs: u16,
    n_fregs: u16,
) -> (Vec<Vec<u16>>, Vec<Vec<u16>>) {
    let n = blocks.len();
    // Per-block gen (read before written) and kill (written) sets.
    let mut gen_i = Vec::with_capacity(n);
    let mut gen_f = Vec::with_capacity(n);
    let mut kill_i = Vec::with_capacity(n);
    let mut kill_f = Vec::with_capacity(n);
    for block in blocks {
        let mut gi = RegSet::new(n_iregs);
        let mut gf = RegSet::new(n_fregs);
        let mut ki = RegSet::new(n_iregs);
        let mut kf = RegSet::new(n_fregs);
        for ins in &block.instrs {
            reg_uses(
                ins,
                |r| {
                    if !ki.contains(r) {
                        gi.set(r)
                    }
                },
                |r| {
                    if !kf.contains(r) {
                        gf.set(r)
                    }
                },
            );
            match reg_def(ins) {
                Some((true, r)) => kf.set(r),
                Some((false, r)) => ki.set(r),
                None => {}
            }
        }
        term_uses(
            &block.term,
            |r| {
                if !ki.contains(r) {
                    gi.set(r)
                }
            },
            |r| {
                if !kf.contains(r) {
                    gf.set(r)
                }
            },
        );
        gen_i.push(gi);
        gen_f.push(gf);
        kill_i.push(ki);
        kill_f.push(kf);
    }

    // live_in[b] = gen[b] ∪ (∪_{s ∈ succ(b)} live_in[s] − kill[b])
    let mut live_i: Vec<RegSet> = gen_i.clone();
    let mut live_f: Vec<RegSet> = gen_f.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            for &s in &succs[b] {
                let (out_i, out_f) = (live_i[s as usize].clone(), live_f[s as usize].clone());
                changed |= live_i[b].union_minus(&out_i, &kill_i[b]);
                changed |= live_f[b].union_minus(&out_f, &kill_f[b]);
            }
        }
    }
    (
        live_i.iter().map(RegSet::to_vec).collect(),
        live_f.iter().map(RegSet::to_vec).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Function;
    use crate::opt::OptLevel;

    /// These tests assert analyses over the naive codegen CFG shapes
    /// (diamond arms, join blocks), which the optimizer collapses — so
    /// compile with the pipeline off.
    fn compile_fn(src: &str) -> Function {
        crate::compile_with_opt(src, OptLevel::None)
            .unwrap()
            .bytecode
    }

    /// Walk the scalar semantics: every branch block's ipdom must be a
    /// block (or the exit) that every path from the branch reaches.
    #[test]
    fn diamond_rejoins_at_join_block() {
        let f = compile_fn(
            "kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                float s = 1.0;
                if (i < n) { s = 2.0; } else { s = 3.0; }
                o[i] = s;
            }",
        );
        let cfg = &f.cfg;
        // Exactly one branch block; its ipdom is the join block, which is
        // a real block (not the exit) because the store follows the if.
        let branch = f
            .blocks
            .iter()
            .position(|b| matches!(b.term, Terminator::Branch { .. }))
            .unwrap();
        let r = cfg.ipdom[branch];
        assert_ne!(r, cfg.exit(), "diamond must rejoin before the exit");
        assert_ne!(r, NO_POST_DOM);
        // Both successors reach the rejoin block.
        let Terminator::Branch { then, els, .. } = f.blocks[branch].term else {
            unreachable!()
        };
        for t in [then, els] {
            // then/els are empty bodies that jump straight to the join.
            match f.blocks[t as usize].term {
                Terminator::Jump(j) => assert_eq!(j, r),
                _ => panic!("diamond arm must jump to the join"),
            }
        }
    }

    #[test]
    fn early_return_branch_rejoins_at_exit() {
        let f = compile_fn(
            "kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                if (i >= n) { return; }
                o[i] = 1.0;
            }",
        );
        let cfg = &f.cfg;
        let branch = f
            .blocks
            .iter()
            .position(|b| matches!(b.term, Terminator::Branch { .. }))
            .unwrap();
        assert_eq!(
            cfg.ipdom[branch],
            cfg.exit(),
            "paths that split between returning and falling through only \
             meet at the virtual exit"
        );
    }

    #[test]
    fn loop_head_rejoins_at_loop_exit() {
        let f = compile_fn(
            "kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                float s = 0.0;
                for (int j = 0; j < i; j++) { s = s + 1.0; }
                o[i] = s;
            }",
        );
        let cfg = &f.cfg;
        let branch = f
            .blocks
            .iter()
            .position(|b| matches!(b.term, Terminator::Branch { .. }))
            .unwrap();
        let Terminator::Branch { els, .. } = f.blocks[branch].term else {
            unreachable!()
        };
        // The loop-head branch reconverges at its own exit edge target.
        assert_eq!(cfg.ipdom[branch], els);
    }

    #[test]
    fn infinite_loop_has_no_post_dominator() {
        // `for (;;)` with no break: the cycle cannot reach the exit.
        let f = compile_fn(
            "kernel void k(global int* o, int n) {
                int i = 0;
                for (;;) { i = i + 1; }
                o[0] = i;
            }",
        );
        let cfg = &f.cfg;
        // Blocks inside the cycle can't reach Ret, so they carry the
        // sentinel. (The branch itself always re-enters the loop — both
        // its targets are within or beyond the cycle.)
        assert!(cfg.ipdom.contains(&NO_POST_DOM));
    }

    #[test]
    fn successors_and_predecessors_are_consistent() {
        let f = compile_fn(
            "kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                for (int j = 0; j < n; j++) {
                    if (j == 2) { continue; }
                    if (j > 4) { break; }
                    o[i] = o[i] + 1.0;
                }
            }",
        );
        let cfg = &f.cfg;
        for (b, ss) in cfg.succs.iter().enumerate() {
            for &s in ss {
                assert!(
                    cfg.preds[s as usize].contains(&(b as u32)),
                    "edge {b}->{s} missing from preds"
                );
            }
        }
        // RPO starts at the entry block.
        assert_eq!(cfg.rpo.first(), Some(&0));
    }

    #[test]
    fn live_in_tracks_reads_not_dead_registers() {
        let f = compile_fn(
            "kernel void k(global const float* a, global float* o, int n) {
                int i = get_global_id(0);
                float s = a[i];
                float dead = s * 2.0;
                if (i < n) { o[i] = s; }
            }",
        );
        let cfg = &f.cfg;
        let branch = f
            .blocks
            .iter()
            .position(|b| matches!(b.term, Terminator::Branch { .. }))
            .unwrap();
        let Terminator::Branch { then, .. } = f.blocks[branch].term else {
            unreachable!()
        };
        let then = then as usize;
        // The store in the then-block reads `s` (an F register) and `i`:
        // the F live-in set is non-empty but does not include every F
        // register (`dead`'s register is written before the branch and
        // never read after).
        assert!(!cfg.live_in_f[then].is_empty());
        assert!(
            (cfg.live_in_f[then].len() as u16) < f.n_fregs,
            "dead registers must not be live-in: {:?} of {} F regs",
            cfg.live_in_f[then],
            f.n_fregs
        );
        assert!(!cfg.live_in_i[then].is_empty(), "index register is live");
    }

    #[test]
    fn loop_carried_registers_stay_live_around_the_backedge() {
        let f = compile_fn(
            "kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                float s = 0.0;
                for (int j = 0; j < i; j++) { s = s + 0.5; }
                o[i] = s;
            }",
        );
        let cfg = &f.cfg;
        // `s` is read in the loop body and after the loop, so it must be
        // live-in at the body block even though the body also writes it.
        let branch = f
            .blocks
            .iter()
            .position(|b| matches!(b.term, Terminator::Branch { .. }))
            .unwrap();
        let Terminator::Branch { then, .. } = f.blocks[branch].term else {
            unreachable!()
        };
        assert!(
            !cfg.live_in_f[then as usize].is_empty(),
            "accumulator must be live-in at the loop body"
        );
    }
}
