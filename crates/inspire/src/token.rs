//! Tokens produced by the lexer.

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the lexeme.
    pub start: usize,
    /// One past the last byte of the lexeme.
    pub end: usize,
}

impl Span {
    /// Construct a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

/// One lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// The kinds of token the kernel language knows about.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or non-reserved word.
    Ident(String),
    /// Integer literal; `unsigned` records a trailing `u`/`U` suffix.
    IntLit {
        value: i64,
        unsigned: bool,
    },
    /// Floating-point literal (an `f`/`F` suffix is accepted and ignored).
    FloatLit(f64),

    // Keywords.
    KwKernel,
    KwVoid,
    KwGlobal,
    KwConst,
    KwInt,
    KwUInt,
    KwFloat,
    KwBool,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwBreak,
    KwContinue,
    KwReturn,
    KwTrue,
    KwFalse,

    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Question,
    Colon,

    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    BangEq,
    AmpAmp,
    PipePipe,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    PlusPlus,
    MinusMinus,

    /// End of input (always the final token).
    Eof,
}

impl TokenKind {
    /// A short human-readable name used in diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::IntLit { value, .. } => format!("integer literal `{value}`"),
            TokenKind::FloatLit(v) => format!("float literal `{v}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::KwKernel => "kernel",
            TokenKind::KwVoid => "void",
            TokenKind::KwGlobal => "global",
            TokenKind::KwConst => "const",
            TokenKind::KwInt => "int",
            TokenKind::KwUInt => "uint",
            TokenKind::KwFloat => "float",
            TokenKind::KwBool => "bool",
            TokenKind::KwIf => "if",
            TokenKind::KwElse => "else",
            TokenKind::KwFor => "for",
            TokenKind::KwWhile => "while",
            TokenKind::KwBreak => "break",
            TokenKind::KwContinue => "continue",
            TokenKind::KwReturn => "return",
            TokenKind::KwTrue => "true",
            TokenKind::KwFalse => "false",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semicolon => ";",
            TokenKind::Question => "?",
            TokenKind::Colon => ":",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Amp => "&",
            TokenKind::Pipe => "|",
            TokenKind::Caret => "^",
            TokenKind::Tilde => "~",
            TokenKind::Bang => "!",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::BangEq => "!=",
            TokenKind::AmpAmp => "&&",
            TokenKind::PipePipe => "||",
            TokenKind::Assign => "=",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::StarAssign => "*=",
            TokenKind::SlashAssign => "/=",
            TokenKind::PercentAssign => "%=",
            TokenKind::PlusPlus => "++",
            TokenKind::MinusMinus => "--",
            _ => unreachable!("symbol() called on non-symbol token"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn describe_names_tokens() {
        assert_eq!(TokenKind::Shl.describe(), "`<<`");
        assert_eq!(
            TokenKind::Ident("foo".into()).describe(),
            "identifier `foo`"
        );
    }
}
