//! Hand-written lexer for the kernel language.

use crate::error::CompileError;
use crate::token::{Span, Token, TokenKind};

/// Tokenize `src`, returning the token stream terminated by [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match c {
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(start),
                b'0'..=b'9' => self.number(start)?,
                b'.' if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) => {
                    self.number(start)?
                }
                _ => self.symbol(start)?,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start, self.pos),
        });
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let open = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(CompileError::lex("unterminated block comment", open))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self, start: usize) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        // The scanner only advanced over ASCII alphanumerics, so the slice
        // is valid UTF-8 and the lossy conversion is exact.
        let text = String::from_utf8_lossy(&self.src[start..self.pos]);
        let kind = match text.as_ref() {
            "kernel" | "__kernel" => TokenKind::KwKernel,
            "void" => TokenKind::KwVoid,
            "global" | "__global" => TokenKind::KwGlobal,
            "const" => TokenKind::KwConst,
            "int" => TokenKind::KwInt,
            "uint" | "unsigned" => TokenKind::KwUInt,
            "float" => TokenKind::KwFloat,
            "bool" => TokenKind::KwBool,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "for" => TokenKind::KwFor,
            "while" => TokenKind::KwWhile,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "return" => TokenKind::KwReturn,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            _ => TokenKind::Ident(text.to_string()),
        };
        self.push(kind, start);
    }

    fn number(&mut self, start: usize) -> Result<(), CompileError> {
        let mut is_float = false;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            // Disambiguate from a hypothetical member access: digits '.' digits.
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                // Not an exponent after all (e.g. `1else` is `1` `else`).
                self.pos = save;
            }
        }
        // The scanner only advanced over ASCII digits / `.eE+-`, so the
        // slice is valid UTF-8 and the lossy conversion is exact.
        let text = String::from_utf8_lossy(&self.src[start..self.pos]);
        if is_float {
            // Consume an optional `f` suffix.
            if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                self.pos += 1;
            }
            let value: f64 = text
                .parse()
                .map_err(|_| CompileError::lex(format!("invalid float literal `{text}`"), start))?;
            self.push(TokenKind::FloatLit(value), start);
        } else {
            let mut unsigned = false;
            if matches!(self.peek(), Some(b'u') | Some(b'U')) {
                unsigned = true;
                self.pos += 1;
            } else if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                // `1f` is a float literal.
                self.pos += 1;
                let value: f64 = text.parse().map_err(|_| {
                    CompileError::lex(format!("invalid float literal `{text}`"), start)
                })?;
                self.push(TokenKind::FloatLit(value), start);
                return Ok(());
            }
            let value: i64 = if unsigned {
                text.parse::<u64>()
                    .ok()
                    .filter(|&v| v <= u32::MAX as u64)
                    .map(|v| v as i64)
                    .ok_or_else(|| {
                        CompileError::lex(
                            format!("unsigned literal `{text}u` out of 32-bit range"),
                            start,
                        )
                    })?
            } else {
                text.parse::<i64>()
                    .ok()
                    .filter(|&v| v <= i64::from(u32::MAX))
                    .ok_or_else(|| {
                        CompileError::lex(format!("integer literal `{text}` out of range"), start)
                    })?
            };
            self.push(TokenKind::IntLit { value, unsigned }, start);
        }
        Ok(())
    }

    fn symbol(&mut self, start: usize) -> Result<(), CompileError> {
        use TokenKind::*;
        let Some(c) = self.bump() else {
            return Err(CompileError::lex("unexpected end of input", start));
        };
        let two = |l: &mut Self, second: u8, yes: TokenKind, no: TokenKind| {
            if l.peek() == Some(second) {
                l.pos += 1;
                yes
            } else {
                no
            }
        };
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b',' => Comma,
            b';' => Semicolon,
            b'?' => Question,
            b':' => Colon,
            b'~' => Tilde,
            b'^' => Caret,
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.pos += 1;
                    PlusPlus
                } else {
                    two(self, b'=', PlusAssign, Plus)
                }
            }
            b'-' => {
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                    MinusMinus
                } else {
                    two(self, b'=', MinusAssign, Minus)
                }
            }
            b'*' => two(self, b'=', StarAssign, Star),
            b'/' => two(self, b'=', SlashAssign, Slash),
            b'%' => two(self, b'=', PercentAssign, Percent),
            b'&' => two(self, b'&', AmpAmp, Amp),
            b'|' => two(self, b'|', PipePipe, Pipe),
            b'!' => two(self, b'=', BangEq, Bang),
            b'=' => two(self, b'=', EqEq, Assign),
            b'<' => {
                if self.peek() == Some(b'<') {
                    self.pos += 1;
                    Shl
                } else {
                    two(self, b'=', Le, Lt)
                }
            }
            b'>' => {
                if self.peek() == Some(b'>') {
                    self.pos += 1;
                    Shr
                } else {
                    two(self, b'=', Ge, Gt)
                }
            }
            other => {
                return Err(CompileError::lex(
                    format!("unexpected character `{}`", other as char),
                    start,
                ))
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("kernel void foo __global global"),
            vec![
                KwKernel,
                KwVoid,
                Ident("foo".into()),
                KwGlobal,
                KwGlobal,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_integer_literals() {
        assert_eq!(
            kinds("0 42 4294967295u"),
            vec![
                IntLit {
                    value: 0,
                    unsigned: false
                },
                IntLit {
                    value: 42,
                    unsigned: false
                },
                IntLit {
                    value: u32::MAX as i64,
                    unsigned: true
                },
                Eof
            ]
        );
    }

    #[test]
    fn rejects_out_of_range_literals() {
        assert!(lex("4294967296u").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn lexes_float_literals() {
        assert_eq!(
            kinds("1.5 2.0f .25 1e-3 3f 7."),
            vec![
                FloatLit(1.5),
                FloatLit(2.0),
                FloatLit(0.25),
                FloatLit(1e-3),
                FloatLit(3.0),
                FloatLit(7.0),
                Eof
            ]
        );
    }

    #[test]
    fn float_exponent_requires_digits() {
        // `1e` must lex as int 1 followed by identifier `e`.
        assert_eq!(
            kinds("1e"),
            vec![
                IntLit {
                    value: 1,
                    unsigned: false
                },
                Ident("e".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_greedily() {
        assert_eq!(kinds("<<= "), vec![Shl, Assign, Eof]);
        assert_eq!(
            kinds("a+=b"),
            vec![Ident("a".into()), PlusAssign, Ident("b".into()), Eof]
        );
        assert_eq!(
            kinds("i++ --j"),
            vec![
                Ident("i".into()),
                PlusPlus,
                MinusMinus,
                Ident("j".into()),
                Eof
            ]
        );
        assert_eq!(kinds("&& & || |"), vec![AmpAmp, Amp, PipePipe, Pipe, Eof]);
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // line\n b /* block\n comment */ c"),
            vec![Ident("a".into()), Ident("b".into()), Ident("c".into()), Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = lex("x /* never ends").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("@").is_err());
        assert!(lex("#include").is_err());
    }

    #[test]
    fn spans_cover_lexemes() {
        let toks = lex("ab + cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }
}
