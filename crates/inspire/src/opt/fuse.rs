//! Superinstruction fusion for hot pairs.
//!
//! Two rewrites, both targeting dispatch overhead in the interpreters:
//!
//! - **const + op → immediate form**: an [`Instr::IBin`] whose second
//!   operand (or first, for commutative ops) is a known constant becomes
//!   [`Instr::IBinImm`], killing the register read per lane per
//!   execution; the producing `ConstI` usually dies and is swept by the
//!   DCE pass that follows.
//! - **cmp + branch → fused conditional branch**: a compare whose result
//!   feeds the block's own branch and is dead beyond it becomes
//!   [`Terminator::BranchCmp`], dropping the boolean materialization.
//!   Histogram accounting still counts the fused terminator as one
//!   compare plus one branch, so dynamic operation counts are invariant.

use super::{reg_span, Ctx};
use crate::bytecode::{Block, IBinOp, Instr, Terminator};
use crate::cfg::CfgInfo;
use std::collections::HashMap;

pub(super) fn run(mut blocks: Vec<Block>, ctx: &Ctx) -> Vec<Block> {
    fuse_const_operands(&mut blocks);
    fuse_cmp_branches(&mut blocks, ctx);
    blocks
}

fn fuse_const_operands(blocks: &mut [Block]) {
    for b in blocks.iter_mut() {
        let mut ci: HashMap<u16, i64> = HashMap::new();
        for ins in &mut b.instrs {
            if let Instr::IBin {
                op,
                dst,
                a,
                b: rb,
                unsigned,
            } = *ins
            {
                if let Some(&imm) = ci.get(&rb) {
                    // Keep a by-zero division in register form: the fused
                    // form is equivalent (it faults identically), but the
                    // register form reads as clearly not-a-constant-fold.
                    if !(matches!(op, IBinOp::Div | IBinOp::Rem) && imm == 0) {
                        *ins = Instr::IBinImm {
                            op,
                            dst,
                            a,
                            imm,
                            unsigned,
                        };
                    }
                } else if let Some(&imm) = ci.get(&a) {
                    if matches!(
                        op,
                        IBinOp::Add | IBinOp::Mul | IBinOp::And | IBinOp::Or | IBinOp::Xor
                    ) {
                        *ins = Instr::IBinImm {
                            op,
                            dst,
                            a: rb,
                            imm,
                            unsigned,
                        };
                    }
                }
            }
            match *ins {
                Instr::ConstI { dst, v } => {
                    ci.insert(dst, v);
                }
                _ => {
                    if let Some((false, d)) = crate::cfg::reg_def(ins) {
                        ci.remove(&d);
                    }
                }
            }
        }
    }
}

fn fuse_cmp_branches(blocks: &mut [Block], ctx: &Ctx) {
    let (ni, nf) = reg_span(blocks, ctx.params);
    let cfg = CfgInfo::build(blocks, ni, nf);
    for b in blocks.iter_mut() {
        let Terminator::Branch { cond, then, els } = b.term else {
            continue;
        };
        let Some(last) = b.instrs.last() else {
            continue;
        };
        let (op, float, a, rb, dst) = match *last {
            Instr::CmpI { op, dst, a, b } => (op, false, a, b, dst),
            Instr::CmpF { op, dst, a, b } => (op, true, a, b, dst),
            _ => continue,
        };
        if dst != cond {
            continue;
        }
        // The boolean must be dead past the branch — it lives in the I
        // file, so check the I live-ins of both targets.
        if cfg.live_in_i[then as usize].contains(&cond)
            || cfg.live_in_i[els as usize].contains(&cond)
        {
            continue;
        }
        b.instrs.pop();
        b.term = Terminator::BranchCmp {
            op,
            float,
            a,
            b: rb,
            then,
            els,
        };
    }
}
