//! Liveness-based dead-code elimination.
//!
//! A backward sweep per block, seeded with the union of the successors'
//! live-in sets plus the terminator's reads: an instruction whose
//! destination is dead at its own position is deleted if removal cannot
//! change observable behaviour.
//!
//! What counts as removable:
//!
//! - Every pure register-producing instruction, including dead **loads**:
//!   OpenCL leaves out-of-bounds accesses undefined, so eliminating a dead
//!   load can only remove a fault the program had no right to rely on.
//! - `Div`/`Rem` stay (their divisor could be zero at run time); the
//!   immediate form is removable exactly when its divisor is a non-zero
//!   constant.
//! - Stores define no register and are never candidates.

use super::{reg_span, Ctx};
use crate::bytecode::{Block, IBinOp, Instr};
use crate::cfg::{reg_def, reg_uses, term_uses, CfgInfo, RegSet};

pub(super) fn run(mut blocks: Vec<Block>, ctx: &Ctx) -> Vec<Block> {
    let (ni, nf) = reg_span(&blocks, ctx.params);
    let cfg = CfgInfo::build(&blocks, ni, nf);
    for (bi, b) in blocks.iter_mut().enumerate() {
        let mut live_i = RegSet::new(ni);
        let mut live_f = RegSet::new(nf);
        for &s in &cfg.succs[bi] {
            for &r in &cfg.live_in_i[s as usize] {
                live_i.set(r);
            }
            for &r in &cfg.live_in_f[s as usize] {
                live_f.set(r);
            }
        }
        term_uses(&b.term, |r| live_i.set(r), |r| live_f.set(r));
        for k in (0..b.instrs.len()).rev() {
            if let Some((is_f, d)) = reg_def(&b.instrs[k]) {
                let dead = if is_f {
                    !live_f.contains(d)
                } else {
                    !live_i.contains(d)
                };
                if dead && removable(&b.instrs[k]) {
                    b.instrs.remove(k);
                    continue;
                }
                if is_f {
                    live_f.clear(d);
                } else {
                    live_i.clear(d);
                }
            }
            reg_uses(&b.instrs[k], |r| live_i.set(r), |r| live_f.set(r));
        }
    }
    blocks
}

fn removable(ins: &Instr) -> bool {
    match *ins {
        Instr::IBin {
            op: IBinOp::Div | IBinOp::Rem,
            ..
        } => false,
        Instr::IBinImm {
            op: IBinOp::Div | IBinOp::Rem,
            imm,
            ..
        } => imm != 0,
        _ => reg_def(ins).is_some(),
    }
}
