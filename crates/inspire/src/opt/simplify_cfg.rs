//! CFG cleanup: jump threading, degenerate-branch folding,
//! unreachable-block elimination, and straight-line block merging.
//!
//! Runs its three rewrites to a fixpoint. Unreachable-block elimination is
//! what canonicalizes the orphan blocks codegen leaves behind statements
//! after `break`/`continue`/`return` — semantically identical kernels end
//! up with identical block lists (and therefore identical fingerprints).

use super::Ctx;
use crate::bytecode::{Block, Terminator};

pub(super) fn run(mut blocks: Vec<Block>, _ctx: &Ctx) -> Vec<Block> {
    loop {
        let mut changed = thread_jumps(&mut blocks);
        changed |= merge_straight_lines(&mut blocks);
        let (next, dropped) = drop_unreachable(blocks);
        blocks = next;
        if !(changed || dropped) {
            return blocks;
        }
    }
}

/// Redirect every branch target that points at an empty `Jump` block to
/// that block's (transitive) destination, and fold branches whose two
/// sides agree into plain jumps.
fn thread_jumps(blocks: &mut [Block]) -> bool {
    let n = blocks.len();
    // fwd[i] = where references to block i should really point.
    let mut fwd: Vec<u32> = (0..n as u32).collect();
    for (i, b) in blocks.iter().enumerate() {
        if b.instrs.is_empty() {
            if let Terminator::Jump(t) = b.term {
                fwd[i] = t;
            }
        }
    }
    // Chain resolution with a hop budget: a cycle of empty jump blocks is
    // an infinite loop — leave its targets untouched so rewriting reaches
    // a fixpoint.
    let resolve = |v0: u32| -> u32 {
        let mut v = v0;
        let mut hops = 0;
        while fwd[v as usize] != v {
            if hops >= n {
                return v0;
            }
            v = fwd[v as usize];
            hops += 1;
        }
        v
    };
    let mut changed = false;
    for b in blocks.iter_mut() {
        let new_term = match b.term {
            Terminator::Ret => None,
            Terminator::Jump(t) => {
                let nt = resolve(t);
                (nt != t).then_some(Terminator::Jump(nt))
            }
            Terminator::Branch { cond, then, els } => {
                let (nt, ne) = (resolve(then), resolve(els));
                if nt == ne {
                    // Both sides agree: the condition no longer matters.
                    Some(Terminator::Jump(nt))
                } else if nt != then || ne != els {
                    Some(Terminator::Branch {
                        cond,
                        then: nt,
                        els: ne,
                    })
                } else {
                    None
                }
            }
            Terminator::BranchCmp {
                op,
                float,
                a,
                b: rb,
                then,
                els,
            } => {
                let (nt, ne) = (resolve(then), resolve(els));
                if nt == ne {
                    Some(Terminator::Jump(nt))
                } else if nt != then || ne != els {
                    Some(Terminator::BranchCmp {
                        op,
                        float,
                        a,
                        b: rb,
                        then: nt,
                        els: ne,
                    })
                } else {
                    None
                }
            }
        };
        if let Some(t) = new_term {
            b.term = t;
            changed = true;
        }
    }
    changed
}

/// Merge a block into its unique `Jump` predecessor: `i: …; jump t` where
/// `t` has no other reference becomes one straight-line block. The merged
/// block is left as an empty `Ret` husk for unreachable-elimination.
fn merge_straight_lines(blocks: &mut [Block]) -> bool {
    let mut changed = false;
    loop {
        let n = blocks.len();
        let mut nrefs = vec![0usize; n];
        for b in blocks.iter() {
            match b.term {
                Terminator::Jump(t) => nrefs[t as usize] += 1,
                Terminator::Branch { then, els, .. } | Terminator::BranchCmp { then, els, .. } => {
                    nrefs[then as usize] += 1;
                    nrefs[els as usize] += 1;
                }
                Terminator::Ret => {}
            }
        }
        let mut merged = false;
        for i in 0..n {
            let t = match blocks[i].term {
                Terminator::Jump(t) => t as usize,
                _ => continue,
            };
            // The entry block can never be merged away, and nrefs == 1
            // rules out self-loops (a self-jump refs itself).
            if t == i || t == 0 || nrefs[t] != 1 {
                continue;
            }
            let mut tail = std::mem::take(&mut blocks[t].instrs);
            let term = std::mem::replace(&mut blocks[t].term, Terminator::Ret);
            blocks[i].instrs.append(&mut tail);
            blocks[i].term = term;
            merged = true;
            changed = true;
            break; // nrefs is stale now; recount.
        }
        if !merged {
            return changed;
        }
    }
}

/// Drop blocks unreachable from the entry and renumber branch targets.
fn drop_unreachable(blocks: Vec<Block>) -> (Vec<Block>, bool) {
    let n = blocks.len();
    let mut reach = vec![false; n];
    let mut stack = vec![0u32];
    reach[0] = true;
    while let Some(v) = stack.pop() {
        let mut visit = |t: u32| {
            if !reach[t as usize] {
                reach[t as usize] = true;
                stack.push(t);
            }
        };
        match blocks[v as usize].term {
            Terminator::Jump(t) => visit(t),
            Terminator::Branch { then, els, .. } | Terminator::BranchCmp { then, els, .. } => {
                visit(then);
                visit(els);
            }
            Terminator::Ret => {}
        }
    }
    if reach.iter().all(|&r| r) {
        return (blocks, false);
    }
    let mut remap = vec![u32::MAX; n];
    let mut out: Vec<Block> = Vec::with_capacity(n);
    for (i, b) in blocks.into_iter().enumerate() {
        if reach[i] {
            remap[i] = out.len() as u32;
            out.push(b);
        }
    }
    for b in &mut out {
        match &mut b.term {
            Terminator::Ret => {}
            Terminator::Jump(t) => *t = remap[*t as usize],
            Terminator::Branch { then, els, .. } | Terminator::BranchCmp { then, els, .. } => {
                *then = remap[*then as usize];
                *els = remap[*els as usize];
            }
        }
    }
    (out, true)
}
