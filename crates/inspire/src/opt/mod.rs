//! Bytecode optimizer: a pass pipeline over the compiled block list.
//!
//! Codegen in [`crate::bytecode`] is naive per-statement expansion — every
//! constant gets its own `ConstI`, every variable read a `MovI`, every
//! `break`/`return` leaves an orphan block behind. This module cleans that
//! up between codegen and the final [`CfgInfo`](crate::cfg::CfgInfo)
//! build, so both VM engines, the dynamic instruction statistics, and the
//! kernel fingerprint all see the optimized form:
//!
//! - **simplify-cfg** — jump threading through empty blocks, folding of
//!   constant/degenerate branches, unreachable-block elimination (which
//!   canonicalizes the orphan blocks codegen leaves after early exits),
//!   and straight-line merging of single-predecessor jump chains.
//! - **const-fold** — evaluates instructions whose operands are known
//!   constants, using the VM's own arithmetic helpers so folded results
//!   are bit-identical to runtime results. Operations that can fault
//!   (`Div`/`Rem` by zero) are never folded away.
//! - **copy-prop** — forwards `MovI`/`MovF` sources through later uses
//!   within a block, drops self-moves, and coalesces `t = op …; v = mov t`
//!   pairs into `v = op …` when the temporary dies.
//! - **dce** — liveness-based dead-code elimination. Dead *loads* are
//!   removable (OpenCL makes out-of-bounds access undefined, so dropping
//!   a dead load can only remove a fault, never add one); stores and
//!   faulting divisions always stay.
//! - **fuse** — superinstruction fusion: `const + op` becomes the
//!   immediate form [`Instr::IBinImm`](crate::bytecode::Instr) and a
//!   compare feeding an otherwise-dead branch condition becomes the fused
//!   [`Terminator::BranchCmp`](crate::bytecode::Terminator).
//!
//! Every pass takes and returns `Vec<Block>`; after each one the pipeline
//! rebuilds the per-block [`OpHistogram`](crate::bytecode::OpHistogram)
//! through the one shared [`Block::recompute_histo`] so the histograms the
//! cost features consume can never drift from the instructions executed.
//! Set `INSPIRE_DUMP_IR=1` to dump the disassembly after every pass, and
//! `INSPIRE_OPT=0` to disable the pipeline entirely.
//!
//! After the pass pipeline a separate **backend tier** runs (see
//! [`regalloc`] and [`decode`]): liveness-driven linear-scan register
//! allocation shrinks both register files to their true maximum live
//! width, and the allocated blocks are pre-decoded into a flat
//! direct-threaded op array that the VM hot loops execute instead of
//! matching on the nested instruction enum. `INSPIRE_REGALLOC=0`
//! disables that tier independently of the pass pipeline.

use crate::bytecode::{Block, FnParam, Instr, Terminator};
use crate::cfg::{reg_def, reg_uses, term_uses};
use crate::ir::{ParamKind, ScalarType};
use std::cell::Cell;

mod const_fold;
mod copy_prop;
mod dce;
pub(crate) mod decode;
mod fuse;
pub(crate) mod regalloc;
mod simplify_cfg;

pub use regalloc::RegAlloc;

/// How hard the compiler optimizes. Threaded through
/// `HarnessConfig` and folded into the oracle fingerprint, because the
/// optimization level shapes the bytecode and therefore simulated times
/// and oracle labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Naive codegen output, untouched. The reference the differential
    /// suite compares optimized execution against.
    None,
    /// The full pass pipeline. The default.
    Full,
}

impl OptLevel {
    /// Level selected by the environment: `INSPIRE_OPT=0` disables the
    /// optimizer, anything else (including unset) enables it.
    pub fn from_env() -> Self {
        match std::env::var_os("INSPIRE_OPT") {
            Some(v) if v == "0" => OptLevel::None,
            _ => OptLevel::Full,
        }
    }

    /// Whether the pipeline runs at all.
    pub fn enabled(self) -> bool {
        matches!(self, OptLevel::Full)
    }

    /// Short stable tag for config fingerprints.
    pub fn tag(self) -> &'static str {
        match self {
            OptLevel::None => "none",
            OptLevel::Full => "full",
        }
    }
}

/// Shared context passed to every pass.
pub(crate) struct Ctx<'a> {
    pub(crate) params: &'a [FnParam],
}

type Pass = for<'a, 'b> fn(Vec<Block>, &'b Ctx<'a>) -> Vec<Block>;

/// Run the full pipeline over `blocks`. The caller re-runs
/// [`CfgInfo::build`](crate::cfg::CfgInfo::build) on the result so SIMT
/// reconvergence sees the final CFG.
///
/// When verification is on (`debug_assertions` or `INSPIRE_VERIFY=1`),
/// the IR verifier runs after every pass and a broken pass surfaces as a
/// [`CompileError`](crate::error::CompileError) naming it, instead of a
/// wrong answer at execution time.
pub(crate) fn optimize(
    name: &str,
    mut blocks: Vec<Block>,
    params: &[FnParam],
    n_params: usize,
    _level: OptLevel,
) -> Result<Vec<Block>, crate::error::CompileError> {
    let ctx = Ctx { params };
    let dump = dump_enabled();
    let verify = crate::analysis::verify::verify_enabled();
    if dump {
        eprintln!(
            "[inspire-opt] {name}: input\n{}",
            crate::pretty::disasm_blocks(&blocks)
        );
    }
    // Two cleanup rounds (simplify-cfg unlocks cross-block folding by
    // merging straight lines), then fusion over the settled code, then a
    // final sweep for constants and copies the fusion made dead.
    const PIPELINE: &[(&str, Pass)] = &[
        ("simplify-cfg", simplify_cfg::run),
        ("const-fold", const_fold::run),
        ("copy-prop", copy_prop::run),
        ("dce", dce::run),
        ("simplify-cfg", simplify_cfg::run),
        ("const-fold", const_fold::run),
        ("copy-prop", copy_prop::run),
        ("dce", dce::run),
        ("fuse", fuse::run),
        ("dce", dce::run),
        ("simplify-cfg", simplify_cfg::run),
    ];
    for (pname, pass) in PIPELINE {
        blocks = pass(blocks, &ctx);
        for b in &mut blocks {
            b.recompute_histo(n_params);
        }
        if dump {
            eprintln!(
                "[inspire-opt] {name}: after {pname}\n{}",
                crate::pretty::disasm_blocks(&blocks)
            );
        }
        if verify {
            // Register files are not allocated yet, so only structural
            // checks apply (u16::MAX bounds).
            crate::analysis::verify::verify_blocks(
                pname,
                name,
                &blocks,
                params,
                u16::MAX,
                u16::MAX,
            )?;
        }
    }
    Ok(blocks)
}

pub(crate) fn dump_enabled() -> bool {
    matches!(std::env::var_os("INSPIRE_DUMP_IR"), Some(v) if v != "0" && !v.is_empty())
}

/// Tight register-file spans `(n_iregs, n_fregs)` of the optimized code:
/// one past the highest register any instruction, terminator, or scalar
/// parameter touches. Parameter registers count even when dead — argument
/// binding writes them unconditionally.
pub(crate) fn reg_span(blocks: &[Block], params: &[FnParam]) -> (u16, u16) {
    let ni = Cell::new(0u32);
    let nf = Cell::new(0u32);
    for p in params {
        match p.kind {
            ParamKind::Scalar(ScalarType::Float) => nf.set(nf.get().max(p.reg as u32 + 1)),
            ParamKind::Scalar(_) => ni.set(ni.get().max(p.reg as u32 + 1)),
            ParamKind::Buffer { .. } => {}
        }
    }
    let ui = |r: u16| ni.set(ni.get().max(r as u32 + 1));
    let uf = |r: u16| nf.set(nf.get().max(r as u32 + 1));
    for b in blocks {
        for ins in &b.instrs {
            reg_uses(ins, ui, uf);
            match reg_def(ins) {
                Some((true, r)) => uf(r),
                Some((false, r)) => ui(r),
                None => {}
            }
        }
        term_uses(&b.term, ui, uf);
    }
    (ni.get() as u16, nf.get() as u16)
}

/// Rewrite every register an instruction *reads* through `fi` (I file) /
/// `ff` (F file). The dual of [`reg_uses`].
pub(super) fn map_uses(ins: &mut Instr, fi: impl Fn(u16) -> u16, ff: impl Fn(u16) -> u16) {
    use Instr::*;
    match ins {
        ConstI { .. } | ConstF { .. } | GlobalId { .. } | GlobalSize { .. } => {}
        MovI { src, .. } => *src = fi(*src),
        MovF { src, .. } => *src = ff(*src),
        IBin { a, b, .. } | CmpI { a, b, .. } | IMin { a, b, .. } | IMax { a, b, .. } => {
            *a = fi(*a);
            *b = fi(*b);
        }
        IBinImm { a, .. } => *a = fi(*a),
        FBin { a, b, .. } | CmpF { a, b, .. } | Math2 { a, b, .. } => {
            *a = ff(*a);
            *b = ff(*b);
        }
        NegI { a, .. } | NotI { a, .. } | BitNotI { a, .. } | CastII { a, .. } | IAbs { a, .. } => {
            *a = fi(*a)
        }
        CastIF { a, .. } => *a = fi(*a),
        NegF { a, .. } | CastFI { a, .. } | Math1 { a, .. } => *a = ff(*a),
        LoadF { idx, .. } | LoadI { idx, .. } => *idx = fi(*idx),
        StoreF { idx, src, .. } => {
            *idx = fi(*idx);
            *src = ff(*src);
        }
        StoreI { idx, src, .. } => {
            *idx = fi(*idx);
            *src = fi(*src);
        }
    }
}

/// Rewrite every register a terminator reads. The dual of [`term_uses`].
pub(super) fn map_term_uses(
    term: &mut Terminator,
    fi: impl Fn(u16) -> u16,
    ff: impl Fn(u16) -> u16,
) {
    match term {
        Terminator::Jump(_) | Terminator::Ret => {}
        Terminator::Branch { cond, .. } => *cond = fi(*cond),
        Terminator::BranchCmp { float, a, b, .. } => {
            if *float {
                *a = ff(*a);
                *b = ff(*b);
            } else {
                *a = fi(*a);
                *b = fi(*b);
            }
        }
    }
}

/// Redirect an instruction's destination register.
///
/// # Panics
/// Panics on stores, which define no register.
pub(super) fn set_def(ins: &mut Instr, new_dst: u16) {
    use Instr::*;
    match ins {
        ConstI { dst, .. }
        | MovI { dst, .. }
        | IBin { dst, .. }
        | IBinImm { dst, .. }
        | CmpI { dst, .. }
        | CmpF { dst, .. }
        | NegI { dst, .. }
        | NotI { dst, .. }
        | BitNotI { dst, .. }
        | CastFI { dst, .. }
        | CastII { dst, .. }
        | IMin { dst, .. }
        | IMax { dst, .. }
        | IAbs { dst, .. }
        | LoadI { dst, .. }
        | GlobalId { dst, .. }
        | GlobalSize { dst, .. }
        | ConstF { dst, .. }
        | MovF { dst, .. }
        | FBin { dst, .. }
        | NegF { dst, .. }
        | CastIF { dst, .. }
        | Math1 { dst, .. }
        | Math2 { dst, .. }
        | LoadF { dst, .. } => *dst = new_dst,
        StoreF { .. } | StoreI { .. } => unreachable!("stores define no register"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Function, IBinOp};
    use crate::compile_with_opt;

    fn opt(src: &str) -> Function {
        compile_with_opt(src, OptLevel::Full).unwrap().bytecode
    }

    fn noopt(src: &str) -> Function {
        compile_with_opt(src, OptLevel::None).unwrap().bytecode
    }

    #[test]
    fn constant_expressions_fold_to_a_single_const() {
        let f = opt("kernel void k(global int* o) {
                int i = get_global_id(0);
                o[i] = (2 + 3) * 4;
            }");
        // No IBin survives: the arithmetic happened at compile time.
        for b in &f.blocks {
            for ins in &b.instrs {
                assert!(
                    !matches!(ins, Instr::IBin { .. } | Instr::IBinImm { .. }),
                    "arith on constants must fold: {ins:?}"
                );
            }
        }
        assert!(
            f.num_instrs()
                < noopt(
                    "kernel void k(global int* o) {
                int i = get_global_id(0);
                o[i] = (2 + 3) * 4;
            }"
                )
                .num_instrs()
        );
    }

    #[test]
    fn division_by_constant_zero_never_folds() {
        let f = opt("kernel void k(global int* o) {
                int z = 0;
                o[0] = 1 / z;
            }");
        let has_div = f.blocks.iter().any(|b| {
            b.instrs.iter().any(|i| {
                matches!(
                    i,
                    Instr::IBin {
                        op: IBinOp::Div,
                        ..
                    } | Instr::IBinImm {
                        op: IBinOp::Div,
                        ..
                    }
                )
            })
        });
        assert!(has_div, "faulting division must survive the optimizer");
    }

    #[test]
    fn stores_are_never_eliminated() {
        let src = "kernel void k(global float* o) {
            int i = get_global_id(0);
            o[i] = 1.0;
            o[i] = 2.0;
        }";
        let f = opt(src);
        let stores: usize = f
            .blocks
            .iter()
            .map(|b| {
                b.instrs
                    .iter()
                    .filter(|i| matches!(i, Instr::StoreF { .. } | Instr::StoreI { .. }))
                    .count()
            })
            .sum();
        assert_eq!(stores, 2, "both stores must execute (no store elimination)");
    }

    #[test]
    fn orphan_blocks_after_return_are_eliminated() {
        // The statements after `return` compile into an unreachable block
        // chain; the optimizer must drop it so semantically identical
        // kernels get identical code.
        let with_dead = opt("kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                if (i >= n) { return; }
                o[i] = 1.0;
            }");
        for b in 1..with_dead.blocks.len() {
            assert!(
                !with_dead.cfg.preds[b].is_empty(),
                "block {b} is unreachable but survived"
            );
        }
    }

    #[test]
    fn cmp_feeding_branch_fuses() {
        let f = opt("kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                if (i < n) { o[i] = 1.0; }
            }");
        assert!(
            f.blocks
                .iter()
                .any(|b| matches!(b.term, Terminator::BranchCmp { .. })),
            "guard compare must fuse into the branch"
        );
        // And the boolean register materialization is gone.
        let cmps: usize = f
            .blocks
            .iter()
            .map(|b| {
                b.instrs
                    .iter()
                    .filter(|i| matches!(i, Instr::CmpI { .. } | Instr::CmpF { .. }))
                    .count()
            })
            .sum();
        assert_eq!(cmps, 0);
    }

    #[test]
    fn loop_increment_uses_immediate_form() {
        let f = opt("kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                float s = 0.0;
                for (int j = 0; j < n; j++) { s = s + 1.0; }
                o[i] = s;
            }");
        assert!(
            f.blocks.iter().any(|b| b.instrs.iter().any(|i| matches!(
                i,
                Instr::IBinImm {
                    op: IBinOp::Add,
                    ..
                }
            ))),
            "j++ must fuse its constant into an immediate add"
        );
    }

    #[test]
    fn histograms_stay_consistent_after_optimization() {
        let f = opt(
            "kernel void k(global const float* a, global float* o, int n) {
                int i = get_global_id(0);
                if (i < n) { o[i] = a[i] * 2.0 + 1.0; }
            }",
        );
        for b in &f.blocks {
            let mut copy = b.clone();
            copy.recompute_histo(f.params.len());
            assert_eq!(copy.histo, b.histo);
        }
    }

    #[test]
    fn reg_span_accounts_for_unused_params() {
        // Scalar param registers must stay allocated even if optimized
        // code never reads them — binding writes them unconditionally.
        let f = opt("kernel void k(global float* o, int unused, float fuses) {
                o[0] = 1.0;
            }");
        let i_param = f.params[1].reg;
        let f_param = f.params[2].reg;
        assert!(f.n_iregs > i_param);
        assert!(f.n_fregs > f_param);
    }

    #[test]
    fn optimized_code_shrinks_but_computes_the_same() {
        use crate::vm::{ArgValue, BufferData, Vm};
        let src = "kernel void k(global const float* a, global float* o, int n) {
            int i = get_global_id(0);
            float acc = 0.0;
            for (int j = 0; j < 4; j++) {
                acc = acc + a[i] * (1.0 + 1.0);
            }
            if (i < n) { o[i] = acc; }
        }";
        let fo = opt(src);
        let fn_ = noopt(src);
        assert!(
            fo.num_instrs() < fn_.num_instrs(),
            "optimizer must shrink static code: {} !< {}",
            fo.num_instrs(),
            fn_.num_instrs()
        );
        let n = 33usize;
        let a: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 - 3.0).collect();
        let run = |f: &Function| {
            let mut bufs = vec![BufferData::F32(a.clone()), BufferData::F32(vec![0.0; n])];
            let mut vm = Vm::new();
            vm.run_range(
                f,
                &crate::ir::NdRange::d1(n),
                0..n,
                &[
                    ArgValue::Buffer(0),
                    ArgValue::Buffer(1),
                    ArgValue::Int(n as i32),
                ],
                &mut bufs,
            )
            .unwrap();
            bufs
        };
        assert_eq!(run(&fo), run(&fn_));
    }
}
