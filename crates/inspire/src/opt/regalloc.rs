//! Liveness-driven linear-scan register allocation.
//!
//! Codegen assigns one register per variable plus a temp watermark, so
//! the register files of compiled code are much wider than the maximum
//! number of simultaneously live values. That width is what the 64-lane
//! SoA engine multiplies by `LANES × 8B` per file — shrinking it is a
//! direct cache-footprint win for the batch VM.
//!
//! The allocator runs after the optimizer pipeline, separately for the
//! I and F files. It numbers every instruction with a linear position,
//! derives a conservative `[first, last]` live interval per virtual
//! register from the cached CFG liveness sets (live-in at a block entry
//! extends the interval to the block's start; live-out extends it past
//! the terminator; back-edge liveness therefore covers whole loops),
//! and then runs the classic linear scan: intervals sorted by start,
//! expired intervals return their physical register to the free pool,
//! each live interval takes the lowest free one.
//!
//! Two register classes are *pinned* (kept on their original number and
//! never recycled):
//!
//! - **Scalar parameter registers** — argument binding writes them
//!   unconditionally before execution, even when the kernel never reads
//!   them, so another value may not alias them.
//! - **Entry-live-in registers** — registers read before any write.
//!   Compiled kernels only ever have parameters in this class (every
//!   variable declaration has an initializer), but hand-built or fuzzed
//!   IR may rely on register files persisting across items, and reusing
//!   such a register would change which stale value it observes.
//!
//! Sharing is allowed at interval boundaries (`end <= start`): the
//! defining instruction of one value may reuse the register of an
//! operand whose last use is that same instruction, because every
//! interpreter — scalar, full-width, and masked — reads its operands
//! before writing its destination (per lane, for the masked engine).

use std::cell::Cell;

use crate::bytecode::{Block, FnParam};
use crate::cfg::{reg_def, reg_uses, term_uses, CfgInfo};
use crate::ir::{ParamKind, ScalarType};

/// Whether the post-optimizer backend tier (register allocation +
/// pre-decoded dispatch) runs. Like [`OptLevel`](super::OptLevel) this
/// is an explicit compile mode with an environment escape hatch; both
/// stages are semantics-preserving, so the knob exists for A/B
/// measurement and debugging, not correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegAlloc {
    /// Keep codegen-shaped register files and enum dispatch.
    Off,
    /// Allocate registers and pre-decode blocks for threaded dispatch.
    On,
}

impl RegAlloc {
    /// Mode selected by the environment: `INSPIRE_REGALLOC=0` disables
    /// the backend tier, anything else (including unset) enables it.
    pub fn from_env() -> Self {
        match std::env::var_os("INSPIRE_REGALLOC") {
            Some(v) if v == "0" => RegAlloc::Off,
            _ => RegAlloc::On,
        }
    }

    /// Whether the backend tier runs at all.
    pub fn enabled(self) -> bool {
        matches!(self, RegAlloc::On)
    }

    /// Short stable tag for config fingerprints.
    pub fn tag(self) -> &'static str {
        match self {
            RegAlloc::Off => "off",
            RegAlloc::On => "on",
        }
    }
}

/// Allocation result for one register file: old register → new register
/// (identity for registers the code never touches) and the new file
/// width.
struct FileMap {
    map: Vec<u16>,
    n_regs: u16,
}

/// Allocate both register files over `blocks`, rewrite every
/// instruction, terminator, and scalar parameter in place, and return
/// the new `(n_iregs, n_fregs)`. The result is never wider than the
/// input files.
pub(crate) fn allocate(
    blocks: &mut [Block],
    params: &mut [FnParam],
    n_iregs: u16,
    n_fregs: u16,
) -> (u16, u16) {
    let cfg = CfgInfo::build(blocks, n_iregs, n_fregs);

    // Linear positions: block `b`'s instruction `j` sits at `base[b]+j`,
    // its terminator one past the instructions, and a live-out marker one
    // past that (so values crossing the block edge outlive the
    // terminator). Position 0 is reserved for parameter binding.
    let mut base = Vec::with_capacity(blocks.len());
    let mut pos = 1u32;
    for b in blocks.iter() {
        base.push(pos);
        pos += b.instrs.len() as u32 + 2;
    }

    let mi = alloc_file(blocks, params, &cfg, n_iregs, &base, false);
    let mf = alloc_file(blocks, params, &cfg, n_fregs, &base, true);

    for b in blocks.iter_mut() {
        for ins in &mut b.instrs {
            // Map the reads first: `reg_def` still sees the original
            // destination afterwards because `map_uses` never touches it.
            super::map_uses(ins, |r| mi.map[r as usize], |r| mf.map[r as usize]);
            if let Some((is_f, d)) = reg_def(ins) {
                let file = if is_f { &mf } else { &mi };
                super::set_def(ins, file.map[d as usize]);
            }
        }
        super::map_term_uses(&mut b.term, |r| mi.map[r as usize], |r| mf.map[r as usize]);
    }
    for p in params.iter_mut() {
        match p.kind {
            ParamKind::Scalar(ScalarType::Float) => p.reg = mf.map[p.reg as usize],
            ParamKind::Scalar(_) => p.reg = mi.map[p.reg as usize],
            ParamKind::Buffer { .. } => {}
        }
    }
    (mi.n_regs, mf.n_regs)
}

fn alloc_file(
    blocks: &[Block],
    params: &[FnParam],
    cfg: &CfgInfo,
    n_regs: u16,
    base: &[u32],
    is_float: bool,
) -> FileMap {
    let n = n_regs as usize;
    // Conservative [start, end] touch intervals per virtual register.
    let start: Vec<Cell<u32>> = (0..n).map(|_| Cell::new(u32::MAX)).collect();
    let end: Vec<Cell<u32>> = (0..n).map(|_| Cell::new(0)).collect();
    let touch = |r: u16, p: u32| {
        let r = r as usize;
        start[r].set(start[r].get().min(p));
        end[r].set(end[r].get().max(p));
    };

    let live_in = if is_float {
        &cfg.live_in_f
    } else {
        &cfg.live_in_i
    };
    for (bi, b) in blocks.iter().enumerate() {
        let b0 = base[bi];
        for &r in &live_in[bi] {
            touch(r, b0);
        }
        for (j, ins) in b.instrs.iter().enumerate() {
            let p = b0 + j as u32;
            let ti = |r| {
                if !is_float {
                    touch(r, p)
                }
            };
            let tf = |r| {
                if is_float {
                    touch(r, p)
                }
            };
            reg_uses(ins, ti, tf);
            if let Some((f, d)) = reg_def(ins) {
                if f == is_float {
                    touch(d, p);
                }
            }
        }
        let p_term = b0 + b.instrs.len() as u32;
        let ti = |r| {
            if !is_float {
                touch(r, p_term)
            }
        };
        let tf = |r| {
            if is_float {
                touch(r, p_term)
            }
        };
        term_uses(&b.term, ti, tf);
        // Live-out = union of successor live-ins, one past the terminator.
        for &s in &cfg.succs[bi] {
            for &r in &live_in[s as usize] {
                touch(r, p_term + 1);
            }
        }
    }

    // Pin scalar parameters (position 0 binding writes) and entry
    // live-ins (read-before-write values whose identity must survive).
    let mut pinned = vec![false; n];
    for p in params {
        let in_file = match p.kind {
            ParamKind::Scalar(ScalarType::Float) => is_float,
            ParamKind::Scalar(_) => !is_float,
            ParamKind::Buffer { .. } => false,
        };
        if in_file {
            pinned[p.reg as usize] = true;
        }
    }
    if !blocks.is_empty() {
        for &r in &live_in[0] {
            pinned[r as usize] = true;
        }
    }

    let mut map: Vec<u16> = (0..n_regs).collect();
    let mut occupied = vec![false; n];
    let mut hi = 0u32;
    for (r, &pin) in pinned.iter().enumerate() {
        if pin {
            occupied[r] = true;
            hi = hi.max(r as u32 + 1);
        }
    }

    // Linear scan over the unpinned, actually-touched intervals.
    let mut order: Vec<u16> = (0..n_regs)
        .filter(|&r| !pinned[r as usize] && start[r as usize].get() != u32::MAX)
        .collect();
    order.sort_by_key(|&r| (start[r as usize].get(), r));
    let mut active: Vec<(u32, u16)> = Vec::new(); // (end, phys)
    for r in order {
        let s = start[r as usize].get();
        active.retain(|&(e, phys)| {
            if e <= s {
                occupied[phys as usize] = false;
                false
            } else {
                true
            }
        });
        // `occupied` has one slot per input register, and at most that
        // many live ranges can overlap, so a free slot always exists.
        let Some(free) = occupied.iter().position(|&o| !o) else {
            unreachable!("more simultaneously live registers than the input file holds");
        };
        let phys = free as u16;
        occupied[phys as usize] = true;
        map[r as usize] = phys;
        hi = hi.max(u32::from(phys) + 1);
        active.push((end[r as usize].get(), phys));
    }

    FileMap {
        map,
        n_regs: hi as u16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Instr, Terminator};
    use crate::ir::ParamKind;

    fn block(instrs: Vec<Instr>, term: Terminator) -> Block {
        let mut b = Block {
            instrs,
            term,
            histo: crate::bytecode::OpHistogram {
                classes: [0; crate::bytecode::N_OP_CLASSES],
                buf_reads: Vec::new(),
                buf_writes: Vec::new(),
            },
        };
        b.recompute_histo(1);
        b
    }

    fn buf_param() -> FnParam {
        FnParam {
            kind: ParamKind::Buffer {
                elem: ScalarType::Int,
                is_const: false,
            },
            reg: 0,
        }
    }

    #[test]
    fn chained_dead_temps_collapse() {
        // i0 (index) stays live to the store; i1→i2→i3 die immediately
        // and must all share one physical register.
        let mut blocks = vec![block(
            vec![
                Instr::ConstI { dst: 0, v: 0 },
                Instr::ConstI { dst: 1, v: 5 },
                Instr::MovI { dst: 2, src: 1 },
                Instr::MovI { dst: 3, src: 2 },
                Instr::StoreI {
                    buf: 0,
                    idx: 0,
                    src: 3,
                },
            ],
            Terminator::Ret,
        )];
        let mut params = vec![buf_param()];
        let (ni, nf) = allocate(&mut blocks, &mut params, 4, 0);
        assert_eq!(nf, 0);
        assert_eq!(ni, 2, "three chained temps must share one register");
    }

    #[test]
    fn overlapping_values_keep_distinct_registers() {
        // i0 and i1 are simultaneously live across the IBin; the result
        // may share with the dying operand but not with i0, which the
        // store still reads.
        let mut blocks = vec![block(
            vec![
                Instr::ConstI { dst: 0, v: 0 },
                Instr::ConstI { dst: 1, v: 7 },
                Instr::IBin {
                    op: crate::bytecode::IBinOp::Add,
                    dst: 2,
                    a: 0,
                    b: 1,
                    unsigned: false,
                },
                Instr::StoreI {
                    buf: 0,
                    idx: 0,
                    src: 2,
                },
            ],
            Terminator::Ret,
        )];
        let mut params = vec![buf_param()];
        let (ni, _) = allocate(&mut blocks, &mut params, 3, 0);
        assert_eq!(ni, 2);
        let (a, b) = match blocks[0].instrs[2] {
            Instr::IBin { a, b, .. } => (a, b),
            ref other => panic!("unexpected rewrite: {other:?}"),
        };
        assert_ne!(a, b, "simultaneously live operands must not collide");
        match blocks[0].instrs[3] {
            Instr::StoreI { idx, .. } => assert_eq!(idx, a, "index register must survive"),
            ref other => panic!("unexpected rewrite: {other:?}"),
        }
    }

    #[test]
    fn scalar_params_are_pinned_even_when_dead() {
        // A dead scalar parameter still owns its register: binding writes
        // it before execution, so the temp must not be allocated over it.
        let mut blocks = vec![block(
            vec![
                Instr::ConstI { dst: 1, v: 3 },
                Instr::StoreI {
                    buf: 0,
                    idx: 1,
                    src: 1,
                },
            ],
            Terminator::Ret,
        )];
        let mut params = vec![
            buf_param(),
            FnParam {
                kind: ParamKind::Scalar(ScalarType::Int),
                reg: 0,
            },
        ];
        let (ni, _) = allocate(&mut blocks, &mut params, 2, 0);
        assert_eq!(params[1].reg, 0, "parameter register must not move");
        assert_eq!(ni, 2, "temp must be allocated above the pinned param");
        match blocks[0].instrs[0] {
            Instr::ConstI { dst, .. } => assert_ne!(dst, 0),
            ref other => panic!("unexpected rewrite: {other:?}"),
        }
    }

    #[test]
    fn loop_carried_values_span_the_whole_loop() {
        // bb0: i1 = 0; i2 = 10        (counter, bound)
        // bb1: branch i1 < i2 ? bb2 : bb3
        // bb2: i3 = 1; i1 = i1 + i3; jump bb1
        // bb3: store; ret
        // The counter i1 is live around the back edge, so the loop-body
        // temp i3 must not take its register, while the bound i2 — also
        // loop-carried — needs a third slot only if it overlaps both.
        let mut blocks = vec![
            block(
                vec![
                    Instr::ConstI { dst: 1, v: 0 },
                    Instr::ConstI { dst: 2, v: 10 },
                ],
                Terminator::Jump(1),
            ),
            block(
                vec![],
                Terminator::BranchCmp {
                    op: crate::bytecode::CmpOp::Lt,
                    float: false,
                    a: 1,
                    b: 2,
                    then: 2,
                    els: 3,
                },
            ),
            block(
                vec![
                    Instr::ConstI { dst: 3, v: 1 },
                    Instr::IBin {
                        op: crate::bytecode::IBinOp::Add,
                        dst: 1,
                        a: 1,
                        b: 3,
                        unsigned: false,
                    },
                ],
                Terminator::Jump(1),
            ),
            block(
                vec![Instr::StoreI {
                    buf: 0,
                    idx: 1,
                    src: 2,
                }],
                Terminator::Ret,
            ),
        ];
        let mut params = vec![buf_param()];
        let before = 4;
        let (ni, _) = allocate(&mut blocks, &mut params, before, 0);
        assert!(ni <= before);
        let (counter, bound) = match blocks[1].term {
            Terminator::BranchCmp { a, b, .. } => (a, b),
            ref other => panic!("unexpected rewrite: {other:?}"),
        };
        let temp = match blocks[2].instrs[0] {
            Instr::ConstI { dst, .. } => dst,
            ref other => panic!("unexpected rewrite: {other:?}"),
        };
        assert_ne!(counter, bound, "both loop-carried values stay live");
        assert_ne!(temp, counter, "body temp must not clobber the counter");
        assert_ne!(temp, bound, "body temp must not clobber the bound");
    }

    #[test]
    fn allocation_never_widens_either_file() {
        let srcs = [
            "kernel void k(global const float* a, global float* o, int n) {
                int i = get_global_id(0);
                float x = a[i % n];
                float y = x * 2.0 + 1.0;
                float z = y - x;
                if (i < n) { o[i] = z * y; }
            }",
            "kernel void k(global float* o, int n) {
                int i = get_global_id(0);
                float s = 0.0;
                for (int j = 0; j < n; j++) { s += (float)j * 0.5; }
                o[i] = s;
            }",
        ];
        for src in srcs {
            let off = crate::bytecode::compile_with_modes(
                &crate::sema::analyze(
                    &crate::parser::parse(&crate::lexer::lex(src).unwrap())
                        .unwrap()
                        .kernels[0],
                )
                .unwrap(),
                super::super::OptLevel::Full,
                RegAlloc::Off,
            )
            .unwrap();
            let on = crate::bytecode::compile_with_modes(
                &crate::sema::analyze(
                    &crate::parser::parse(&crate::lexer::lex(src).unwrap())
                        .unwrap()
                        .kernels[0],
                )
                .unwrap(),
                super::super::OptLevel::Full,
                RegAlloc::On,
            )
            .unwrap();
            assert!(on.n_iregs <= off.n_iregs, "I file grew: {src}");
            assert!(on.n_fregs <= off.n_fregs, "F file grew: {src}");
        }
    }
}
