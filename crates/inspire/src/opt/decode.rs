//! Pre-decoding of bytecode blocks into a flat direct-threaded op array.
//!
//! The enum interpreter pays a two-level match per executed instruction
//! (variant, then inner op) and chases the per-block `Vec<Instr>`
//! layout. Decoding lowers the optimized blocks once at compile time
//! into one contiguous [`DecOp`] array — a fixed struct-of-fields
//! format with a flat [`OpCode`] and the register numbers, immediates,
//! and signedness pre-extracted — plus per-block `(start, end)` spans
//! into that array. The hot loops then step a program counter over a
//! single slice with a single one-level dispatch per op.
//!
//! Terminators keep their block-id targets (the engines need block ids
//! for per-block counters and the SIMT rejoin stack); the spans *are*
//! the decoded jump targets: taking an edge to block `b` continues at
//! op offset `spans[b].0`.
//!
//! Decoding is semantics-preserving — per-block step costs, fault
//! order, and every observable value are exactly those of the enum
//! blocks, which is what the four-way differential suite pins down.
//!
//! On top of the 1:1 re-encoding, a peephole pass fuses adjacent op
//! pairs into superinstructions ([`OpCode::FOp2`], [`OpCode::IOp2`],
//! [`OpCode::Load2F`], [`OpCode::LoadFOp`], [`OpCode::FOpStore`]): the
//! lane engine then makes *one* pass over the per-lane SoA arrays where
//! the unfused pair made two. Fusion is legal for any register aliasing
//! because every op only ever reads a lane's own elements: executing
//! both halves per lane in original order is bit-identical to executing
//! them as two full-width passes. Ops that can fault (loads, stores)
//! only fuse with the fault check kept in its original position, and
//! the faulting Div/Rem integer ops never fuse.

use crate::bytecode::{Block, CmpOp, FBinOp, IBinOp, Instr, MathFn1, MathFn2, Terminator};

/// Flat opcode of a decoded op. Signedness lives in [`DecOp::unsigned`],
/// not in the opcode, so the table stays at one variant per `Instr`
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::upper_case_acronyms)]
pub(crate) enum OpCode {
    ConstI,
    ConstF,
    MovI,
    MovF,
    IAdd,
    ISub,
    IMul,
    IDiv,
    IRem,
    IAnd,
    IOr,
    IXor,
    IShl,
    IShr,
    ImmAdd,
    ImmSub,
    ImmMul,
    ImmDiv,
    ImmRem,
    ImmAnd,
    ImmOr,
    ImmXor,
    ImmShl,
    ImmShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
    ICmpLt,
    ICmpLe,
    ICmpGt,
    ICmpGe,
    ICmpEq,
    ICmpNe,
    FCmpLt,
    FCmpLe,
    FCmpGt,
    FCmpGe,
    FCmpEq,
    FCmpNe,
    NegI,
    NegF,
    NotI,
    BitNotI,
    CastIF,
    CastFI,
    CastII,
    Sqrt,
    Rsqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Tan,
    Fabs,
    Floor,
    Ceil,
    Pow,
    Fmin,
    Fmax,
    Fmod,
    IMin,
    IMax,
    IAbs,
    LoadF,
    LoadI,
    StoreF,
    StoreI,
    GlobalId,
    GlobalSize,
    /// Fused pair of F-file compute ops (see [`DecOp`] fused layout).
    FOp2,
    /// Fused pair of non-faulting I-file binops.
    IOp2,
    /// Fused pair of float loads.
    Load2F,
    /// Float load fused with a following F-file compute op.
    LoadFOp,
    /// F-file compute op fused with a store of its result.
    FOpStore,
}

/// Micro-op codes for the compute halves of fused ops. The F table
/// covers binops (0–3), mov (4), the `MathFn1` unaries (5–14), negate
/// (15) and a float constant (16, value in [`DecOp::fimm`]); the I
/// table covers the non-faulting add/sub/mul (0–2) with the unsigned
/// flag packed into bit 7.
pub(crate) const F_ADD: u8 = 0;
pub(crate) const F_SUB: u8 = 1;
pub(crate) const F_MUL: u8 = 2;
pub(crate) const F_DIV: u8 = 3;
pub(crate) const F_MOV: u8 = 4;
pub(crate) const F_MATH1: u8 = 5; // 5..=14: MathFn1 in declaration order
pub(crate) const F_NEG: u8 = 15;
pub(crate) const F_CONST: u8 = 16;
pub(crate) const I_UNSIGNED: u8 = 0x80;

/// One decoded op. Operand conventions:
///
/// - binaries / compares: `dst`, `a`, `b`
/// - unaries / casts / movs: `dst`, `a`
/// - immediates: `dst`, `a`, `imm` (`fimm` for `ConstF`)
/// - loads: `dst`, `a` = index register, `b` = buffer param
/// - stores: `dst` = source register, `a` = index register, `b` = buffer
/// - `GlobalId` / `GlobalSize`: `dst`, `a` = dimension
///
/// Fused superinstructions use the extra fields; the first half always
/// executes before the second, per lane:
///
/// - `FOp2` / `IOp2`: first op `c = sub1(a, b)`, second `dst = sub2(d, e)`
///   (an operand equal to `c` reads the first op's fresh result)
/// - `Load2F`: `c = buf b[a]`, then `dst = buf e[d]`
/// - `LoadFOp`: `c = buf b[a]`, then `dst = sub2(d, e)`
/// - `FOpStore`: `dst = sub1(a, b)`, then `buf d[c] = dst`
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DecOp {
    pub(crate) code: OpCode,
    pub(crate) dst: u16,
    pub(crate) a: u16,
    pub(crate) b: u16,
    pub(crate) c: u16,
    pub(crate) d: u16,
    pub(crate) e: u16,
    pub(crate) sub1: u8,
    pub(crate) sub2: u8,
    pub(crate) unsigned: bool,
    pub(crate) imm: i64,
    pub(crate) fimm: f64,
}

impl DecOp {
    fn new(code: OpCode) -> Self {
        DecOp {
            code,
            dst: 0,
            a: 0,
            b: 0,
            c: 0,
            d: 0,
            e: 0,
            sub1: 0,
            sub2: 0,
            unsigned: false,
            imm: 0,
            fimm: 0.0,
        }
    }
}

/// The decoded form of a whole function: one flat op array plus
/// per-block spans, terminators, and step costs (all indexed by block
/// id, mirroring `Function::blocks`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DecodedProgram {
    pub(crate) ops: Vec<DecOp>,
    /// Per block: `[start, end)` into [`DecodedProgram::ops`].
    pub(crate) spans: Vec<(u32, u32)>,
    pub(crate) terms: Vec<Terminator>,
    /// Per block: `Block::step_cost()`.
    pub(crate) costs: Vec<u64>,
}

fn ibin_code(op: IBinOp) -> OpCode {
    match op {
        IBinOp::Add => OpCode::IAdd,
        IBinOp::Sub => OpCode::ISub,
        IBinOp::Mul => OpCode::IMul,
        IBinOp::Div => OpCode::IDiv,
        IBinOp::Rem => OpCode::IRem,
        IBinOp::And => OpCode::IAnd,
        IBinOp::Or => OpCode::IOr,
        IBinOp::Xor => OpCode::IXor,
        IBinOp::Shl => OpCode::IShl,
        IBinOp::Shr => OpCode::IShr,
    }
}

fn imm_code(op: IBinOp) -> OpCode {
    match op {
        IBinOp::Add => OpCode::ImmAdd,
        IBinOp::Sub => OpCode::ImmSub,
        IBinOp::Mul => OpCode::ImmMul,
        IBinOp::Div => OpCode::ImmDiv,
        IBinOp::Rem => OpCode::ImmRem,
        IBinOp::And => OpCode::ImmAnd,
        IBinOp::Or => OpCode::ImmOr,
        IBinOp::Xor => OpCode::ImmXor,
        IBinOp::Shl => OpCode::ImmShl,
        IBinOp::Shr => OpCode::ImmShr,
    }
}

fn fbin_code(op: FBinOp) -> OpCode {
    match op {
        FBinOp::Add => OpCode::FAdd,
        FBinOp::Sub => OpCode::FSub,
        FBinOp::Mul => OpCode::FMul,
        FBinOp::Div => OpCode::FDiv,
    }
}

fn icmp_code(op: CmpOp) -> OpCode {
    match op {
        CmpOp::Lt => OpCode::ICmpLt,
        CmpOp::Le => OpCode::ICmpLe,
        CmpOp::Gt => OpCode::ICmpGt,
        CmpOp::Ge => OpCode::ICmpGe,
        CmpOp::Eq => OpCode::ICmpEq,
        CmpOp::Ne => OpCode::ICmpNe,
    }
}

fn fcmp_code(op: CmpOp) -> OpCode {
    match op {
        CmpOp::Lt => OpCode::FCmpLt,
        CmpOp::Le => OpCode::FCmpLe,
        CmpOp::Gt => OpCode::FCmpGt,
        CmpOp::Ge => OpCode::FCmpGe,
        CmpOp::Eq => OpCode::FCmpEq,
        CmpOp::Ne => OpCode::FCmpNe,
    }
}

fn math1_code(f: MathFn1) -> OpCode {
    match f {
        MathFn1::Sqrt => OpCode::Sqrt,
        MathFn1::Rsqrt => OpCode::Rsqrt,
        MathFn1::Exp => OpCode::Exp,
        MathFn1::Log => OpCode::Log,
        MathFn1::Sin => OpCode::Sin,
        MathFn1::Cos => OpCode::Cos,
        MathFn1::Tan => OpCode::Tan,
        MathFn1::Fabs => OpCode::Fabs,
        MathFn1::Floor => OpCode::Floor,
        MathFn1::Ceil => OpCode::Ceil,
    }
}

fn math2_code(f: MathFn2) -> OpCode {
    match f {
        MathFn2::Pow => OpCode::Pow,
        MathFn2::Fmin => OpCode::Fmin,
        MathFn2::Fmax => OpCode::Fmax,
        MathFn2::Fmod => OpCode::Fmod,
    }
}

fn decode_instr(ins: &Instr) -> DecOp {
    use Instr::*;
    match *ins {
        ConstI { dst, v } => {
            let mut o = DecOp::new(OpCode::ConstI);
            o.dst = dst;
            o.imm = v;
            o
        }
        ConstF { dst, v } => {
            let mut o = DecOp::new(OpCode::ConstF);
            o.dst = dst;
            o.fimm = v;
            o
        }
        MovI { dst, src } => {
            let mut o = DecOp::new(OpCode::MovI);
            o.dst = dst;
            o.a = src;
            o
        }
        MovF { dst, src } => {
            let mut o = DecOp::new(OpCode::MovF);
            o.dst = dst;
            o.a = src;
            o
        }
        IBin {
            op,
            dst,
            a,
            b,
            unsigned,
        } => {
            let mut o = DecOp::new(ibin_code(op));
            o.dst = dst;
            o.a = a;
            o.b = b;
            o.unsigned = unsigned;
            o
        }
        IBinImm {
            op,
            dst,
            a,
            imm,
            unsigned,
        } => {
            let mut o = DecOp::new(imm_code(op));
            o.dst = dst;
            o.a = a;
            o.imm = imm;
            o.unsigned = unsigned;
            o
        }
        FBin { op, dst, a, b } => {
            let mut o = DecOp::new(fbin_code(op));
            o.dst = dst;
            o.a = a;
            o.b = b;
            o
        }
        CmpI { op, dst, a, b } => {
            let mut o = DecOp::new(icmp_code(op));
            o.dst = dst;
            o.a = a;
            o.b = b;
            o
        }
        CmpF { op, dst, a, b } => {
            let mut o = DecOp::new(fcmp_code(op));
            o.dst = dst;
            o.a = a;
            o.b = b;
            o
        }
        NegI { dst, a, unsigned } => {
            let mut o = DecOp::new(OpCode::NegI);
            o.dst = dst;
            o.a = a;
            o.unsigned = unsigned;
            o
        }
        NegF { dst, a } => {
            let mut o = DecOp::new(OpCode::NegF);
            o.dst = dst;
            o.a = a;
            o
        }
        NotI { dst, a } => {
            let mut o = DecOp::new(OpCode::NotI);
            o.dst = dst;
            o.a = a;
            o
        }
        BitNotI { dst, a, unsigned } => {
            let mut o = DecOp::new(OpCode::BitNotI);
            o.dst = dst;
            o.a = a;
            o.unsigned = unsigned;
            o
        }
        CastIF { dst, a } => {
            let mut o = DecOp::new(OpCode::CastIF);
            o.dst = dst;
            o.a = a;
            o
        }
        CastFI { dst, a, unsigned } => {
            let mut o = DecOp::new(OpCode::CastFI);
            o.dst = dst;
            o.a = a;
            o.unsigned = unsigned;
            o
        }
        CastII {
            dst,
            a,
            to_unsigned,
        } => {
            let mut o = DecOp::new(OpCode::CastII);
            o.dst = dst;
            o.a = a;
            o.unsigned = to_unsigned;
            o
        }
        Math1 { f, dst, a } => {
            let mut o = DecOp::new(math1_code(f));
            o.dst = dst;
            o.a = a;
            o
        }
        Math2 { f, dst, a, b } => {
            let mut o = DecOp::new(math2_code(f));
            o.dst = dst;
            o.a = a;
            o.b = b;
            o
        }
        IMin { dst, a, b } => {
            let mut o = DecOp::new(OpCode::IMin);
            o.dst = dst;
            o.a = a;
            o.b = b;
            o
        }
        IMax { dst, a, b } => {
            let mut o = DecOp::new(OpCode::IMax);
            o.dst = dst;
            o.a = a;
            o.b = b;
            o
        }
        IAbs { dst, a } => {
            let mut o = DecOp::new(OpCode::IAbs);
            o.dst = dst;
            o.a = a;
            o
        }
        LoadF { dst, buf, idx } => {
            let mut o = DecOp::new(OpCode::LoadF);
            o.dst = dst;
            o.a = idx;
            o.b = buf;
            o
        }
        LoadI { dst, buf, idx } => {
            let mut o = DecOp::new(OpCode::LoadI);
            o.dst = dst;
            o.a = idx;
            o.b = buf;
            o
        }
        StoreF { buf, idx, src } => {
            let mut o = DecOp::new(OpCode::StoreF);
            o.dst = src;
            o.a = idx;
            o.b = buf;
            o
        }
        StoreI { buf, idx, src } => {
            let mut o = DecOp::new(OpCode::StoreI);
            o.dst = src;
            o.a = idx;
            o.b = buf;
            o
        }
        GlobalId { dst, dim } => {
            let mut o = DecOp::new(OpCode::GlobalId);
            o.dst = dst;
            o.a = u16::from(dim);
            o
        }
        GlobalSize { dst, dim } => {
            let mut o = DecOp::new(OpCode::GlobalSize);
            o.dst = dst;
            o.a = u16::from(dim);
            o
        }
    }
}

/// Evaluate an F-file compute micro-op — semantics identical to the
/// corresponding unfused interpreter arms (unaries read `x`; the
/// constant reads neither operand).
#[inline]
pub(crate) fn f_eval(sub: u8, x: f64, y: f64, fimm: f64) -> f64 {
    match sub {
        F_ADD => x + y,
        F_SUB => x - y,
        F_MUL => x * y,
        F_DIV => x / y,
        F_MOV => x,
        5 => x.sqrt(),
        6 => 1.0 / x.sqrt(),
        7 => x.exp(),
        8 => x.ln(),
        9 => x.sin(),
        10 => x.cos(),
        11 => x.tan(),
        12 => x.abs(),
        13 => x.floor(),
        14 => x.ceil(),
        F_NEG => -x,
        _ => fimm,
    }
}

/// Evaluate a fused I-file micro-op with the interpreter's
/// wrap-to-32-bit semantics.
#[inline]
pub(crate) fn i_eval(sub: u8, x: i64, y: i64) -> i64 {
    let v = match sub & !I_UNSIGNED {
        0 => x.wrapping_add(y),
        1 => x.wrapping_sub(y),
        _ => x.wrapping_mul(y),
    };
    crate::vm::wrap32(v, sub & I_UNSIGNED != 0)
}

/// Classify a decoded op as an F-file compute micro-op: returns
/// `(sub, x, y)` where `x`/`y` are the operand registers (unused ones
/// are 0 and never read for that micro-op).
fn f_micro(op: &DecOp) -> Option<(u8, u16, u16)> {
    use OpCode::*;
    let sub = match op.code {
        FAdd => F_ADD,
        FSub => F_SUB,
        FMul => F_MUL,
        FDiv => F_DIV,
        MovF => F_MOV,
        Sqrt => F_MATH1,
        Rsqrt => F_MATH1 + 1,
        Exp => F_MATH1 + 2,
        Log => F_MATH1 + 3,
        Sin => F_MATH1 + 4,
        Cos => F_MATH1 + 5,
        Tan => F_MATH1 + 6,
        Fabs => F_MATH1 + 7,
        Floor => F_MATH1 + 8,
        Ceil => F_MATH1 + 9,
        NegF => F_NEG,
        ConstF => F_CONST,
        _ => return None,
    };
    Some((sub, op.a, op.b))
}

/// Classify a decoded op as a non-faulting I-file binop micro-op
/// (add/sub/mul only — Div/Rem can raise and must keep their own op).
fn i_micro(op: &DecOp) -> Option<(u8, u16, u16)> {
    use OpCode::*;
    let sub = match op.code {
        IAdd => 0,
        ISub => 1,
        IMul => 2,
        _ => return None,
    };
    Some((sub | if op.unsigned { I_UNSIGNED } else { 0 }, op.a, op.b))
}

/// Try to fuse two adjacent decoded ops into one superinstruction.
fn try_fuse(x: &DecOp, y: &DecOp) -> Option<DecOp> {
    use OpCode::*;
    // Two F-file compute ops. At most one side may carry the float
    // constant (there is a single `fimm` slot).
    if let (Some((s1, a, b)), Some((s2, d, e))) = (
        f_micro(x).filter(|_| x.code != ConstF || y.code != ConstF),
        f_micro(y),
    ) {
        let mut o = DecOp::new(FOp2);
        o.dst = y.dst;
        o.c = x.dst;
        o.a = a;
        o.b = b;
        o.d = d;
        o.e = e;
        o.sub1 = s1;
        o.sub2 = s2;
        o.fimm = if x.code == ConstF { x.fimm } else { y.fimm };
        return Some(o);
    }
    // Two non-faulting I-file binops.
    if let (Some((s1, a, b)), Some((s2, d, e))) = (i_micro(x), i_micro(y)) {
        let mut o = DecOp::new(IOp2);
        o.dst = y.dst;
        o.c = x.dst;
        o.a = a;
        o.b = b;
        o.d = d;
        o.e = e;
        o.sub1 = s1;
        o.sub2 = s2;
        return Some(o);
    }
    // Two float loads: one bounds pass, one gather pass. Distinct
    // destinations keep the single-pass loop free of aliasing cases.
    if x.code == LoadF && y.code == LoadF && x.dst != y.dst {
        let mut o = DecOp::new(Load2F);
        o.c = x.dst;
        o.a = x.a;
        o.b = x.b;
        o.dst = y.dst;
        o.d = y.a;
        o.e = y.b;
        return Some(o);
    }
    // Float load + F-file compute (a following constant gains nothing;
    // a distinct compute destination keeps the fused loop single-pass).
    if x.code == LoadF && y.code != ConstF && y.dst != x.dst {
        if let Some((s2, d, e)) = f_micro(y) {
            let mut o = DecOp::new(LoadFOp);
            o.c = x.dst;
            o.a = x.a;
            o.b = x.b;
            o.dst = y.dst;
            o.d = d;
            o.e = e;
            o.sub2 = s2;
            return Some(o);
        }
    }
    // F-file compute + store of its own result.
    if y.code == StoreF && y.dst == x.dst {
        if let Some((s1, a, b)) = f_micro(x) {
            let mut o = DecOp::new(FOpStore);
            o.dst = x.dst;
            o.a = a;
            o.b = b;
            o.sub1 = s1;
            o.c = y.a;
            o.d = y.b;
            o.fimm = x.fimm;
            return Some(o);
        }
    }
    None
}

/// Whether superinstruction fusion is enabled (`INSPIRE_FUSE=0` turns
/// it off, leaving plain pre-decoded dispatch — a debugging lever to
/// attribute a perf or parity delta to fusion vs decode).
fn fuse_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("INSPIRE_FUSE").is_none_or(|v| v != "0"))
}

/// Single greedy left-to-right peephole pass over one block's ops.
fn fuse_block(ops: Vec<DecOp>) -> Vec<DecOp> {
    if !fuse_enabled() {
        return ops;
    }
    let mut out = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        if i + 1 < ops.len() {
            if let Some(f) = try_fuse(&ops[i], &ops[i + 1]) {
                out.push(f);
                i += 2;
                continue;
            }
        }
        out.push(ops[i].clone());
        i += 1;
    }
    out
}

/// Lower blocks into the flat decoded form.
pub(crate) fn decode(blocks: &[Block]) -> DecodedProgram {
    let total = blocks.iter().map(|b| b.instrs.len()).sum();
    let mut ops = Vec::with_capacity(total);
    let mut spans = Vec::with_capacity(blocks.len());
    let mut terms = Vec::with_capacity(blocks.len());
    let mut costs = Vec::with_capacity(blocks.len());
    for b in blocks {
        let start = ops.len() as u32;
        ops.extend(fuse_block(b.instrs.iter().map(decode_instr).collect()));
        spans.push((start, ops.len() as u32));
        terms.push(b.term.clone());
        costs.push(b.step_cost());
    }
    DecodedProgram {
        ops,
        spans,
        terms,
        costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_the_op_array_exactly() {
        let src = "kernel void k(global const float* a, global float* o, int n) {
            int i = get_global_id(0);
            float s = 0.0;
            for (int j = 0; j < i % 7; j++) { s += a[(i + j) % n]; }
            if (i < n) { o[i] = s; } else { o[i] = -s; }
        }";
        let prog = crate::parser::parse(&crate::lexer::lex(src).unwrap()).unwrap();
        let f = crate::bytecode::compile_with_modes(
            &crate::sema::analyze(&prog.kernels[0]).unwrap(),
            crate::opt::OptLevel::Full,
            crate::opt::RegAlloc::Off,
        )
        .unwrap();
        let dec = decode(&f.blocks);
        assert_eq!(dec.spans.len(), f.blocks.len());
        assert_eq!(dec.terms.len(), f.blocks.len());
        let mut next = 0u32;
        for (bi, &(s, e)) in dec.spans.iter().enumerate() {
            assert_eq!(s, next, "bb{bi} span must be contiguous");
            // Fusion may shrink a block, never grow or reorder it.
            assert!((e - s) as usize <= f.blocks[bi].instrs.len());
            assert_eq!(dec.costs[bi], f.blocks[bi].step_cost());
            assert_eq!(dec.terms[bi], f.blocks[bi].term);
            next = e;
        }
        assert_eq!(next as usize, dec.ops.len());
    }

    #[test]
    fn fuses_streaming_load_compute_store_pairs() {
        // load; load; fadd; store -> Load2F; FOpStore.
        let block = [
            Instr::LoadF {
                dst: 0,
                buf: 0,
                idx: 2,
            },
            Instr::LoadF {
                dst: 1,
                buf: 1,
                idx: 2,
            },
            Instr::FBin {
                op: FBinOp::Add,
                dst: 0,
                a: 0,
                b: 1,
            },
            Instr::StoreF {
                buf: 2,
                idx: 2,
                src: 0,
            },
        ];
        let fused = fuse_block(block.iter().map(decode_instr).collect());
        assert_eq!(fused.len(), 2);
        assert_eq!(fused[0].code, OpCode::Load2F);
        assert_eq!((fused[0].c, fused[0].a, fused[0].b), (0, 2, 0));
        assert_eq!((fused[0].dst, fused[0].d, fused[0].e), (1, 2, 1));
        assert_eq!(fused[1].code, OpCode::FOpStore);
        assert_eq!(fused[1].sub1, F_ADD);
        assert_eq!((fused[1].dst, fused[1].a, fused[1].b), (0, 0, 1));
        assert_eq!((fused[1].c, fused[1].d), (2, 2));
    }

    #[test]
    fn fuses_compute_chains_but_never_faulting_int_ops() {
        let chain = [
            Instr::FBin {
                op: FBinOp::Mul,
                dst: 2,
                a: 0,
                b: 1,
            },
            Instr::FBin {
                op: FBinOp::Add,
                dst: 3,
                a: 2,
                b: 0,
            },
            Instr::IBin {
                op: IBinOp::Mul,
                dst: 4,
                a: 5,
                b: 6,
                unsigned: false,
            },
            Instr::IBin {
                op: IBinOp::Div,
                dst: 4,
                a: 4,
                b: 7,
                unsigned: false,
            },
        ];
        let fused = fuse_block(chain.iter().map(decode_instr).collect());
        // fmul+fadd fuse; the int mul cannot fuse with the faulting div.
        assert_eq!(fused.len(), 3);
        assert_eq!(fused[0].code, OpCode::FOp2);
        assert_eq!((fused[0].sub1, fused[0].sub2), (F_MUL, F_ADD));
        assert_eq!(fused[1].code, OpCode::IMul);
        assert_eq!(fused[2].code, OpCode::IDiv);
    }

    #[test]
    fn const_pairs_keep_their_single_fimm_slot() {
        // Two constants must not fuse (one fimm field).
        let two = [
            Instr::ConstF { dst: 0, v: 1.5 },
            Instr::ConstF { dst: 1, v: 2.5 },
        ];
        let fused = fuse_block(two.iter().map(decode_instr).collect());
        assert_eq!(fused.len(), 2);

        // const + fmul fuses with the constant on sub1.
        let pair = [
            Instr::ConstF { dst: 0, v: 0.5 },
            Instr::FBin {
                op: FBinOp::Mul,
                dst: 1,
                a: 0,
                b: 2,
            },
        ];
        let fused = fuse_block(pair.iter().map(decode_instr).collect());
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].code, OpCode::FOp2);
        assert_eq!((fused[0].sub1, fused[0].sub2), (F_CONST, F_MUL));
        assert_eq!(fused[0].fimm, 0.5);
    }

    #[test]
    fn operand_conventions_round_trip() {
        let ins = Instr::StoreF {
            buf: 3,
            idx: 7,
            src: 9,
        };
        let o = decode_instr(&ins);
        assert_eq!(o.code, OpCode::StoreF);
        assert_eq!((o.dst, o.a, o.b), (9, 7, 3));

        let ins = Instr::LoadI {
            dst: 4,
            buf: 2,
            idx: 6,
        };
        let o = decode_instr(&ins);
        assert_eq!(o.code, OpCode::LoadI);
        assert_eq!((o.dst, o.a, o.b), (4, 6, 2));

        let ins = Instr::IBinImm {
            op: IBinOp::Shr,
            dst: 1,
            a: 2,
            imm: 5,
            unsigned: true,
        };
        let o = decode_instr(&ins);
        assert_eq!(o.code, OpCode::ImmShr);
        assert!(o.unsigned);
        assert_eq!(o.imm, 5);
    }
}
