//! Constant folding: evaluate instructions whose operands are known
//! constants within a block, and fold branches on constant conditions.
//!
//! Folding reuses the VM's own arithmetic helpers ([`int_bin`], [`cmp`],
//! the same `f64` operators), so a folded result is bit-identical to what
//! the instruction would have produced at run time. Two classes are never
//! folded:
//!
//! - `Div`/`Rem` whose divisor is the constant zero — they fault at run
//!   time, and the fault must survive ([`int_bin`] returning `Err` makes
//!   this automatic).
//! - Transcendental intrinsics (`Math1`/`Math2`) — they are rare on
//!   constants and keeping them preserves the transcendental histogram
//!   class for the cost features.

use super::Ctx;
use crate::bytecode::{Block, FBinOp, Instr, Terminator};
use crate::cfg::reg_def;
use crate::vm::{cmp, int_bin, wrap32};
use std::collections::HashMap;

pub(super) fn run(mut blocks: Vec<Block>, _ctx: &Ctx) -> Vec<Block> {
    for b in &mut blocks {
        let mut ci: HashMap<u16, i64> = HashMap::new();
        let mut cf: HashMap<u16, f64> = HashMap::new();
        for ins in &mut b.instrs {
            if let Some(folded) = fold(ins, &ci, &cf) {
                *ins = folded;
            }
            match *ins {
                Instr::ConstI { dst, v } => {
                    ci.insert(dst, v);
                }
                Instr::ConstF { dst, v } => {
                    cf.insert(dst, v);
                }
                _ => match reg_def(ins) {
                    Some((true, d)) => {
                        cf.remove(&d);
                    }
                    Some((false, d)) => {
                        ci.remove(&d);
                    }
                    None => {}
                },
            }
        }
        // Branches on constants become jumps; simplify-cfg then drops the
        // untaken side if it became unreachable.
        match b.term {
            Terminator::Branch { cond, then, els } => {
                if let Some(&v) = ci.get(&cond) {
                    b.term = Terminator::Jump(if v != 0 { then } else { els });
                }
            }
            Terminator::BranchCmp {
                op,
                float,
                a,
                b: rb,
                then,
                els,
            } => {
                let taken = if float {
                    match (cf.get(&a), cf.get(&rb)) {
                        (Some(x), Some(y)) => Some(cmp(op, x, y)),
                        _ => None,
                    }
                } else {
                    match (ci.get(&a), ci.get(&rb)) {
                        (Some(x), Some(y)) => Some(cmp(op, x, y)),
                        _ => None,
                    }
                };
                if let Some(t) = taken {
                    b.term = Terminator::Jump(if t { then } else { els });
                }
            }
            Terminator::Jump(_) | Terminator::Ret => {}
        }
    }
    blocks
}

/// The constant an instruction evaluates to, if all operands are known.
fn fold(ins: &Instr, ci: &HashMap<u16, i64>, cf: &HashMap<u16, f64>) -> Option<Instr> {
    use Instr::*;
    Some(match *ins {
        MovI { dst, src } => ConstI {
            dst,
            v: *ci.get(&src)?,
        },
        MovF { dst, src } => ConstF {
            dst,
            v: *cf.get(&src)?,
        },
        IBin {
            op,
            dst,
            a,
            b,
            unsigned,
        } => ConstI {
            dst,
            v: int_bin(op, *ci.get(&a)?, *ci.get(&b)?, unsigned).ok()?,
        },
        IBinImm {
            op,
            dst,
            a,
            imm,
            unsigned,
        } => ConstI {
            dst,
            v: int_bin(op, *ci.get(&a)?, imm, unsigned).ok()?,
        },
        FBin { op, dst, a, b } => {
            let (x, y) = (*cf.get(&a)?, *cf.get(&b)?);
            ConstF {
                dst,
                v: match op {
                    FBinOp::Add => x + y,
                    FBinOp::Sub => x - y,
                    FBinOp::Mul => x * y,
                    FBinOp::Div => x / y,
                },
            }
        }
        CmpI { op, dst, a, b } => ConstI {
            dst,
            v: i64::from(cmp(op, ci.get(&a)?, ci.get(&b)?)),
        },
        CmpF { op, dst, a, b } => ConstI {
            dst,
            v: i64::from(cmp(op, cf.get(&a)?, cf.get(&b)?)),
        },
        NegI { dst, a, unsigned } => ConstI {
            dst,
            v: wrap32(0i64.wrapping_sub(*ci.get(&a)?), unsigned),
        },
        NegF { dst, a } => ConstF {
            dst,
            v: -*cf.get(&a)?,
        },
        NotI { dst, a } => ConstI {
            dst,
            v: i64::from(*ci.get(&a)? == 0),
        },
        BitNotI { dst, a, unsigned } => ConstI {
            dst,
            v: wrap32(!*ci.get(&a)?, unsigned),
        },
        CastIF { dst, a } => ConstF {
            dst,
            v: *ci.get(&a)? as f64,
        },
        CastFI { dst, a, unsigned } => {
            let x = *cf.get(&a)?;
            ConstI {
                dst,
                v: if unsigned {
                    i64::from(x as u32)
                } else {
                    i64::from(x as i32)
                },
            }
        }
        CastII {
            dst,
            a,
            to_unsigned,
        } => ConstI {
            dst,
            v: wrap32(*ci.get(&a)?, to_unsigned),
        },
        IMin { dst, a, b } => ConstI {
            dst,
            v: (*ci.get(&a)?).min(*ci.get(&b)?),
        },
        IMax { dst, a, b } => ConstI {
            dst,
            v: (*ci.get(&a)?).max(*ci.get(&b)?),
        },
        IAbs { dst, a } => ConstI {
            dst,
            v: wrap32(ci.get(&a)?.wrapping_abs(), false),
        },
        _ => return None,
    })
}
