//! Copy propagation over `MovI`/`MovF`, plus move coalescing.
//!
//! The forward pass rewrites uses of a copied register to the copy source
//! within each block (codegen's variable reads all go through moves into
//! temporaries, so this kills most of them — DCE then removes the
//! now-dead moves). Self-moves are dropped outright.
//!
//! The coalescing pass catches the opposite idiom codegen produces for
//! assignments: `t = op …; v = mov t` where the temporary `t` dies at the
//! move. The def is redirected to write `v` directly and the move is
//! deleted.

use super::{map_term_uses, map_uses, reg_span, set_def, Ctx};
use crate::bytecode::{Block, Instr};
use crate::cfg::{reg_def, reg_uses, term_uses, CfgInfo};
use std::cell::Cell;
use std::collections::HashMap;

pub(super) fn run(mut blocks: Vec<Block>, ctx: &Ctx) -> Vec<Block> {
    for b in &mut blocks {
        let mut mi: HashMap<u16, u16> = HashMap::new();
        let mut mf: HashMap<u16, u16> = HashMap::new();
        let mut out = Vec::with_capacity(b.instrs.len());
        for mut ins in std::mem::take(&mut b.instrs) {
            map_uses(
                &mut ins,
                |r| *mi.get(&r).unwrap_or(&r),
                |r| *mf.get(&r).unwrap_or(&r),
            );
            // A def invalidates every copy relation involving the
            // register, in both directions.
            if let Some((is_f, d)) = reg_def(&ins) {
                let m = if is_f { &mut mf } else { &mut mi };
                m.remove(&d);
                m.retain(|_, &mut src| src != d);
            }
            match ins {
                Instr::MovI { dst, src } | Instr::MovF { dst, src } if dst == src => continue,
                Instr::MovI { dst, src } => {
                    mi.insert(dst, src);
                }
                Instr::MovF { dst, src } => {
                    mf.insert(dst, src);
                }
                _ => {}
            }
            out.push(ins);
        }
        b.instrs = out;
        map_term_uses(
            &mut b.term,
            |r| *mi.get(&r).unwrap_or(&r),
            |r| *mf.get(&r).unwrap_or(&r),
        );
    }
    coalesce(blocks, ctx)
}

/// Rewrite `t = op …; v = mov t` into `v = op …` when `t` dies at the
/// move: not read later in the block, not read by the terminator, and not
/// live into any successor.
fn coalesce(mut blocks: Vec<Block>, ctx: &Ctx) -> Vec<Block> {
    let (ni, nf) = reg_span(&blocks, ctx.params);
    let cfg = CfgInfo::build(&blocks, ni, nf);
    for (bi, b) in blocks.iter_mut().enumerate() {
        // Live-out of the block = union of successor live-ins.
        let mut live_i = vec![false; ni as usize];
        let mut live_f = vec![false; nf as usize];
        for &s in &cfg.succs[bi] {
            for &r in &cfg.live_in_i[s as usize] {
                live_i[r as usize] = true;
            }
            for &r in &cfg.live_in_f[s as usize] {
                live_f[r as usize] = true;
            }
        }
        let mut k = 0;
        while k + 1 < b.instrs.len() {
            let pair = match (&b.instrs[k], &b.instrs[k + 1]) {
                (def, &Instr::MovI { dst, src })
                    if dst != src && reg_def(def) == Some((false, src)) =>
                {
                    Some((false, src, dst))
                }
                (def, &Instr::MovF { dst, src })
                    if dst != src && reg_def(def) == Some((true, src)) =>
                {
                    Some((true, src, dst))
                }
                _ => None,
            };
            let Some((is_f, t, v)) = pair else {
                k += 1;
                continue;
            };
            let live_out = if is_f {
                live_f[t as usize]
            } else {
                live_i[t as usize]
            };
            let used_later = Cell::new(live_out);
            let check_i = |r: u16| {
                if !is_f && r == t {
                    used_later.set(true);
                }
            };
            let check_f = |r: u16| {
                if is_f && r == t {
                    used_later.set(true);
                }
            };
            for later in &b.instrs[k + 2..] {
                reg_uses(later, check_i, check_f);
            }
            term_uses(&b.term, check_i, check_f);
            if used_later.get() {
                k += 1;
                continue;
            }
            set_def(&mut b.instrs[k], v);
            b.instrs.remove(k + 1);
            // Don't advance: the rewritten def may feed another move.
        }
    }
    blocks
}
