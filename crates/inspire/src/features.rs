//! Static program features extracted from the IR at compile time.
//!
//! These correspond to the paper's "static program features, whose values
//! can be extracted from the source code at compile time". They describe
//! the *shape* of the computation independent of the problem size; the
//! size-dependent signal comes from the runtime features collected by the
//! `hetpart-runtime` crate.

use serde::{Deserialize, Serialize};

use crate::ast::{BinOp, UnOp};
use crate::ir::{Expr, ExprKind, Kernel, ScalarType, Stmt};

/// The static feature vector of a kernel.
///
/// All counts are *static* occurrence counts in the IR (each operation is
/// counted once regardless of loop trip counts), except where noted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StaticFeatures {
    /// Integer arithmetic/bitwise operations.
    pub int_ops: u32,
    /// Floating-point add/sub/mul/div and float intrinsics (non-transcendental).
    pub float_ops: u32,
    /// Transcendental / special-function calls (sqrt, exp, sin, pow, …).
    pub transcendental_ops: u32,
    /// Comparison operations.
    pub compare_ops: u32,
    /// Buffer loads.
    pub loads: u32,
    /// Buffer stores.
    pub stores: u32,
    /// Conditional branches (`if`, ternary, logical short-circuit points).
    pub branches: u32,
    /// Loop statements (`for` + `while`).
    pub loops: u32,
    /// Deepest loop nesting level.
    pub max_loop_depth: u32,
    /// Total kernel parameters.
    pub num_params: u32,
    /// Buffer parameters.
    pub num_buffers: u32,
    /// Buffer accesses whose index expression involves `get_global_id`
    /// directly (coalescing-friendly accesses).
    pub gid_accesses: u32,
    /// Buffer accesses whose index involves a value loaded from memory
    /// (indirect / gather accesses).
    pub indirect_accesses: u32,
    /// Branch or loop conditions that depend on `get_global_id` or loaded
    /// data — a static proxy for control-flow divergence between
    /// neighbouring work-items.
    pub divergent_conditions: u32,
    /// Bytecode branches proven gid-uniform by the dataflow uniformity
    /// analysis ([`crate::analysis::uniform`]). Unlike
    /// `divergent_conditions` (a syntactic IR count), this is computed on
    /// the *optimized bytecode*, so [`extract`] leaves it 0 and
    /// [`crate::compile`] fills it in after code generation.
    pub uniform_branches: u32,
    /// Bytecode branches the uniformity analysis could not prove uniform
    /// (potentially divergent across work-items). Filled like
    /// `uniform_branches`.
    pub divergent_branches: u32,
    /// Product of constant loop trip counts along the deepest constant
    /// nest (1 if there are no constant-bound loops). A static estimate of
    /// per-work-item work.
    pub const_trip_weight: u64,
    /// Static arithmetic intensity: (int+float+transcendental ops) /
    /// (loads+stores), with the denominator clamped to ≥1.
    pub arithmetic_intensity: f64,
}

/// Number of entries in [`StaticFeatures::to_vec`].
pub const STATIC_FEATURE_DIM: usize = 17;

/// Feature names, aligned with [`StaticFeatures::to_vec`].
pub const STATIC_FEATURE_NAMES: [&str; STATIC_FEATURE_DIM] = [
    "static.int_ops",
    "static.float_ops",
    "static.transcendental_ops",
    "static.compare_ops",
    "static.loads",
    "static.stores",
    "static.branches",
    "static.loops",
    "static.max_loop_depth",
    "static.num_params",
    "static.num_buffers",
    "static.gid_accesses",
    "static.indirect_accesses",
    "static.divergent_conditions",
    "static.uniform_branches",
    "static.divergent_branches",
    "static.arithmetic_intensity",
];

impl StaticFeatures {
    /// Flatten into the numeric vector consumed by the ML models.
    ///
    /// `const_trip_weight` is folded into the op counts implicitly by the
    /// *runtime* features (dynamic counts); statically we expose the raw
    /// shape counts plus the intensity ratio.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            f64::from(self.int_ops),
            f64::from(self.float_ops),
            f64::from(self.transcendental_ops),
            f64::from(self.compare_ops),
            f64::from(self.loads),
            f64::from(self.stores),
            f64::from(self.branches),
            f64::from(self.loops),
            f64::from(self.max_loop_depth),
            f64::from(self.num_params),
            f64::from(self.num_buffers),
            f64::from(self.gid_accesses),
            f64::from(self.indirect_accesses),
            f64::from(self.divergent_conditions),
            f64::from(self.uniform_branches),
            f64::from(self.divergent_branches),
            self.arithmetic_intensity,
        ]
    }
}

/// Extract the static features of a kernel.
pub fn extract(kernel: &Kernel) -> StaticFeatures {
    let mut w = Walker {
        f: StaticFeatures::default(),
        depth: 0,
        gid_taint: vec![false; kernel.var_types.len()],
        load_taint: vec![false; kernel.var_types.len()],
    };
    w.f.num_params = kernel.params.len() as u32;
    w.f.num_buffers = kernel.num_buffers() as u32;
    w.f.const_trip_weight = 1;
    for s in &kernel.body {
        w.stmt(s);
    }
    let mem = u64::from(w.f.loads) + u64::from(w.f.stores);
    let ops = u64::from(w.f.int_ops) + u64::from(w.f.float_ops) + u64::from(w.f.transcendental_ops);
    w.f.arithmetic_intensity = ops as f64 / mem.max(1) as f64;
    w.f
}

struct Walker {
    f: StaticFeatures,
    depth: u32,
    /// Per-variable: value derived (transitively) from `get_global_id`.
    gid_taint: Vec<bool>,
    /// Per-variable: value derived (transitively) from a buffer load.
    load_taint: Vec<bool>,
}

impl Walker {
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { var, init } | Stmt::AssignVar { var, value: init } => {
                let g = self.contains_gid(init);
                let l = self.contains_load_taint(init);
                let vi = var.0 as usize;
                self.gid_taint[vi] = self.gid_taint[vi] || g;
                self.load_taint[vi] = self.load_taint[vi] || l;
                self.expr(init);
            }
            Stmt::Store { index, value, .. } => {
                self.f.stores += 1;
                self.classify_access(index);
                self.expr(index);
                self.expr(value);
            }
            Stmt::If { cond, then, els } => {
                self.f.branches += 1;
                if self.is_divergent(cond) {
                    self.f.divergent_conditions += 1;
                }
                self.expr(cond);
                for s in then {
                    self.stmt(s);
                }
                for s in els {
                    self.stmt(s);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.f.loops += 1;
                if let Some(c) = cond {
                    if self.is_divergent(c) {
                        self.f.divergent_conditions += 1;
                    }
                    self.expr(c);
                }
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                if let Some(n) = const_trip_count(init.as_deref(), cond.as_ref()) {
                    self.f.const_trip_weight = self.f.const_trip_weight.saturating_mul(n.max(1));
                }
                self.depth += 1;
                self.f.max_loop_depth = self.f.max_loop_depth.max(self.depth);
                for s in body {
                    self.stmt(s);
                }
                self.depth -= 1;
            }
            Stmt::While { cond, body } => {
                self.f.loops += 1;
                if self.is_divergent(cond) {
                    self.f.divergent_conditions += 1;
                }
                self.expr(cond);
                self.depth += 1;
                self.f.max_loop_depth = self.f.max_loop_depth.max(self.depth);
                for s in body {
                    self.stmt(s);
                }
                self.depth -= 1;
            }
            Stmt::Block(body) => {
                for s in body {
                    self.stmt(s);
                }
            }
            Stmt::Break | Stmt::Continue | Stmt::Return => {}
        }
    }

    fn classify_access(&mut self, index: &Expr) {
        let indirect = self.contains_load_taint(index);
        if indirect {
            // Data-dependent indexing is a gather/scatter even when the
            // loaded index was itself derived from the global id.
            self.f.indirect_accesses += 1;
        } else if self.contains_gid(index) {
            self.f.gid_accesses += 1;
        }
    }

    /// Taint-aware: does `e` depend on `get_global_id`, directly or through
    /// a variable derived from it?
    fn contains_gid(&self, e: &Expr) -> bool {
        expr_contains(e, |k| match k {
            ExprKind::GlobalId(_) => true,
            ExprKind::Var(v) => self.gid_taint[v.0 as usize],
            _ => false,
        })
    }

    /// Taint-aware: does `e` depend on loaded data?
    fn contains_load_taint(&self, e: &Expr) -> bool {
        expr_contains(e, |k| match k {
            ExprKind::Load { .. } => true,
            ExprKind::Var(v) => self.load_taint[v.0 as usize],
            _ => false,
        })
    }

    /// A condition diverges between work-items if it depends on the global
    /// id or on loaded data.
    fn is_divergent(&self, e: &Expr) -> bool {
        self.contains_gid(e) || self.contains_load_taint(e)
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::IntConst(_)
            | ExprKind::FloatConst(_)
            | ExprKind::BoolConst(_)
            | ExprKind::Var(_)
            | ExprKind::Param(_)
            | ExprKind::GlobalId(_)
            | ExprKind::GlobalSize(_) => {}
            ExprKind::Binary { op, lhs, rhs } => {
                match op {
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        self.f.compare_ops += 1;
                    }
                    BinOp::LogAnd | BinOp::LogOr => {
                        // Short-circuit evaluation is a branch.
                        self.f.branches += 1;
                        self.f.int_ops += 1;
                    }
                    _ => {
                        if lhs.ty == ScalarType::Float {
                            self.f.float_ops += 1;
                        } else {
                            self.f.int_ops += 1;
                        }
                    }
                }
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Unary { operand, op } => {
                match (op, operand.ty) {
                    (UnOp::Neg, ScalarType::Float) => self.f.float_ops += 1,
                    _ => self.f.int_ops += 1,
                }
                self.expr(operand);
            }
            ExprKind::Cast(inner) => {
                // A conversion costs an op of the *destination* class.
                if e.ty == ScalarType::Float || inner.ty == ScalarType::Float {
                    self.f.float_ops += 1;
                } else {
                    self.f.int_ops += 1;
                }
                self.expr(inner);
            }
            ExprKind::Load { index, .. } => {
                self.f.loads += 1;
                self.classify_access(index);
                self.expr(index);
            }
            ExprKind::Call { f, args } => {
                if f.is_transcendental() {
                    self.f.transcendental_ops += 1;
                } else if f.is_float() {
                    self.f.float_ops += 1;
                } else {
                    self.f.int_ops += 1;
                }
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Select { cond, then, els } => {
                self.f.branches += 1;
                if self.is_divergent(cond) {
                    self.f.divergent_conditions += 1;
                }
                self.expr(cond);
                self.expr(then);
                self.expr(els);
            }
        }
    }
}

fn expr_contains<F: Fn(&ExprKind) -> bool + Copy>(e: &Expr, pred: F) -> bool {
    if pred(&e.kind) {
        return true;
    }
    match &e.kind {
        ExprKind::Binary { lhs, rhs, .. } => expr_contains(lhs, pred) || expr_contains(rhs, pred),
        ExprKind::Unary { operand, .. } | ExprKind::Cast(operand) => expr_contains(operand, pred),
        ExprKind::Load { index, .. } => expr_contains(index, pred),
        ExprKind::Call { args, .. } => args.iter().any(|a| expr_contains(a, pred)),
        ExprKind::Select { cond, then, els } => {
            expr_contains(cond, pred) || expr_contains(then, pred) || expr_contains(els, pred)
        }
        _ => false,
    }
}

/// Whether `e` mentions `get_global_id` anywhere.
pub fn expr_contains_gid(e: &Expr) -> bool {
    expr_contains(e, |k| matches!(k, ExprKind::GlobalId(_)))
}

/// Whether `e` contains a buffer load anywhere.
pub fn expr_contains_load(e: &Expr) -> bool {
    expr_contains(e, |k| matches!(k, ExprKind::Load { .. }))
}

/// If a `for` loop has the canonical shape
/// `for (v = C0; v < C1; v += C2)` with integer constants, return its trip
/// count.
fn const_trip_count(init: Option<&Stmt>, cond: Option<&Expr>) -> Option<u64> {
    let (var, start) = match init? {
        Stmt::Decl { var, init } | Stmt::AssignVar { var, value: init } => (*var, const_int(init)?),
        _ => return None,
    };
    let ExprKind::Binary { op, lhs, rhs } = &cond?.kind else {
        return None;
    };
    let ExprKind::Var(cv) = lhs.kind else {
        return None;
    };
    if cv != var {
        return None;
    }
    let limit = const_int(rhs)?;
    let n = match op {
        BinOp::Lt => limit - start,
        BinOp::Le => limit - start + 1,
        _ => return None,
    };
    (n > 0).then_some(n as u64)
}

fn const_int(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::IntConst(v) => Some(*v),
        ExprKind::Cast(inner) => const_int(inner),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::sema::analyze;

    fn feats(src: &str) -> StaticFeatures {
        let prog = parse(&lex(src).unwrap()).unwrap();
        extract(&analyze(&prog.kernels[0]).unwrap())
    }

    #[test]
    fn counts_vec_add() {
        let f = feats(
            "kernel void k(global const float* a, global const float* b, global float* c, int n) {
                int i = get_global_id(0);
                if (i < n) { c[i] = a[i] + b[i]; }
            }",
        );
        assert_eq!(f.loads, 2);
        assert_eq!(f.stores, 1);
        assert_eq!(f.float_ops, 1);
        assert_eq!(f.branches, 1);
        assert_eq!(f.compare_ops, 1);
        assert_eq!(f.num_buffers, 3);
        assert_eq!(f.num_params, 4);
        assert_eq!(f.gid_accesses, 3);
        assert_eq!(f.indirect_accesses, 0);
        // The `i < n` condition depends on gid through `i`? No — static
        // analysis is syntactic: `i` is a variable, so not flagged.
        assert!((f.arithmetic_intensity - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn counts_loops_and_depth() {
        let f = feats(
            "kernel void k(global float* o, int n) {
                for (int i = 0; i < 16; i++) {
                    for (int j = 0; j < 8; j++) {
                        o[i] += 1.0;
                    }
                }
                int m = n;
                while (m > 0) { m -= 1; }
            }",
        );
        assert_eq!(f.loops, 3);
        assert_eq!(f.max_loop_depth, 2);
        assert_eq!(f.const_trip_weight, 128);
    }

    #[test]
    fn counts_transcendentals() {
        let f = feats(
            "kernel void k(global float* o) {
                int i = get_global_id(0);
                o[i] = exp(sin((float)i)) + sqrt(2.0) * fabs(-1.0);
            }",
        );
        assert_eq!(f.transcendental_ops, 3); // exp, sin, sqrt
        assert!(f.float_ops >= 2); // fabs + add + mul + neg + cast
    }

    #[test]
    fn flags_indirect_accesses() {
        let f = feats(
            "kernel void k(global const int* idx, global const float* v, global float* o) {
                int i = get_global_id(0);
                o[i] = v[idx[i]];
            }",
        );
        assert_eq!(f.indirect_accesses, 1);
        assert_eq!(f.loads, 2);
    }

    #[test]
    fn flags_divergent_conditions() {
        let f = feats(
            "kernel void k(global const float* a, global float* o, int n) {
                int i = get_global_id(0);
                if (get_global_id(0) > 5) { o[i] = 1.0; }
                if (a[i] > 0.0) { o[i] = 2.0; }
                if (n > 5) { o[i] = 3.0; }
            }",
        );
        // gid-condition + load-condition are divergent; `n > 5` is uniform.
        assert_eq!(f.divergent_conditions, 2);
        assert_eq!(f.branches, 3);
    }

    #[test]
    fn ternary_counts_as_branch() {
        let f = feats(
            "kernel void k(global float* o) {
                int i = get_global_id(0);
                o[i] = i > 2 ? 1.0 : 0.0;
            }",
        );
        assert_eq!(f.branches, 1);
    }

    #[test]
    fn feature_vector_dim_matches_names() {
        let f = feats("kernel void k(int n) { }");
        assert_eq!(f.to_vec().len(), STATIC_FEATURE_DIM);
        assert_eq!(STATIC_FEATURE_NAMES.len(), STATIC_FEATURE_DIM);
    }

    #[test]
    fn empty_kernel_has_unit_intensity_denominator() {
        let f = feats("kernel void k(int n) { int x = n + 1; }");
        assert_eq!(f.loads + f.stores, 0);
        assert!((f.arithmetic_intensity - 1.0).abs() < 1e-12);
    }
}
