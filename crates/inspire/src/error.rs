//! Error types for compilation and kernel execution.

use std::fmt;

/// An error produced while compiling kernel source text.
///
/// Carries the byte offset into the source at which the problem was
/// detected (when known) so callers can produce caret diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Which phase rejected the program.
    pub phase: Phase,
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the source, if the error is attributable to a span.
    pub offset: Option<usize>,
}

/// Compilation phases, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Syntax analysis.
    Parse,
    /// Name resolution and type checking.
    Sema,
    /// Bytecode generation.
    Codegen,
    /// Post-pass IR verification (the static-analysis framework's typed
    /// checker rejected the output of an optimizer or backend stage).
    Verify,
    /// Anything else (driver-level problems).
    Other,
}

impl CompileError {
    pub fn lex(message: impl Into<String>, offset: usize) -> Self {
        Self {
            phase: Phase::Lex,
            message: message.into(),
            offset: Some(offset),
        }
    }
    pub fn parse(message: impl Into<String>, offset: usize) -> Self {
        Self {
            phase: Phase::Parse,
            message: message.into(),
            offset: Some(offset),
        }
    }
    pub fn sema(message: impl Into<String>, offset: usize) -> Self {
        Self {
            phase: Phase::Sema,
            message: message.into(),
            offset: Some(offset),
        }
    }
    pub fn codegen(message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Codegen,
            message: message.into(),
            offset: None,
        }
    }
    pub fn verify(message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Verify,
            message: message.into(),
            offset: None,
        }
    }
    pub fn other(message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Other,
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "sema",
            Phase::Codegen => "codegen",
            Phase::Verify => "verify",
            Phase::Other => "compile",
        };
        match self.offset {
            Some(off) => write!(f, "{phase} error at byte {off}: {}", self.message),
            None => write!(f, "{phase} error: {}", self.message),
        }
    }
}

impl std::error::Error for CompileError {}

/// An error produced while executing bytecode in the VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A buffer access was outside the buffer's bounds.
    OutOfBounds {
        /// Kernel parameter index of the buffer.
        buffer: usize,
        /// Element index that was accessed.
        index: i64,
        /// Number of elements in the buffer.
        len: usize,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// The per-work-item instruction budget was exhausted (runaway loop).
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// An argument did not match the kernel signature.
    ArgumentMismatch(String),
    /// A negative shift amount or shift wider than the operand.
    InvalidShift(i64),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfBounds { buffer, index, len } => write!(
                f,
                "out-of-bounds access on buffer argument {buffer}: index {index}, length {len}"
            ),
            VmError::DivisionByZero => write!(f, "integer division by zero"),
            VmError::StepLimitExceeded { limit } => {
                write!(
                    f,
                    "work-item exceeded the step limit of {limit} instructions"
                )
            }
            VmError::ArgumentMismatch(m) => write!(f, "argument mismatch: {m}"),
            VmError::InvalidShift(s) => write!(f, "invalid shift amount {s}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_offset() {
        let e = CompileError::parse("unexpected token", 17);
        let s = e.to_string();
        assert!(s.contains("parse"), "{s}");
        assert!(s.contains("17"), "{s}");
    }

    #[test]
    fn display_without_offset() {
        let e = CompileError::codegen("too many registers");
        assert!(e.to_string().contains("codegen"));
    }

    #[test]
    fn vm_error_display() {
        let e = VmError::OutOfBounds {
            buffer: 2,
            index: -1,
            len: 8,
        };
        let s = e.to_string();
        assert!(s.contains("buffer argument 2"), "{s}");
        assert!(VmError::DivisionByZero.to_string().contains("division"));
    }
}
