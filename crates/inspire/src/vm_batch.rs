//! The lane-batched SoA execution engine.
//!
//! The scalar engine in [`crate::vm`] interprets one work-item at a time:
//! every bytecode instruction pays the full dispatch cost (decode match,
//! register-file bounds checks) for a single item's worth of work. Since
//! data-parallel kernels execute the exact same instruction sequence for
//! long runs of adjacent work-items, this engine instead executes blocks
//! of up to [`LANES`] consecutive work-items in lockstep: the register
//! files are stored structure-of-arrays (`Vec<[i64; LANES]>` /
//! `Vec<[f64; LANES]>`), so each instruction is decoded once and then
//! applied across all active lanes in a tight, bounds-check-free loop.
//!
//! Control flow:
//! - **Uniform branches** (every active lane takes the same side) keep
//!   the whole batch in lockstep — the fast path, and the common case for
//!   guard-style `if (i < n)` conditions and fixed-trip-count loops.
//! - **Divergent branches** bail out to **per-lane replay**: each lane's
//!   register state is copied into the scalar engine, which finishes that
//!   work-item alone from its branch target. Divergence therefore costs
//!   at most one scalar execution per item plus the already-executed
//!   uniform prefix — it is paid once per item, not once per loop
//!   iteration.
//! - The **active-lane mask** is a prefix: the final batch of a range may
//!   cover fewer than [`LANES`] items, and all lane loops iterate only
//!   over the live prefix.
//!
//! Semantics match the scalar engine exactly for race-free kernels
//! (every suite kernel; OpenCL gives racy kernels no ordering guarantees
//! anyway): buffers, block counters, and per-item step counts are bit
//! identical, which the workspace's differential test suite enforces.
//! The one observable difference is *which* error surfaces when multiple
//! work-items of a batch fault: items execute in instruction lockstep,
//! so the earliest fault in lockstep order wins rather than the earliest
//! item in item order, and buffers may hold partial writes from later
//! items of the faulting batch.

use crate::bytecode::{CmpOp, FBinOp, Function, IBinOp, Instr, MathFn1, MathFn2, Terminator};
use crate::error::VmError;
use crate::vm::{int_bin, wrap32, BufferData, Counters, Vm};

/// Work-items executed in lockstep per batch.
pub const LANES: usize = 64;

/// Where block executions are counted.
pub(crate) enum CountSink<'a> {
    /// One shared counter set for the whole batch (a block execution by
    /// `k` active lanes adds `k`).
    Aggregate(&'a mut Counters),
    /// One counter set per lane (index = lane), for per-item profiles.
    PerLane(&'a mut [Counters]),
}

impl CountSink<'_> {
    #[inline]
    fn count_block(&mut self, block: usize, lanes: usize) {
        match self {
            CountSink::Aggregate(c) => c.block_counts[block] += lanes as u64,
            CountSink::PerLane(per) => {
                for c in per[..lanes].iter_mut() {
                    c.block_counts[block] += 1;
                }
            }
        }
    }

    #[inline]
    fn lane(&mut self, lane: usize) -> &mut Counters {
        match self {
            CountSink::Aggregate(c) => c,
            CountSink::PerLane(per) => &mut per[lane],
        }
    }
}

/// The structure-of-arrays lane engine. One instance is reused across all
/// batches of a run; lane register state persists between batches exactly
/// like the scalar engine's register file persists between items.
pub(crate) struct LaneEngine {
    iregs: Vec<[i64; LANES]>,
    fregs: Vec<[f64; LANES]>,
    gid: [[i64; LANES]; 3],
    /// Per-lane instruction-budget counters of the current batch.
    steps: [u64; LANES],
}

/// Apply `f` lane-wise: `dst[l] = f(a[l], b[l])` for the first `n` lanes.
///
/// The common case (the compiler allocates a fresh temp for `dst`) borrows
/// all three registers disjointly and runs a bounds-check-free loop the
/// optimizer can vectorize; aliased operands fall back to copying, which
/// is always correct because each lane only reads its own elements.
#[inline]
fn apply2<T: Copy, F: Fn(T, T) -> T>(
    regs: &mut [[T; LANES]],
    n: usize,
    dst: u16,
    a: u16,
    b: u16,
    f: F,
) {
    let (dst, a, b) = (dst as usize, a as usize, b as usize);
    if dst != a && dst != b && a != b {
        let [d, x, y] = regs
            .get_disjoint_mut([dst, a, b])
            .expect("disjoint registers");
        for ((d, &x), &y) in d[..n].iter_mut().zip(&x[..n]).zip(&y[..n]) {
            *d = f(x, y);
        }
    } else if a == b && dst != a {
        let [d, x] = regs.get_disjoint_mut([dst, a]).expect("disjoint registers");
        for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
            *d = f(x, x);
        }
    } else if dst == a && dst == b {
        for v in regs[dst][..n].iter_mut() {
            *v = f(*v, *v);
        }
    } else if dst == a {
        // In-place accumulator: each lane reads its own element before
        // writing it, so a pairwise disjoint borrow of [dst, b] suffices.
        let [d, y] = regs.get_disjoint_mut([dst, b]).expect("disjoint registers");
        for (d, &y) in d[..n].iter_mut().zip(&y[..n]) {
            *d = f(*d, y);
        }
    } else {
        let [d, x] = regs.get_disjoint_mut([dst, a]).expect("disjoint registers");
        for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
            *d = f(x, *d);
        }
    }
}

/// Apply `f` lane-wise: `dst[l] = f(a[l])` for the first `n` lanes.
#[inline]
fn apply1<T: Copy, F: Fn(T) -> T>(regs: &mut [[T; LANES]], n: usize, dst: u16, a: u16, f: F) {
    let (dst, a) = (dst as usize, a as usize);
    if dst != a {
        let [d, x] = regs.get_disjoint_mut([dst, a]).expect("disjoint registers");
        for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
            *d = f(x);
        }
    } else {
        for v in regs[dst][..n].iter_mut() {
            *v = f(*v);
        }
    }
}

/// Whether every lane index is a valid element index for a buffer of
/// `len` elements — the gate for the bounds-check-free memory fast paths.
#[inline]
fn all_in_bounds(idx: &[i64; LANES], n: usize, len: usize) -> bool {
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for &i in &idx[..n] {
        lo = lo.min(i);
        hi = hi.max(i);
    }
    lo >= 0 && (hi as u64) < len as u64
}

/// Lane-wise comparison producing an I-register boolean:
/// `dst[l] = f(a[l], b[l]) as i64`.
#[inline]
fn apply_cmp<T: Copy, F: Fn(T, T) -> bool>(
    out: &mut [i64; LANES],
    a: &[T; LANES],
    b: &[T; LANES],
    n: usize,
    f: F,
) {
    for ((d, &x), &y) in out[..n].iter_mut().zip(&a[..n]).zip(&b[..n]) {
        *d = i64::from(f(x, y));
    }
}

impl LaneEngine {
    /// Allocate lane register files for `f` and broadcast the scalar
    /// engine's bound registers (kernel arguments; everything else zero)
    /// across all lanes.
    pub(crate) fn new(f: &Function, vm: &Vm) -> Self {
        let iregs = vm.iregs.iter().map(|&v| [v; LANES]).collect();
        let fregs = vm.fregs.iter().map(|&v| [v; LANES]).collect();
        debug_assert_eq!(vm.iregs.len(), f.n_iregs as usize);
        debug_assert_eq!(vm.fregs.len(), f.n_fregs as usize);
        Self {
            iregs,
            fregs,
            gid: [[0; LANES]; 3],
            steps: [0; LANES],
        }
    }

    /// Per-lane step counts of the most recently executed batch (valid for
    /// the first `n` lanes of that batch).
    pub(crate) fn lane_steps(&self) -> &[u64; LANES] {
        &self.steps
    }

    /// Execute one batch of `gids.len()` (≤ [`LANES`]) work-items from
    /// block 0 to completion. `vm` provides the step limit and serves as
    /// the scratch scalar engine for divergent replay.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_batch(
        &mut self,
        vm: &mut Vm,
        f: &Function,
        gids: &[[usize; 3]],
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
        mut sink: CountSink<'_>,
    ) -> Result<(), VmError> {
        let n = gids.len();
        debug_assert!((1..=LANES).contains(&n));
        for d in 0..3 {
            for (l, g) in gids.iter().enumerate() {
                self.gid[d][l] = g[d] as i64;
            }
        }
        // Lanes run in lockstep until divergence, so one shared step
        // counter suffices for the batched prefix.
        let mut batch_steps: u64 = 0;
        let mut block = 0usize;
        loop {
            sink.count_block(block, n);
            let b = &f.blocks[block];
            batch_steps += b.step_cost();
            if batch_steps > vm.step_limit {
                return Err(VmError::StepLimitExceeded {
                    limit: vm.step_limit,
                });
            }
            for ins in &b.instrs {
                self.exec_instr(ins, n, gsize, bmap, bufs)?;
            }
            match b.term {
                Terminator::Jump(t) => block = t as usize,
                Terminator::Branch { cond, then, els } => {
                    let c = &self.iregs[cond as usize];
                    let first = c[0] != 0;
                    if c[1..n].iter().all(|&v| (v != 0) == first) {
                        // Uniform fast path: the batch stays in lockstep.
                        block = if first { then as usize } else { els as usize };
                    } else {
                        return self.replay(
                            vm,
                            f,
                            n,
                            cond,
                            [then, els],
                            gids,
                            gsize,
                            bmap,
                            bufs,
                            &mut sink,
                            batch_steps,
                        );
                    }
                }
                Terminator::Ret => {
                    self.steps[..n].fill(batch_steps);
                    return Ok(());
                }
            }
        }
    }

    /// Divergent-branch fallback: finish each lane's work-item on the
    /// scalar engine, in ascending lane (= item) order, starting from its
    /// branch target with its lane register state.
    #[allow(clippy::too_many_arguments)]
    fn replay(
        &mut self,
        vm: &mut Vm,
        f: &Function,
        n: usize,
        cond: u16,
        targets: [u32; 2],
        gids: &[[usize; 3]],
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
        sink: &mut CountSink<'_>,
        batch_steps: u64,
    ) -> Result<(), VmError> {
        for l in 0..n {
            let target = if self.iregs[cond as usize][l] != 0 {
                targets[0]
            } else {
                targets[1]
            };
            for (scalar, lanes) in vm.iregs.iter_mut().zip(&self.iregs) {
                *scalar = lanes[l];
            }
            for (scalar, lanes) in vm.fregs.iter_mut().zip(&self.fregs) {
                *scalar = lanes[l];
            }
            let mut steps = batch_steps;
            vm.exec_from(
                f,
                target as usize,
                gids[l],
                gsize,
                bmap,
                bufs,
                sink.lane(l),
                &mut steps,
            )?;
            self.steps[l] = steps;
        }
        Ok(())
    }

    /// Execute one instruction across the first `n` lanes.
    #[inline]
    fn exec_instr(
        &mut self,
        ins: &Instr,
        n: usize,
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        use Instr::*;
        match *ins {
            ConstI { dst, v } => self.iregs[dst as usize][..n].fill(v),
            ConstF { dst, v } => self.fregs[dst as usize][..n].fill(v),
            MovI { dst, src } => {
                let s = self.iregs[src as usize];
                self.iregs[dst as usize][..n].copy_from_slice(&s[..n]);
            }
            MovF { dst, src } => {
                let s = self.fregs[src as usize];
                self.fregs[dst as usize][..n].copy_from_slice(&s[..n]);
            }
            IBin {
                op,
                dst,
                a,
                b,
                unsigned,
            } => {
                // Dispatch on the op *outside* the lane loop so each arm
                // monomorphizes into a tight, vectorizable kernel.
                let r = &mut self.iregs;
                match op {
                    IBinOp::Add => {
                        apply2(r, n, dst, a, b, |x, y| wrap32(x.wrapping_add(y), unsigned))
                    }
                    IBinOp::Sub => {
                        apply2(r, n, dst, a, b, |x, y| wrap32(x.wrapping_sub(y), unsigned))
                    }
                    IBinOp::Mul => {
                        apply2(r, n, dst, a, b, |x, y| wrap32(x.wrapping_mul(y), unsigned))
                    }
                    IBinOp::And => apply2(r, n, dst, a, b, |x, y| wrap32(x & y, unsigned)),
                    IBinOp::Or => apply2(r, n, dst, a, b, |x, y| wrap32(x | y, unsigned)),
                    IBinOp::Xor => apply2(r, n, dst, a, b, |x, y| wrap32(x ^ y, unsigned)),
                    IBinOp::Shl => apply2(r, n, dst, a, b, |x, y| {
                        wrap32(x.wrapping_shl((y & 31) as u32), unsigned)
                    }),
                    IBinOp::Shr => apply2(r, n, dst, a, b, |x, y| {
                        let s = (y & 31) as u32;
                        let v = if unsigned {
                            ((x as u64) >> s) as i64
                        } else {
                            (x as i32 >> s) as i64
                        };
                        wrap32(v, unsigned)
                    }),
                    IBinOp::Div | IBinOp::Rem => {
                        let x = r[a as usize];
                        let y = r[b as usize];
                        let d = &mut r[dst as usize];
                        for ((d, &x), &y) in d[..n].iter_mut().zip(&x[..n]).zip(&y[..n]) {
                            *d = int_bin(op, x, y, unsigned)?;
                        }
                    }
                }
            }
            FBin { op, dst, a, b } => {
                let r = &mut self.fregs;
                match op {
                    FBinOp::Add => apply2(r, n, dst, a, b, |x, y| x + y),
                    FBinOp::Sub => apply2(r, n, dst, a, b, |x, y| x - y),
                    FBinOp::Mul => apply2(r, n, dst, a, b, |x, y| x * y),
                    FBinOp::Div => apply2(r, n, dst, a, b, |x, y| x / y),
                }
            }
            CmpI { op, dst, a, b } => {
                let r = &mut self.iregs;
                match op {
                    CmpOp::Lt => apply2(r, n, dst, a, b, |x, y| i64::from(x < y)),
                    CmpOp::Le => apply2(r, n, dst, a, b, |x, y| i64::from(x <= y)),
                    CmpOp::Gt => apply2(r, n, dst, a, b, |x, y| i64::from(x > y)),
                    CmpOp::Ge => apply2(r, n, dst, a, b, |x, y| i64::from(x >= y)),
                    CmpOp::Eq => apply2(r, n, dst, a, b, |x, y| i64::from(x == y)),
                    CmpOp::Ne => apply2(r, n, dst, a, b, |x, y| i64::from(x != y)),
                }
            }
            CmpF { op, dst, a, b } => {
                // Cross-file: operands in F registers, result in an I
                // register — no aliasing possible.
                let x = &self.fregs[a as usize];
                let y = &self.fregs[b as usize];
                let d = &mut self.iregs[dst as usize];
                match op {
                    CmpOp::Lt => apply_cmp(d, x, y, n, |x, y| x < y),
                    CmpOp::Le => apply_cmp(d, x, y, n, |x, y| x <= y),
                    CmpOp::Gt => apply_cmp(d, x, y, n, |x, y| x > y),
                    CmpOp::Ge => apply_cmp(d, x, y, n, |x, y| x >= y),
                    CmpOp::Eq => apply_cmp(d, x, y, n, |x, y| x == y),
                    CmpOp::Ne => apply_cmp(d, x, y, n, |x, y| x != y),
                }
            }
            NegI { dst, a, unsigned } => {
                apply1(&mut self.iregs, n, dst, a, |x| {
                    wrap32(0i64.wrapping_sub(x), unsigned)
                });
            }
            NegF { dst, a } => apply1(&mut self.fregs, n, dst, a, |x| -x),
            NotI { dst, a } => apply1(&mut self.iregs, n, dst, a, |x| i64::from(x == 0)),
            BitNotI { dst, a, unsigned } => {
                apply1(&mut self.iregs, n, dst, a, |x| wrap32(!x, unsigned));
            }
            CastIF { dst, a } => {
                let x = &self.iregs[a as usize];
                let d = &mut self.fregs[dst as usize];
                for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
                    *d = x as f64;
                }
            }
            CastFI { dst, a, unsigned } => {
                let x = &self.fregs[a as usize];
                let d = &mut self.iregs[dst as usize];
                if unsigned {
                    for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
                        *d = i64::from(x as u32);
                    }
                } else {
                    for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
                        *d = i64::from(x as i32);
                    }
                }
            }
            CastII {
                dst,
                a,
                to_unsigned,
            } => apply1(&mut self.iregs, n, dst, a, |x| wrap32(x, to_unsigned)),
            Math1 { f, dst, a } => {
                let r = &mut self.fregs;
                match f {
                    MathFn1::Sqrt => apply1(r, n, dst, a, f64::sqrt),
                    MathFn1::Rsqrt => apply1(r, n, dst, a, |x| 1.0 / x.sqrt()),
                    MathFn1::Exp => apply1(r, n, dst, a, f64::exp),
                    MathFn1::Log => apply1(r, n, dst, a, f64::ln),
                    MathFn1::Sin => apply1(r, n, dst, a, f64::sin),
                    MathFn1::Cos => apply1(r, n, dst, a, f64::cos),
                    MathFn1::Tan => apply1(r, n, dst, a, f64::tan),
                    MathFn1::Fabs => apply1(r, n, dst, a, f64::abs),
                    MathFn1::Floor => apply1(r, n, dst, a, f64::floor),
                    MathFn1::Ceil => apply1(r, n, dst, a, f64::ceil),
                }
            }
            Math2 { f, dst, a, b } => {
                let r = &mut self.fregs;
                match f {
                    MathFn2::Pow => apply2(r, n, dst, a, b, f64::powf),
                    MathFn2::Fmin => apply2(r, n, dst, a, b, f64::min),
                    MathFn2::Fmax => apply2(r, n, dst, a, b, f64::max),
                    MathFn2::Fmod => apply2(r, n, dst, a, b, |x, y| x % y),
                }
            }
            IMin { dst, a, b } => apply2(&mut self.iregs, n, dst, a, b, i64::min),
            IMax { dst, a, b } => apply2(&mut self.iregs, n, dst, a, b, i64::max),
            IAbs { dst, a } => {
                apply1(&mut self.iregs, n, dst, a, |x| {
                    wrap32(x.wrapping_abs(), false)
                });
            }
            LoadF { dst, buf, idx } => {
                let idxv = &self.iregs[idx as usize];
                let b = &bufs[bmap[buf as usize]];
                let BufferData::F32(v) = b else {
                    unreachable!("type-checked load");
                };
                let d = &mut self.fregs[dst as usize];
                if all_in_bounds(idxv, n, v.len()) {
                    for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                        *d = f64::from(v[i as usize]);
                    }
                } else {
                    for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                        let Some(val) = usize::try_from(i).ok().and_then(|i| v.get(i)) else {
                            return Err(VmError::OutOfBounds {
                                buffer: buf as usize,
                                index: i,
                                len: v.len(),
                            });
                        };
                        *d = f64::from(*val);
                    }
                }
            }
            LoadI { dst, buf, idx } => {
                // Index and destination share the I register file; copy
                // the index lanes so the destination can borrow mutably.
                let idxv = self.iregs[idx as usize];
                let idxv = &idxv;
                let b = &bufs[bmap[buf as usize]];
                let d = &mut self.iregs[dst as usize];
                if all_in_bounds(idxv, n, b.len()) {
                    match b {
                        BufferData::I32(v) => {
                            for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                                *d = i64::from(v[i as usize]);
                            }
                        }
                        BufferData::U32(v) => {
                            for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                                *d = i64::from(v[i as usize]);
                            }
                        }
                        BufferData::F32(_) => unreachable!("type-checked load"),
                    }
                } else {
                    for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                        let val = match b {
                            BufferData::I32(v) => usize::try_from(i)
                                .ok()
                                .and_then(|i| v.get(i))
                                .map(|&x| i64::from(x)),
                            BufferData::U32(v) => usize::try_from(i)
                                .ok()
                                .and_then(|i| v.get(i))
                                .map(|&x| i64::from(x)),
                            BufferData::F32(_) => unreachable!("type-checked load"),
                        };
                        let Some(val) = val else {
                            return Err(VmError::OutOfBounds {
                                buffer: buf as usize,
                                index: i,
                                len: b.len(),
                            });
                        };
                        *d = val;
                    }
                }
            }
            StoreF { buf, idx, src } => {
                let idxv = &self.iregs[idx as usize];
                let srcv = &self.fregs[src as usize];
                let b = &mut bufs[bmap[buf as usize]];
                let len = b.len();
                let BufferData::F32(v) = b else {
                    unreachable!("type-checked store");
                };
                // Ascending lane order = ascending item order, so
                // same-instruction write collisions resolve exactly like
                // the scalar engine's item order.
                if all_in_bounds(idxv, n, len) {
                    for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                        v[i as usize] = x as f32;
                    }
                } else {
                    for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                        let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i)) else {
                            return Err(VmError::OutOfBounds {
                                buffer: buf as usize,
                                index: i,
                                len,
                            });
                        };
                        *slot = x as f32;
                    }
                }
            }
            StoreI { buf, idx, src } => {
                let idxv = &self.iregs[idx as usize];
                let srcv = &self.iregs[src as usize];
                let b = &mut bufs[bmap[buf as usize]];
                let len = b.len();
                if all_in_bounds(idxv, n, len) {
                    match b {
                        BufferData::I32(v) => {
                            for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                                v[i as usize] = x as i32;
                            }
                        }
                        BufferData::U32(v) => {
                            for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                                v[i as usize] = x as u32;
                            }
                        }
                        BufferData::F32(_) => unreachable!("type-checked store"),
                    }
                } else {
                    for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                        let slot = match b {
                            BufferData::I32(v) => {
                                usize::try_from(i).ok().and_then(|i| v.get_mut(i)).map(|s| {
                                    *s = x as i32;
                                })
                            }
                            BufferData::U32(v) => {
                                usize::try_from(i).ok().and_then(|i| v.get_mut(i)).map(|s| {
                                    *s = x as u32;
                                })
                            }
                            BufferData::F32(_) => unreachable!("type-checked store"),
                        };
                        if slot.is_none() {
                            return Err(VmError::OutOfBounds {
                                buffer: buf as usize,
                                index: i,
                                len,
                            });
                        }
                    }
                }
            }
            GlobalId { dst, dim } => {
                let g = self.gid[dim as usize];
                self.iregs[dst as usize][..n].copy_from_slice(&g[..n]);
            }
            GlobalSize { dst, dim } => {
                self.iregs[dst as usize][..n].fill(gsize[dim as usize] as i64);
            }
        }
        Ok(())
    }
}
