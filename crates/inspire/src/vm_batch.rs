//! The lane-batched SoA execution engine with SIMT reconvergence.
//!
//! The scalar engine in [`crate::vm`] interprets one work-item at a time:
//! every bytecode instruction pays the full dispatch cost (decode match,
//! register-file bounds checks) for a single item's worth of work. Since
//! data-parallel kernels execute the exact same instruction sequence for
//! long runs of adjacent work-items, this engine instead executes blocks
//! of up to [`LANES`] consecutive work-items in lockstep: the register
//! files are stored structure-of-arrays (`Vec<[i64; LANES]>` /
//! `Vec<[f64; LANES]>`), so each instruction is decoded once and then
//! applied across all active lanes in a tight loop.
//!
//! Control flow follows the SIMT execution model of real GPU hardware
//! (which is also the model the paper's cost features assume):
//!
//! - **Uniform branches** (every active lane takes the same side) keep
//!   the whole batch in lockstep — the fast path, and the common case for
//!   guard-style `if (i < n)` conditions and fixed-trip-count loops.
//! - **Divergent branches** split the active mask. The engine pushes the
//!   not-taken subset onto a **reconvergence stack** together with the
//!   branch's **immediate post-dominator** (the first block every path
//!   from the branch must reach again, precomputed in [`crate::cfg`] and
//!   cached on the [`Function`]), then executes the taken side under its
//!   sub-mask. When a lane subset reaches its frame's rejoin block it is
//!   parked, and once all subsets arrive the parent frame resumes there
//!   with the re-merged mask — lanes re-join at the post-dominator
//!   exactly like a hardware SIMT stack. Instructions executed under a
//!   partial mask use masked variants that only read, write, and fault on
//!   active lanes.
//! - The pre-reconvergence behaviour — finish each lane's work-item on
//!   the scalar engine from its branch target — is kept as
//!   [`DivergenceMode::Replay`] (enable with `INSPIRE_NO_RECONVERGE=1`)
//!   for A/B comparison and bug isolation. Replay copies only the
//!   registers that are **live-in** at the branch target (also cached on
//!   the function) instead of the whole register file.
//! - The **active-lane mask** of a full batch is a prefix: the final
//!   batch of a range may cover fewer than [`LANES`] items, and all lane
//!   loops iterate only over the live prefix.
//!
//! Semantics match the scalar engine exactly for race-free kernels
//! (every suite kernel; OpenCL gives racy kernels no ordering guarantees
//! anyway): buffers, block counters, and per-item step counts are bit
//! identical, which the workspace's differential test suite enforces.
//! Per-lane parity holds because reconvergence never changes *which*
//! blocks a lane executes — only when they run relative to other lanes —
//! so each lane's block-visit sequence, and therefore its block counts
//! and step count, is exactly the scalar engine's. The one observable
//! difference is *which* error surfaces when multiple work-items of a
//! batch fault: items execute in instruction lockstep, so the earliest
//! fault in lockstep order wins rather than the earliest item in item
//! order, and buffers may hold partial writes from other items of the
//! faulting batch.

use crate::bytecode::{CmpOp, FBinOp, Function, IBinOp, Instr, MathFn1, MathFn2, Terminator};
use crate::cfg::NO_POST_DOM;
use crate::error::VmError;
use crate::opt::decode::{
    DecOp, OpCode, F_ADD, F_CONST, F_DIV, F_MOV, F_MUL, F_NEG, F_SUB, I_UNSIGNED,
};
use crate::vm::{cmp, int_bin, wrap32, BufferData, Counters, Vm};

/// Work-items executed in lockstep per batch.
pub const LANES: usize = 64;

/// How the lane engine handles divergent branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceMode {
    /// Masked SIMT execution: split the active mask, run both sides under
    /// sub-masks, re-join at the branch's immediate post-dominator. The
    /// default.
    Reconverge,
    /// Bail out to per-lane scalar replay on the first divergent branch —
    /// the pre-reconvergence engine, kept for A/B timing and for
    /// isolating suspected reconvergence bugs.
    Replay,
}

impl DivergenceMode {
    /// Mode selected by the environment: `INSPIRE_NO_RECONVERGE=1` (any
    /// value but `0`) forces [`DivergenceMode::Replay`].
    pub fn from_env() -> Self {
        match std::env::var_os("INSPIRE_NO_RECONVERGE") {
            Some(v) if v != "0" && !v.is_empty() => DivergenceMode::Replay,
            _ => DivergenceMode::Reconverge,
        }
    }
}

/// Active-lane bitmask: bit `l` set means lane `l` executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ExecMask(u64);

impl ExecMask {
    /// The full prefix mask for a batch of `n` lanes.
    #[inline]
    fn full(n: usize) -> Self {
        debug_assert!((1..=LANES).contains(&n));
        Self(if n == LANES { !0 } else { (1u64 << n) - 1 })
    }

    #[inline]
    fn is_empty(self) -> bool {
        self.0 == 0
    }

    #[inline]
    fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterate the set lanes in ascending (= item) order.
    #[inline]
    fn lanes(self) -> Lanes {
        Lanes(self.0)
    }
}

/// Ascending iterator over the set bits of an [`ExecMask`].
struct Lanes(u64);

impl Iterator for Lanes {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let l = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(l)
        }
    }
}

/// One reconvergence-stack entry: a lane subset executing at `pc` that
/// must be re-merged into its parent when it reaches `rpc` (the pushing
/// branch's immediate post-dominator, or the virtual exit).
struct Frame {
    pc: u32,
    rpc: u32,
    mask: ExecMask,
}

/// Where block executions are counted.
pub(crate) enum CountSink<'a> {
    /// One shared counter set for the whole batch (a block execution by
    /// `k` active lanes adds `k`).
    Aggregate(&'a mut Counters),
    /// One counter set per lane (index = lane), for per-item profiles.
    PerLane(&'a mut [Counters]),
}

impl CountSink<'_> {
    /// Count one block execution by the first `lanes` lanes (a full
    /// prefix mask).
    #[inline]
    fn count_block(&mut self, block: usize, lanes: usize) {
        match self {
            CountSink::Aggregate(c) => c.block_counts[block] += lanes as u64,
            CountSink::PerLane(per) => {
                for c in per[..lanes].iter_mut() {
                    c.block_counts[block] += 1;
                }
            }
        }
    }

    /// Count one block execution by every active lane of `m`.
    #[inline]
    fn count_block_masked(&mut self, block: usize, m: ExecMask) {
        match self {
            CountSink::Aggregate(c) => c.block_counts[block] += u64::from(m.count()),
            CountSink::PerLane(per) => {
                for l in m.lanes() {
                    per[l].block_counts[block] += 1;
                }
            }
        }
    }

    #[inline]
    fn lane(&mut self, lane: usize) -> &mut Counters {
        match self {
            CountSink::Aggregate(c) => c,
            CountSink::PerLane(per) => &mut per[lane],
        }
    }
}

/// The structure-of-arrays lane engine. One instance is reused across all
/// batches of a run; lane register state persists between batches exactly
/// like the scalar engine's register file persists between items.
pub(crate) struct LaneEngine {
    iregs: Vec<[i64; LANES]>,
    fregs: Vec<[f64; LANES]>,
    gid: [[i64; LANES]; 3],
    /// Per-lane instruction-budget counters of the current batch.
    steps: [u64; LANES],
    /// Per-parameter bounds-check elision mask, copied from
    /// [`Vm::bounds_elide`] at construction (the run entry computes it
    /// before creating the engine). Bit `p` set = every access to buffer
    /// parameter `p` is statically proven in bounds for this launch, so
    /// the gather/scatter loops skip both the per-batch range scan and
    /// the per-lane checks.
    elide: u64,
}

/// Apply `f` lane-wise: `dst[l] = f(a[l], b[l])` for the first `n` lanes.
///
/// The common case (the compiler allocates a fresh temp for `dst`) borrows
/// all three registers disjointly and runs a bounds-check-free loop the
/// optimizer can vectorize; aliased operands fall back to copying, which
/// is always correct because each lane only reads its own elements.
#[inline]
fn apply2<T: Copy, F: Fn(T, T) -> T>(
    regs: &mut [[T; LANES]],
    n: usize,
    dst: u16,
    a: u16,
    b: u16,
    f: F,
) {
    let (dst, a, b) = (dst as usize, a as usize, b as usize);
    if dst != a && dst != b && a != b {
        let Ok([d, x, y]) = regs.get_disjoint_mut([dst, a, b]) else {
            unreachable!("disjoint registers");
        };
        for ((d, &x), &y) in d[..n].iter_mut().zip(&x[..n]).zip(&y[..n]) {
            *d = f(x, y);
        }
    } else if a == b && dst != a {
        let Ok([d, x]) = regs.get_disjoint_mut([dst, a]) else {
            unreachable!("disjoint registers");
        };
        for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
            *d = f(x, x);
        }
    } else if dst == a && dst == b {
        for v in regs[dst][..n].iter_mut() {
            *v = f(*v, *v);
        }
    } else if dst == a {
        // In-place accumulator: each lane reads its own element before
        // writing it, so a pairwise disjoint borrow of [dst, b] suffices.
        let Ok([d, y]) = regs.get_disjoint_mut([dst, b]) else {
            unreachable!("disjoint registers");
        };
        for (d, &y) in d[..n].iter_mut().zip(&y[..n]) {
            *d = f(*d, y);
        }
    } else {
        let Ok([d, x]) = regs.get_disjoint_mut([dst, a]) else {
            unreachable!("disjoint registers");
        };
        for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
            *d = f(x, *d);
        }
    }
}

/// Apply `f` lane-wise: `dst[l] = f(a[l])` for the first `n` lanes.
#[inline]
fn apply1<T: Copy, F: Fn(T) -> T>(regs: &mut [[T; LANES]], n: usize, dst: u16, a: u16, f: F) {
    let (dst, a) = (dst as usize, a as usize);
    if dst != a {
        let Ok([d, x]) = regs.get_disjoint_mut([dst, a]) else {
            unreachable!("disjoint registers");
        };
        for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
            *d = f(x);
        }
    } else {
        for v in regs[dst][..n].iter_mut() {
            *v = f(*v);
        }
    }
}

/// Masked [`apply2`]: `dst[l] = f(a[l], b[l])` for each active lane.
/// Per-lane read-then-write makes any operand aliasing trivially correct.
#[inline]
fn masked2<T: Copy, F: Fn(T, T) -> T>(
    regs: &mut [[T; LANES]],
    m: ExecMask,
    dst: u16,
    a: u16,
    b: u16,
    f: F,
) {
    let (dst, a, b) = (dst as usize, a as usize, b as usize);
    for l in m.lanes() {
        let x = regs[a][l];
        let y = regs[b][l];
        regs[dst][l] = f(x, y);
    }
}

/// Masked [`apply1`]: `dst[l] = f(a[l])` for each active lane.
#[inline]
fn masked1<T: Copy, F: Fn(T) -> T>(regs: &mut [[T; LANES]], m: ExecMask, dst: u16, a: u16, f: F) {
    let (dst, a) = (dst as usize, a as usize);
    for l in m.lanes() {
        let x = regs[a][l];
        regs[dst][l] = f(x);
    }
}

/// Whether every lane index is a valid element index for a buffer of
/// `len` elements — the gate for the bounds-check-free memory fast paths.
#[inline]
fn all_in_bounds(idx: &[i64; LANES], n: usize, len: usize) -> bool {
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for &i in &idx[..n] {
        lo = lo.min(i);
        hi = hi.max(i);
    }
    lo >= 0 && (hi as u64) < len as u64
}

/// Full-width F-file micro-op: the same vectorized kernels as the
/// unfused interpreter arms, selected by one match per op (never per
/// lane — a per-lane sub dispatch would defeat vectorization).
fn apply_f(fregs: &mut [[f64; LANES]], n: usize, dst: u16, a: u16, b: u16, sub: u8, fimm: f64) {
    match sub {
        F_ADD => apply2(fregs, n, dst, a, b, |x, y| x + y),
        F_SUB => apply2(fregs, n, dst, a, b, |x, y| x - y),
        F_MUL => apply2(fregs, n, dst, a, b, |x, y| x * y),
        F_DIV => apply2(fregs, n, dst, a, b, |x, y| x / y),
        F_MOV => apply1(fregs, n, dst, a, |x| x),
        5 => apply1(fregs, n, dst, a, f64::sqrt),
        6 => apply1(fregs, n, dst, a, |x| 1.0 / x.sqrt()),
        7 => apply1(fregs, n, dst, a, f64::exp),
        8 => apply1(fregs, n, dst, a, f64::ln),
        9 => apply1(fregs, n, dst, a, f64::sin),
        10 => apply1(fregs, n, dst, a, f64::cos),
        11 => apply1(fregs, n, dst, a, f64::tan),
        12 => apply1(fregs, n, dst, a, f64::abs),
        13 => apply1(fregs, n, dst, a, f64::floor),
        14 => apply1(fregs, n, dst, a, f64::ceil),
        F_NEG => apply1(fregs, n, dst, a, |x| -x),
        _ => fregs[dst as usize][..n].fill(fimm),
    }
}

/// Full-width I-file micro-op (the non-faulting binops), mono-dispatched
/// like [`apply_f`].
fn apply_i(iregs: &mut [[i64; LANES]], n: usize, dst: u16, a: u16, b: u16, sub: u8) {
    let u = sub & I_UNSIGNED != 0;
    match sub & !I_UNSIGNED {
        0 => apply2(iregs, n, dst, a, b, |x, y| wrap32(x.wrapping_add(y), u)),
        1 => apply2(iregs, n, dst, a, b, |x, y| wrap32(x.wrapping_sub(y), u)),
        _ => apply2(iregs, n, dst, a, b, |x, y| wrap32(x.wrapping_mul(y), u)),
    }
}

/// Masked [`apply_f`].
fn masked_f(fregs: &mut [[f64; LANES]], m: ExecMask, dst: u16, a: u16, b: u16, sub: u8, fimm: f64) {
    match sub {
        F_ADD => masked2(fregs, m, dst, a, b, |x, y| x + y),
        F_SUB => masked2(fregs, m, dst, a, b, |x, y| x - y),
        F_MUL => masked2(fregs, m, dst, a, b, |x, y| x * y),
        F_DIV => masked2(fregs, m, dst, a, b, |x, y| x / y),
        F_MOV => masked1(fregs, m, dst, a, |x| x),
        5 => masked1(fregs, m, dst, a, f64::sqrt),
        6 => masked1(fregs, m, dst, a, |x| 1.0 / x.sqrt()),
        7 => masked1(fregs, m, dst, a, f64::exp),
        8 => masked1(fregs, m, dst, a, f64::ln),
        9 => masked1(fregs, m, dst, a, f64::sin),
        10 => masked1(fregs, m, dst, a, f64::cos),
        11 => masked1(fregs, m, dst, a, f64::tan),
        12 => masked1(fregs, m, dst, a, f64::abs),
        13 => masked1(fregs, m, dst, a, f64::floor),
        14 => masked1(fregs, m, dst, a, f64::ceil),
        F_NEG => masked1(fregs, m, dst, a, |x| -x),
        _ => {
            for l in m.lanes() {
                fregs[dst as usize][l] = fimm;
            }
        }
    }
}

/// Masked chain loop shared by the fused compute pairs: both halves run
/// back to back within each active lane, which is bit-identical to two
/// masked passes because every op reads only its own lane's elements (a
/// second-half operand naming the first's destination reads the fresh
/// value in both orders).
#[inline]
fn masked_chain<T: Copy, F1: Fn(T, T) -> T, F2: Fn(T, T) -> T>(
    regs: &mut [[T; LANES]],
    m: ExecMask,
    op: &DecOp,
    f1: F1,
    f2: F2,
) {
    let (t, z) = (op.c as usize, op.dst as usize);
    let (a, b, p, q) = (op.a as usize, op.b as usize, op.d as usize, op.e as usize);
    for l in m.lanes() {
        let v = f1(regs[a][l], regs[b][l]);
        regs[t][l] = v;
        let x = regs[p][l];
        let y = regs[q][l];
        regs[z][l] = f2(x, y);
    }
}

/// Full-width fused `LoadFOp` fast path (gather already known fully in
/// bounds): `x[l] = buf[idx[l]]` then `z[l] = f2(p[l], q[l])` in one
/// pass. Per-lane interleaving is bit-identical to the two full-width
/// passes because every op reads only its own lane's elements: an
/// operand equal to `x` reads the freshly loaded value (as it would
/// after a full load pass), an operand equal to `z` reads the old value
/// for its own lane. `x != z` is guaranteed at fusion time.
#[inline]
fn load_fop_fast<F: Fn(f64, f64) -> f64>(
    fregs: &mut [[f64; LANES]],
    idxv: &[i64; LANES],
    v: &[f32],
    n: usize,
    op: &DecOp,
    el: bool,
    f2: F,
) {
    let (x, z) = (op.c as usize, op.dst as usize);
    let (p, q) = (op.d as usize, op.e as usize);
    if el {
        for l in 0..n {
            // SAFETY: `el` is set only when the interval analysis proved
            // every access on this parameter in `[0, len)` (and the
            // caller's debug_assert re-checked it).
            let loaded = f64::from(unsafe { *v.get_unchecked(idxv[l] as usize) });
            fregs[x][l] = loaded;
            let pv = fregs[p][l];
            let qv = fregs[q][l];
            fregs[z][l] = f2(pv, qv);
        }
    } else {
        for l in 0..n {
            let loaded = f64::from(v[idxv[l] as usize]);
            fregs[x][l] = loaded;
            let pv = fregs[p][l];
            let qv = fregs[q][l];
            fregs[z][l] = f2(pv, qv);
        }
    }
}

/// Full-width fused `FOpStore` fast path (scatter already known fully in
/// bounds): `z[l] = f1(a[l], b[l])` and `buf[idx[l]] = z[l]` in one
/// pass. Per-lane read-before-write keeps `z == a`/`z == b` aliasing
/// identical to the unfused compute pass.
#[inline]
fn fop_store_fast<F: Fn(f64, f64) -> f64>(
    fregs: &mut [[f64; LANES]],
    idxv: &[i64; LANES],
    v: &mut [f32],
    n: usize,
    op: &DecOp,
    el: bool,
    f1: F,
) {
    let (a, b, z) = (op.a as usize, op.b as usize, op.dst as usize);
    if el {
        for l in 0..n {
            let t = f1(fregs[a][l], fregs[b][l]);
            fregs[z][l] = t;
            // SAFETY: see `load_fop_fast` — statically proven in bounds.
            unsafe { *v.get_unchecked_mut(idxv[l] as usize) = t as f32 };
        }
    } else {
        for l in 0..n {
            let t = f1(fregs[a][l], fregs[b][l]);
            fregs[z][l] = t;
            v[idxv[l] as usize] = t as f32;
        }
    }
}

/// Lane-wise comparison producing an I-register boolean:
/// `dst[l] = f(a[l], b[l]) as i64`.
#[inline]
fn apply_cmp<T: Copy, F: Fn(T, T) -> bool>(
    out: &mut [i64; LANES],
    a: &[T; LANES],
    b: &[T; LANES],
    n: usize,
    f: F,
) {
    for ((d, &x), &y) in out[..n].iter_mut().zip(&a[..n]).zip(&b[..n]) {
        *d = i64::from(f(x, y));
    }
}

impl LaneEngine {
    /// Allocate lane register files for `f` and broadcast the scalar
    /// engine's bound registers (kernel arguments; everything else zero)
    /// across all lanes.
    pub(crate) fn new(f: &Function, vm: &Vm) -> Self {
        let iregs = vm.iregs.iter().map(|&v| [v; LANES]).collect();
        let fregs = vm.fregs.iter().map(|&v| [v; LANES]).collect();
        debug_assert_eq!(vm.iregs.len(), f.n_iregs as usize);
        debug_assert_eq!(vm.fregs.len(), f.n_fregs as usize);
        Self {
            iregs,
            fregs,
            gid: [[0; LANES]; 3],
            steps: [0; LANES],
            elide: vm.bounds_elide,
        }
    }

    /// Is buffer parameter `p` proven in bounds for the current launch?
    #[inline(always)]
    fn elided(&self, p: u16) -> bool {
        p < 64 && self.elide & (1u64 << p) != 0
    }

    /// Per-lane step counts of the most recently executed batch (valid for
    /// the first `n` lanes of that batch).
    pub(crate) fn lane_steps(&self) -> &[u64; LANES] {
        &self.steps
    }

    /// Execute one batch of `gids.len()` (≤ [`LANES`]) work-items from
    /// block 0 to completion. `vm` provides the step limit and the
    /// divergence mode, and serves as the scratch scalar engine for
    /// replay-mode divergence.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_batch(
        &mut self,
        vm: &mut Vm,
        f: &Function,
        gids: &[[usize; 3]],
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
        mut sink: CountSink<'_>,
    ) -> Result<(), VmError> {
        let n = gids.len();
        debug_assert!((1..=LANES).contains(&n));
        for d in 0..3 {
            for (l, g) in gids.iter().enumerate() {
                self.gid[d][l] = g[d] as i64;
            }
        }
        let full = ExecMask::full(n);
        let exit = f.cfg.exit();
        // The current reconvergence frame lives in locals so the uniform
        // fast path never touches the stack; `stack` holds only suspended
        // frames (the other branch sides and the parked parents).
        let mut pc: u32 = 0;
        let mut rpc: u32 = exit;
        let mut mask = full;
        let mut stack: Vec<Frame> = Vec::new();
        // Lanes run in lockstep until the first divergence, so one shared
        // step counter suffices for the batched prefix; it is flushed to
        // the per-lane counters the moment the batch diverges.
        let mut batch_steps: u64 = 0;
        let mut diverged = false;
        // Pre-decoded form, when the backend tier produced one: the
        // instruction walks below step over the flat op array instead of
        // the per-block `Vec<Instr>`.
        let dec = f.decoded.as_ref();
        loop {
            if pc == rpc {
                // The current lane subset reached its reconvergence point;
                // resume the most recently suspended frame. (Its lanes are
                // re-merged implicitly: the parked parent's mask already
                // contains them.) An empty stack means every lane returned.
                match stack.pop() {
                    Some(fr) => {
                        pc = fr.pc;
                        rpc = fr.rpc;
                        mask = fr.mask;
                        continue;
                    }
                    None => break,
                }
            }
            let block = pc as usize;
            let b = &f.blocks[block];
            if !diverged {
                sink.count_block(block, n);
                batch_steps += b.step_cost();
                if batch_steps > vm.step_limit {
                    return Err(VmError::StepLimitExceeded {
                        limit: vm.step_limit,
                    });
                }
                match dec {
                    Some(p) => {
                        let (s, e) = p.spans[block];
                        for op in &p.ops[s as usize..e as usize] {
                            self.exec_dec(op, n, gsize, bmap, bufs)?;
                        }
                    }
                    None => {
                        for ins in &b.instrs {
                            self.exec_instr(ins, n, gsize, bmap, bufs)?;
                        }
                    }
                }
            } else if mask == full {
                // Fully reconverged: full-width execution, per-lane steps.
                sink.count_block(block, n);
                let cost = b.step_cost();
                let mut over = false;
                for s in self.steps[..n].iter_mut() {
                    *s += cost;
                    over |= *s > vm.step_limit;
                }
                if over {
                    return Err(VmError::StepLimitExceeded {
                        limit: vm.step_limit,
                    });
                }
                match dec {
                    Some(p) => {
                        let (s, e) = p.spans[block];
                        for op in &p.ops[s as usize..e as usize] {
                            self.exec_dec(op, n, gsize, bmap, bufs)?;
                        }
                    }
                    None => {
                        for ins in &b.instrs {
                            self.exec_instr(ins, n, gsize, bmap, bufs)?;
                        }
                    }
                }
            } else {
                sink.count_block_masked(block, mask);
                let cost = b.step_cost();
                let mut over = false;
                for l in mask.lanes() {
                    self.steps[l] += cost;
                    over |= self.steps[l] > vm.step_limit;
                }
                if over {
                    return Err(VmError::StepLimitExceeded {
                        limit: vm.step_limit,
                    });
                }
                match dec {
                    Some(p) => {
                        let (s, e) = p.spans[block];
                        for op in &p.ops[s as usize..e as usize] {
                            self.exec_dec_masked(op, mask, gsize, bmap, bufs)?;
                        }
                    }
                    None => {
                        for ins in &b.instrs {
                            self.exec_instr_masked(ins, mask, gsize, bmap, bufs)?;
                        }
                    }
                }
            }
            // Compute the per-lane taken bits for branch-like terminators;
            // direct jumps and returns short-circuit the loop.
            let (then, els, taken) = match b.term {
                Terminator::Jump(t) => {
                    pc = t;
                    continue;
                }
                Terminator::Ret => {
                    // A `Ret` can only execute in a frame whose rejoin is
                    // the virtual exit: a reconvergence region rejoining
                    // at a real block r has every path pass through r
                    // before returning (r post-dominates the region).
                    debug_assert_eq!(rpc, exit);
                    pc = rpc;
                    continue;
                }
                Terminator::Branch { cond, then, els } => {
                    let c = &self.iregs[cond as usize];
                    if mask == full {
                        // Quick uniform check without building masks — the
                        // hot case for guard conditions and uniform loops.
                        let first = c[0] != 0;
                        if c[1..n].iter().all(|&v| (v != 0) == first) {
                            pc = if first { then } else { els };
                            continue;
                        }
                    }
                    let mut taken = 0u64;
                    for l in mask.lanes() {
                        taken |= u64::from(c[l] != 0) << l;
                    }
                    (then, els, taken)
                }
                Terminator::BranchCmp {
                    op,
                    float,
                    a,
                    b: rb,
                    then,
                    els,
                } => {
                    // Fused cmp+branch: evaluate the comparison per lane
                    // without materializing the boolean register.
                    let mut taken = 0u64;
                    if float {
                        let x = &self.fregs[a as usize];
                        let y = &self.fregs[rb as usize];
                        if mask == full {
                            for (l, (xv, yv)) in x[..n].iter().zip(&y[..n]).enumerate() {
                                taken |= u64::from(cmp(op, xv, yv)) << l;
                            }
                        } else {
                            for l in mask.lanes() {
                                taken |= u64::from(cmp(op, &x[l], &y[l])) << l;
                            }
                        }
                    } else {
                        let x = &self.iregs[a as usize];
                        let y = &self.iregs[rb as usize];
                        if mask == full {
                            for (l, (xv, yv)) in x[..n].iter().zip(&y[..n]).enumerate() {
                                taken |= u64::from(cmp(op, xv, yv)) << l;
                            }
                        } else {
                            for l in mask.lanes() {
                                taken |= u64::from(cmp(op, &x[l], &y[l])) << l;
                            }
                        }
                    }
                    (then, els, taken)
                }
            };
            let t = ExecMask(taken);
            let e = ExecMask(mask.0 & !taken);
            if e.is_empty() {
                pc = then;
                continue;
            }
            if t.is_empty() {
                pc = els;
                continue;
            }
            if !diverged {
                if vm.divergence_mode == DivergenceMode::Replay {
                    return self.replay(
                        vm,
                        f,
                        n,
                        taken,
                        [then, els],
                        gids,
                        gsize,
                        bmap,
                        bufs,
                        &mut sink,
                        batch_steps,
                    );
                }
                self.steps[..n].fill(batch_steps);
                diverged = true;
            }
            // A branch with no post-dominator (an infinite loop)
            // rejoins "at the exit": such lanes can only stop via
            // the step limit, exactly as on the scalar engine.
            let r = match f.cfg.ipdom[block] {
                NO_POST_DOM => exit,
                r => r,
            };
            // Suspend the current frame parked at the rejoin with
            // the merged mask, then the not-taken side; the taken
            // side becomes current. A side that jumps straight to
            // the rejoin needs no frame — its lanes simply wait in
            // the parked parent.
            stack.push(Frame { pc: r, rpc, mask });
            if els != r {
                stack.push(Frame {
                    pc: els,
                    rpc: r,
                    mask: e,
                });
            }
            if then != r {
                pc = then;
                rpc = r;
                mask = t;
            } else {
                // The taken side *is* the rejoin: resume the most
                // recently pushed frame instead (the not-taken
                // side, or the parked parent if that side also
                // jumps straight to the rejoin).
                let Some(fr) = stack.pop() else {
                    unreachable!("parent frame just pushed");
                };
                pc = fr.pc;
                rpc = fr.rpc;
                mask = fr.mask;
            }
        }
        if !diverged {
            self.steps[..n].fill(batch_steps);
        }
        Ok(())
    }

    /// Replay-mode divergence fallback: finish each lane's work-item on
    /// the scalar engine, in ascending lane (= item) order, starting from
    /// its branch target with its lane register state. Only the registers
    /// **live-in at the target** are copied — dead registers cannot be
    /// read by the continuation, so their stale scalar values are never
    /// observed.
    #[allow(clippy::too_many_arguments)]
    fn replay(
        &mut self,
        vm: &mut Vm,
        f: &Function,
        n: usize,
        taken: u64,
        targets: [u32; 2],
        gids: &[[usize; 3]],
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
        sink: &mut CountSink<'_>,
        batch_steps: u64,
    ) -> Result<(), VmError> {
        for (l, &gid) in gids.iter().enumerate().take(n) {
            let target = if (taken >> l) & 1 != 0 {
                targets[0]
            } else {
                targets[1]
            };
            for &r in &f.cfg.live_in_i[target as usize] {
                vm.iregs[r as usize] = self.iregs[r as usize][l];
            }
            for &r in &f.cfg.live_in_f[target as usize] {
                vm.fregs[r as usize] = self.fregs[r as usize][l];
            }
            let mut steps = batch_steps;
            vm.exec_from(
                f,
                target as usize,
                gid,
                gsize,
                bmap,
                bufs,
                sink.lane(l),
                &mut steps,
            )?;
            self.steps[l] = steps;
        }
        Ok(())
    }

    /// Execute one instruction across the first `n` lanes.
    #[inline]
    fn exec_instr(
        &mut self,
        ins: &Instr,
        n: usize,
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        use Instr::*;
        match *ins {
            ConstI { dst, v } => self.iregs[dst as usize][..n].fill(v),
            ConstF { dst, v } => self.fregs[dst as usize][..n].fill(v),
            MovI { dst, src } => {
                let s = self.iregs[src as usize];
                self.iregs[dst as usize][..n].copy_from_slice(&s[..n]);
            }
            MovF { dst, src } => {
                let s = self.fregs[src as usize];
                self.fregs[dst as usize][..n].copy_from_slice(&s[..n]);
            }
            IBin {
                op,
                dst,
                a,
                b,
                unsigned,
            } => {
                // Dispatch on the op *outside* the lane loop so each arm
                // monomorphizes into a tight, vectorizable kernel.
                let r = &mut self.iregs;
                match op {
                    IBinOp::Add => {
                        apply2(r, n, dst, a, b, |x, y| wrap32(x.wrapping_add(y), unsigned))
                    }
                    IBinOp::Sub => {
                        apply2(r, n, dst, a, b, |x, y| wrap32(x.wrapping_sub(y), unsigned))
                    }
                    IBinOp::Mul => {
                        apply2(r, n, dst, a, b, |x, y| wrap32(x.wrapping_mul(y), unsigned))
                    }
                    IBinOp::And => apply2(r, n, dst, a, b, |x, y| wrap32(x & y, unsigned)),
                    IBinOp::Or => apply2(r, n, dst, a, b, |x, y| wrap32(x | y, unsigned)),
                    IBinOp::Xor => apply2(r, n, dst, a, b, |x, y| wrap32(x ^ y, unsigned)),
                    IBinOp::Shl => apply2(r, n, dst, a, b, |x, y| {
                        wrap32(x.wrapping_shl((y & 31) as u32), unsigned)
                    }),
                    IBinOp::Shr => apply2(r, n, dst, a, b, |x, y| {
                        let s = (y & 31) as u32;
                        let v = if unsigned {
                            ((x as u64) >> s) as i64
                        } else {
                            (x as i32 >> s) as i64
                        };
                        wrap32(v, unsigned)
                    }),
                    IBinOp::Div | IBinOp::Rem => {
                        let x = r[a as usize];
                        let y = r[b as usize];
                        let d = &mut r[dst as usize];
                        for ((d, &x), &y) in d[..n].iter_mut().zip(&x[..n]).zip(&y[..n]) {
                            *d = int_bin(op, x, y, unsigned)?;
                        }
                    }
                }
            }
            IBinImm {
                op,
                dst,
                a,
                imm,
                unsigned,
            } => {
                let r = &mut self.iregs;
                match op {
                    IBinOp::Add => apply1(r, n, dst, a, |x| wrap32(x.wrapping_add(imm), unsigned)),
                    IBinOp::Sub => apply1(r, n, dst, a, |x| wrap32(x.wrapping_sub(imm), unsigned)),
                    IBinOp::Mul => apply1(r, n, dst, a, |x| wrap32(x.wrapping_mul(imm), unsigned)),
                    IBinOp::And => apply1(r, n, dst, a, |x| wrap32(x & imm, unsigned)),
                    IBinOp::Or => apply1(r, n, dst, a, |x| wrap32(x | imm, unsigned)),
                    IBinOp::Xor => apply1(r, n, dst, a, |x| wrap32(x ^ imm, unsigned)),
                    IBinOp::Shl => {
                        let s = (imm & 31) as u32;
                        apply1(r, n, dst, a, |x| wrap32(x.wrapping_shl(s), unsigned));
                    }
                    IBinOp::Shr => {
                        let s = (imm & 31) as u32;
                        apply1(r, n, dst, a, |x| {
                            let v = if unsigned {
                                ((x as u64) >> s) as i64
                            } else {
                                (x as i32 >> s) as i64
                            };
                            wrap32(v, unsigned)
                        });
                    }
                    IBinOp::Div | IBinOp::Rem => {
                        let x = r[a as usize];
                        let d = &mut r[dst as usize];
                        for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
                            *d = int_bin(op, x, imm, unsigned)?;
                        }
                    }
                }
            }
            FBin { op, dst, a, b } => {
                let r = &mut self.fregs;
                match op {
                    FBinOp::Add => apply2(r, n, dst, a, b, |x, y| x + y),
                    FBinOp::Sub => apply2(r, n, dst, a, b, |x, y| x - y),
                    FBinOp::Mul => apply2(r, n, dst, a, b, |x, y| x * y),
                    FBinOp::Div => apply2(r, n, dst, a, b, |x, y| x / y),
                }
            }
            CmpI { op, dst, a, b } => {
                let r = &mut self.iregs;
                match op {
                    CmpOp::Lt => apply2(r, n, dst, a, b, |x, y| i64::from(x < y)),
                    CmpOp::Le => apply2(r, n, dst, a, b, |x, y| i64::from(x <= y)),
                    CmpOp::Gt => apply2(r, n, dst, a, b, |x, y| i64::from(x > y)),
                    CmpOp::Ge => apply2(r, n, dst, a, b, |x, y| i64::from(x >= y)),
                    CmpOp::Eq => apply2(r, n, dst, a, b, |x, y| i64::from(x == y)),
                    CmpOp::Ne => apply2(r, n, dst, a, b, |x, y| i64::from(x != y)),
                }
            }
            CmpF { op, dst, a, b } => {
                // Cross-file: operands in F registers, result in an I
                // register — no aliasing possible.
                let x = &self.fregs[a as usize];
                let y = &self.fregs[b as usize];
                let d = &mut self.iregs[dst as usize];
                match op {
                    CmpOp::Lt => apply_cmp(d, x, y, n, |x, y| x < y),
                    CmpOp::Le => apply_cmp(d, x, y, n, |x, y| x <= y),
                    CmpOp::Gt => apply_cmp(d, x, y, n, |x, y| x > y),
                    CmpOp::Ge => apply_cmp(d, x, y, n, |x, y| x >= y),
                    CmpOp::Eq => apply_cmp(d, x, y, n, |x, y| x == y),
                    CmpOp::Ne => apply_cmp(d, x, y, n, |x, y| x != y),
                }
            }
            NegI { dst, a, unsigned } => {
                apply1(&mut self.iregs, n, dst, a, |x| {
                    wrap32(0i64.wrapping_sub(x), unsigned)
                });
            }
            NegF { dst, a } => apply1(&mut self.fregs, n, dst, a, |x| -x),
            NotI { dst, a } => apply1(&mut self.iregs, n, dst, a, |x| i64::from(x == 0)),
            BitNotI { dst, a, unsigned } => {
                apply1(&mut self.iregs, n, dst, a, |x| wrap32(!x, unsigned));
            }
            CastIF { dst, a } => {
                let x = &self.iregs[a as usize];
                let d = &mut self.fregs[dst as usize];
                for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
                    *d = x as f64;
                }
            }
            CastFI { dst, a, unsigned } => {
                let x = &self.fregs[a as usize];
                let d = &mut self.iregs[dst as usize];
                if unsigned {
                    for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
                        *d = i64::from(x as u32);
                    }
                } else {
                    for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
                        *d = i64::from(x as i32);
                    }
                }
            }
            CastII {
                dst,
                a,
                to_unsigned,
            } => apply1(&mut self.iregs, n, dst, a, |x| wrap32(x, to_unsigned)),
            Math1 { f, dst, a } => {
                let r = &mut self.fregs;
                match f {
                    MathFn1::Sqrt => apply1(r, n, dst, a, f64::sqrt),
                    MathFn1::Rsqrt => apply1(r, n, dst, a, |x| 1.0 / x.sqrt()),
                    MathFn1::Exp => apply1(r, n, dst, a, f64::exp),
                    MathFn1::Log => apply1(r, n, dst, a, f64::ln),
                    MathFn1::Sin => apply1(r, n, dst, a, f64::sin),
                    MathFn1::Cos => apply1(r, n, dst, a, f64::cos),
                    MathFn1::Tan => apply1(r, n, dst, a, f64::tan),
                    MathFn1::Fabs => apply1(r, n, dst, a, f64::abs),
                    MathFn1::Floor => apply1(r, n, dst, a, f64::floor),
                    MathFn1::Ceil => apply1(r, n, dst, a, f64::ceil),
                }
            }
            Math2 { f, dst, a, b } => {
                let r = &mut self.fregs;
                match f {
                    MathFn2::Pow => apply2(r, n, dst, a, b, f64::powf),
                    MathFn2::Fmin => apply2(r, n, dst, a, b, f64::min),
                    MathFn2::Fmax => apply2(r, n, dst, a, b, f64::max),
                    MathFn2::Fmod => apply2(r, n, dst, a, b, |x, y| x % y),
                }
            }
            IMin { dst, a, b } => apply2(&mut self.iregs, n, dst, a, b, i64::min),
            IMax { dst, a, b } => apply2(&mut self.iregs, n, dst, a, b, i64::max),
            IAbs { dst, a } => {
                apply1(&mut self.iregs, n, dst, a, |x| {
                    wrap32(x.wrapping_abs(), false)
                });
            }
            LoadF { dst, buf, idx } => {
                let el = self.elided(buf);
                let idxv = &self.iregs[idx as usize];
                let b = &bufs[bmap[buf as usize]];
                let BufferData::F32(v) = b else {
                    unreachable!("type-checked load");
                };
                let d = &mut self.fregs[dst as usize];
                if el {
                    debug_assert!(all_in_bounds(idxv, n, v.len()), "elision proof violated");
                    for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                        // SAFETY: the elision bit is set only when the
                        // interval analysis proved every access on this
                        // parameter lies in `[0, len)`.
                        *d = f64::from(unsafe { *v.get_unchecked(i as usize) });
                    }
                } else if all_in_bounds(idxv, n, v.len()) {
                    for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                        *d = f64::from(v[i as usize]);
                    }
                } else {
                    for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                        let Some(val) = usize::try_from(i).ok().and_then(|i| v.get(i)) else {
                            return Err(VmError::OutOfBounds {
                                buffer: buf as usize,
                                index: i,
                                len: v.len(),
                            });
                        };
                        *d = f64::from(*val);
                    }
                }
            }
            LoadI { dst, buf, idx } => {
                // Index and destination share the I register file; copy
                // the index lanes so the destination can borrow mutably.
                let el = self.elided(buf);
                let idxv = self.iregs[idx as usize];
                let idxv = &idxv;
                let b = &bufs[bmap[buf as usize]];
                let d = &mut self.iregs[dst as usize];
                if el {
                    debug_assert!(all_in_bounds(idxv, n, b.len()), "elision proof violated");
                    // SAFETY: see `LoadF` — statically proven in bounds.
                    unsafe {
                        match b {
                            BufferData::I32(v) => {
                                for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                                    *d = i64::from(*v.get_unchecked(i as usize));
                                }
                            }
                            BufferData::U32(v) => {
                                for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                                    *d = i64::from(*v.get_unchecked(i as usize));
                                }
                            }
                            BufferData::F32(_) => unreachable!("type-checked load"),
                        }
                    }
                } else if all_in_bounds(idxv, n, b.len()) {
                    match b {
                        BufferData::I32(v) => {
                            for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                                *d = i64::from(v[i as usize]);
                            }
                        }
                        BufferData::U32(v) => {
                            for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                                *d = i64::from(v[i as usize]);
                            }
                        }
                        BufferData::F32(_) => unreachable!("type-checked load"),
                    }
                } else {
                    for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                        let val = match b {
                            BufferData::I32(v) => usize::try_from(i)
                                .ok()
                                .and_then(|i| v.get(i))
                                .map(|&x| i64::from(x)),
                            BufferData::U32(v) => usize::try_from(i)
                                .ok()
                                .and_then(|i| v.get(i))
                                .map(|&x| i64::from(x)),
                            BufferData::F32(_) => unreachable!("type-checked load"),
                        };
                        let Some(val) = val else {
                            return Err(VmError::OutOfBounds {
                                buffer: buf as usize,
                                index: i,
                                len: b.len(),
                            });
                        };
                        *d = val;
                    }
                }
            }
            StoreF { buf, idx, src } => {
                let el = self.elided(buf);
                let idxv = &self.iregs[idx as usize];
                let srcv = &self.fregs[src as usize];
                let b = &mut bufs[bmap[buf as usize]];
                let len = b.len();
                let BufferData::F32(v) = b else {
                    unreachable!("type-checked store");
                };
                // Ascending lane order = ascending item order, so
                // same-instruction write collisions resolve exactly like
                // the scalar engine's item order.
                if el {
                    debug_assert!(all_in_bounds(idxv, n, len), "elision proof violated");
                    for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                        // SAFETY: see `LoadF` — statically proven in bounds.
                        unsafe { *v.get_unchecked_mut(i as usize) = x as f32 };
                    }
                } else if all_in_bounds(idxv, n, len) {
                    for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                        v[i as usize] = x as f32;
                    }
                } else {
                    for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                        let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i)) else {
                            return Err(VmError::OutOfBounds {
                                buffer: buf as usize,
                                index: i,
                                len,
                            });
                        };
                        *slot = x as f32;
                    }
                }
            }
            StoreI { buf, idx, src } => {
                let el = self.elided(buf);
                let idxv = &self.iregs[idx as usize];
                let srcv = &self.iregs[src as usize];
                let b = &mut bufs[bmap[buf as usize]];
                let len = b.len();
                if el {
                    debug_assert!(all_in_bounds(idxv, n, len), "elision proof violated");
                    // SAFETY: see `LoadF` — statically proven in bounds.
                    unsafe {
                        match b {
                            BufferData::I32(v) => {
                                for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                                    *v.get_unchecked_mut(i as usize) = x as i32;
                                }
                            }
                            BufferData::U32(v) => {
                                for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                                    *v.get_unchecked_mut(i as usize) = x as u32;
                                }
                            }
                            BufferData::F32(_) => unreachable!("type-checked store"),
                        }
                    }
                } else if all_in_bounds(idxv, n, len) {
                    match b {
                        BufferData::I32(v) => {
                            for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                                v[i as usize] = x as i32;
                            }
                        }
                        BufferData::U32(v) => {
                            for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                                v[i as usize] = x as u32;
                            }
                        }
                        BufferData::F32(_) => unreachable!("type-checked store"),
                    }
                } else {
                    for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                        let slot = match b {
                            BufferData::I32(v) => {
                                usize::try_from(i).ok().and_then(|i| v.get_mut(i)).map(|s| {
                                    *s = x as i32;
                                })
                            }
                            BufferData::U32(v) => {
                                usize::try_from(i).ok().and_then(|i| v.get_mut(i)).map(|s| {
                                    *s = x as u32;
                                })
                            }
                            BufferData::F32(_) => unreachable!("type-checked store"),
                        };
                        if slot.is_none() {
                            return Err(VmError::OutOfBounds {
                                buffer: buf as usize,
                                index: i,
                                len,
                            });
                        }
                    }
                }
            }
            GlobalId { dst, dim } => {
                let g = self.gid[dim as usize];
                self.iregs[dst as usize][..n].copy_from_slice(&g[..n]);
            }
            GlobalSize { dst, dim } => {
                self.iregs[dst as usize][..n].fill(gsize[dim as usize] as i64);
            }
        }
        Ok(())
    }

    /// Execute one instruction on the active lanes of `m` only: inactive
    /// lanes hold live register state of diverged lane subsets (parked at
    /// a rejoin point or scheduled on the other branch side), so their
    /// registers must not be written, their buffer accesses must not
    /// happen, and only active lanes may fault.
    fn exec_instr_masked(
        &mut self,
        ins: &Instr,
        m: ExecMask,
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        use Instr::*;
        match *ins {
            ConstI { dst, v } => {
                for l in m.lanes() {
                    self.iregs[dst as usize][l] = v;
                }
            }
            ConstF { dst, v } => {
                for l in m.lanes() {
                    self.fregs[dst as usize][l] = v;
                }
            }
            MovI { dst, src } => masked1(&mut self.iregs, m, dst, src, |x| x),
            MovF { dst, src } => masked1(&mut self.fregs, m, dst, src, |x| x),
            IBin {
                op,
                dst,
                a,
                b,
                unsigned,
            } => {
                let r = &mut self.iregs;
                match op {
                    IBinOp::Add => {
                        masked2(r, m, dst, a, b, |x, y| wrap32(x.wrapping_add(y), unsigned))
                    }
                    IBinOp::Sub => {
                        masked2(r, m, dst, a, b, |x, y| wrap32(x.wrapping_sub(y), unsigned))
                    }
                    IBinOp::Mul => {
                        masked2(r, m, dst, a, b, |x, y| wrap32(x.wrapping_mul(y), unsigned))
                    }
                    IBinOp::And => masked2(r, m, dst, a, b, |x, y| wrap32(x & y, unsigned)),
                    IBinOp::Or => masked2(r, m, dst, a, b, |x, y| wrap32(x | y, unsigned)),
                    IBinOp::Xor => masked2(r, m, dst, a, b, |x, y| wrap32(x ^ y, unsigned)),
                    IBinOp::Shl => masked2(r, m, dst, a, b, |x, y| {
                        wrap32(x.wrapping_shl((y & 31) as u32), unsigned)
                    }),
                    IBinOp::Shr => masked2(r, m, dst, a, b, |x, y| {
                        let s = (y & 31) as u32;
                        let v = if unsigned {
                            ((x as u64) >> s) as i64
                        } else {
                            (x as i32 >> s) as i64
                        };
                        wrap32(v, unsigned)
                    }),
                    IBinOp::Div | IBinOp::Rem => {
                        for l in m.lanes() {
                            let x = r[a as usize][l];
                            let y = r[b as usize][l];
                            r[dst as usize][l] = int_bin(op, x, y, unsigned)?;
                        }
                    }
                }
            }
            IBinImm {
                op,
                dst,
                a,
                imm,
                unsigned,
            } => {
                let r = &mut self.iregs;
                match op {
                    IBinOp::Add => masked1(r, m, dst, a, |x| wrap32(x.wrapping_add(imm), unsigned)),
                    IBinOp::Sub => masked1(r, m, dst, a, |x| wrap32(x.wrapping_sub(imm), unsigned)),
                    IBinOp::Mul => masked1(r, m, dst, a, |x| wrap32(x.wrapping_mul(imm), unsigned)),
                    IBinOp::And => masked1(r, m, dst, a, |x| wrap32(x & imm, unsigned)),
                    IBinOp::Or => masked1(r, m, dst, a, |x| wrap32(x | imm, unsigned)),
                    IBinOp::Xor => masked1(r, m, dst, a, |x| wrap32(x ^ imm, unsigned)),
                    IBinOp::Shl => {
                        let s = (imm & 31) as u32;
                        masked1(r, m, dst, a, |x| wrap32(x.wrapping_shl(s), unsigned));
                    }
                    IBinOp::Shr => {
                        let s = (imm & 31) as u32;
                        masked1(r, m, dst, a, |x| {
                            let v = if unsigned {
                                ((x as u64) >> s) as i64
                            } else {
                                (x as i32 >> s) as i64
                            };
                            wrap32(v, unsigned)
                        });
                    }
                    IBinOp::Div | IBinOp::Rem => {
                        for l in m.lanes() {
                            let x = r[a as usize][l];
                            r[dst as usize][l] = int_bin(op, x, imm, unsigned)?;
                        }
                    }
                }
            }
            FBin { op, dst, a, b } => {
                let r = &mut self.fregs;
                match op {
                    FBinOp::Add => masked2(r, m, dst, a, b, |x, y| x + y),
                    FBinOp::Sub => masked2(r, m, dst, a, b, |x, y| x - y),
                    FBinOp::Mul => masked2(r, m, dst, a, b, |x, y| x * y),
                    FBinOp::Div => masked2(r, m, dst, a, b, |x, y| x / y),
                }
            }
            CmpI { op, dst, a, b } => {
                let r = &mut self.iregs;
                match op {
                    CmpOp::Lt => masked2(r, m, dst, a, b, |x, y| i64::from(x < y)),
                    CmpOp::Le => masked2(r, m, dst, a, b, |x, y| i64::from(x <= y)),
                    CmpOp::Gt => masked2(r, m, dst, a, b, |x, y| i64::from(x > y)),
                    CmpOp::Ge => masked2(r, m, dst, a, b, |x, y| i64::from(x >= y)),
                    CmpOp::Eq => masked2(r, m, dst, a, b, |x, y| i64::from(x == y)),
                    CmpOp::Ne => masked2(r, m, dst, a, b, |x, y| i64::from(x != y)),
                }
            }
            CmpF { op, dst, a, b } => {
                for l in m.lanes() {
                    let x = self.fregs[a as usize][l];
                    let y = self.fregs[b as usize][l];
                    let r = match op {
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                    };
                    self.iregs[dst as usize][l] = i64::from(r);
                }
            }
            NegI { dst, a, unsigned } => {
                masked1(&mut self.iregs, m, dst, a, |x| {
                    wrap32(0i64.wrapping_sub(x), unsigned)
                });
            }
            NegF { dst, a } => masked1(&mut self.fregs, m, dst, a, |x| -x),
            NotI { dst, a } => masked1(&mut self.iregs, m, dst, a, |x| i64::from(x == 0)),
            BitNotI { dst, a, unsigned } => {
                masked1(&mut self.iregs, m, dst, a, |x| wrap32(!x, unsigned));
            }
            CastIF { dst, a } => {
                for l in m.lanes() {
                    self.fregs[dst as usize][l] = self.iregs[a as usize][l] as f64;
                }
            }
            CastFI { dst, a, unsigned } => {
                for l in m.lanes() {
                    let x = self.fregs[a as usize][l];
                    self.iregs[dst as usize][l] = if unsigned {
                        i64::from(x as u32)
                    } else {
                        i64::from(x as i32)
                    };
                }
            }
            CastII {
                dst,
                a,
                to_unsigned,
            } => masked1(&mut self.iregs, m, dst, a, |x| wrap32(x, to_unsigned)),
            Math1 { f, dst, a } => {
                let r = &mut self.fregs;
                match f {
                    MathFn1::Sqrt => masked1(r, m, dst, a, f64::sqrt),
                    MathFn1::Rsqrt => masked1(r, m, dst, a, |x| 1.0 / x.sqrt()),
                    MathFn1::Exp => masked1(r, m, dst, a, f64::exp),
                    MathFn1::Log => masked1(r, m, dst, a, f64::ln),
                    MathFn1::Sin => masked1(r, m, dst, a, f64::sin),
                    MathFn1::Cos => masked1(r, m, dst, a, f64::cos),
                    MathFn1::Tan => masked1(r, m, dst, a, f64::tan),
                    MathFn1::Fabs => masked1(r, m, dst, a, f64::abs),
                    MathFn1::Floor => masked1(r, m, dst, a, f64::floor),
                    MathFn1::Ceil => masked1(r, m, dst, a, f64::ceil),
                }
            }
            Math2 { f, dst, a, b } => {
                let r = &mut self.fregs;
                match f {
                    MathFn2::Pow => masked2(r, m, dst, a, b, f64::powf),
                    MathFn2::Fmin => masked2(r, m, dst, a, b, f64::min),
                    MathFn2::Fmax => masked2(r, m, dst, a, b, f64::max),
                    MathFn2::Fmod => masked2(r, m, dst, a, b, |x, y| x % y),
                }
            }
            IMin { dst, a, b } => masked2(&mut self.iregs, m, dst, a, b, i64::min),
            IMax { dst, a, b } => masked2(&mut self.iregs, m, dst, a, b, i64::max),
            IAbs { dst, a } => {
                masked1(&mut self.iregs, m, dst, a, |x| {
                    wrap32(x.wrapping_abs(), false)
                });
            }
            LoadF { dst, buf, idx } => {
                let el = self.elided(buf);
                let b = &bufs[bmap[buf as usize]];
                let BufferData::F32(v) = b else {
                    unreachable!("type-checked load");
                };
                if el {
                    for l in m.lanes() {
                        let i = self.iregs[idx as usize][l];
                        debug_assert!((0..v.len() as i64).contains(&i), "elision proof violated");
                        // SAFETY: the elision bit is set only when the
                        // interval analysis proved every access on this
                        // parameter in `[0, len)`.
                        self.fregs[dst as usize][l] =
                            f64::from(unsafe { *v.get_unchecked(i as usize) });
                    }
                } else {
                    for l in m.lanes() {
                        let i = self.iregs[idx as usize][l];
                        let Some(val) = usize::try_from(i).ok().and_then(|i| v.get(i)) else {
                            return Err(VmError::OutOfBounds {
                                buffer: buf as usize,
                                index: i,
                                len: v.len(),
                            });
                        };
                        self.fregs[dst as usize][l] = f64::from(*val);
                    }
                }
            }
            LoadI { dst, buf, idx } => {
                let el = self.elided(buf);
                let b = &bufs[bmap[buf as usize]];
                if el {
                    for l in m.lanes() {
                        let i = self.iregs[idx as usize][l];
                        debug_assert!((0..b.len() as i64).contains(&i), "elision proof violated");
                        // SAFETY: see `LoadF` — statically proven in bounds.
                        let val = unsafe {
                            match b {
                                BufferData::I32(v) => i64::from(*v.get_unchecked(i as usize)),
                                BufferData::U32(v) => i64::from(*v.get_unchecked(i as usize)),
                                BufferData::F32(_) => unreachable!("type-checked load"),
                            }
                        };
                        self.iregs[dst as usize][l] = val;
                    }
                    return Ok(());
                }
                for l in m.lanes() {
                    let i = self.iregs[idx as usize][l];
                    let val = match b {
                        BufferData::I32(v) => usize::try_from(i)
                            .ok()
                            .and_then(|i| v.get(i))
                            .map(|&x| i64::from(x)),
                        BufferData::U32(v) => usize::try_from(i)
                            .ok()
                            .and_then(|i| v.get(i))
                            .map(|&x| i64::from(x)),
                        BufferData::F32(_) => unreachable!("type-checked load"),
                    };
                    let Some(val) = val else {
                        return Err(VmError::OutOfBounds {
                            buffer: buf as usize,
                            index: i,
                            len: b.len(),
                        });
                    };
                    self.iregs[dst as usize][l] = val;
                }
            }
            StoreF { buf, idx, src } => {
                let el = self.elided(buf);
                let b = &mut bufs[bmap[buf as usize]];
                let len = b.len();
                let BufferData::F32(v) = b else {
                    unreachable!("type-checked store");
                };
                if el {
                    for l in m.lanes() {
                        let i = self.iregs[idx as usize][l];
                        let x = self.fregs[src as usize][l];
                        debug_assert!((0..len as i64).contains(&i), "elision proof violated");
                        // SAFETY: see `LoadF` — statically proven in bounds.
                        unsafe { *v.get_unchecked_mut(i as usize) = x as f32 };
                    }
                } else {
                    for l in m.lanes() {
                        let i = self.iregs[idx as usize][l];
                        let x = self.fregs[src as usize][l];
                        let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i)) else {
                            return Err(VmError::OutOfBounds {
                                buffer: buf as usize,
                                index: i,
                                len,
                            });
                        };
                        *slot = x as f32;
                    }
                }
            }
            StoreI { buf, idx, src } => {
                let el = self.elided(buf);
                let b = &mut bufs[bmap[buf as usize]];
                let len = b.len();
                if el {
                    for l in m.lanes() {
                        let i = self.iregs[idx as usize][l];
                        let x = self.iregs[src as usize][l];
                        debug_assert!((0..len as i64).contains(&i), "elision proof violated");
                        // SAFETY: see `LoadF` — statically proven in bounds.
                        unsafe {
                            match b {
                                BufferData::I32(v) => *v.get_unchecked_mut(i as usize) = x as i32,
                                BufferData::U32(v) => *v.get_unchecked_mut(i as usize) = x as u32,
                                BufferData::F32(_) => unreachable!("type-checked store"),
                            }
                        }
                    }
                    return Ok(());
                }
                for l in m.lanes() {
                    let i = self.iregs[idx as usize][l];
                    let x = self.iregs[src as usize][l];
                    let stored = match b {
                        BufferData::I32(v) => {
                            usize::try_from(i).ok().and_then(|i| v.get_mut(i)).map(|s| {
                                *s = x as i32;
                            })
                        }
                        BufferData::U32(v) => {
                            usize::try_from(i).ok().and_then(|i| v.get_mut(i)).map(|s| {
                                *s = x as u32;
                            })
                        }
                        BufferData::F32(_) => unreachable!("type-checked store"),
                    };
                    if stored.is_none() {
                        return Err(VmError::OutOfBounds {
                            buffer: buf as usize,
                            index: i,
                            len,
                        });
                    }
                }
            }
            GlobalId { dst, dim } => {
                for l in m.lanes() {
                    self.iregs[dst as usize][l] = self.gid[dim as usize][l];
                }
            }
            GlobalSize { dst, dim } => {
                for l in m.lanes() {
                    self.iregs[dst as usize][l] = gsize[dim as usize] as i64;
                }
            }
        }
        Ok(())
    }

    /// [`LaneEngine::exec_instr`] over a pre-decoded op: the same
    /// lane-wise kernels, reached by one flat dispatch on the [`OpCode`]
    /// with operands and immediates already extracted.
    #[inline]
    fn exec_dec(
        &mut self,
        op: &DecOp,
        n: usize,
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        let u = op.unsigned;
        let (dst, a, b) = (op.dst, op.a, op.b);
        match op.code {
            OpCode::ConstI => self.iregs[dst as usize][..n].fill(op.imm),
            OpCode::ConstF => self.fregs[dst as usize][..n].fill(op.fimm),
            OpCode::MovI => {
                let s = self.iregs[a as usize];
                self.iregs[dst as usize][..n].copy_from_slice(&s[..n]);
            }
            OpCode::MovF => {
                let s = self.fregs[a as usize];
                self.fregs[dst as usize][..n].copy_from_slice(&s[..n]);
            }
            OpCode::IAdd => apply2(&mut self.iregs, n, dst, a, b, |x, y| {
                wrap32(x.wrapping_add(y), u)
            }),
            OpCode::ISub => apply2(&mut self.iregs, n, dst, a, b, |x, y| {
                wrap32(x.wrapping_sub(y), u)
            }),
            OpCode::IMul => apply2(&mut self.iregs, n, dst, a, b, |x, y| {
                wrap32(x.wrapping_mul(y), u)
            }),
            OpCode::IDiv | OpCode::IRem => {
                let o = if op.code == OpCode::IDiv {
                    IBinOp::Div
                } else {
                    IBinOp::Rem
                };
                let x = self.iregs[a as usize];
                let y = self.iregs[b as usize];
                let d = &mut self.iregs[dst as usize];
                for ((d, &x), &y) in d[..n].iter_mut().zip(&x[..n]).zip(&y[..n]) {
                    *d = int_bin(o, x, y, u)?;
                }
            }
            OpCode::IAnd => apply2(&mut self.iregs, n, dst, a, b, |x, y| wrap32(x & y, u)),
            OpCode::IOr => apply2(&mut self.iregs, n, dst, a, b, |x, y| wrap32(x | y, u)),
            OpCode::IXor => apply2(&mut self.iregs, n, dst, a, b, |x, y| wrap32(x ^ y, u)),
            OpCode::IShl => apply2(&mut self.iregs, n, dst, a, b, |x, y| {
                wrap32(x.wrapping_shl((y & 31) as u32), u)
            }),
            OpCode::IShr => apply2(&mut self.iregs, n, dst, a, b, |x, y| {
                let s = (y & 31) as u32;
                let v = if u {
                    ((x as u64) >> s) as i64
                } else {
                    (x as i32 >> s) as i64
                };
                wrap32(v, u)
            }),
            OpCode::ImmAdd => {
                let imm = op.imm;
                apply1(&mut self.iregs, n, dst, a, |x| {
                    wrap32(x.wrapping_add(imm), u)
                });
            }
            OpCode::ImmSub => {
                let imm = op.imm;
                apply1(&mut self.iregs, n, dst, a, |x| {
                    wrap32(x.wrapping_sub(imm), u)
                });
            }
            OpCode::ImmMul => {
                let imm = op.imm;
                apply1(&mut self.iregs, n, dst, a, |x| {
                    wrap32(x.wrapping_mul(imm), u)
                });
            }
            OpCode::ImmDiv | OpCode::ImmRem => {
                let o = if op.code == OpCode::ImmDiv {
                    IBinOp::Div
                } else {
                    IBinOp::Rem
                };
                let x = self.iregs[a as usize];
                let d = &mut self.iregs[dst as usize];
                for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
                    *d = int_bin(o, x, op.imm, u)?;
                }
            }
            OpCode::ImmAnd => {
                let imm = op.imm;
                apply1(&mut self.iregs, n, dst, a, |x| wrap32(x & imm, u));
            }
            OpCode::ImmOr => {
                let imm = op.imm;
                apply1(&mut self.iregs, n, dst, a, |x| wrap32(x | imm, u));
            }
            OpCode::ImmXor => {
                let imm = op.imm;
                apply1(&mut self.iregs, n, dst, a, |x| wrap32(x ^ imm, u));
            }
            OpCode::ImmShl => {
                let s = (op.imm & 31) as u32;
                apply1(&mut self.iregs, n, dst, a, |x| wrap32(x.wrapping_shl(s), u));
            }
            OpCode::ImmShr => {
                let s = (op.imm & 31) as u32;
                apply1(&mut self.iregs, n, dst, a, |x| {
                    let v = if u {
                        ((x as u64) >> s) as i64
                    } else {
                        (x as i32 >> s) as i64
                    };
                    wrap32(v, u)
                });
            }
            OpCode::FAdd => apply2(&mut self.fregs, n, dst, a, b, |x, y| x + y),
            OpCode::FSub => apply2(&mut self.fregs, n, dst, a, b, |x, y| x - y),
            OpCode::FMul => apply2(&mut self.fregs, n, dst, a, b, |x, y| x * y),
            OpCode::FDiv => apply2(&mut self.fregs, n, dst, a, b, |x, y| x / y),
            OpCode::ICmpLt => apply2(&mut self.iregs, n, dst, a, b, |x, y| i64::from(x < y)),
            OpCode::ICmpLe => apply2(&mut self.iregs, n, dst, a, b, |x, y| i64::from(x <= y)),
            OpCode::ICmpGt => apply2(&mut self.iregs, n, dst, a, b, |x, y| i64::from(x > y)),
            OpCode::ICmpGe => apply2(&mut self.iregs, n, dst, a, b, |x, y| i64::from(x >= y)),
            OpCode::ICmpEq => apply2(&mut self.iregs, n, dst, a, b, |x, y| i64::from(x == y)),
            OpCode::ICmpNe => apply2(&mut self.iregs, n, dst, a, b, |x, y| i64::from(x != y)),
            OpCode::FCmpLt
            | OpCode::FCmpLe
            | OpCode::FCmpGt
            | OpCode::FCmpGe
            | OpCode::FCmpEq
            | OpCode::FCmpNe => {
                let x = &self.fregs[a as usize];
                let y = &self.fregs[b as usize];
                let d = &mut self.iregs[dst as usize];
                match op.code {
                    OpCode::FCmpLt => apply_cmp(d, x, y, n, |x, y| x < y),
                    OpCode::FCmpLe => apply_cmp(d, x, y, n, |x, y| x <= y),
                    OpCode::FCmpGt => apply_cmp(d, x, y, n, |x, y| x > y),
                    OpCode::FCmpGe => apply_cmp(d, x, y, n, |x, y| x >= y),
                    OpCode::FCmpEq => apply_cmp(d, x, y, n, |x, y| x == y),
                    _ => apply_cmp(d, x, y, n, |x, y| x != y),
                }
            }
            OpCode::NegI => apply1(&mut self.iregs, n, dst, a, |x| {
                wrap32(0i64.wrapping_sub(x), u)
            }),
            OpCode::NegF => apply1(&mut self.fregs, n, dst, a, |x| -x),
            OpCode::NotI => apply1(&mut self.iregs, n, dst, a, |x| i64::from(x == 0)),
            OpCode::BitNotI => apply1(&mut self.iregs, n, dst, a, |x| wrap32(!x, u)),
            OpCode::CastIF => {
                let x = &self.iregs[a as usize];
                let d = &mut self.fregs[dst as usize];
                for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
                    *d = x as f64;
                }
            }
            OpCode::CastFI => {
                let x = &self.fregs[a as usize];
                let d = &mut self.iregs[dst as usize];
                if u {
                    for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
                        *d = i64::from(x as u32);
                    }
                } else {
                    for (d, &x) in d[..n].iter_mut().zip(&x[..n]) {
                        *d = i64::from(x as i32);
                    }
                }
            }
            OpCode::CastII => apply1(&mut self.iregs, n, dst, a, |x| wrap32(x, u)),
            OpCode::Sqrt => apply1(&mut self.fregs, n, dst, a, f64::sqrt),
            OpCode::Rsqrt => apply1(&mut self.fregs, n, dst, a, |x| 1.0 / x.sqrt()),
            OpCode::Exp => apply1(&mut self.fregs, n, dst, a, f64::exp),
            OpCode::Log => apply1(&mut self.fregs, n, dst, a, f64::ln),
            OpCode::Sin => apply1(&mut self.fregs, n, dst, a, f64::sin),
            OpCode::Cos => apply1(&mut self.fregs, n, dst, a, f64::cos),
            OpCode::Tan => apply1(&mut self.fregs, n, dst, a, f64::tan),
            OpCode::Fabs => apply1(&mut self.fregs, n, dst, a, f64::abs),
            OpCode::Floor => apply1(&mut self.fregs, n, dst, a, f64::floor),
            OpCode::Ceil => apply1(&mut self.fregs, n, dst, a, f64::ceil),
            OpCode::Pow => apply2(&mut self.fregs, n, dst, a, b, f64::powf),
            OpCode::Fmin => apply2(&mut self.fregs, n, dst, a, b, f64::min),
            OpCode::Fmax => apply2(&mut self.fregs, n, dst, a, b, f64::max),
            OpCode::Fmod => apply2(&mut self.fregs, n, dst, a, b, |x, y| x % y),
            OpCode::IMin => apply2(&mut self.iregs, n, dst, a, b, i64::min),
            OpCode::IMax => apply2(&mut self.iregs, n, dst, a, b, i64::max),
            OpCode::IAbs => apply1(&mut self.iregs, n, dst, a, |x| {
                wrap32(x.wrapping_abs(), false)
            }),
            OpCode::LoadF => self.lane_load_f(dst, a, b, n, bmap, bufs)?,
            OpCode::LoadI => {
                // Index and destination share the I register file; copy
                // the index lanes so the destination can borrow mutably.
                let el = self.elided(b);
                let idxv = self.iregs[a as usize];
                let idxv = &idxv;
                let bd = &bufs[bmap[b as usize]];
                let d = &mut self.iregs[dst as usize];
                if el {
                    debug_assert!(all_in_bounds(idxv, n, bd.len()), "elision proof violated");
                    // SAFETY: the elision bit is set only when the interval
                    // analysis proved every access on this parameter in
                    // `[0, len)`.
                    unsafe {
                        match bd {
                            BufferData::I32(v) => {
                                for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                                    *d = i64::from(*v.get_unchecked(i as usize));
                                }
                            }
                            BufferData::U32(v) => {
                                for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                                    *d = i64::from(*v.get_unchecked(i as usize));
                                }
                            }
                            BufferData::F32(_) => unreachable!("type-checked load"),
                        }
                    }
                } else if all_in_bounds(idxv, n, bd.len()) {
                    match bd {
                        BufferData::I32(v) => {
                            for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                                *d = i64::from(v[i as usize]);
                            }
                        }
                        BufferData::U32(v) => {
                            for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                                *d = i64::from(v[i as usize]);
                            }
                        }
                        BufferData::F32(_) => unreachable!("type-checked load"),
                    }
                } else {
                    for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                        let val = match bd {
                            BufferData::I32(v) => usize::try_from(i)
                                .ok()
                                .and_then(|i| v.get(i))
                                .map(|&x| i64::from(x)),
                            BufferData::U32(v) => usize::try_from(i)
                                .ok()
                                .and_then(|i| v.get(i))
                                .map(|&x| i64::from(x)),
                            BufferData::F32(_) => unreachable!("type-checked load"),
                        };
                        let Some(val) = val else {
                            return Err(VmError::OutOfBounds {
                                buffer: b as usize,
                                index: i,
                                len: bd.len(),
                            });
                        };
                        *d = val;
                    }
                }
            }
            OpCode::StoreF => self.lane_store_f(dst, a, b, n, bmap, bufs)?,
            OpCode::StoreI => {
                let el = self.elided(b);
                let idxv = &self.iregs[a as usize];
                let srcv = &self.iregs[dst as usize];
                let bd = &mut bufs[bmap[b as usize]];
                let len = bd.len();
                if el {
                    debug_assert!(all_in_bounds(idxv, n, len), "elision proof violated");
                    // SAFETY: see `LoadI` above — statically proven in bounds.
                    unsafe {
                        match bd {
                            BufferData::I32(v) => {
                                for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                                    *v.get_unchecked_mut(i as usize) = x as i32;
                                }
                            }
                            BufferData::U32(v) => {
                                for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                                    *v.get_unchecked_mut(i as usize) = x as u32;
                                }
                            }
                            BufferData::F32(_) => unreachable!("type-checked store"),
                        }
                    }
                } else if all_in_bounds(idxv, n, len) {
                    match bd {
                        BufferData::I32(v) => {
                            for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                                v[i as usize] = x as i32;
                            }
                        }
                        BufferData::U32(v) => {
                            for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                                v[i as usize] = x as u32;
                            }
                        }
                        BufferData::F32(_) => unreachable!("type-checked store"),
                    }
                } else {
                    for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                        let slot = match bd {
                            BufferData::I32(v) => {
                                usize::try_from(i).ok().and_then(|i| v.get_mut(i)).map(|s| {
                                    *s = x as i32;
                                })
                            }
                            BufferData::U32(v) => {
                                usize::try_from(i).ok().and_then(|i| v.get_mut(i)).map(|s| {
                                    *s = x as u32;
                                })
                            }
                            BufferData::F32(_) => unreachable!("type-checked store"),
                        };
                        if slot.is_none() {
                            return Err(VmError::OutOfBounds {
                                buffer: b as usize,
                                index: i,
                                len,
                            });
                        }
                    }
                }
            }
            OpCode::GlobalId => {
                let g = self.gid[a as usize];
                self.iregs[dst as usize][..n].copy_from_slice(&g[..n]);
            }
            OpCode::GlobalSize => {
                self.iregs[dst as usize][..n].fill(gsize[a as usize] as i64);
            }
            // Superinstructions. Compute pairs run as two mono passes —
            // exactly the unfused execution, reached through a single
            // dispatch. Memory pairs collapse to a single loop when all
            // accesses are known in bounds, and fall back to the unfused
            // sequence otherwise so each lane faults exactly where the
            // original pair would.
            OpCode::FOp2 => self.fused_fop2(op, n),
            OpCode::IOp2 => self.fused_iop2(op, n),
            OpCode::Load2F => self.fused_load2f(op, n, bmap, bufs)?,
            OpCode::LoadFOp => self.fused_load_fop(op, n, bmap, bufs)?,
            OpCode::FOpStore => self.fused_fop_store(op, n, bmap, bufs)?,
        }
        Ok(())
    }

    /// Full-width `FOp2`: a single chain-fused pass when the second op
    /// reads the first's result and no written row aliases a first-half
    /// operand; two mono passes (the unfused execution, one dispatch)
    /// otherwise. A constant-producing half folds its immediate into
    /// the partner's loop instead of round-tripping through its row.
    #[inline(never)]
    fn fused_fop2(&mut self, op: &DecOp, n: usize) {
        let (s1, s2) = (op.sub1, op.sub2);
        if s2 == F_CONST {
            // The second half reads nothing, so there is no chain.
            apply_f(&mut self.fregs, n, op.c, op.a, op.b, s1, op.fimm);
            self.fregs[op.dst as usize][..n].fill(op.fimm);
            return;
        }
        if s1 == F_CONST {
            return self.fused_const_fop(op, n);
        }
        // Two mono passes — the unfused execution minus one dispatch.
        // A single loop carrying the intermediate in a register was
        // tried here and measured *slower* than the two passes on every
        // suite kernel (the two-output chain loop defeats the
        // vectorizer); the masked path keeps its chain loop, where
        // per-lane interleaving wins over a second pass across the
        // scattered active set.
        apply_f(&mut self.fregs, n, op.c, op.a, op.b, s1, op.fimm);
        apply_f(&mut self.fregs, n, op.dst, op.d, op.e, s2, op.fimm);
    }

    /// Full-width `FOp2` whose first half is `ConstF`: when the second
    /// op reads the constant, the immediate is folded straight into its
    /// loop (or the whole pair collapses to two row fills); two mono
    /// passes otherwise.
    #[inline(never)]
    fn fused_const_fop(&mut self, op: &DecOp, n: usize) {
        let (t, z) = (op.c as usize, op.dst as usize);
        let (p, q) = (op.d, op.e);
        let fi = op.fimm;
        if t != z && (p == op.c || q == op.c) {
            let s2 = op.sub2;
            macro_rules! cc {
                ($g:expr) => {{
                    let g = $g;
                    self.fregs[t][..n].fill(fi);
                    if p == op.c && q == op.c {
                        let v = g(fi, fi);
                        self.fregs[z][..n].fill(v);
                    } else {
                        let (swap, o) = if p == op.c {
                            (false, q as usize)
                        } else {
                            (true, p as usize)
                        };
                        if o == z {
                            for x in self.fregs[z][..n].iter_mut() {
                                *x = if swap { g(*x, fi) } else { g(fi, *x) };
                            }
                        } else {
                            let Ok([dz, ro]) = self.fregs.get_disjoint_mut([z, o]) else {
                                unreachable!("disjoint const-chain registers");
                            };
                            for l in 0..n {
                                dz[l] = if swap { g(ro[l], fi) } else { g(fi, ro[l]) };
                            }
                        }
                    }
                    return;
                }};
            }
            match s2 {
                F_ADD => cc!(|x: f64, y: f64| x + y),
                F_SUB => cc!(|x: f64, y: f64| x - y),
                F_MUL => cc!(|x: f64, y: f64| x * y),
                F_DIV => cc!(|x: f64, y: f64| x / y),
                _ => {
                    // A unary second half reads `p` only; when that is
                    // the constant, both rows become fills.
                    if p == op.c {
                        let vz = match s2 {
                            F_MOV => Some(fi),
                            5 => Some(fi.sqrt()),
                            6 => Some(1.0 / fi.sqrt()),
                            7 => Some(fi.exp()),
                            8 => Some(fi.ln()),
                            9 => Some(fi.sin()),
                            10 => Some(fi.cos()),
                            11 => Some(fi.tan()),
                            12 => Some(fi.abs()),
                            13 => Some(fi.floor()),
                            14 => Some(fi.ceil()),
                            F_NEG => Some(-fi),
                            _ => None,
                        };
                        if let Some(vz) = vz {
                            self.fregs[t][..n].fill(fi);
                            self.fregs[z][..n].fill(vz);
                            return;
                        }
                    }
                }
            }
        }
        self.fregs[t][..n].fill(fi);
        apply_f(&mut self.fregs, n, op.dst, op.d, op.e, op.sub2, fi);
    }

    /// Full-width `IOp2`.
    #[inline(never)]
    fn fused_iop2(&mut self, op: &DecOp, n: usize) {
        // Two mono passes; see `fused_fop2` for why there is no
        // full-width chain loop.
        apply_i(&mut self.iregs, n, op.c, op.a, op.b, op.sub1);
        apply_i(&mut self.iregs, n, op.dst, op.d, op.e, op.sub2);
    }

    /// Full-width `Load2F`: when both gathers are fully in bounds, one
    /// pass performs both (the destinations are distinct by fusion
    /// rule); otherwise the halves run unfused so each lane faults
    /// exactly where the original pair would.
    #[inline(never)]
    fn fused_load2f(
        &mut self,
        op: &DecOp,
        n: usize,
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        {
            let el = self.elided(op.b) && self.elided(op.e);
            let idx1 = &self.iregs[op.a as usize];
            let idx2 = &self.iregs[op.d as usize];
            let BufferData::F32(v1) = &bufs[bmap[op.b as usize]] else {
                unreachable!("type-checked load");
            };
            let BufferData::F32(v2) = &bufs[bmap[op.e as usize]] else {
                unreachable!("type-checked load");
            };
            if el {
                debug_assert!(
                    all_in_bounds(idx1, n, v1.len()) && all_in_bounds(idx2, n, v2.len()),
                    "elision proof violated"
                );
                let Ok([d1, d2]) = self
                    .fregs
                    .get_disjoint_mut([op.c as usize, op.dst as usize])
                else {
                    unreachable!("distinct fused load destinations");
                };
                for l in 0..n {
                    // SAFETY: both elision bits are set only when the
                    // interval analysis proved every access on each
                    // parameter in `[0, len)`.
                    unsafe {
                        d1[l] = f64::from(*v1.get_unchecked(idx1[l] as usize));
                        d2[l] = f64::from(*v2.get_unchecked(idx2[l] as usize));
                    }
                }
                return Ok(());
            }
            if all_in_bounds(idx1, n, v1.len()) && all_in_bounds(idx2, n, v2.len()) {
                let Ok([d1, d2]) = self
                    .fregs
                    .get_disjoint_mut([op.c as usize, op.dst as usize])
                else {
                    unreachable!("distinct fused load destinations");
                };
                for l in 0..n {
                    d1[l] = f64::from(v1[idx1[l] as usize]);
                    d2[l] = f64::from(v2[idx2[l] as usize]);
                }
                return Ok(());
            }
        }
        self.lane_load_f(op.c, op.a, op.b, n, bmap, bufs)?;
        self.lane_load_f(op.dst, op.d, op.e, n, bmap, bufs)
    }

    /// Full-width `LoadFOp`: gather + float compute in one pass when the
    /// gather is fully in bounds and the compute is a hot binop; the
    /// unfused sequence otherwise.
    #[inline(never)]
    fn fused_load_fop(
        &mut self,
        op: &DecOp,
        n: usize,
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        let (s2, fimm) = (op.sub2, op.fimm);
        let el = self.elided(op.b);
        let fused = {
            let idxv = &self.iregs[op.a as usize];
            let BufferData::F32(v) = &bufs[bmap[op.b as usize]] else {
                unreachable!("type-checked load");
            };
            if el || all_in_bounds(idxv, n, v.len()) {
                debug_assert!(all_in_bounds(idxv, n, v.len()), "elision proof violated");
                match s2 {
                    F_ADD => load_fop_fast(&mut self.fregs, idxv, v, n, op, el, |x, y| x + y),
                    F_SUB => load_fop_fast(&mut self.fregs, idxv, v, n, op, el, |x, y| x - y),
                    F_MUL => load_fop_fast(&mut self.fregs, idxv, v, n, op, el, |x, y| x * y),
                    F_DIV => load_fop_fast(&mut self.fregs, idxv, v, n, op, el, |x, y| x / y),
                    F_MOV => load_fop_fast(&mut self.fregs, idxv, v, n, op, el, |x, _| x),
                    F_NEG => load_fop_fast(&mut self.fregs, idxv, v, n, op, el, |x: f64, _| -x),
                    5 => load_fop_fast(&mut self.fregs, idxv, v, n, op, el, |x: f64, _| x.sqrt()),
                    12 => load_fop_fast(&mut self.fregs, idxv, v, n, op, el, |x: f64, _| x.abs()),
                    _ => {
                        {
                            let dx = &mut self.fregs[op.c as usize];
                            for l in 0..n {
                                dx[l] = f64::from(v[idxv[l] as usize]);
                            }
                        }
                        apply_f(&mut self.fregs, n, op.dst, op.d, op.e, s2, fimm);
                    }
                }
                true
            } else {
                false
            }
        };
        if !fused {
            self.lane_load_f(op.c, op.a, op.b, n, bmap, bufs)?;
            apply_f(&mut self.fregs, n, op.dst, op.d, op.e, s2, fimm);
        }
        Ok(())
    }

    /// Full-width `FOpStore`: compute + scatter in one pass when the
    /// scatter is fully in bounds and the compute is a hot binop;
    /// compute-then-checked-store otherwise.
    #[inline(never)]
    fn fused_fop_store(
        &mut self,
        op: &DecOp,
        n: usize,
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        let (s1, fimm) = (op.sub1, op.fimm);
        let el = self.elided(op.d);
        let fused = {
            let idxv = &self.iregs[op.c as usize];
            let bd = &mut bufs[bmap[op.d as usize]];
            let len = bd.len();
            let BufferData::F32(v) = bd else {
                unreachable!("type-checked store");
            };
            if el || all_in_bounds(idxv, n, len) {
                debug_assert!(all_in_bounds(idxv, n, len), "elision proof violated");
                match s1 {
                    F_ADD => {
                        fop_store_fast(&mut self.fregs, idxv, v, n, op, el, |x, y| x + y);
                        true
                    }
                    F_SUB => {
                        fop_store_fast(&mut self.fregs, idxv, v, n, op, el, |x, y| x - y);
                        true
                    }
                    F_MUL => {
                        fop_store_fast(&mut self.fregs, idxv, v, n, op, el, |x, y| x * y);
                        true
                    }
                    F_DIV => {
                        fop_store_fast(&mut self.fregs, idxv, v, n, op, el, |x, y| x / y);
                        true
                    }
                    F_MOV => {
                        fop_store_fast(&mut self.fregs, idxv, v, n, op, el, |x, _| x);
                        true
                    }
                    F_NEG => {
                        fop_store_fast(&mut self.fregs, idxv, v, n, op, el, |x: f64, _| -x);
                        true
                    }
                    5 => {
                        fop_store_fast(&mut self.fregs, idxv, v, n, op, el, |x: f64, _| x.sqrt());
                        true
                    }
                    12 => {
                        fop_store_fast(&mut self.fregs, idxv, v, n, op, el, |x: f64, _| x.abs());
                        true
                    }
                    F_CONST => {
                        // Constant store: fill the row, stream the value.
                        self.fregs[op.dst as usize][..n].fill(fimm);
                        let c = fimm as f32;
                        for l in 0..n {
                            v[idxv[l] as usize] = c;
                        }
                        true
                    }
                    _ => false,
                }
            } else {
                false
            }
        };
        if !fused {
            apply_f(&mut self.fregs, n, op.dst, op.a, op.b, s1, fimm);
            self.lane_store_f(op.dst, op.c, op.d, n, bmap, bufs)?;
        }
        Ok(())
    }

    /// The full-width `LoadF` kernel (`dst`, `idx` = index register,
    /// `buf` = buffer param), shared with the fused slow paths.
    #[inline]
    fn lane_load_f(
        &mut self,
        dst: u16,
        idx: u16,
        buf: u16,
        n: usize,
        bmap: &[usize],
        bufs: &[BufferData],
    ) -> Result<(), VmError> {
        let el = self.elided(buf);
        let idxv = &self.iregs[idx as usize];
        let bd = &bufs[bmap[buf as usize]];
        let BufferData::F32(v) = bd else {
            unreachable!("type-checked load");
        };
        let d = &mut self.fregs[dst as usize];
        if el {
            debug_assert!(all_in_bounds(idxv, n, v.len()), "elision proof violated");
            for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                // SAFETY: the elision bit is set only when the interval
                // analysis proved every access on this parameter in
                // `[0, len)`.
                *d = f64::from(unsafe { *v.get_unchecked(i as usize) });
            }
        } else if all_in_bounds(idxv, n, v.len()) {
            for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                *d = f64::from(v[i as usize]);
            }
        } else {
            for (d, &i) in d[..n].iter_mut().zip(&idxv[..n]) {
                let Some(val) = usize::try_from(i).ok().and_then(|i| v.get(i)) else {
                    return Err(VmError::OutOfBounds {
                        buffer: buf as usize,
                        index: i,
                        len: v.len(),
                    });
                };
                *d = f64::from(*val);
            }
        }
        Ok(())
    }

    /// The full-width `StoreF` kernel (`src` = source register, `idx` =
    /// index register, `buf` = buffer param), shared with the fused slow
    /// paths.
    #[inline]
    fn lane_store_f(
        &mut self,
        src: u16,
        idx: u16,
        buf: u16,
        n: usize,
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        let el = self.elided(buf);
        let idxv = &self.iregs[idx as usize];
        let srcv = &self.fregs[src as usize];
        let bd = &mut bufs[bmap[buf as usize]];
        let len = bd.len();
        let BufferData::F32(v) = bd else {
            unreachable!("type-checked store");
        };
        if el {
            debug_assert!(all_in_bounds(idxv, n, len), "elision proof violated");
            for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                // SAFETY: see `lane_load_f` — statically proven in bounds.
                unsafe { *v.get_unchecked_mut(i as usize) = x as f32 };
            }
        } else if all_in_bounds(idxv, n, len) {
            for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                v[i as usize] = x as f32;
            }
        } else {
            for (&i, &x) in idxv[..n].iter().zip(&srcv[..n]) {
                let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i)) else {
                    return Err(VmError::OutOfBounds {
                        buffer: buf as usize,
                        index: i,
                        len,
                    });
                };
                *slot = x as f32;
            }
        }
        Ok(())
    }

    /// [`LaneEngine::exec_instr_masked`] over a pre-decoded op: only
    /// active lanes read, write, and fault.
    fn exec_dec_masked(
        &mut self,
        op: &DecOp,
        m: ExecMask,
        gsize: [usize; 3],
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        let u = op.unsigned;
        let (dst, a, b) = (op.dst, op.a, op.b);
        match op.code {
            OpCode::ConstI => {
                for l in m.lanes() {
                    self.iregs[dst as usize][l] = op.imm;
                }
            }
            OpCode::ConstF => {
                for l in m.lanes() {
                    self.fregs[dst as usize][l] = op.fimm;
                }
            }
            OpCode::MovI => masked1(&mut self.iregs, m, dst, a, |x| x),
            OpCode::MovF => masked1(&mut self.fregs, m, dst, a, |x| x),
            OpCode::IAdd => masked2(&mut self.iregs, m, dst, a, b, |x, y| {
                wrap32(x.wrapping_add(y), u)
            }),
            OpCode::ISub => masked2(&mut self.iregs, m, dst, a, b, |x, y| {
                wrap32(x.wrapping_sub(y), u)
            }),
            OpCode::IMul => masked2(&mut self.iregs, m, dst, a, b, |x, y| {
                wrap32(x.wrapping_mul(y), u)
            }),
            OpCode::IDiv | OpCode::IRem => {
                let o = if op.code == OpCode::IDiv {
                    IBinOp::Div
                } else {
                    IBinOp::Rem
                };
                for l in m.lanes() {
                    let x = self.iregs[a as usize][l];
                    let y = self.iregs[b as usize][l];
                    self.iregs[dst as usize][l] = int_bin(o, x, y, u)?;
                }
            }
            OpCode::IAnd => masked2(&mut self.iregs, m, dst, a, b, |x, y| wrap32(x & y, u)),
            OpCode::IOr => masked2(&mut self.iregs, m, dst, a, b, |x, y| wrap32(x | y, u)),
            OpCode::IXor => masked2(&mut self.iregs, m, dst, a, b, |x, y| wrap32(x ^ y, u)),
            OpCode::IShl => masked2(&mut self.iregs, m, dst, a, b, |x, y| {
                wrap32(x.wrapping_shl((y & 31) as u32), u)
            }),
            OpCode::IShr => masked2(&mut self.iregs, m, dst, a, b, |x, y| {
                let s = (y & 31) as u32;
                let v = if u {
                    ((x as u64) >> s) as i64
                } else {
                    (x as i32 >> s) as i64
                };
                wrap32(v, u)
            }),
            OpCode::ImmAdd => {
                let imm = op.imm;
                masked1(&mut self.iregs, m, dst, a, |x| {
                    wrap32(x.wrapping_add(imm), u)
                });
            }
            OpCode::ImmSub => {
                let imm = op.imm;
                masked1(&mut self.iregs, m, dst, a, |x| {
                    wrap32(x.wrapping_sub(imm), u)
                });
            }
            OpCode::ImmMul => {
                let imm = op.imm;
                masked1(&mut self.iregs, m, dst, a, |x| {
                    wrap32(x.wrapping_mul(imm), u)
                });
            }
            OpCode::ImmDiv | OpCode::ImmRem => {
                let o = if op.code == OpCode::ImmDiv {
                    IBinOp::Div
                } else {
                    IBinOp::Rem
                };
                for l in m.lanes() {
                    let x = self.iregs[a as usize][l];
                    self.iregs[dst as usize][l] = int_bin(o, x, op.imm, u)?;
                }
            }
            OpCode::ImmAnd => {
                let imm = op.imm;
                masked1(&mut self.iregs, m, dst, a, |x| wrap32(x & imm, u));
            }
            OpCode::ImmOr => {
                let imm = op.imm;
                masked1(&mut self.iregs, m, dst, a, |x| wrap32(x | imm, u));
            }
            OpCode::ImmXor => {
                let imm = op.imm;
                masked1(&mut self.iregs, m, dst, a, |x| wrap32(x ^ imm, u));
            }
            OpCode::ImmShl => {
                let s = (op.imm & 31) as u32;
                masked1(&mut self.iregs, m, dst, a, |x| wrap32(x.wrapping_shl(s), u));
            }
            OpCode::ImmShr => {
                let s = (op.imm & 31) as u32;
                masked1(&mut self.iregs, m, dst, a, |x| {
                    let v = if u {
                        ((x as u64) >> s) as i64
                    } else {
                        (x as i32 >> s) as i64
                    };
                    wrap32(v, u)
                });
            }
            OpCode::FAdd => masked2(&mut self.fregs, m, dst, a, b, |x, y| x + y),
            OpCode::FSub => masked2(&mut self.fregs, m, dst, a, b, |x, y| x - y),
            OpCode::FMul => masked2(&mut self.fregs, m, dst, a, b, |x, y| x * y),
            OpCode::FDiv => masked2(&mut self.fregs, m, dst, a, b, |x, y| x / y),
            OpCode::ICmpLt => masked2(&mut self.iregs, m, dst, a, b, |x, y| i64::from(x < y)),
            OpCode::ICmpLe => masked2(&mut self.iregs, m, dst, a, b, |x, y| i64::from(x <= y)),
            OpCode::ICmpGt => masked2(&mut self.iregs, m, dst, a, b, |x, y| i64::from(x > y)),
            OpCode::ICmpGe => masked2(&mut self.iregs, m, dst, a, b, |x, y| i64::from(x >= y)),
            OpCode::ICmpEq => masked2(&mut self.iregs, m, dst, a, b, |x, y| i64::from(x == y)),
            OpCode::ICmpNe => masked2(&mut self.iregs, m, dst, a, b, |x, y| i64::from(x != y)),
            OpCode::FCmpLt
            | OpCode::FCmpLe
            | OpCode::FCmpGt
            | OpCode::FCmpGe
            | OpCode::FCmpEq
            | OpCode::FCmpNe => {
                for l in m.lanes() {
                    let x = self.fregs[a as usize][l];
                    let y = self.fregs[b as usize][l];
                    let r = match op.code {
                        OpCode::FCmpLt => x < y,
                        OpCode::FCmpLe => x <= y,
                        OpCode::FCmpGt => x > y,
                        OpCode::FCmpGe => x >= y,
                        OpCode::FCmpEq => x == y,
                        _ => x != y,
                    };
                    self.iregs[dst as usize][l] = i64::from(r);
                }
            }
            OpCode::NegI => masked1(&mut self.iregs, m, dst, a, |x| {
                wrap32(0i64.wrapping_sub(x), u)
            }),
            OpCode::NegF => masked1(&mut self.fregs, m, dst, a, |x| -x),
            OpCode::NotI => masked1(&mut self.iregs, m, dst, a, |x| i64::from(x == 0)),
            OpCode::BitNotI => masked1(&mut self.iregs, m, dst, a, |x| wrap32(!x, u)),
            OpCode::CastIF => {
                for l in m.lanes() {
                    self.fregs[dst as usize][l] = self.iregs[a as usize][l] as f64;
                }
            }
            OpCode::CastFI => {
                for l in m.lanes() {
                    let x = self.fregs[a as usize][l];
                    self.iregs[dst as usize][l] = if u {
                        i64::from(x as u32)
                    } else {
                        i64::from(x as i32)
                    };
                }
            }
            OpCode::CastII => masked1(&mut self.iregs, m, dst, a, |x| wrap32(x, u)),
            OpCode::Sqrt => masked1(&mut self.fregs, m, dst, a, f64::sqrt),
            OpCode::Rsqrt => masked1(&mut self.fregs, m, dst, a, |x| 1.0 / x.sqrt()),
            OpCode::Exp => masked1(&mut self.fregs, m, dst, a, f64::exp),
            OpCode::Log => masked1(&mut self.fregs, m, dst, a, f64::ln),
            OpCode::Sin => masked1(&mut self.fregs, m, dst, a, f64::sin),
            OpCode::Cos => masked1(&mut self.fregs, m, dst, a, f64::cos),
            OpCode::Tan => masked1(&mut self.fregs, m, dst, a, f64::tan),
            OpCode::Fabs => masked1(&mut self.fregs, m, dst, a, f64::abs),
            OpCode::Floor => masked1(&mut self.fregs, m, dst, a, f64::floor),
            OpCode::Ceil => masked1(&mut self.fregs, m, dst, a, f64::ceil),
            OpCode::Pow => masked2(&mut self.fregs, m, dst, a, b, f64::powf),
            OpCode::Fmin => masked2(&mut self.fregs, m, dst, a, b, f64::min),
            OpCode::Fmax => masked2(&mut self.fregs, m, dst, a, b, f64::max),
            OpCode::Fmod => masked2(&mut self.fregs, m, dst, a, b, |x, y| x % y),
            OpCode::IMin => masked2(&mut self.iregs, m, dst, a, b, i64::min),
            OpCode::IMax => masked2(&mut self.iregs, m, dst, a, b, i64::max),
            OpCode::IAbs => masked1(&mut self.iregs, m, dst, a, |x| {
                wrap32(x.wrapping_abs(), false)
            }),
            OpCode::LoadF => self.masked_load_f(dst, a, b, m, bmap, bufs)?,
            OpCode::LoadI => {
                let el = self.elided(b);
                let bd = &bufs[bmap[b as usize]];
                if el {
                    for l in m.lanes() {
                        let i = self.iregs[a as usize][l];
                        debug_assert!((0..bd.len() as i64).contains(&i), "elision proof violated");
                        // SAFETY: the elision bit is set only when the
                        // interval analysis proved every access on this
                        // parameter in `[0, len)`.
                        let val = unsafe {
                            match bd {
                                BufferData::I32(v) => i64::from(*v.get_unchecked(i as usize)),
                                BufferData::U32(v) => i64::from(*v.get_unchecked(i as usize)),
                                BufferData::F32(_) => unreachable!("type-checked load"),
                            }
                        };
                        self.iregs[dst as usize][l] = val;
                    }
                    return Ok(());
                }
                for l in m.lanes() {
                    let i = self.iregs[a as usize][l];
                    let val = match bd {
                        BufferData::I32(v) => usize::try_from(i)
                            .ok()
                            .and_then(|i| v.get(i))
                            .map(|&x| i64::from(x)),
                        BufferData::U32(v) => usize::try_from(i)
                            .ok()
                            .and_then(|i| v.get(i))
                            .map(|&x| i64::from(x)),
                        BufferData::F32(_) => unreachable!("type-checked load"),
                    };
                    let Some(val) = val else {
                        return Err(VmError::OutOfBounds {
                            buffer: b as usize,
                            index: i,
                            len: bd.len(),
                        });
                    };
                    self.iregs[dst as usize][l] = val;
                }
            }
            OpCode::StoreF => self.masked_store_f(dst, a, b, m, bmap, bufs)?,
            OpCode::StoreI => {
                let el = self.elided(b);
                let bd = &mut bufs[bmap[b as usize]];
                let len = bd.len();
                if el {
                    for l in m.lanes() {
                        let i = self.iregs[a as usize][l];
                        let x = self.iregs[dst as usize][l];
                        debug_assert!((0..len as i64).contains(&i), "elision proof violated");
                        // SAFETY: see `LoadI` above — statically proven
                        // in bounds.
                        unsafe {
                            match bd {
                                BufferData::I32(v) => *v.get_unchecked_mut(i as usize) = x as i32,
                                BufferData::U32(v) => *v.get_unchecked_mut(i as usize) = x as u32,
                                BufferData::F32(_) => unreachable!("type-checked store"),
                            }
                        }
                    }
                    return Ok(());
                }
                for l in m.lanes() {
                    let i = self.iregs[a as usize][l];
                    let x = self.iregs[dst as usize][l];
                    let stored = match bd {
                        BufferData::I32(v) => {
                            usize::try_from(i).ok().and_then(|i| v.get_mut(i)).map(|s| {
                                *s = x as i32;
                            })
                        }
                        BufferData::U32(v) => {
                            usize::try_from(i).ok().and_then(|i| v.get_mut(i)).map(|s| {
                                *s = x as u32;
                            })
                        }
                        BufferData::F32(_) => unreachable!("type-checked store"),
                    };
                    if stored.is_none() {
                        return Err(VmError::OutOfBounds {
                            buffer: b as usize,
                            index: i,
                            len,
                        });
                    }
                }
            }
            OpCode::GlobalId => {
                for l in m.lanes() {
                    self.iregs[dst as usize][l] = self.gid[a as usize][l];
                }
            }
            OpCode::GlobalSize => {
                for l in m.lanes() {
                    self.iregs[dst as usize][l] = gsize[a as usize] as i64;
                }
            }
            // Superinstructions. Compute pairs interleave per lane in a
            // single masked loop: they can't fault, and each lane reads
            // only its own elements, so running both halves back to back
            // within a lane is bit-identical to two masked passes (a
            // second-half operand naming the first's destination reads
            // the fresh value either way). `LoadFOp`/`FOpStore` also
            // interleave: the faultable half walks the active lanes in
            // the same order as the unfused pass, so the committed
            // stores and the reported fault are identical, and register
            // rows touched after an abort are unobservable. `Load2F`
            // must NOT interleave — with two faultable halves the
            // original faults on the *first* op's later lane before the
            // second op's earlier lane.
            OpCode::FOp2 => self.masked_fop2(op, m),
            OpCode::IOp2 => self.masked_iop2(op, m),
            OpCode::Load2F => {
                self.masked_load_f(op.c, op.a, op.b, m, bmap, bufs)?;
                self.masked_load_f(op.dst, op.d, op.e, m, bmap, bufs)?;
            }
            OpCode::LoadFOp => self.masked_load_fop(op, m, bmap, bufs)?,
            OpCode::FOpStore => self.masked_fop_store(op, m, bmap, bufs)?,
        }
        Ok(())
    }

    /// The masked `LoadF` kernel, shared with the fused memory pairs.
    #[inline]
    fn masked_load_f(
        &mut self,
        dst: u16,
        idx: u16,
        buf: u16,
        m: ExecMask,
        bmap: &[usize],
        bufs: &[BufferData],
    ) -> Result<(), VmError> {
        let el = self.elided(buf);
        let bd = &bufs[bmap[buf as usize]];
        let BufferData::F32(v) = bd else {
            unreachable!("type-checked load");
        };
        if el {
            for l in m.lanes() {
                let i = self.iregs[idx as usize][l];
                debug_assert!((0..v.len() as i64).contains(&i), "elision proof violated");
                // SAFETY: the elision bit is set only when the interval
                // analysis proved every access on this parameter in
                // `[0, len)`.
                self.fregs[dst as usize][l] = f64::from(unsafe { *v.get_unchecked(i as usize) });
            }
            return Ok(());
        }
        for l in m.lanes() {
            let i = self.iregs[idx as usize][l];
            let Some(val) = usize::try_from(i).ok().and_then(|i| v.get(i)) else {
                return Err(VmError::OutOfBounds {
                    buffer: buf as usize,
                    index: i,
                    len: v.len(),
                });
            };
            self.fregs[dst as usize][l] = f64::from(*val);
        }
        Ok(())
    }

    /// The masked `StoreF` kernel, shared with the fused memory pairs.
    #[inline]
    fn masked_store_f(
        &mut self,
        src: u16,
        idx: u16,
        buf: u16,
        m: ExecMask,
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        let el = self.elided(buf);
        let bd = &mut bufs[bmap[buf as usize]];
        let len = bd.len();
        let BufferData::F32(v) = bd else {
            unreachable!("type-checked store");
        };
        if el {
            for l in m.lanes() {
                let i = self.iregs[idx as usize][l];
                let x = self.fregs[src as usize][l];
                debug_assert!((0..len as i64).contains(&i), "elision proof violated");
                // SAFETY: see `masked_load_f` — statically proven in bounds.
                unsafe { *v.get_unchecked_mut(i as usize) = x as f32 };
            }
            return Ok(());
        }
        for l in m.lanes() {
            let i = self.iregs[idx as usize][l];
            let x = self.fregs[src as usize][l];
            let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i)) else {
                return Err(VmError::OutOfBounds {
                    buffer: buf as usize,
                    index: i,
                    len,
                });
            };
            *slot = x as f32;
        }
        Ok(())
    }

    /// Masked `FOp2`: one interleaved loop over the active lanes for the
    /// cheap micro-op pairs (the per-lane sequential order of
    /// [`masked_chain`] makes every aliasing shape correct, and a
    /// `ConstF` half becomes a closure ignoring its operands); two
    /// masked passes otherwise.
    fn masked_fop2(&mut self, op: &DecOp, m: ExecMask) {
        let (s1, s2) = (op.sub1, op.sub2);
        let fi = op.fimm;
        macro_rules! chain {
            ($f1:expr, $f2:expr) => {
                return masked_chain(&mut self.fregs, m, op, $f1, $f2)
            };
        }
        macro_rules! by2 {
            ($f1:expr) => {
                match s2 {
                    F_ADD => chain!($f1, |x, y| x + y),
                    F_SUB => chain!($f1, |x, y| x - y),
                    F_MUL => chain!($f1, |x, y| x * y),
                    F_DIV => chain!($f1, |x, y| x / y),
                    F_MOV => chain!($f1, |x, _| x),
                    F_NEG => chain!($f1, |x: f64, _| -x),
                    5 => chain!($f1, |x: f64, _| x.sqrt()),
                    12 => chain!($f1, |x: f64, _| x.abs()),
                    F_CONST => chain!($f1, |_, _| fi),
                    _ => {}
                }
            };
        }
        match s1 {
            F_ADD => by2!(|x, y| x + y),
            F_SUB => by2!(|x, y| x - y),
            F_MUL => by2!(|x, y| x * y),
            F_DIV => by2!(|x, y| x / y),
            F_MOV => by2!(|x, _| x),
            F_NEG => by2!(|x: f64, _| -x),
            5 => by2!(|x: f64, _| x.sqrt()),
            12 => by2!(|x: f64, _| x.abs()),
            F_CONST => by2!(|_, _| fi),
            _ => {}
        }
        masked_f(&mut self.fregs, m, op.c, op.a, op.b, s1, fi);
        masked_f(&mut self.fregs, m, op.dst, op.d, op.e, s2, fi);
    }

    /// Masked `IOp2`: one interleaved loop over the active lanes.
    fn masked_iop2(&mut self, op: &DecOp, m: ExecMask) {
        let u1 = op.sub1 & I_UNSIGNED != 0;
        let u2 = op.sub2 & I_UNSIGNED != 0;
        macro_rules! chain {
            ($f1:expr, $f2:expr) => {
                masked_chain(&mut self.iregs, m, op, $f1, $f2)
            };
        }
        match (op.sub1 & !I_UNSIGNED, op.sub2 & !I_UNSIGNED) {
            (0, 0) => chain!(|x: i64, y| wrap32(x.wrapping_add(y), u1), |x: i64, y| {
                wrap32(x.wrapping_add(y), u2)
            }),
            (0, 1) => chain!(|x: i64, y| wrap32(x.wrapping_add(y), u1), |x: i64, y| {
                wrap32(x.wrapping_sub(y), u2)
            }),
            (0, _) => chain!(|x: i64, y| wrap32(x.wrapping_add(y), u1), |x: i64, y| {
                wrap32(x.wrapping_mul(y), u2)
            }),
            (1, 0) => chain!(|x: i64, y| wrap32(x.wrapping_sub(y), u1), |x: i64, y| {
                wrap32(x.wrapping_add(y), u2)
            }),
            (1, 1) => chain!(|x: i64, y| wrap32(x.wrapping_sub(y), u1), |x: i64, y| {
                wrap32(x.wrapping_sub(y), u2)
            }),
            (1, _) => chain!(|x: i64, y| wrap32(x.wrapping_sub(y), u1), |x: i64, y| {
                wrap32(x.wrapping_mul(y), u2)
            }),
            (_, 0) => chain!(|x: i64, y| wrap32(x.wrapping_mul(y), u1), |x: i64, y| {
                wrap32(x.wrapping_add(y), u2)
            }),
            (_, 1) => chain!(|x: i64, y| wrap32(x.wrapping_mul(y), u1), |x: i64, y| {
                wrap32(x.wrapping_sub(y), u2)
            }),
            (_, _) => chain!(|x: i64, y| wrap32(x.wrapping_mul(y), u1), |x: i64, y| {
                wrap32(x.wrapping_mul(y), u2)
            }),
        }
    }

    /// Masked `LoadFOp`: gather + compute interleaved over the active
    /// lanes for the hot binops (the gather faults in the same per-lane
    /// order as the unfused pass); two masked passes otherwise.
    fn masked_load_fop(
        &mut self,
        op: &DecOp,
        m: ExecMask,
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        let (s2, fimm) = (op.sub2, op.fimm);
        macro_rules! go {
            ($f2:expr) => {{
                let el = self.elided(op.b);
                let (x, z) = (op.c as usize, op.dst as usize);
                let (p, q) = (op.d as usize, op.e as usize);
                let BufferData::F32(v) = &bufs[bmap[op.b as usize]] else {
                    unreachable!("type-checked load");
                };
                for l in m.lanes() {
                    let i = self.iregs[op.a as usize][l];
                    let loaded = if el {
                        debug_assert!((0..v.len() as i64).contains(&i), "elision proof violated");
                        // SAFETY: the elision bit is set only when the
                        // interval analysis proved every access on this
                        // parameter in `[0, len)`.
                        f64::from(unsafe { *v.get_unchecked(i as usize) })
                    } else {
                        let Some(val) = usize::try_from(i).ok().and_then(|i| v.get(i)) else {
                            return Err(VmError::OutOfBounds {
                                buffer: op.b as usize,
                                index: i,
                                len: v.len(),
                            });
                        };
                        f64::from(*val)
                    };
                    self.fregs[x][l] = loaded;
                    let pv = self.fregs[p][l];
                    let qv = self.fregs[q][l];
                    self.fregs[z][l] = $f2(pv, qv);
                }
                return Ok(());
            }};
        }
        match s2 {
            F_ADD => go!(|x, y| x + y),
            F_SUB => go!(|x, y| x - y),
            F_MUL => go!(|x, y| x * y),
            F_DIV => go!(|x, y| x / y),
            F_MOV => go!(|x, _| x),
            F_NEG => go!(|x: f64, _| -x),
            5 => go!(|x: f64, _| x.sqrt()),
            12 => go!(|x: f64, _| x.abs()),
            _ => {}
        }
        self.masked_load_f(op.c, op.a, op.b, m, bmap, bufs)?;
        masked_f(&mut self.fregs, m, op.dst, op.d, op.e, s2, fimm);
        Ok(())
    }

    /// Masked `FOpStore`: compute + scatter interleaved over the active
    /// lanes for the hot binops (stores commit and fault in the same
    /// per-lane order as the unfused pass); two masked passes otherwise.
    fn masked_fop_store(
        &mut self,
        op: &DecOp,
        m: ExecMask,
        bmap: &[usize],
        bufs: &mut [BufferData],
    ) -> Result<(), VmError> {
        let (s1, fimm) = (op.sub1, op.fimm);
        macro_rules! go {
            ($f1:expr) => {{
                let el = self.elided(op.d);
                let (a, b, z) = (op.a as usize, op.b as usize, op.dst as usize);
                let bd = &mut bufs[bmap[op.d as usize]];
                let len = bd.len();
                let BufferData::F32(v) = bd else {
                    unreachable!("type-checked store");
                };
                for l in m.lanes() {
                    let t = $f1(self.fregs[a][l], self.fregs[b][l]);
                    self.fregs[z][l] = t;
                    let i = self.iregs[op.c as usize][l];
                    if el {
                        debug_assert!((0..len as i64).contains(&i), "elision proof violated");
                        // SAFETY: see `masked_load_fop` — statically
                        // proven in bounds.
                        unsafe { *v.get_unchecked_mut(i as usize) = t as f32 };
                        continue;
                    }
                    let Some(slot) = usize::try_from(i).ok().and_then(|i| v.get_mut(i)) else {
                        return Err(VmError::OutOfBounds {
                            buffer: op.d as usize,
                            index: i,
                            len,
                        });
                    };
                    *slot = t as f32;
                }
                return Ok(());
            }};
        }
        match s1 {
            F_ADD => go!(|x, y| x + y),
            F_SUB => go!(|x, y| x - y),
            F_MUL => go!(|x, y| x * y),
            F_DIV => go!(|x, y| x / y),
            F_MOV => go!(|x, _| x),
            F_NEG => go!(|x: f64, _| -x),
            5 => go!(|x: f64, _| x.sqrt()),
            12 => go!(|x: f64, _| x.abs()),
            F_CONST => go!(|_, _| fimm),
            _ => {}
        }
        masked_f(&mut self.fregs, m, op.dst, op.a, op.b, s1, fimm);
        self.masked_store_f(op.dst, op.c, op.d, m, bmap, bufs)
    }
}
