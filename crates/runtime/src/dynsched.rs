//! A dynamic chunked self-scheduler — the StarPU/OmpSs-style baseline the
//! paper's related work compares against.
//!
//! Instead of predicting one static partitioning up front, the dynamic
//! scheduler splits the NDRange into fixed-size chunks and greedily feeds
//! each chunk to the device that would finish it earliest given the work
//! already queued on it (earliest-finish-time list scheduling, the
//! classic heterogeneous dynamic strategy). Every chunk pays its own
//! transfer and launch costs — the price of being adaptive without a
//! model, which is exactly the trade-off the paper's offline-trained
//! predictor avoids.

use hetpart_inspire::vm::BufferData;
use hetpart_inspire::VmError;
use hetpart_oclsim::model::estimate_time;
use serde::{Deserialize, Serialize};

use crate::exec::{
    coalesced_fraction, scalar_values, transfer_bytes, workload_shape, Executor, Launch,
};
use crate::profile::LaunchProfile;

/// Configuration of the dynamic baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynSchedConfig {
    /// Number of chunks the NDRange is split into (each is scheduled
    /// independently). StarPU-style runtimes typically use tens of tasks.
    pub num_chunks: usize,
}

impl Default for DynSchedConfig {
    fn default() -> Self {
        Self { num_chunks: 16 }
    }
}

/// Result of a dynamically scheduled launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynSchedReport {
    /// Simulated makespan in seconds.
    pub time: f64,
    /// Chunks executed per device.
    pub chunks_per_device: Vec<usize>,
    /// Busy time per device.
    pub busy_per_device: Vec<f64>,
}

impl DynSchedReport {
    /// Fraction of work (by chunk count) each device received.
    pub fn share(&self, device: usize) -> f64 {
        let total: usize = self.chunks_per_device.iter().sum();
        self.chunks_per_device[device] as f64 / total.max(1) as f64
    }
}

/// Simulate a dynamically scheduled launch: greedy earliest-finish-time
/// assignment of equal chunks, each paying its own transfers and launch
/// overhead.
pub fn dynamic_schedule(
    executor: &Executor,
    launch: &Launch,
    bufs: &[BufferData],
    cfg: DynSchedConfig,
) -> Result<DynSchedReport, VmError> {
    let profile = LaunchProfile::collect(
        launch.kernel,
        &launch.nd,
        &launch.args,
        bufs,
        crate::sweep::SWEEP_PROFILE_SAMPLES.max(executor.sample_items),
    )?;
    dynamic_schedule_with_profile(executor, launch, bufs, cfg, &profile)
}

/// As [`dynamic_schedule`], reusing a pre-collected profile.
pub fn dynamic_schedule_with_profile(
    executor: &Executor,
    launch: &Launch,
    bufs: &[BufferData],
    cfg: DynSchedConfig,
    profile: &LaunchProfile,
) -> Result<DynSchedReport, VmError> {
    let kernel = launch.kernel;
    let nd = &launch.nd;
    let extent = nd.split_extent();
    let n_chunks = cfg.num_chunks.clamp(1, extent);
    let n_dev = executor.machine.num_devices();
    let coalesced = coalesced_fraction(kernel);
    let scalars = scalar_values(kernel, &launch.args);

    let mut ready = vec![0.0f64; n_dev];
    let mut busy = vec![0.0f64; n_dev];
    let mut chunks_per_device = vec![0usize; n_dev];

    for c in 0..n_chunks {
        let start = extent * c / n_chunks;
        let end = extent * (c + 1) / n_chunks;
        if start == end {
            continue;
        }
        let (bytes_in, bytes_out) =
            transfer_bytes(kernel, nd, start..end, &scalars, &launch.args, bufs);
        let (counts, divergence) = profile.estimate(start..end);
        let shape = workload_shape(&counts, bytes_in, bytes_out, divergence, coalesced);

        // Earliest finish time over all devices.
        let (best_dev, best_finish, best_cost) = executor
            .machine
            .device_ids()
            .map(|d| {
                let t = estimate_time(executor.machine.device(d), &shape).total;
                (d.0, ready[d.0] + t, t)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("machine has devices");
        ready[best_dev] = best_finish;
        busy[best_dev] += best_cost;
        chunks_per_device[best_dev] += 1;
    }

    let makespan = ready.iter().copied().fold(0.0, f64::max);
    // Multi-device coordination overhead, as in the static executor.
    let coordination = if chunks_per_device.iter().filter(|&&c| c > 0).count() > 1 {
        executor.machine.multi_device_overhead_us * 1e-6
    } else {
        0.0
    };
    Ok(DynSchedReport {
        time: makespan + coordination,
        chunks_per_device,
        busy_per_device: busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_partitions;
    use hetpart_inspire::compile;
    use hetpart_inspire::ir::NdRange;
    use hetpart_inspire::vm::ArgValue;
    use hetpart_oclsim::machines;

    const HEAVY: &str = "kernel void h(global const float* a, global float* o, int n) {
        int i = get_global_id(0);
        float s = a[i];
        for (int j = 0; j < 300; j++) { s = s * 1.0001 + sin(s) * 0.001; }
        o[i] = s;
    }";

    fn setup(n: usize) -> (Vec<BufferData>, Vec<ArgValue>) {
        (
            vec![BufferData::F32(vec![1.0; n]), BufferData::F32(vec![0.0; n])],
            vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Int(n as i32),
            ],
        )
    }

    #[test]
    fn schedules_all_chunks_somewhere() {
        let k = compile(HEAVY).unwrap();
        let (bufs, args) = setup(1 << 14);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(1 << 14), args);
        let r = dynamic_schedule(&ex, &launch, &bufs, DynSchedConfig { num_chunks: 16 }).unwrap();
        assert_eq!(r.chunks_per_device.iter().sum::<usize>(), 16);
        assert!(r.time > 0.0);
        let busy_max = r.busy_per_device.iter().copied().fold(0.0f64, f64::max);
        assert!(r.time >= busy_max);
    }

    #[test]
    fn large_compute_bound_work_spreads_across_devices() {
        let k = compile(HEAVY).unwrap();
        let n = 1 << 15;
        let (bufs, args) = setup(n);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(n), args);
        let r = dynamic_schedule(&ex, &launch, &bufs, DynSchedConfig::default()).unwrap();
        let active = r.chunks_per_device.iter().filter(|&&c| c > 0).count();
        assert!(
            active >= 2,
            "dynamic scheduling should use several devices: {r:?}"
        );
    }

    #[test]
    fn oracle_static_partitioning_beats_dynamic_on_uniform_work() {
        // The paper's premise vs dynamic runtimes: per-chunk transfer and
        // launch overheads make the adaptive baseline pay for what the
        // trained model gets for free.
        let k = compile(HEAVY).unwrap();
        let n = 1 << 14;
        let (bufs, args) = setup(n);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(n), args.clone());
        let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        let dynamic = dynamic_schedule(&ex, &launch, &bufs, DynSchedConfig::default()).unwrap();
        assert!(
            sweep.best().time <= dynamic.time * 1.001,
            "oracle static {:.6} must not lose to dynamic {:.6}",
            sweep.best().time,
            dynamic.time
        );
    }

    #[test]
    fn single_chunk_config_degenerates_to_best_single_device() {
        let k = compile(HEAVY).unwrap();
        let n = 4096;
        let (bufs, args) = setup(n);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(n), args);
        let r = dynamic_schedule(&ex, &launch, &bufs, DynSchedConfig { num_chunks: 1 }).unwrap();
        assert_eq!(r.chunks_per_device.iter().sum::<usize>(), 1);
        // One chunk, one device: time equals that device's single estimate,
        // and it is the minimum over devices. Compare against the sweep's
        // single-device entries.
        let sweep = sweep_partitions(&ex, &launch, &bufs, 10).unwrap();
        let best_single = sweep
            .entries
            .iter()
            .filter(|e| e.partition.is_single_device())
            .map(|e| e.time)
            .fold(f64::INFINITY, f64::min);
        assert!((r.time - best_single).abs() <= best_single * 0.05 + 1e-9);
    }
}
