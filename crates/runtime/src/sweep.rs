//! Exhaustive partition-space measurement — the training-phase oracle.
//!
//! During the paper's training phase every program is "executed with
//! various problem sizes and the available task partitionings" and the
//! best partitioning per (program, size) becomes the training label. This
//! module runs that sweep on the simulated machine, in parallel across
//! partitionings with rayon.

use hetpart_inspire::vm::BufferData;
use hetpart_inspire::VmError;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::exec::{Executor, Launch};
use crate::partition::Partition;
use crate::profile::LaunchProfile;

/// Samples collected per launch profile during a sweep.
pub const SWEEP_PROFILE_SAMPLES: usize = 256;

/// One measured partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepEntry {
    pub partition: Partition,
    /// Simulated launch time in seconds.
    pub time: f64,
}

/// All partitionings of one launch, measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSweep {
    pub entries: Vec<SweepEntry>,
}

impl PartitionSweep {
    /// The oracle-best entry (minimum time).
    ///
    /// # Panics
    /// Panics if the sweep is empty.
    pub fn best(&self) -> &SweepEntry {
        self.entries
            .iter()
            .min_by(|a, b| a.time.total_cmp(&b.time))
            .expect("sweep must not be empty")
    }

    /// Time of a specific partitioning, if it was measured.
    pub fn time_of(&self, p: &Partition) -> Option<f64> {
        self.entries.iter().find(|e| &e.partition == p).map(|e| e.time)
    }

    /// Time of the CPU-only default strategy.
    pub fn cpu_only_time(&self) -> f64 {
        let n = self.entries[0].partition.num_devices();
        self.time_of(&Partition::cpu_only(n)).expect("cpu-only is always in the space")
    }

    /// Time of the GPU-only default strategy (first accelerator).
    pub fn gpu_only_time(&self) -> f64 {
        let n = self.entries[0].partition.num_devices();
        self.time_of(&Partition::gpu_only(n)).expect("gpu-only is always in the space")
    }

    /// Rank of a partitioning within the sweep (0 = best).
    pub fn rank_of(&self, p: &Partition) -> Option<usize> {
        let t = self.time_of(p)?;
        Some(self.entries.iter().filter(|e| e.time < t).count())
    }
}

/// Measure every partitioning of the space at `step_tenths` granularity
/// (1 = the paper's 10% steps) for one launch.
///
/// Uses [`Executor::simulate`], so `bufs` is never modified; the sweep
/// parallelizes over partitionings.
pub fn sweep_partitions(
    executor: &Executor,
    launch: &Launch,
    bufs: &[BufferData],
    step_tenths: u8,
) -> Result<PartitionSweep, VmError> {
    // One sampled profile per launch; every partitioning is then priced
    // from it without re-executing the kernel.
    let profile = LaunchProfile::collect(
        launch.kernel,
        &launch.nd,
        &launch.args,
        bufs,
        SWEEP_PROFILE_SAMPLES.max(executor.sample_items),
    )?;
    let space = Partition::enumerate(executor.machine.num_devices(), step_tenths);
    let entries: Vec<SweepEntry> = space
        .into_par_iter()
        .map(|partition| {
            let report = executor.simulate_with_profile(launch, bufs, &partition, &profile);
            SweepEntry { partition, time: report.time }
        })
        .collect();
    Ok(PartitionSweep { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpart_inspire::compile;
    use hetpart_inspire::ir::NdRange;
    use hetpart_inspire::vm::ArgValue;
    use hetpart_oclsim::machines;

    const STREAM: &str = "kernel void s(global const float* a, global float* o, int n) {
        int i = get_global_id(0);
        if (i < n) { o[i] = a[i] * 2.0 + 1.0; }
    }";

    const HEAVY: &str = "kernel void h(global const float* a, global float* o, int n) {
        int i = get_global_id(0);
        float s = a[i];
        for (int j = 0; j < 400; j++) { s = s * 1.0001 + sin(s) * 0.001; }
        o[i] = s;
    }";

    fn setup(n: usize) -> (Vec<BufferData>, Vec<ArgValue>) {
        (
            vec![BufferData::F32(vec![1.5; n]), BufferData::F32(vec![0.0; n])],
            vec![ArgValue::Buffer(0), ArgValue::Buffer(1), ArgValue::Int(n as i32)],
        )
    }

    #[test]
    fn sweep_covers_the_full_space() {
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(256);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(256), args);
        let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        assert_eq!(sweep.entries.len(), 66);
        assert!(sweep.entries.iter().all(|e| e.time.is_finite() && e.time > 0.0));
    }

    #[test]
    fn best_is_minimum_and_defaults_are_present() {
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(1024);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(1024), args);
        let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        let best = sweep.best();
        assert!(best.time <= sweep.cpu_only_time());
        assert!(best.time <= sweep.gpu_only_time());
        assert_eq!(sweep.rank_of(&best.partition.clone()), Some(0));
    }

    #[test]
    fn tiny_streaming_launch_prefers_cpu_only() {
        // Small problem + streaming kernel: transfers and launch overheads
        // make accelerator shares useless on both machines.
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(128);
        for m in [machines::mc1(), machines::mc2()] {
            let ex = Executor::new(m);
            let launch = Launch::new(&k, NdRange::d1(128), args.clone());
            let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
            assert_eq!(
                sweep.best().partition,
                Partition::cpu_only(3),
                "machine {} picked {}",
                ex.machine.name,
                sweep.best().partition
            );
        }
    }

    #[test]
    fn large_compute_bound_launch_uses_accelerators_on_mc2() {
        let k = compile(HEAVY).unwrap();
        let n = 1 << 15;
        let (bufs, args) = setup(n);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(n), args);
        let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        let best = &sweep.best().partition;
        let gpu_share = best.fraction(1) + best.fraction(2);
        assert!(
            gpu_share > 0.5,
            "large compute-bound work should mostly go to the GTX 480s, got {best}"
        );
    }

    #[test]
    fn best_partition_depends_on_problem_size() {
        // The paper's central observation: the optimum moves as the
        // problem grows.
        let k = compile(HEAVY).unwrap();
        let ex = Executor::new(machines::mc2());
        let mut bests = Vec::new();
        for n in [64usize, 1 << 14] {
            let (bufs, args) = setup(n);
            let launch = Launch::new(&k, NdRange::d1(n), args);
            let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
            bests.push(sweep.best().partition.clone());
        }
        assert_ne!(bests[0], bests[1], "optimal partitioning must change with size");
    }

    #[test]
    fn coarser_steps_are_a_subset_space() {
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(512);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(512), args);
        let fine = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        let coarse = sweep_partitions(&ex, &launch, &bufs, 5).unwrap();
        assert_eq!(coarse.entries.len(), 6);
        // The coarse best can never beat the fine best.
        assert!(coarse.best().time >= fine.best().time - 1e-12);
    }
}
