//! Exhaustive partition-space measurement — the training-phase oracle.
//!
//! During the paper's training phase every program is "executed with
//! various problem sizes and the available task partitionings" and the
//! best partitioning per (program, size) becomes the training label. This
//! module runs that sweep on the simulated machine.
//!
//! The workhorse is [`sweep_many`]: it takes a whole batch of launches
//! (the entire training suite, in production) and prices every
//! (launch × partitioning) pair in one rayon-parallel pass. Per launch it
//! builds an **access-analysis cache** — the interval analysis is
//! evaluated once per distinct chunk boundary pair instead of once per
//! partitioning — and every launch of the batch reuses its caller's
//! compiled kernel, so a benchmark swept at many problem sizes is
//! compiled exactly once. [`sweep_partitions`] is the single-launch
//! convenience wrapper over the same engine, which is what guarantees
//! that batched and sequential sweeps agree bit-for-bit.

use std::collections::HashMap;

use hetpart_inspire::vm::BufferData;
use hetpart_inspire::VmError;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::exec::{scalar_values, transfer_bytes, Executor, Launch};
use crate::partition::Partition;
use crate::profile::LaunchProfile;

/// Samples collected per launch profile during a sweep.
pub const SWEEP_PROFILE_SAMPLES: usize = 256;

/// One measured partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepEntry {
    pub partition: Partition,
    /// Simulated launch time in seconds.
    pub time: f64,
}

/// All partitionings of one launch, measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSweep {
    pub entries: Vec<SweepEntry>,
}

impl PartitionSweep {
    /// The oracle-best entry (minimum time).
    ///
    /// # Panics
    /// Panics if the sweep is empty.
    pub fn best(&self) -> &SweepEntry {
        self.entries
            .iter()
            .min_by(|a, b| a.time.total_cmp(&b.time))
            .expect("sweep must not be empty")
    }

    /// Time of a specific partitioning, if it was measured.
    pub fn time_of(&self, p: &Partition) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| &e.partition == p)
            .map(|e| e.time)
    }

    /// Time of the CPU-only default strategy.
    pub fn cpu_only_time(&self) -> f64 {
        let n = self.entries[0].partition.num_devices();
        self.time_of(&Partition::cpu_only(n))
            .expect("cpu-only is always in the space")
    }

    /// Time of the GPU-only default strategy (first accelerator).
    pub fn gpu_only_time(&self) -> f64 {
        let n = self.entries[0].partition.num_devices();
        self.time_of(&Partition::gpu_only(n))
            .expect("gpu-only is always in the space")
    }

    /// Rank of a partitioning within the sweep (0 = best).
    pub fn rank_of(&self, p: &Partition) -> Option<usize> {
        let t = self.time_of(p)?;
        Some(self.entries.iter().filter(|e| e.time < t).count())
    }
}

/// One launch of a [`sweep_many`] batch. The kernel lives inside
/// `launch`, so callers sweeping one kernel at many problem sizes (the
/// training phase) compile it once and share the `CompiledKernel` across
/// jobs.
#[derive(Debug, Clone, Copy)]
pub struct SweepJob<'a> {
    pub launch: &'a Launch<'a>,
    /// Host buffers of the launch; never modified (pricing samples run on
    /// scratch copies).
    pub bufs: &'a [BufferData],
    /// Partition-space granularity in tenths (1 = the paper's 10% steps).
    pub step_tenths: u8,
}

/// Per-launch pricing context built once per job: the sampled execution
/// profile plus the access-analysis cache — transfer sizes for every
/// distinct chunk the partition space can produce.
struct PricingCtx {
    profile: LaunchProfile,
    /// `(chunk.start, chunk.end)` → `(bytes_in, bytes_out)`.
    transfers: HashMap<(usize, usize), (u64, u64)>,
}

impl PricingCtx {
    fn build(
        executor: &Executor,
        job: &SweepJob<'_>,
        space: &[Partition],
    ) -> Result<Self, VmError> {
        let launch = job.launch;
        // One sampled profile per launch; every partitioning is then
        // priced from it without re-executing the kernel.
        let profile = LaunchProfile::collect(
            launch.kernel,
            &launch.nd,
            &launch.args,
            job.bufs,
            SWEEP_PROFILE_SAMPLES.max(executor.sample_items),
        )?;

        // Access-analysis cache: the interval analysis runs once per
        // distinct chunk of the space instead of once per (partition,
        // device). Keys come from the same `Partition::chunks` call that
        // pricing uses, so every lookup is guaranteed to hit; chunks
        // repeat heavily across partitions (cumulative boundaries only
        // take `TENTHS/step + 1` values), which is what makes this a
        // cache rather than a re-spelling.
        let kernel = launch.kernel;
        let scalars = scalar_values(kernel, &launch.args);
        let extent = launch.nd.split_extent();
        let mut transfers = HashMap::new();
        for partition in space {
            for chunk in partition.chunks(extent) {
                if !chunk.is_empty() {
                    transfers
                        .entry((chunk.start, chunk.end))
                        .or_insert_with(|| {
                            transfer_bytes(
                                kernel,
                                &launch.nd,
                                chunk.clone(),
                                &scalars,
                                &launch.args,
                                job.bufs,
                            )
                        });
                }
            }
        }
        Ok(Self { profile, transfers })
    }
}

/// Sweep a whole batch of launches — the production shape of the training
/// oracle. Builds each job's pricing context (profile + access-analysis
/// cache) in parallel across jobs, then prices every (launch ×
/// partitioning) pair in one flat rayon pass, so a handful of huge
/// launches cannot serialize behind each other the way per-launch
/// parallelism would.
///
/// Returns one [`PartitionSweep`] per job, in job order, bit-identical to
/// calling [`sweep_partitions`] once per job.
pub fn sweep_many(
    executor: &Executor,
    jobs: &[SweepJob<'_>],
) -> Result<Vec<PartitionSweep>, VmError> {
    let num_devices = executor.machine.num_devices();

    // Partition spaces, shared across all jobs with the same granularity.
    let mut spaces: HashMap<u8, Vec<Partition>> = HashMap::new();
    for job in jobs {
        spaces
            .entry(job.step_tenths)
            .or_insert_with(|| Partition::enumerate(num_devices, job.step_tenths));
    }

    // Phase A: per-job pricing contexts (kernel sampling dominates).
    let ctxs: Vec<PricingCtx> = jobs
        .par_iter()
        .map(|job| PricingCtx::build(executor, job, &spaces[&job.step_tenths]))
        .collect::<Vec<Result<_, _>>>()
        .into_iter()
        .collect::<Result<_, _>>()?;

    // Phase B: flatten to (job, partition) pairs and price them all in
    // one parallel pass.
    let mut pairs = Vec::new();
    for (ji, job) in jobs.iter().enumerate() {
        for pi in 0..spaces[&job.step_tenths].len() {
            pairs.push((ji, pi));
        }
    }
    let entries: Vec<SweepEntry> = pairs
        .into_par_iter()
        .map(|(ji, pi)| {
            let job = &jobs[ji];
            let ctx = &ctxs[ji];
            let partition = &spaces[&job.step_tenths][pi];
            let report =
                executor.price_with_profile(job.launch, partition, &ctx.profile, |chunk| {
                    ctx.transfers[&(chunk.start, chunk.end)]
                });
            SweepEntry {
                partition: partition.clone(),
                time: report.time,
            }
        })
        .collect();

    // Regroup the flat entry list back into one sweep per job.
    let mut sweeps = Vec::with_capacity(jobs.len());
    let mut offset = 0;
    for job in jobs {
        let len = spaces[&job.step_tenths].len();
        sweeps.push(PartitionSweep {
            entries: entries[offset..offset + len].to_vec(),
        });
        offset += len;
    }
    Ok(sweeps)
}

/// Measure every partitioning of the space at `step_tenths` granularity
/// (1 = the paper's 10% steps) for one launch.
///
/// Buffers are never modified. This is [`sweep_many`] with a single job;
/// training-scale callers should batch launches instead.
pub fn sweep_partitions(
    executor: &Executor,
    launch: &Launch,
    bufs: &[BufferData],
    step_tenths: u8,
) -> Result<PartitionSweep, VmError> {
    let mut sweeps = sweep_many(
        executor,
        &[SweepJob {
            launch,
            bufs,
            step_tenths,
        }],
    )?;
    Ok(sweeps.pop().expect("one job in, one sweep out"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpart_inspire::compile;
    use hetpart_inspire::ir::NdRange;
    use hetpart_inspire::vm::ArgValue;
    use hetpart_oclsim::machines;

    const STREAM: &str = "kernel void s(global const float* a, global float* o, int n) {
        int i = get_global_id(0);
        if (i < n) { o[i] = a[i] * 2.0 + 1.0; }
    }";

    const HEAVY: &str = "kernel void h(global const float* a, global float* o, int n) {
        int i = get_global_id(0);
        float s = a[i];
        for (int j = 0; j < 400; j++) { s = s * 1.0001 + sin(s) * 0.001; }
        o[i] = s;
    }";

    fn setup(n: usize) -> (Vec<BufferData>, Vec<ArgValue>) {
        (
            vec![BufferData::F32(vec![1.5; n]), BufferData::F32(vec![0.0; n])],
            vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Int(n as i32),
            ],
        )
    }

    #[test]
    fn sweep_covers_the_full_space() {
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(256);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(256), args);
        let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        assert_eq!(sweep.entries.len(), 66);
        assert!(sweep
            .entries
            .iter()
            .all(|e| e.time.is_finite() && e.time > 0.0));
    }

    #[test]
    fn best_is_minimum_and_defaults_are_present() {
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(1024);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(1024), args);
        let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        let best = sweep.best();
        assert!(best.time <= sweep.cpu_only_time());
        assert!(best.time <= sweep.gpu_only_time());
        assert_eq!(sweep.rank_of(&best.partition.clone()), Some(0));
    }

    #[test]
    fn tiny_streaming_launch_prefers_cpu_only() {
        // Small problem + streaming kernel: transfers and launch overheads
        // make accelerator shares useless on both machines.
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(128);
        for m in [machines::mc1(), machines::mc2()] {
            let ex = Executor::new(m);
            let launch = Launch::new(&k, NdRange::d1(128), args.clone());
            let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
            assert_eq!(
                sweep.best().partition,
                Partition::cpu_only(3),
                "machine {} picked {}",
                ex.machine.name,
                sweep.best().partition
            );
        }
    }

    #[test]
    fn large_compute_bound_launch_uses_accelerators_on_mc2() {
        let k = compile(HEAVY).unwrap();
        let n = 1 << 15;
        let (bufs, args) = setup(n);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(n), args);
        let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        let best = &sweep.best().partition;
        let gpu_share = best.fraction(1) + best.fraction(2);
        assert!(
            gpu_share > 0.5,
            "large compute-bound work should mostly go to the GTX 480s, got {best}"
        );
    }

    #[test]
    fn best_partition_depends_on_problem_size() {
        // The paper's central observation: the optimum moves as the
        // problem grows.
        let k = compile(HEAVY).unwrap();
        let ex = Executor::new(machines::mc2());
        let mut bests = Vec::new();
        for n in [64usize, 1 << 14] {
            let (bufs, args) = setup(n);
            let launch = Launch::new(&k, NdRange::d1(n), args);
            let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
            bests.push(sweep.best().partition.clone());
        }
        assert_ne!(
            bests[0], bests[1],
            "optimal partitioning must change with size"
        );
    }

    #[test]
    fn sweep_many_matches_sequential_sweeps_exactly() {
        // Oracle determinism under parallelism: one batched call must be
        // byte-identical to N sequential single-launch sweeps — same
        // entries, same times, same best partitions.
        let stream = compile(STREAM).unwrap();
        let heavy = compile(HEAVY).unwrap();
        let (bufs_a, args_a) = setup(256);
        let (bufs_b, args_b) = setup(4096);
        let (bufs_c, args_c) = setup(1 << 14);
        let ex = Executor::new(machines::mc2());

        // Three launches, two sharing one compiled kernel (the shared
        // kernel cache of a multi-size training batch), plus a coarser
        // granularity job mixed into the same batch.
        let launch_a = Launch::new(&stream, NdRange::d1(256), args_a);
        let launch_b = Launch::new(&stream, NdRange::d1(4096), args_b);
        let launch_c = Launch::new(&heavy, NdRange::d1(1 << 14), args_c);
        let jobs = [
            SweepJob {
                launch: &launch_a,
                bufs: &bufs_a,
                step_tenths: 1,
            },
            SweepJob {
                launch: &launch_b,
                bufs: &bufs_b,
                step_tenths: 1,
            },
            SweepJob {
                launch: &launch_c,
                bufs: &bufs_c,
                step_tenths: 5,
            },
        ];

        let batched = sweep_many(&ex, &jobs).unwrap();
        assert_eq!(batched.len(), 3);

        for (job, batch_sweep) in jobs.iter().zip(&batched) {
            let solo = sweep_partitions(&ex, job.launch, job.bufs, job.step_tenths).unwrap();
            assert_eq!(
                batch_sweep, &solo,
                "batched sweep must equal the sequential sweep"
            );
            assert_eq!(batch_sweep.best().partition, solo.best().partition);
            assert_eq!(
                batch_sweep.best().time.to_bits(),
                solo.best().time.to_bits(),
                "best times must be byte-identical"
            );
        }
    }

    #[test]
    fn sweep_entries_match_uncached_pricing() {
        // Independent oracle: `Executor::simulate_with_profile` prices
        // through a direct `transfer_bytes` call, bypassing the batched
        // sweep's access-analysis cache entirely. Every cached entry must
        // be bit-identical to the uncached price, so a wrong cache key or
        // stale cached value cannot hide behind a cached-vs-cached
        // comparison.
        let k = compile(HEAVY).unwrap();
        let (bufs_a, args_a) = setup(1000);
        let (bufs_b, args_b) = setup(4096);
        let ex = Executor::new(machines::mc2());
        let launch_a = Launch::new(&k, NdRange::d1(1000), args_a);
        let launch_b = Launch::new(&k, NdRange::d1(4096), args_b);
        let jobs = [
            SweepJob {
                launch: &launch_a,
                bufs: &bufs_a,
                step_tenths: 1,
            },
            SweepJob {
                launch: &launch_b,
                bufs: &bufs_b,
                step_tenths: 2,
            },
        ];
        let batched = sweep_many(&ex, &jobs).unwrap();

        for (job, sweep) in jobs.iter().zip(&batched) {
            let profile = LaunchProfile::collect(
                job.launch.kernel,
                &job.launch.nd,
                &job.launch.args,
                job.bufs,
                SWEEP_PROFILE_SAMPLES.max(ex.sample_items),
            )
            .unwrap();
            let space = Partition::enumerate(3, job.step_tenths);
            assert_eq!(sweep.entries.len(), space.len());
            for (entry, partition) in sweep.entries.iter().zip(&space) {
                assert_eq!(&entry.partition, partition, "space order must be preserved");
                let uncached = ex.simulate_with_profile(job.launch, job.bufs, partition, &profile);
                assert_eq!(
                    entry.time.to_bits(),
                    uncached.time.to_bits(),
                    "{partition}: cached sweep price must equal direct pricing"
                );
            }
        }
    }

    #[test]
    fn sweep_many_is_deterministic_across_calls() {
        let k = compile(HEAVY).unwrap();
        let (bufs, args) = setup(2048);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(2048), args);
        let jobs = [SweepJob {
            launch: &launch,
            bufs: &bufs,
            step_tenths: 1,
        }; 2];
        let a = sweep_many(&ex, &jobs).unwrap();
        let b = sweep_many(&ex, &jobs).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0], a[1], "identical jobs in one batch must agree");
    }

    #[test]
    fn coarser_steps_are_a_subset_space() {
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(512);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(512), args);
        let fine = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        let coarse = sweep_partitions(&ex, &launch, &bufs, 5).unwrap();
        assert_eq!(coarse.entries.len(), 6);
        // The coarse best can never beat the fine best.
        assert!(coarse.best().time >= fine.best().time - 1e-12);
    }
}
