//! Exhaustive partition-space measurement — the training-phase oracle.
//!
//! During the paper's training phase every program is "executed with
//! various problem sizes and the available task partitionings" and the
//! best partitioning per (program, size) becomes the training label. This
//! module runs that sweep on the simulated machine.
//!
//! The workhorse is [`sweep_many`]: it takes a whole batch of launches
//! (the entire training suite, in production) and prices every
//! (launch × partitioning) pair in one rayon-parallel pass. Per launch it
//! builds an **access-analysis cache** — the interval analysis is
//! evaluated once per distinct chunk boundary pair instead of once per
//! partitioning — and every launch of the batch reuses its caller's
//! compiled kernel, so a benchmark swept at many problem sizes is
//! compiled exactly once. [`sweep_partitions`] is the single-launch
//! convenience wrapper over the same engine, which is what guarantees
//! that batched and sequential sweeps agree bit-for-bit.

use std::collections::HashMap;

use hetpart_inspire::vm::BufferData;
use hetpart_inspire::VmError;
use hetpart_oclsim::DeviceId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::exec::{scalar_values, transfer_bytes, Executor, Launch};
use crate::partition::{Partition, TENTHS};
use crate::profile::LaunchProfile;

/// Samples collected per launch profile during a sweep.
pub const SWEEP_PROFILE_SAMPLES: usize = 256;

/// How a sweep covers the partition space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SweepMode {
    /// Price every partitioning — the paper's exhaustive oracle, and the
    /// only mode whose sweeps can price *arbitrary* partitions afterwards.
    #[default]
    Full,
    /// Branch-and-bound: enumerate partitions depth-first over per-device
    /// shares and skip every completion of a partial assignment whose
    /// lower bound (the max over already-priced device chunks, which can
    /// only grow as more devices are priced) already exceeds the
    /// incumbent best time. Per-device chunk times are additionally
    /// memoized across partitions sharing the same chunk boundaries.
    ///
    /// Oracle-exact: the argmin partition and its time are bit-identical
    /// to [`SweepMode::Full`] (ties are never pruned, so the tie-breaking
    /// of [`PartitionSweep::best`] is preserved). The returned sweep
    /// contains only the entries that were actually priced — always
    /// including the argmin and the CPU-only/GPU-only baselines — so it
    /// is suitable for oracle labels and default-strategy comparisons,
    /// not for pricing arbitrary partitions.
    Pruned,
}

/// One measured partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepEntry {
    pub partition: Partition,
    /// Simulated launch time in seconds.
    pub time: f64,
}

/// All partitionings of one launch, measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSweep {
    pub entries: Vec<SweepEntry>,
}

impl PartitionSweep {
    /// The oracle-best entry (minimum time).
    ///
    /// Time ties are broken on the partition itself (lexicographically
    /// smallest shares win), **not** on entry order: the oracle label of a
    /// sweep must not change when entries are reordered, merged from
    /// shards, or thinned by pruning. Entry-order tie-breaking silently
    /// flipped training labels whenever two partitions priced identically
    /// and a merge or prune changed which came first.
    ///
    /// # Panics
    /// Panics if the sweep is empty.
    pub fn best(&self) -> &SweepEntry {
        self.entries
            .iter()
            .min_by(|a, b| {
                a.time
                    .total_cmp(&b.time)
                    .then_with(|| a.partition.cmp(&b.partition))
            })
            .expect("sweep must not be empty")
    }

    /// Time of a specific partitioning, if it was measured.
    pub fn time_of(&self, p: &Partition) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| &e.partition == p)
            .map(|e| e.time)
    }

    /// Time of the CPU-only default strategy.
    pub fn cpu_only_time(&self) -> f64 {
        let n = self.entries[0].partition.num_devices();
        self.time_of(&Partition::cpu_only(n))
            .expect("cpu-only is always in the space")
    }

    /// Time of the GPU-only default strategy (first accelerator).
    pub fn gpu_only_time(&self) -> f64 {
        let n = self.entries[0].partition.num_devices();
        self.time_of(&Partition::gpu_only(n))
            .expect("gpu-only is always in the space")
    }

    /// Rank of a partitioning within the sweep (0 = best).
    pub fn rank_of(&self, p: &Partition) -> Option<usize> {
        let t = self.time_of(p)?;
        Some(self.entries.iter().filter(|e| e.time < t).count())
    }
}

/// One launch of a [`sweep_many`] batch. The kernel lives inside
/// `launch`, so callers sweeping one kernel at many problem sizes (the
/// training phase) compile it once and share the `CompiledKernel` across
/// jobs.
#[derive(Debug, Clone, Copy)]
pub struct SweepJob<'a> {
    pub launch: &'a Launch<'a>,
    /// Host buffers of the launch; never modified (pricing samples run on
    /// scratch copies).
    pub bufs: &'a [BufferData],
    /// Partition-space granularity in tenths (1 = the paper's 10% steps).
    pub step_tenths: u8,
}

/// Per-launch pricing context built once per job: the sampled execution
/// profile plus the access-analysis cache — transfer sizes for every
/// distinct chunk the partition space can produce.
struct PricingCtx {
    profile: LaunchProfile,
    /// `(chunk.start, chunk.end)` → `(bytes_in, bytes_out)`.
    transfers: HashMap<(usize, usize), (u64, u64)>,
}

impl PricingCtx {
    fn build(
        executor: &Executor,
        job: &SweepJob<'_>,
        space: &[Partition],
    ) -> Result<Self, VmError> {
        let launch = job.launch;
        // One sampled profile per launch; every partitioning is then
        // priced from it without re-executing the kernel.
        let profile = LaunchProfile::collect(
            launch.kernel,
            &launch.nd,
            &launch.args,
            job.bufs,
            SWEEP_PROFILE_SAMPLES.max(executor.sample_items),
        )?;

        // Access-analysis cache: the interval analysis runs once per
        // distinct chunk of the space instead of once per (partition,
        // device). Keys come from the same `Partition::chunks` call that
        // pricing uses, so every lookup is guaranteed to hit; chunks
        // repeat heavily across partitions (cumulative boundaries only
        // take `TENTHS/step + 1` values), which is what makes this a
        // cache rather than a re-spelling.
        let kernel = launch.kernel;
        let scalars = scalar_values(kernel, &launch.args);
        let extent = launch.nd.split_extent();
        let mut transfers = HashMap::new();
        for partition in space {
            for chunk in partition.chunks(extent) {
                if !chunk.is_empty() {
                    transfers
                        .entry((chunk.start, chunk.end))
                        .or_insert_with(|| {
                            transfer_bytes(
                                kernel,
                                &launch.nd,
                                chunk.clone(),
                                &scalars,
                                &launch.args,
                                job.bufs,
                            )
                        });
                }
            }
        }
        Ok(Self { profile, transfers })
    }
}

/// [`sweep_many`] with an explicit [`SweepMode`].
///
/// `Full` prices the whole space; `Pruned` runs the branch-and-bound
/// search per job (jobs still sweep in parallel) and returns subset
/// sweeps whose argmin is oracle-exact.
pub fn sweep_many_mode(
    executor: &Executor,
    jobs: &[SweepJob<'_>],
    mode: SweepMode,
) -> Result<Vec<PartitionSweep>, VmError> {
    match mode {
        SweepMode::Full => sweep_many(executor, jobs),
        SweepMode::Pruned => jobs
            .par_iter()
            .map(|job| BranchAndBound::sweep(executor, job))
            .collect::<Vec<Result<_, _>>>()
            .into_iter()
            .collect(),
    }
}

/// Branch-and-bound state for one pruned sweep job.
///
/// The DFS mirrors [`Partition::enumerate`]'s recursion exactly, so the
/// priced entries come out in enumeration (lexicographic-by-shares)
/// order, and subtrees are pruned only on a *strictly* greater lower
/// bound, so every partition tied with the optimum is fully priced.
/// [`PartitionSweep::best`] resolves time ties to the lexicographically
/// smallest partition; since the pruned entries contain every
/// minimal-time partition, that tie winner is the same partition the
/// full sweep selects, bit for bit. Do not weaken the never-prune-ties
/// property: dropping a tied minimum could remove the tie winner.
struct BranchAndBound<'a> {
    executor: &'a Executor,
    launch: &'a Launch<'a>,
    bufs: &'a [BufferData],
    profile: LaunchProfile,
    scalars: Vec<Option<i64>>,
    devs: Vec<DeviceId>,
    extent: usize,
    step: u8,
    /// Lazy access-analysis cache, keyed by chunk boundaries.
    transfers: HashMap<(usize, usize), (u64, u64)>,
    /// Memoized per-device chunk times, keyed by (device, start, end).
    chunk_times: HashMap<(usize, usize, usize), f64>,
    /// Priced partitions in enumeration order.
    entries: Vec<SweepEntry>,
    shares: Vec<u8>,
    incumbent: f64,
}

impl<'a> BranchAndBound<'a> {
    fn sweep(executor: &'a Executor, job: &'a SweepJob<'a>) -> Result<PartitionSweep, VmError> {
        // Same granularity contract as `Partition::enumerate`: an invalid
        // step must fail as loudly here as it does in a full sweep.
        assert!(
            (1..=TENTHS).contains(&job.step_tenths) && TENTHS.is_multiple_of(job.step_tenths),
            "step must divide 10"
        );
        let launch = job.launch;
        let num_devices = executor.machine.num_devices();
        let profile = LaunchProfile::collect(
            launch.kernel,
            &launch.nd,
            &launch.args,
            job.bufs,
            SWEEP_PROFILE_SAMPLES.max(executor.sample_items),
        )?;
        let mut bnb = Self {
            executor,
            launch,
            bufs: job.bufs,
            profile,
            scalars: scalar_values(launch.kernel, &launch.args),
            devs: executor.machine.device_ids().collect(),
            extent: launch.nd.split_extent(),
            step: job.step_tenths,
            transfers: HashMap::new(),
            chunk_times: HashMap::new(),
            entries: Vec::new(),
            shares: vec![0; num_devices],
            incumbent: f64::INFINITY,
        };

        // Seed the incumbent with the default strategies. They are cheap
        // (single-device), usually competitive, and guaranteeing their
        // presence keeps `cpu_only_time`/`gpu_only_time` usable on pruned
        // sweeps.
        let mut seeds = vec![Partition::cpu_only(num_devices)];
        if num_devices > 1 {
            seeds.push(Partition::gpu_only(num_devices));
        }
        let seed_entries: Vec<SweepEntry> = seeds
            .into_iter()
            .map(|partition| {
                let time = bnb.partition_time(&partition);
                SweepEntry { partition, time }
            })
            .collect();
        for e in &seed_entries {
            bnb.incumbent = bnb.incumbent.min(e.time);
        }

        bnb.dfs(0, TENTHS, 0, 0, 0.0, 0);

        // Splice the seeds into their enumeration-order slots if pruning
        // skipped them (their times are memoized, so a re-priced seed is
        // bitwise identical to its entry here).
        let mut entries = bnb.entries;
        for seed in seed_entries {
            match entries.binary_search_by(|e| e.partition.shares().cmp(seed.partition.shares())) {
                Ok(_) => {}
                Err(pos) => entries.insert(pos, seed),
            }
        }
        Ok(PartitionSweep { entries })
    }

    /// Chunk boundary at cumulative share `cum`, identical to
    /// [`Partition::chunks`]'s rounding.
    fn boundary(&self, cum: u32) -> usize {
        (self.extent as u64 * u64::from(cum) / u64::from(TENTHS)) as usize
    }

    /// Memoized simulated time of `chunk` on device index `dev`.
    fn chunk_time(&mut self, dev: usize, start: usize, end: usize) -> f64 {
        if let Some(&t) = self.chunk_times.get(&(dev, start, end)) {
            return t;
        }
        let transfer = match self.transfers.get(&(start, end)) {
            Some(&t) => t,
            None => {
                let t = transfer_bytes(
                    self.launch.kernel,
                    &self.launch.nd,
                    start..end,
                    &self.scalars,
                    &self.launch.args,
                    self.bufs,
                );
                self.transfers.insert((start, end), t);
                t
            }
        };
        let run = self.executor.price_chunk(
            self.launch,
            self.devs[dev],
            start..end,
            &self.profile,
            transfer,
        );
        let t = run.time.total;
        self.chunk_times.insert((dev, start, end), t);
        t
    }

    /// Price a full partition by composing memoized chunk times exactly
    /// like [`Executor::price_with_profile`]: max over non-empty chunks in
    /// device order, plus the multi-device coordination overhead.
    fn partition_time(&mut self, partition: &Partition) -> f64 {
        let chunks = partition.chunks(self.extent);
        let mut slowest = 0.0f64;
        let mut active = 0usize;
        for (dev, chunk) in chunks.iter().enumerate() {
            if chunk.is_empty() {
                continue;
            }
            slowest = slowest.max(self.chunk_time(dev, chunk.start, chunk.end));
            active += 1;
        }
        slowest + self.executor.coordination_overhead(active)
    }

    /// Assign device `idx`'s share and recurse, pruning subtrees whose
    /// lower bound exceeds the incumbent. `cur_max`/`active` describe the
    /// devices priced so far; remaining devices can only raise the max and
    /// the active count, so `cur_max` (plus coordination once two devices
    /// are active) is a sound lower bound for every completion.
    fn dfs(&mut self, idx: usize, left: u8, cum: u32, start: usize, cur_max: f64, active: usize) {
        let last = self.shares.len() - 1;
        let assign = |bnb: &mut Self, s: u8| -> Option<(f64, usize, usize)> {
            bnb.shares[idx] = s;
            let end = bnb.boundary(cum + u32::from(s));
            let (new_max, new_active) = if end > start {
                (cur_max.max(bnb.chunk_time(idx, start, end)), active + 1)
            } else {
                (cur_max, active)
            };
            let bound = new_max + bnb.executor.coordination_overhead(new_active);
            if bound > bnb.incumbent {
                return None;
            }
            Some((new_max, new_active, end))
        };
        if idx == last {
            // The final share is forced; finalize the leaf if it survives
            // the bound.
            if let Some((time_base, new_active, _)) = assign(self, left) {
                let time = time_base + self.executor.coordination_overhead(new_active);
                let partition = Partition::from_tenths(self.shares.clone());
                if time <= self.incumbent {
                    self.incumbent = time;
                }
                self.entries.push(SweepEntry { partition, time });
            }
            return;
        }
        let mut s = 0u8;
        while s <= left {
            if let Some((new_max, new_active, end)) = assign(self, s) {
                self.dfs(
                    idx + 1,
                    left - s,
                    cum + u32::from(s),
                    end,
                    new_max,
                    new_active,
                );
            }
            s += self.step;
        }
    }
}

/// Sweep a whole batch of launches — the production shape of the training
/// oracle. Builds each job's pricing context (profile + access-analysis
/// cache) in parallel across jobs, then prices every (launch ×
/// partitioning) pair in one flat rayon pass, so a handful of huge
/// launches cannot serialize behind each other the way per-launch
/// parallelism would.
///
/// Returns one [`PartitionSweep`] per job, in job order, bit-identical to
/// calling [`sweep_partitions`] once per job.
pub fn sweep_many(
    executor: &Executor,
    jobs: &[SweepJob<'_>],
) -> Result<Vec<PartitionSweep>, VmError> {
    let num_devices = executor.machine.num_devices();

    // Partition spaces, shared across all jobs with the same granularity.
    let mut spaces: HashMap<u8, Vec<Partition>> = HashMap::new();
    for job in jobs {
        spaces
            .entry(job.step_tenths)
            .or_insert_with(|| Partition::enumerate(num_devices, job.step_tenths));
    }

    // Phase A: per-job pricing contexts (kernel sampling dominates).
    let ctxs: Vec<PricingCtx> = jobs
        .par_iter()
        .map(|job| PricingCtx::build(executor, job, &spaces[&job.step_tenths]))
        .collect::<Vec<Result<_, _>>>()
        .into_iter()
        .collect::<Result<_, _>>()?;

    // Phase B: flatten to (job, partition) pairs and price them all in
    // one parallel pass.
    let mut pairs = Vec::new();
    for (ji, job) in jobs.iter().enumerate() {
        for pi in 0..spaces[&job.step_tenths].len() {
            pairs.push((ji, pi));
        }
    }
    let entries: Vec<SweepEntry> = pairs
        .into_par_iter()
        .map(|(ji, pi)| {
            let job = &jobs[ji];
            let ctx = &ctxs[ji];
            let partition = &spaces[&job.step_tenths][pi];
            let report =
                executor.price_with_profile(job.launch, partition, &ctx.profile, |chunk| {
                    ctx.transfers[&(chunk.start, chunk.end)]
                });
            SweepEntry {
                partition: partition.clone(),
                time: report.time,
            }
        })
        .collect();

    // Regroup the flat entry list back into one sweep per job.
    let mut sweeps = Vec::with_capacity(jobs.len());
    let mut offset = 0;
    for job in jobs {
        let len = spaces[&job.step_tenths].len();
        sweeps.push(PartitionSweep {
            entries: entries[offset..offset + len].to_vec(),
        });
        offset += len;
    }
    Ok(sweeps)
}

/// Measure every partitioning of the space at `step_tenths` granularity
/// (1 = the paper's 10% steps) for one launch.
///
/// Buffers are never modified. This is [`sweep_many`] with a single job;
/// training-scale callers should batch launches instead.
pub fn sweep_partitions(
    executor: &Executor,
    launch: &Launch,
    bufs: &[BufferData],
    step_tenths: u8,
) -> Result<PartitionSweep, VmError> {
    sweep_partitions_mode(executor, launch, bufs, step_tenths, SweepMode::Full)
}

/// [`sweep_partitions`] with an explicit [`SweepMode`].
pub fn sweep_partitions_mode(
    executor: &Executor,
    launch: &Launch,
    bufs: &[BufferData],
    step_tenths: u8,
    mode: SweepMode,
) -> Result<PartitionSweep, VmError> {
    let mut sweeps = sweep_many_mode(
        executor,
        &[SweepJob {
            launch,
            bufs,
            step_tenths,
        }],
        mode,
    )?;
    Ok(sweeps.pop().expect("one job in, one sweep out"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpart_inspire::compile;
    use hetpart_inspire::ir::NdRange;
    use hetpart_inspire::vm::ArgValue;
    use hetpart_oclsim::machines;

    const STREAM: &str = "kernel void s(global const float* a, global float* o, int n) {
        int i = get_global_id(0);
        if (i < n) { o[i] = a[i] * 2.0 + 1.0; }
    }";

    const HEAVY: &str = "kernel void h(global const float* a, global float* o, int n) {
        int i = get_global_id(0);
        float s = a[i];
        for (int j = 0; j < 400; j++) { s = s * 1.0001 + sin(s) * 0.001; }
        o[i] = s;
    }";

    fn setup(n: usize) -> (Vec<BufferData>, Vec<ArgValue>) {
        (
            vec![BufferData::F32(vec![1.5; n]), BufferData::F32(vec![0.0; n])],
            vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Int(n as i32),
            ],
        )
    }

    #[test]
    fn sweep_covers_the_full_space() {
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(256);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(256), args);
        let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        assert_eq!(sweep.entries.len(), 66);
        assert!(sweep
            .entries
            .iter()
            .all(|e| e.time.is_finite() && e.time > 0.0));
    }

    #[test]
    fn best_breaks_time_ties_on_the_partition_not_entry_order() {
        // Regression: `best()` used to keep the first of equal minima in
        // entry order, so merging or pruning a sweep (both reorder or thin
        // the entries) could flip the oracle label between tied partitions.
        let tied = |shares: Vec<u8>| SweepEntry {
            partition: Partition::from_tenths(shares),
            time: 1.0,
        };
        let slow = SweepEntry {
            partition: Partition::from_tenths(vec![5, 5, 0]),
            time: 2.0,
        };
        let forward = PartitionSweep {
            entries: vec![tied(vec![10, 0, 0]), slow.clone(), tied(vec![0, 0, 10])],
        };
        let reversed = PartitionSweep {
            entries: vec![tied(vec![0, 0, 10]), slow, tied(vec![10, 0, 0])],
        };
        // Both orders pick the lexicographically smallest tied partition.
        assert_eq!(forward.best().partition, reversed.best().partition);
        assert_eq!(
            forward.best().partition,
            Partition::from_tenths(vec![0, 0, 10])
        );
        // A thinned sweep that still contains the winner agrees too.
        let thinned = PartitionSweep {
            entries: vec![tied(vec![0, 0, 10])],
        };
        assert_eq!(thinned.best().partition, forward.best().partition);
    }

    #[test]
    fn best_is_minimum_and_defaults_are_present() {
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(1024);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(1024), args);
        let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        let best = sweep.best();
        assert!(best.time <= sweep.cpu_only_time());
        assert!(best.time <= sweep.gpu_only_time());
        assert_eq!(sweep.rank_of(&best.partition.clone()), Some(0));
    }

    #[test]
    #[should_panic(expected = "step must divide 10")]
    fn pruned_sweep_rejects_invalid_step_like_full() {
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(64);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(64), args);
        let _ = sweep_partitions_mode(&ex, &launch, &bufs, 3, SweepMode::Pruned);
    }

    #[test]
    fn tiny_streaming_launch_prefers_cpu_only() {
        // Small problem + streaming kernel: transfers and launch overheads
        // make accelerator shares useless on both machines.
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(128);
        for m in [machines::mc1(), machines::mc2()] {
            let ex = Executor::new(m);
            let launch = Launch::new(&k, NdRange::d1(128), args.clone());
            let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
            assert_eq!(
                sweep.best().partition,
                Partition::cpu_only(3),
                "machine {} picked {}",
                ex.machine.name,
                sweep.best().partition
            );
        }
    }

    #[test]
    fn large_compute_bound_launch_uses_accelerators_on_mc2() {
        let k = compile(HEAVY).unwrap();
        let n = 1 << 15;
        let (bufs, args) = setup(n);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(n), args);
        let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        let best = &sweep.best().partition;
        let gpu_share = best.fraction(1) + best.fraction(2);
        assert!(
            gpu_share > 0.5,
            "large compute-bound work should mostly go to the GTX 480s, got {best}"
        );
    }

    #[test]
    fn best_partition_depends_on_problem_size() {
        // The paper's central observation: the optimum moves as the
        // problem grows.
        let k = compile(HEAVY).unwrap();
        let ex = Executor::new(machines::mc2());
        let mut bests = Vec::new();
        for n in [64usize, 1 << 14] {
            let (bufs, args) = setup(n);
            let launch = Launch::new(&k, NdRange::d1(n), args);
            let sweep = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
            bests.push(sweep.best().partition.clone());
        }
        assert_ne!(
            bests[0], bests[1],
            "optimal partitioning must change with size"
        );
    }

    #[test]
    fn sweep_many_matches_sequential_sweeps_exactly() {
        // Oracle determinism under parallelism: one batched call must be
        // byte-identical to N sequential single-launch sweeps — same
        // entries, same times, same best partitions.
        let stream = compile(STREAM).unwrap();
        let heavy = compile(HEAVY).unwrap();
        let (bufs_a, args_a) = setup(256);
        let (bufs_b, args_b) = setup(4096);
        let (bufs_c, args_c) = setup(1 << 14);
        let ex = Executor::new(machines::mc2());

        // Three launches, two sharing one compiled kernel (the shared
        // kernel cache of a multi-size training batch), plus a coarser
        // granularity job mixed into the same batch.
        let launch_a = Launch::new(&stream, NdRange::d1(256), args_a);
        let launch_b = Launch::new(&stream, NdRange::d1(4096), args_b);
        let launch_c = Launch::new(&heavy, NdRange::d1(1 << 14), args_c);
        let jobs = [
            SweepJob {
                launch: &launch_a,
                bufs: &bufs_a,
                step_tenths: 1,
            },
            SweepJob {
                launch: &launch_b,
                bufs: &bufs_b,
                step_tenths: 1,
            },
            SweepJob {
                launch: &launch_c,
                bufs: &bufs_c,
                step_tenths: 5,
            },
        ];

        let batched = sweep_many(&ex, &jobs).unwrap();
        assert_eq!(batched.len(), 3);

        for (job, batch_sweep) in jobs.iter().zip(&batched) {
            let solo = sweep_partitions(&ex, job.launch, job.bufs, job.step_tenths).unwrap();
            assert_eq!(
                batch_sweep, &solo,
                "batched sweep must equal the sequential sweep"
            );
            assert_eq!(batch_sweep.best().partition, solo.best().partition);
            assert_eq!(
                batch_sweep.best().time.to_bits(),
                solo.best().time.to_bits(),
                "best times must be byte-identical"
            );
        }
    }

    #[test]
    fn sweep_entries_match_uncached_pricing() {
        // Independent oracle: `Executor::simulate_with_profile` prices
        // through a direct `transfer_bytes` call, bypassing the batched
        // sweep's access-analysis cache entirely. Every cached entry must
        // be bit-identical to the uncached price, so a wrong cache key or
        // stale cached value cannot hide behind a cached-vs-cached
        // comparison.
        let k = compile(HEAVY).unwrap();
        let (bufs_a, args_a) = setup(1000);
        let (bufs_b, args_b) = setup(4096);
        let ex = Executor::new(machines::mc2());
        let launch_a = Launch::new(&k, NdRange::d1(1000), args_a);
        let launch_b = Launch::new(&k, NdRange::d1(4096), args_b);
        let jobs = [
            SweepJob {
                launch: &launch_a,
                bufs: &bufs_a,
                step_tenths: 1,
            },
            SweepJob {
                launch: &launch_b,
                bufs: &bufs_b,
                step_tenths: 2,
            },
        ];
        let batched = sweep_many(&ex, &jobs).unwrap();

        for (job, sweep) in jobs.iter().zip(&batched) {
            let profile = LaunchProfile::collect(
                job.launch.kernel,
                &job.launch.nd,
                &job.launch.args,
                job.bufs,
                SWEEP_PROFILE_SAMPLES.max(ex.sample_items),
            )
            .unwrap();
            let space = Partition::enumerate(3, job.step_tenths);
            assert_eq!(sweep.entries.len(), space.len());
            for (entry, partition) in sweep.entries.iter().zip(&space) {
                assert_eq!(&entry.partition, partition, "space order must be preserved");
                let uncached = ex.simulate_with_profile(job.launch, job.bufs, partition, &profile);
                assert_eq!(
                    entry.time.to_bits(),
                    uncached.time.to_bits(),
                    "{partition}: cached sweep price must equal direct pricing"
                );
            }
        }
    }

    #[test]
    fn sweep_many_is_deterministic_across_calls() {
        let k = compile(HEAVY).unwrap();
        let (bufs, args) = setup(2048);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(2048), args);
        let jobs = [SweepJob {
            launch: &launch,
            bufs: &bufs,
            step_tenths: 1,
        }; 2];
        let a = sweep_many(&ex, &jobs).unwrap();
        let b = sweep_many(&ex, &jobs).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0], a[1], "identical jobs in one batch must agree");
    }

    #[test]
    fn pruned_sweep_is_oracle_exact() {
        // The branch-and-bound sweep must return exactly the same argmin
        // partition with a bit-identical time as the full sweep, for every
        // kernel shape, machine, problem size, and granularity.
        for (src, sizes) in [(STREAM, [128usize, 2048]), (HEAVY, [256, 1 << 14])] {
            let k = compile(src).unwrap();
            for m in [machines::mc1(), machines::mc2()] {
                for n in sizes {
                    for step in [1u8, 2, 5] {
                        let ex = Executor::new(m.clone());
                        let (bufs, args) = setup(n);
                        let launch = Launch::new(&k, NdRange::d1(n), args);
                        let full = sweep_partitions(&ex, &launch, &bufs, step).unwrap();
                        let pruned =
                            sweep_partitions_mode(&ex, &launch, &bufs, step, SweepMode::Pruned)
                                .unwrap();
                        assert_eq!(
                            pruned.best().partition,
                            full.best().partition,
                            "{} n={n} step={step}: pruned argmin must match",
                            ex.machine.name
                        );
                        assert_eq!(
                            pruned.best().time.to_bits(),
                            full.best().time.to_bits(),
                            "{} n={n} step={step}: pruned best time must be bit-identical",
                            ex.machine.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pruned_sweep_entries_are_a_priced_subset() {
        let k = compile(HEAVY).unwrap();
        let (bufs, args) = setup(4096);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(4096), args);
        let full = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        let pruned = sweep_partitions_mode(&ex, &launch, &bufs, 1, SweepMode::Pruned).unwrap();
        assert!(pruned.entries.len() <= full.entries.len());
        // Every pruned entry is bit-identical to the full sweep's entry
        // for the same partition, and the subset follows enumeration order.
        let mut last_idx = None;
        let space = Partition::enumerate(3, 1);
        for e in &pruned.entries {
            let t = full.time_of(&e.partition).expect("priced in full space");
            assert_eq!(e.time.to_bits(), t.to_bits(), "{}", e.partition);
            let idx = e.partition.class_index(&space).unwrap();
            assert!(last_idx.is_none_or(|p| p < idx), "enumeration order");
            last_idx = Some(idx);
        }
        // The baselines survive pruning so default-strategy comparisons
        // still work on pruned sweeps.
        assert_eq!(
            pruned.cpu_only_time().to_bits(),
            full.cpu_only_time().to_bits()
        );
        assert_eq!(
            pruned.gpu_only_time().to_bits(),
            full.gpu_only_time().to_bits()
        );
    }

    #[test]
    fn pruned_sweep_actually_prunes() {
        // Not a correctness property, but the whole point: on a realistic
        // launch the bound must cut a substantial part of the 66-partition
        // space.
        let k = compile(HEAVY).unwrap();
        let (bufs, args) = setup(1 << 14);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(1 << 14), args);
        let pruned = sweep_partitions_mode(&ex, &launch, &bufs, 1, SweepMode::Pruned).unwrap();
        assert!(
            pruned.entries.len() < 50,
            "expected real pruning of the 66-entry space, priced {}",
            pruned.entries.len()
        );
    }

    #[test]
    fn pruned_sweep_many_matches_per_launch_pruned_sweeps() {
        let stream = compile(STREAM).unwrap();
        let heavy = compile(HEAVY).unwrap();
        let (bufs_a, args_a) = setup(512);
        let (bufs_b, args_b) = setup(8192);
        let ex = Executor::new(machines::mc1());
        let launch_a = Launch::new(&stream, NdRange::d1(512), args_a);
        let launch_b = Launch::new(&heavy, NdRange::d1(8192), args_b);
        let jobs = [
            SweepJob {
                launch: &launch_a,
                bufs: &bufs_a,
                step_tenths: 1,
            },
            SweepJob {
                launch: &launch_b,
                bufs: &bufs_b,
                step_tenths: 2,
            },
        ];
        let batched = sweep_many_mode(&ex, &jobs, SweepMode::Pruned).unwrap();
        for (job, sweep) in jobs.iter().zip(&batched) {
            let solo = sweep_partitions_mode(
                &ex,
                job.launch,
                job.bufs,
                job.step_tenths,
                SweepMode::Pruned,
            )
            .unwrap();
            assert_eq!(sweep, &solo);
        }
    }

    #[test]
    fn coarser_steps_are_a_subset_space() {
        let k = compile(STREAM).unwrap();
        let (bufs, args) = setup(512);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(512), args);
        let fine = sweep_partitions(&ex, &launch, &bufs, 1).unwrap();
        let coarse = sweep_partitions(&ex, &launch, &bufs, 5).unwrap();
        assert_eq!(coarse.entries.len(), 6);
        // The coarse best can never beat the fine best.
        assert!(coarse.best().time >= fine.best().time - 1e-12);
    }
}
