//! Partitioned multi-device kernel execution.
//!
//! This is the runtime half of the paper's system: given a compiled
//! kernel, a launch NDRange and a [`Partition`], it splits the range into
//! one contiguous chunk per device, plans the host↔device transfers for
//! each chunk using the compiler's access-range analysis, executes (or
//! samples) the chunks on the VM, and prices each chunk on its device's
//! cost model. The reported launch time is the maximum over the devices
//! (they run concurrently) plus a coordination overhead for multi-device
//! launches — kernel time *including* memory transfers, the paper's
//! measurement convention.

use std::ops::Range;
use std::sync::Arc;

use hetpart_inspire::access::{access_ranges, BufferRange, LaunchBounds};
use hetpart_inspire::ir::{NdRange, ParamKind, ScalarType};
use hetpart_inspire::vm::{dynamic_counts, ArgValue, BufferData, DynamicCounts, Vm};
use hetpart_inspire::{CompiledKernel, VmError};
use hetpart_oclsim::fault::{FaultState, FaultVerdict};
use hetpart_oclsim::model::{estimate_time, TimeBreakdown, WorkloadShape};
use hetpart_oclsim::{DeviceId, Machine};
use serde::{Deserialize, Serialize};

use crate::partition::Partition;

/// Why a planned launch failed: the VM rejected or faulted it, or a
/// device did. Device faults carry whether the failure is permanent
/// (device death — re-plan around it) or transient (retry may succeed);
/// the serving layer's retry/re-plan logic branches on exactly that.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    Vm(VmError),
    DeviceFault {
        device: DeviceId,
        /// The faulty device's registry (profile) name, so fault reports
        /// read without a device table at hand.
        device_name: String,
        permanent: bool,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Vm(e) => write!(f, "{e}"),
            LaunchError::DeviceFault {
                device,
                device_name,
                permanent,
            } => write!(
                f,
                "{device} (`{device_name}`) {} during the launch",
                if *permanent {
                    "failed permanently"
                } else {
                    "failed transiently"
                }
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<VmError> for LaunchError {
    fn from(e: VmError) -> Self {
        LaunchError::Vm(e)
    }
}

/// A kernel launch: what the host enqueues.
#[derive(Debug, Clone)]
pub struct Launch<'a> {
    pub kernel: &'a CompiledKernel,
    pub nd: NdRange,
    pub args: Vec<ArgValue>,
}

impl<'a> Launch<'a> {
    /// Convenience constructor.
    pub fn new(kernel: &'a CompiledKernel, nd: NdRange, args: Vec<ArgValue>) -> Self {
        Self { kernel, nd, args }
    }
}

/// What one device did during a partitioned launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRun {
    pub device: DeviceId,
    /// The slice of the split dimension this device executed.
    pub chunk_start: usize,
    pub chunk_end: usize,
    /// The measured/extrapolated dynamic shape of the chunk.
    pub shape: WorkloadShape,
    /// Simulated time on this device.
    pub time: TimeBreakdown,
}

/// The result of one partitioned launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    pub partition: Partition,
    /// One entry per device that received work.
    pub device_runs: Vec<DeviceRun>,
    /// End-to-end simulated launch time in seconds.
    pub time: f64,
}

impl ExecutionReport {
    /// The slowest device's breakdown (the launch critical path).
    pub fn critical_device(&self) -> Option<&DeviceRun> {
        self.device_runs
            .iter()
            .max_by(|a, b| a.time.total.total_cmp(&b.time.total))
    }
}

/// A pre-planned execution: the chosen partition plus the per-chunk data
/// that [`Executor::run`] would otherwise recompute on every launch
/// (transfer sizes from the access analysis, a divergence estimate from
/// probe sampling). Built once by [`Executor::plan_execution`]; repeat
/// launches of the same (kernel, launch shape) replay it through
/// [`Executor::run_planned`] and pay only for the kernel work itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPlan {
    pub partition: Partition,
    /// The NDRange the plan was built for: transfer sizes depend on the
    /// chunk boundaries *and* the non-split dimensions, so replaying the
    /// plan against any other range would silently misprice the launch.
    /// [`Executor::run_planned`] validates it.
    pub nd: NdRange,
    /// `(bytes_in, bytes_out)` per device, aligned with
    /// `partition.chunks(extent)` (empty chunks hold `(0, 0)`).
    pub transfers: Vec<(u64, u64)>,
    /// Launch-level control-flow divergence estimate in `[0, 1]`.
    pub divergence: f64,
}

/// Work-items to sample per chunk when estimating dynamic behaviour.
pub const DEFAULT_SAMPLE_ITEMS: usize = 128;

/// The multi-device executor.
///
/// The machine description is behind an [`Arc`] so executors are cheap to
/// clone and share across deployment-service workers: a clone copies two
/// words, not the device profile table.
#[derive(Debug, Clone)]
pub struct Executor {
    pub machine: Arc<Machine>,
    /// Per-chunk sample budget for `simulate` and divergence estimation.
    pub sample_items: usize,
    /// Optional fault-injection state consulted by [`Executor::run_planned`]
    /// before every device chunk (the *serving* execution path). `None` —
    /// the default — injects nothing; the training/probing paths
    /// ([`Executor::run`], [`Executor::simulate`]) never consult it, so an
    /// oracle sweep is always fault-free. Shared behind an `Arc`: every
    /// executor clone of a worker pool sees one global fault timeline.
    pub faults: Option<Arc<FaultState>>,
}

impl Executor {
    /// Create an executor for a machine.
    pub fn new(machine: Machine) -> Self {
        Self::with_shared(Arc::new(machine))
    }

    /// Create an executor sharing an already-wrapped machine (the
    /// deployment service hands the same `Arc` to every worker).
    pub fn with_shared(machine: Arc<Machine>) -> Self {
        Self {
            machine,
            sample_items: DEFAULT_SAMPLE_ITEMS,
            faults: None,
        }
    }

    /// The same executor with fault injection armed on the planned
    /// execution path.
    pub fn with_faults(mut self, faults: Arc<FaultState>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Execute a launch **functionally**: every work-item runs, the output
    /// buffers in `bufs` receive the kernel's results, and the simulated
    /// time uses exact dynamic counts.
    pub fn run(
        &self,
        launch: &Launch,
        bufs: &mut [BufferData],
        partition: &Partition,
    ) -> Result<ExecutionReport, VmError> {
        self.execute(launch, bufs, partition, true)
    }

    /// Estimate a launch without observable effects: each chunk is sampled
    /// on scratch copies of the buffers and extrapolated. Orders of
    /// magnitude faster for large NDRanges; used by the training sweep.
    pub fn simulate(
        &self,
        launch: &Launch,
        bufs: &[BufferData],
        partition: &Partition,
    ) -> Result<ExecutionReport, VmError> {
        let mut scratch = bufs.to_vec();
        self.execute(launch, &mut scratch, partition, false)
    }

    /// Estimate a launch from a pre-collected [`LaunchProfile`]: no kernel
    /// execution happens at all — chunk counts come from the profile,
    /// transfer sizes from the access analysis. This is what the training
    /// sweep uses (one profile per launch, 66 partitionings priced from
    /// it).
    pub fn simulate_with_profile(
        &self,
        launch: &Launch,
        bufs: &[BufferData],
        partition: &Partition,
        profile: &crate::profile::LaunchProfile,
    ) -> ExecutionReport {
        let kernel = launch.kernel;
        let nd = &launch.nd;
        let scalars = scalar_values(kernel, &launch.args);
        self.price_with_profile(launch, partition, profile, |chunk| {
            transfer_bytes(kernel, nd, chunk, &scalars, &launch.args, bufs)
        })
    }

    /// Price one device's chunk of a launch from a pre-collected profile
    /// and known transfer sizes. This is the atomic pricing unit that both
    /// the full sweep ([`Executor::price_with_profile`]) and the pruned
    /// branch-and-bound sweep ([`crate::sweep::sweep_many_mode`]) compose,
    /// which is what keeps their per-device times bit-identical.
    pub fn price_chunk(
        &self,
        launch: &Launch,
        dev: DeviceId,
        chunk: Range<usize>,
        profile: &crate::profile::LaunchProfile,
        transfer: (u64, u64),
    ) -> DeviceRun {
        let (bytes_in, bytes_out) = transfer;
        let (counts, divergence) = profile.estimate(chunk.clone());
        let coalesced = coalesced_fraction(launch.kernel);
        let shape = workload_shape(&counts, bytes_in, bytes_out, divergence, coalesced);
        let time = estimate_time(self.machine.device(dev), &shape);
        DeviceRun {
            device: dev,
            chunk_start: chunk.start,
            chunk_end: chunk.end,
            shape,
            time,
        }
    }

    /// Assert that a partition addresses exactly this machine's devices.
    fn check_arity(&self, partition: &Partition) {
        assert_eq!(
            partition.num_devices(),
            self.machine.num_devices(),
            "partition is for {} devices but machine `{}` has {}",
            partition.num_devices(),
            self.machine.name,
            self.machine.num_devices()
        );
    }

    /// Assemble the launch report from per-device runs: the slowest
    /// device is the critical path, plus the multi-device coordination
    /// overhead. Every execution/pricing path ends here, so planned,
    /// unplanned and profiled reports can never diverge in shape.
    fn finish_report(&self, partition: &Partition, device_runs: Vec<DeviceRun>) -> ExecutionReport {
        let slowest = device_runs.iter().map(|r| r.time.total).fold(0.0, f64::max);
        let coordination = self.coordination_overhead(device_runs.len());
        ExecutionReport {
            partition: partition.clone(),
            device_runs,
            time: slowest + coordination,
        }
    }

    /// The coordination overhead a launch pays when `active_devices` > 1.
    pub fn coordination_overhead(&self, active_devices: usize) -> f64 {
        if active_devices > 1 {
            self.machine.multi_device_overhead_us * 1e-6
        } else {
            0.0
        }
    }

    /// Price one partitioning of a launch from a pre-collected profile,
    /// with transfer sizes supplied by `transfer` — either a direct
    /// [`transfer_bytes`] call (see [`Executor::simulate_with_profile`])
    /// or a per-launch access-analysis cache (the batched training sweep,
    /// [`crate::sweep::sweep_many`]). Both paths run exactly this code,
    /// so cached and uncached pricing are bit-identical.
    pub fn price_with_profile<F>(
        &self,
        launch: &Launch,
        partition: &Partition,
        profile: &crate::profile::LaunchProfile,
        mut transfer: F,
    ) -> ExecutionReport
    where
        F: FnMut(Range<usize>) -> (u64, u64),
    {
        self.check_arity(partition);
        let nd = &launch.nd;
        let chunks = partition.chunks(nd.split_extent());

        let mut device_runs = Vec::new();
        for (dev, chunk) in self.machine.device_ids().zip(&chunks) {
            if chunk.is_empty() {
                continue;
            }
            let t = transfer(chunk.clone());
            device_runs.push(self.price_chunk(launch, dev, chunk.clone(), profile, t));
        }
        self.finish_report(partition, device_runs)
    }

    /// Build an [`ExecPlan`] for one partitioning of a launch: the access
    /// analysis runs once per chunk *now* so that [`Executor::run_planned`]
    /// never has to. `divergence` is the launch-level control-flow
    /// divergence estimate (typically from the runtime-feature probe).
    pub fn plan_execution(
        &self,
        launch: &Launch,
        bufs: &[BufferData],
        partition: &Partition,
        divergence: f64,
    ) -> ExecPlan {
        let kernel = launch.kernel;
        let nd = &launch.nd;
        let scalars = scalar_values(kernel, &launch.args);
        let transfers = partition
            .chunks(nd.split_extent())
            .into_iter()
            .map(|chunk| transfer_bytes(kernel, nd, chunk, &scalars, &launch.args, bufs))
            .collect();
        ExecPlan {
            partition: partition.clone(),
            nd: nd.clone(),
            transfers,
            divergence: divergence.clamp(0.0, 1.0),
        }
    }

    /// Execute a pre-planned launch: only the kernel work itself runs.
    ///
    /// Compared to [`Executor::run`], this skips the scratch buffer clone,
    /// the per-chunk divergence probe, and the per-chunk access analysis —
    /// transfer sizes and the divergence estimate come from the plan, and
    /// exact dynamic counts fall out of the functional execution for free.
    /// Output buffers receive results bit-identical to [`Executor::run`]
    /// with the same partition (both paths run `run_range` on the same
    /// chunks); only the simulated-time breakdown may differ, because the
    /// plan carries one launch-level divergence estimate instead of a
    /// fresh per-chunk sample.
    ///
    /// When fault injection is armed ([`Executor::with_faults`]), each
    /// device's verdict is taken *before* its chunk runs: a faulted
    /// launch never partially executes the faulting chunk, and a chunk
    /// that runs is always complete. A verdict consumes one launch
    /// ordinal on the device; devices with an empty chunk are never
    /// consulted, so a degraded re-plan that routes around a dead device
    /// stops advancing that device's fault timeline.
    pub fn run_planned(
        &self,
        launch: &Launch,
        bufs: &mut [BufferData],
        plan: &ExecPlan,
    ) -> Result<ExecutionReport, LaunchError> {
        let partition = &plan.partition;
        self.check_arity(partition);
        let kernel = launch.kernel;
        let nd = &launch.nd;
        Vm::check_args(&kernel.bytecode, &launch.args, bufs)?;

        assert_eq!(
            *nd, plan.nd,
            "plan was built for NDRange {:?} but the launch uses {:?} — \
             re-plan instead of replaying stale transfer sizes",
            plan.nd, nd
        );
        let chunks = partition.chunks(nd.split_extent());
        let coalesced = coalesced_fraction(kernel);

        let mut device_runs = Vec::new();
        let mut vm = Vm::new();
        for ((dev, chunk), &(bytes_in, bytes_out)) in
            self.machine.device_ids().zip(&chunks).zip(&plan.transfers)
        {
            if chunk.is_empty() {
                continue;
            }
            let mut slowdown = 1.0;
            if let Some(fs) = &self.faults {
                match fs.verdict(dev, kernel.fingerprint) {
                    FaultVerdict::Healthy { slowdown: s } => slowdown = s,
                    FaultVerdict::Transient => {
                        return Err(LaunchError::DeviceFault {
                            device: dev,
                            device_name: self.machine.devices[dev.0].name.clone(),
                            permanent: false,
                        })
                    }
                    FaultVerdict::Dead => {
                        return Err(LaunchError::DeviceFault {
                            device: dev,
                            device_name: self.machine.devices[dev.0].name.clone(),
                            permanent: true,
                        })
                    }
                    FaultVerdict::Panic => {
                        panic!("injected fault: {dev} driver crashed mid-launch")
                    }
                }
            }
            let c = vm.run_range(&kernel.bytecode, nd, chunk.clone(), &launch.args, bufs)?;
            let counts = dynamic_counts(&kernel.bytecode, &c);
            let shape = workload_shape(&counts, bytes_in, bytes_out, plan.divergence, coalesced);
            let time = estimate_time(self.machine.device(dev), &shape).scaled(slowdown);
            device_runs.push(DeviceRun {
                device: dev,
                chunk_start: chunk.start,
                chunk_end: chunk.end,
                shape,
                time,
            });
        }

        Ok(self.finish_report(partition, device_runs))
    }

    fn execute(
        &self,
        launch: &Launch,
        bufs: &mut [BufferData],
        partition: &Partition,
        full: bool,
    ) -> Result<ExecutionReport, VmError> {
        self.check_arity(partition);
        let kernel = launch.kernel;
        let nd = &launch.nd;
        Vm::check_args(&kernel.bytecode, &launch.args, bufs)?;

        let chunks = partition.chunks(nd.split_extent());
        let coalesced = coalesced_fraction(kernel);
        let scalars = scalar_values(kernel, &launch.args);

        // Divergence estimation (and, in simulate mode, op counting) runs
        // sampled items against scratch buffers so it never perturbs the
        // real outputs.
        let mut scratch: Option<Vec<BufferData>> = None;

        let mut device_runs = Vec::new();
        let mut vm = Vm::new();
        for (dev, chunk) in self.machine.device_ids().zip(&chunks) {
            if chunk.is_empty() {
                continue;
            }
            let (bytes_in, bytes_out) =
                transfer_bytes(kernel, nd, chunk.clone(), &scalars, &launch.args, bufs);

            let scratch_bufs = scratch.get_or_insert_with(|| bufs.to_vec());
            let sample = vm.run_sampled(
                &kernel.bytecode,
                nd,
                chunk.clone(),
                &launch.args,
                scratch_bufs,
                self.sample_items,
            )?;
            let divergence = sample.ops_cv.clamp(0.0, 1.0);

            let counts: DynamicCounts = if full {
                let c = vm.run_range(&kernel.bytecode, nd, chunk.clone(), &launch.args, bufs)?;
                dynamic_counts(&kernel.bytecode, &c)
            } else {
                sample.extrapolated(&kernel.bytecode)
            };

            let shape = workload_shape(&counts, bytes_in, bytes_out, divergence, coalesced);
            let time = estimate_time(self.machine.device(dev), &shape);
            device_runs.push(DeviceRun {
                device: dev,
                chunk_start: chunk.start,
                chunk_end: chunk.end,
                shape,
                time,
            });
        }

        Ok(self.finish_report(partition, device_runs))
    }
}

/// Static coalescing estimate: the fraction of buffer accesses whose index
/// is derived from the global id.
pub fn coalesced_fraction(kernel: &CompiledKernel) -> f64 {
    let f = &kernel.static_features;
    let accesses = f.loads + f.stores;
    if accesses == 0 {
        return 1.0;
    }
    (f64::from(f.gid_accesses) / f64::from(accesses)).clamp(0.0, 1.0)
}

/// Extract integer scalar argument values for the access analysis.
pub fn scalar_values(kernel: &CompiledKernel, args: &[ArgValue]) -> Vec<Option<i64>> {
    kernel
        .ir
        .params
        .iter()
        .zip(args)
        .map(|(p, a)| match (p.kind, a) {
            (ParamKind::Scalar(ScalarType::Int), ArgValue::Int(v)) => Some(i64::from(*v)),
            (ParamKind::Scalar(ScalarType::UInt), ArgValue::UInt(v)) => Some(i64::from(*v)),
            _ => None,
        })
        .collect()
}

/// Compute the bytes a device must receive before and send back after
/// executing `chunk`, using the interval access analysis. The union is
/// over read buffers (host→device) and written buffers (device→host).
///
/// An empty chunk transfers nothing: without the guard the split-dim
/// bound `chunk.end - 1` would sit *below* `chunk.start`, handing the
/// access analysis an inverted gid interval (internal callers skip empty
/// chunks, but this is a `pub` API).
pub fn transfer_bytes(
    kernel: &CompiledKernel,
    nd: &NdRange,
    chunk: Range<usize>,
    scalars: &[Option<i64>],
    args: &[ArgValue],
    bufs: &[BufferData],
) -> (u64, u64) {
    if chunk.is_empty() {
        return (0, 0);
    }
    let mut gid = [(0i64, 0i64); 3];
    for (d, g) in gid.iter_mut().enumerate() {
        *g = (0, nd.dim(d) as i64 - 1);
    }
    gid[nd.split_dim()] = (chunk.start as i64, chunk.end as i64 - 1);
    let bounds = LaunchBounds {
        gid,
        gsize: [nd.dim(0) as i64, nd.dim(1) as i64, nd.dim(2) as i64],
        scalars: scalars.to_vec(),
    };
    let ranges = access_ranges(&kernel.ir, &bounds);

    let buffer = |param_idx: usize| -> Option<&BufferData> {
        match args.get(param_idx) {
            Some(ArgValue::Buffer(b)) => bufs.get(*b),
            _ => None,
        }
    };
    let range_bytes = |r: &BufferRange, len: usize, elem_bytes: u64| -> u64 {
        match *r {
            BufferRange::Untouched => 0,
            BufferRange::Whole => len as u64 * elem_bytes,
            BufferRange::Exact { lo, hi } => {
                let lo = lo.max(0);
                let hi = hi.min(len as i64 - 1);
                if hi < lo {
                    0
                } else {
                    (hi - lo + 1) as u64 * elem_bytes
                }
            }
        }
    };

    let mut bytes_in = 0u64;
    let mut bytes_out = 0u64;
    for (i, _) in kernel.ir.params.iter().enumerate() {
        let Some(bd) = buffer(i) else { continue };
        let (len, eb) = (bd.len(), bd.elem_bytes() as u64);
        bytes_in += range_bytes(&ranges.read[i], len, eb);
        bytes_out += range_bytes(&ranges.write[i], len, eb);
    }
    (bytes_in, bytes_out)
}

/// Assemble the cost-model input from dynamic counts and transfer sizes.
pub fn workload_shape(
    d: &DynamicCounts,
    bytes_in: u64,
    bytes_out: u64,
    divergence: f64,
    coalesced_fraction: f64,
) -> WorkloadShape {
    use hetpart_inspire::bytecode::OpClass::*;
    WorkloadShape {
        items: d.items,
        int_ops: d.per_class[IntOp as usize],
        float_ops: d.per_class[FloatOp as usize],
        transcendental_ops: d.per_class[Transcendental as usize],
        cmp_ops: d.per_class[Cmp as usize],
        branch_ops: d.per_class[Branch as usize],
        other_ops: d.per_class[Other as usize],
        loads: d.per_class[Load as usize],
        stores: d.per_class[Store as usize],
        bytes_in,
        bytes_out,
        divergence,
        coalesced_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpart_inspire::compile;
    use hetpart_oclsim::machines;

    const VEC_ADD: &str = "kernel void vec_add(global const float* a, global const float* b,
                                               global float* c, int n) {
        int i = get_global_id(0);
        if (i < n) { c[i] = a[i] + b[i]; }
    }";

    fn vec_add_setup(n: usize) -> (Vec<BufferData>, Vec<ArgValue>) {
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| (2 * i) as f32).collect();
        let bufs = vec![
            BufferData::F32(a),
            BufferData::F32(b),
            BufferData::F32(vec![0.0; n]),
        ];
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Buffer(2),
            ArgValue::Int(n as i32),
        ];
        (bufs, args)
    }

    #[test]
    fn partitioned_run_equals_single_device_run() {
        let k = compile(VEC_ADD).unwrap();
        let n = 1000;
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(n), vec_add_setup(n).1);

        let (mut ref_bufs, _) = vec_add_setup(n);
        ex.run(&launch, &mut ref_bufs, &Partition::cpu_only(3))
            .unwrap();

        for p in [
            Partition::from_tenths(vec![3, 4, 3]),
            Partition::from_tenths(vec![0, 5, 5]),
            Partition::even(3),
        ] {
            let (mut bufs, _) = vec_add_setup(n);
            ex.run(&launch, &mut bufs, &p).unwrap();
            assert_eq!(
                bufs[2].as_f32().unwrap(),
                ref_bufs[2].as_f32().unwrap(),
                "partition {p} must produce identical results"
            );
        }
    }

    #[test]
    fn simulate_does_not_touch_buffers() {
        let k = compile(VEC_ADD).unwrap();
        let n = 512;
        let (bufs, args) = vec_add_setup(n);
        let before = bufs.clone();
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(n), args);
        ex.simulate(&launch, &bufs, &Partition::even(3)).unwrap();
        assert_eq!(bufs, before);
    }

    #[test]
    fn report_covers_active_devices_only() {
        let k = compile(VEC_ADD).unwrap();
        let n = 100;
        let (bufs, args) = vec_add_setup(n);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(n), args);
        let r = ex
            .simulate(&launch, &bufs, &Partition::from_tenths(vec![5, 0, 5]))
            .unwrap();
        assert_eq!(r.device_runs.len(), 2);
        assert_eq!(r.device_runs[0].device, DeviceId(0));
        assert_eq!(r.device_runs[1].device, DeviceId(2));
        assert!(r.critical_device().is_some());
    }

    #[test]
    fn multi_device_pays_coordination_overhead() {
        let k = compile(VEC_ADD).unwrap();
        let n = 64;
        let (bufs, args) = vec_add_setup(n);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(n), args);
        let single = ex
            .simulate(&launch, &bufs, &Partition::cpu_only(3))
            .unwrap();
        assert_eq!(
            single.time, single.device_runs[0].time.total,
            "single device launch has no coordination overhead"
        );
        let multi = ex.simulate(&launch, &bufs, &Partition::even(3)).unwrap();
        let slowest = multi
            .device_runs
            .iter()
            .map(|r| r.time.total)
            .fold(0.0, f64::max);
        assert!(multi.time > slowest);
    }

    #[test]
    fn transfer_bytes_scale_with_chunk() {
        let k = compile(VEC_ADD).unwrap();
        let n = 1000usize;
        let (bufs, args) = vec_add_setup(n);
        let scalars = scalar_values(&k, &args);
        let nd = NdRange::d1(n);
        let (in_all, out_all) = transfer_bytes(&k, &nd, 0..n, &scalars, &args, &bufs);
        // Whole range: two 4000-byte inputs in, one 4000-byte output back.
        assert_eq!(in_all, 8000);
        assert_eq!(out_all, 4000);
        let (in_half, out_half) = transfer_bytes(&k, &nd, 0..n / 2, &scalars, &args, &bufs);
        assert_eq!(in_half, 4000);
        assert_eq!(out_half, 2000);
    }

    #[test]
    fn indirect_kernel_transfers_whole_input() {
        let gather = compile(
            "kernel void gather(global const int* idx, global const float* v,
                                global float* o, int n) {
                int i = get_global_id(0);
                o[i] = v[idx[i]];
            }",
        )
        .unwrap();
        let n = 100usize;
        let bufs = vec![
            BufferData::I32((0..n as i32).rev().collect()),
            BufferData::F32(vec![1.0; n]),
            BufferData::F32(vec![0.0; n]),
        ];
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Buffer(2),
            ArgValue::Int(n as i32),
        ];
        let scalars = scalar_values(&gather, &args);
        let nd = NdRange::d1(n);
        let (bytes_in, _) = transfer_bytes(&gather, &nd, 0..10, &scalars, &args, &bufs);
        // idx: 10 elements exactly; v: whole buffer (data-dependent).
        assert_eq!(bytes_in, 10 * 4 + (n as u64) * 4);
    }

    #[test]
    fn coalesced_fraction_reflects_access_pattern() {
        let direct = compile(VEC_ADD).unwrap();
        assert!(coalesced_fraction(&direct) > 0.99);
        let gather = compile(
            "kernel void g(global const int* idx, global const float* v, global float* o) {
                int i = get_global_id(0);
                o[i] = v[idx[i]];
            }",
        )
        .unwrap();
        let f = coalesced_fraction(&gather);
        assert!(f < 1.0 && f > 0.0, "gather mixes direct and indirect: {f}");
    }

    #[test]
    fn full_counts_match_extrapolated_counts_for_uniform_kernel() {
        let k = compile(VEC_ADD).unwrap();
        let n = 4096;
        let (mut bufs, args) = vec_add_setup(n);
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(n), args);
        let p = Partition::gpu_only(3);
        let full = ex.run(&launch, &mut bufs, &p).unwrap();
        let (bufs2, _) = vec_add_setup(n);
        let sim = ex.simulate(&launch, &bufs2, &p).unwrap();
        let sf = full.device_runs[0].shape;
        let ss = sim.device_runs[0].shape;
        assert_eq!(sf.items, ss.items);
        assert_eq!(sf.loads, ss.loads);
        assert_eq!(sf.float_ops, ss.float_ops);
        assert_eq!(sf.bytes_in, ss.bytes_in);
    }

    #[test]
    fn empty_chunk_transfers_nothing() {
        // `transfer_bytes` is a pub API: an empty chunk used to produce an
        // inverted split-dim bound (`end - 1 < start`) and garbage sizes.
        let k = compile(VEC_ADD).unwrap();
        let n = 100usize;
        let (bufs, args) = vec_add_setup(n);
        let scalars = scalar_values(&k, &args);
        let nd = NdRange::d1(n);
        assert_eq!(
            transfer_bytes(&k, &nd, 50..50, &scalars, &args, &bufs),
            (0, 0)
        );
        assert_eq!(
            transfer_bytes(&k, &nd, 0..0, &scalars, &args, &bufs),
            (0, 0)
        );
    }

    #[test]
    fn transfer_bytes_use_buffer_element_width() {
        // Sizes must come from `BufferData::elem_bytes`, not a hardcoded 4.
        for bd in [
            BufferData::F32(vec![0.0; 8]),
            BufferData::I32(vec![0; 8]),
            BufferData::U32(vec![0; 8]),
        ] {
            assert_eq!(bd.elem_bytes(), 4);
            assert_eq!(bd.size_bytes(), 8 * bd.elem_bytes());
        }
        let k = compile(
            "kernel void copy_i(global const int* a, global int* o) {
                int i = get_global_id(0);
                o[i] = a[i];
            }",
        )
        .unwrap();
        let n = 64usize;
        let bufs = vec![BufferData::I32(vec![1; n]), BufferData::I32(vec![0; n])];
        let args = vec![ArgValue::Buffer(0), ArgValue::Buffer(1)];
        let scalars = scalar_values(&k, &args);
        let (bytes_in, bytes_out) =
            transfer_bytes(&k, &NdRange::d1(n), 0..16, &scalars, &args, &bufs);
        let eb = bufs[0].elem_bytes() as u64;
        assert_eq!(bytes_in, 16 * eb);
        assert_eq!(bytes_out, 16 * eb);
    }

    #[test]
    fn run_planned_matches_run_outputs_and_partition() {
        let k = compile(VEC_ADD).unwrap();
        let n = 1000;
        let ex = Executor::new(machines::mc2());
        let launch = Launch::new(&k, NdRange::d1(n), vec_add_setup(n).1);
        for p in [
            Partition::even(3),
            Partition::gpu_only(3),
            Partition::from_tenths(vec![2, 0, 8]),
        ] {
            let (mut ref_bufs, _) = vec_add_setup(n);
            let ref_report = ex.run(&launch, &mut ref_bufs, &p).unwrap();

            let (bufs, _) = vec_add_setup(n);
            let plan = ex.plan_execution(&launch, &bufs, &p, 0.0);
            let mut planned_bufs = bufs;
            let planned = ex.run_planned(&launch, &mut planned_bufs, &plan).unwrap();

            assert_eq!(planned_bufs[2], ref_bufs[2], "{p}: outputs must match");
            assert_eq!(planned.partition, ref_report.partition);
            assert_eq!(planned.device_runs.len(), ref_report.device_runs.len());
            // Transfer sizes and exact counts agree with the unplanned path.
            for (a, b) in planned.device_runs.iter().zip(&ref_report.device_runs) {
                assert_eq!(a.shape.bytes_in, b.shape.bytes_in);
                assert_eq!(a.shape.bytes_out, b.shape.bytes_out);
                assert_eq!(a.shape.items, b.shape.items);
            }
        }
    }

    #[test]
    fn injected_faults_surface_as_typed_errors_and_spare_idle_devices() {
        use hetpart_oclsim::fault::{DeviceFaults, FaultPlan};
        let k = compile(VEC_ADD).unwrap();
        let n = 256;
        let (bufs, args) = vec_add_setup(n);
        let plan_spec = FaultPlan {
            seed: 9,
            faults: vec![DeviceFaults {
                transient_rate: 1.0,
                ..DeviceFaults::none(1)
            }],
        };
        let machine = machines::mc2();
        let state = Arc::new(machine.fault_state(&plan_spec).unwrap());
        let ex = Executor::new(machine).with_faults(Arc::clone(&state));
        let launch = Launch::new(&k, NdRange::d1(n), args);

        // A partition using the faulty device fails with a typed error.
        let p = Partition::even(3);
        let plan = ex.plan_execution(&launch, &bufs, &p, 0.0);
        let mut attempt = bufs.clone();
        let err = ex.run_planned(&launch, &mut attempt, &plan).unwrap_err();
        assert_eq!(
            err,
            LaunchError::DeviceFault {
                device: DeviceId(1),
                device_name: "NVIDIA GeForce GTX 480".into(),
                permanent: false
            }
        );
        assert!(
            err.to_string().contains("`NVIDIA GeForce GTX 480`"),
            "fault errors must name the device: {err}"
        );

        // A partition avoiding it succeeds, and never consults its fault
        // timeline (ordinals advance only for devices that get chunks).
        let before = state.launch_counts();
        let degraded = p.excluding(&[1]).unwrap();
        let plan = ex.plan_execution(&launch, &bufs, &degraded, 0.0);
        let mut ok_bufs = bufs.clone();
        ex.run_planned(&launch, &mut ok_bufs, &plan).unwrap();
        let after = state.launch_counts();
        assert_eq!(before[1], after[1], "idle device consumed an ordinal");

        // Outputs equal the fault-free reference despite the re-route.
        let (mut ref_bufs, _) = vec_add_setup(n);
        Executor::new(machines::mc2())
            .run(&launch, &mut ref_bufs, &Partition::even(3))
            .unwrap();
        assert_eq!(ok_bufs[2], ref_bufs[2]);
    }

    #[test]
    fn slowdown_scales_simulated_time_not_outputs() {
        use hetpart_oclsim::fault::{DeviceFaults, FaultPlan};
        let k = compile(VEC_ADD).unwrap();
        let n = 512;
        let (bufs, args) = vec_add_setup(n);
        let launch = Launch::new(&k, NdRange::d1(n), args);
        let p = Partition::cpu_only(3);

        let healthy = Executor::new(machines::mc2());
        let plan = healthy.plan_execution(&launch, &bufs, &p, 0.0);
        let mut fast_bufs = bufs.clone();
        let fast = healthy.run_planned(&launch, &mut fast_bufs, &plan).unwrap();

        let spec = FaultPlan {
            seed: 0,
            faults: vec![DeviceFaults {
                slowdown: 3.0,
                ..DeviceFaults::none(0)
            }],
        };
        let machine = machines::mc2();
        let state = Arc::new(machine.fault_state(&spec).unwrap());
        let slow_ex = Executor::new(machine).with_faults(state);
        let mut slow_bufs = bufs.clone();
        let slow = slow_ex.run_planned(&launch, &mut slow_bufs, &plan).unwrap();

        assert_eq!(slow_bufs, fast_bufs, "a slow device still computes");
        let t_fast = fast.device_runs[0].time.total;
        let t_slow = slow.device_runs[0].time.total;
        assert!(
            (t_slow - 3.0 * t_fast).abs() <= 1e-12 * t_slow,
            "slowdown 3.0: {t_slow} vs {t_fast}"
        );
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn injected_panic_panics() {
        use hetpart_oclsim::fault::{DeviceFaults, FaultPlan};
        let k = compile(VEC_ADD).unwrap();
        let n = 64;
        let (mut bufs, args) = vec_add_setup(n);
        let spec = FaultPlan {
            seed: 0,
            faults: vec![DeviceFaults {
                panics_at_launch: Some(0),
                ..DeviceFaults::none(0)
            }],
        };
        let machine = machines::mc2();
        let state = Arc::new(machine.fault_state(&spec).unwrap());
        let ex = Executor::new(machine).with_faults(state);
        let launch = Launch::new(&k, NdRange::d1(n), args.clone());
        let plan = ex.plan_execution(&launch, &bufs, &Partition::cpu_only(3), 0.0);
        let _ = ex.run_planned(&launch, &mut bufs, &plan);
    }

    #[test]
    #[should_panic(expected = "partition is for")]
    fn wrong_partition_arity_panics() {
        let k = compile(VEC_ADD).unwrap();
        let (mut bufs, args) = vec_add_setup(16);
        let ex = Executor::new(machines::mc1());
        let launch = Launch::new(&k, NdRange::d1(16), args);
        let _ = ex.run(&launch, &mut bufs, &Partition::from_tenths(vec![5, 5]));
    }
}
