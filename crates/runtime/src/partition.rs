//! Task partitionings: how an NDRange is split across devices.
//!
//! Following the paper, "p is selected from a discretized partitioning
//! space with a stepsize of 10%": a partitioning assigns each device a
//! multiple of 10% of the split dimension, summing to 100%.

use hetpart_oclsim::Machine;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// Granularity denominator of the partition space (10% steps).
pub const TENTHS: u8 = 10;

/// A task partitioning: per-device shares in tenths (10% units), summing
/// to [`TENTHS`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Partition {
    shares: Vec<u8>,
}

impl Partition {
    /// Build from per-device tenths.
    ///
    /// # Panics
    /// Panics if the shares do not sum to 10 — partitions come from
    /// [`Partition::enumerate`] or explicit constructors, so anything else
    /// is a programming error.
    pub fn from_tenths(shares: Vec<u8>) -> Self {
        assert!(!shares.is_empty(), "partition needs at least one device");
        let sum: u32 = shares.iter().map(|&s| u32::from(s)).sum();
        assert_eq!(
            sum,
            u32::from(TENTHS),
            "partition shares must sum to 10, got {shares:?}"
        );
        Self { shares }
    }

    /// All work on a single device.
    pub fn single_device(device: usize, num_devices: usize) -> Self {
        assert!(device < num_devices);
        let mut shares = vec![0; num_devices];
        shares[device] = TENTHS;
        Self { shares }
    }

    /// The CPU-only default strategy (device 0 by convention).
    pub fn cpu_only(num_devices: usize) -> Self {
        Self::single_device(0, num_devices)
    }

    /// The GPU-only default strategy (device 1, the first accelerator).
    ///
    /// # Panics
    /// Panics if the machine has no accelerator.
    pub fn gpu_only(num_devices: usize) -> Self {
        assert!(num_devices > 1, "gpu_only requires an accelerator device");
        Self::single_device(1, num_devices)
    }

    /// An even split across all devices (remainder to the first devices).
    ///
    /// With more than [`TENTHS`] devices the 10% granularity cannot give
    /// every device work: the first ten devices get one tenth each and the
    /// rest get zero. The share arithmetic is done in `usize` — a truncating
    /// cast of `num_devices` to `u8` would divide by zero for 256 devices.
    pub fn even(num_devices: usize) -> Self {
        assert!(
            num_devices > 0,
            "even() needs at least one device, got {num_devices}"
        );
        let base = usize::from(TENTHS) / num_devices;
        let mut rem = usize::from(TENTHS) % num_devices;
        let shares = (0..num_devices)
            .map(|_| {
                let extra = usize::from(rem > 0);
                rem = rem.saturating_sub(1);
                (base + extra) as u8
            })
            .collect();
        Self { shares }
    }

    /// Enumerate the whole partition space for `num_devices` devices at a
    /// step of `step_tenths` (1 ⇒ the paper's 10% granularity; 2 ⇒ 20%
    /// steps, etc.). Shares are multiples of the step; the space is every
    /// composition of 10 into `num_devices` such multiples.
    pub fn enumerate(num_devices: usize, step_tenths: u8) -> Vec<Partition> {
        assert!(num_devices >= 1);
        assert!(
            (1..=TENTHS).contains(&step_tenths) && TENTHS.is_multiple_of(step_tenths),
            "step must divide 10"
        );
        let mut out = Vec::new();
        let mut shares = vec![0u8; num_devices];
        fn rec(shares: &mut Vec<u8>, idx: usize, left: u8, step: u8, out: &mut Vec<Partition>) {
            if idx == shares.len() - 1 {
                shares[idx] = left;
                out.push(Partition {
                    shares: shares.clone(),
                });
                return;
            }
            let mut s = 0;
            while s <= left {
                shares[idx] = s;
                rec(shares, idx + 1, left - s, step, out);
                s += step;
            }
        }
        rec(&mut shares, 0, TENTHS, step_tenths, &mut out);
        out
    }

    /// Per-device shares in tenths.
    pub fn shares(&self) -> &[u8] {
        &self.shares
    }

    /// Number of devices this partition addresses.
    pub fn num_devices(&self) -> usize {
        self.shares.len()
    }

    /// Devices with a non-zero share.
    pub fn active_devices(&self) -> impl Iterator<Item = usize> + '_ {
        self.shares
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0)
            .map(|(i, _)| i)
    }

    /// How many devices receive work.
    pub fn num_active(&self) -> usize {
        self.active_devices().count()
    }

    /// Whether all work goes to one device.
    pub fn is_single_device(&self) -> bool {
        self.num_active() == 1
    }

    /// Fraction (0..=1) of the work assigned to `device`.
    pub fn fraction(&self, device: usize) -> f64 {
        f64::from(self.shares[device]) / f64::from(TENTHS)
    }

    /// Split `extent` units of the NDRange's split dimension into one
    /// contiguous range per device, proportional to the shares.
    ///
    /// Uses cumulative rounding so the chunks are contiguous, exhaustive
    /// and never overlap; zero-share devices get empty ranges.
    pub fn chunks(&self, extent: usize) -> Vec<Range<usize>> {
        let mut out = Vec::with_capacity(self.shares.len());
        let mut cum = 0u32;
        let mut start = 0usize;
        for &s in &self.shares {
            cum += u32::from(s);
            let end = (extent as u64 * u64::from(cum) / u64::from(TENTHS)) as usize;
            out.push(start..end);
            start = end;
        }
        debug_assert_eq!(start, extent);
        out
    }

    /// A dense class label for ML models: index into the enumeration order
    /// of [`Partition::enumerate`] with the same device count and step 1.
    pub fn class_index(&self, space: &[Partition]) -> Option<usize> {
        space.iter().position(|p| p == self)
    }

    /// The degraded fallback partition when the devices in `avoid` are
    /// unavailable (dead, or behind an open circuit breaker): their
    /// shares move to the surviving devices proportionally to the
    /// survivors' existing shares (largest-remainder rounding, ties to
    /// the lowest device index — fully deterministic). If every share
    /// belonged to avoided devices, all work goes to the lowest-indexed
    /// survivor — device 0 is the CPU by convention, so this is the
    /// CPU-only last resort. Returns `None` only when *no* device
    /// survives.
    pub fn excluding(&self, avoid: &[usize]) -> Option<Partition> {
        let n = self.shares.len();
        let avoided = |i: usize| avoid.contains(&i);
        let first_survivor = (0..n).find(|&i| !avoided(i))?;

        let mut shares: Vec<u8> = self
            .shares
            .iter()
            .enumerate()
            .map(|(i, &s)| if avoided(i) { 0 } else { s })
            .collect();
        let surviving: u32 = shares.iter().map(|&s| u32::from(s)).sum();
        let freed = u32::from(TENTHS) - surviving;
        if freed == 0 {
            return Some(Partition { shares });
        }
        if surviving == 0 {
            shares[first_survivor] = TENTHS;
            return Some(Partition { shares });
        }

        // Largest-remainder redistribution of the freed tenths across the
        // surviving shares.
        let mut fracs: Vec<(u32, usize)> = Vec::new();
        let mut assigned = 0u32;
        for (i, s) in shares.iter_mut().enumerate() {
            if avoided(i) {
                continue;
            }
            let num = freed * u32::from(*s);
            let extra = num / surviving;
            assigned += extra;
            *s += extra as u8;
            fracs.push((num % surviving, i));
        }
        // Highest remainder first; ties broken by the lower device index.
        fracs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut left = freed - assigned;
        for &(_, i) in &fracs {
            if left == 0 {
                break;
            }
            shares[i] += 1;
            left -= 1;
        }
        debug_assert_eq!(left, 0);
        Some(Partition { shares })
    }

    /// Like [`Partition::excluding`], but reports failure as an error
    /// that names the machine and the excluded devices by registry name
    /// instead of returning a bare `None` — for surfacing to operators.
    pub fn excluding_named(&self, machine: &Machine, avoid: &[usize]) -> Result<Partition, String> {
        self.excluding(avoid).ok_or_else(|| {
            let named: Vec<String> = avoid
                .iter()
                .map(|&i| match machine.devices.get(i) {
                    Some(d) => format!("device {i} (`{}`)", d.name),
                    None => format!("device {i} (out of range)"),
                })
                .collect();
            format!(
                "machine `{}`: excluding {} leaves no device to run on",
                machine.name,
                named.join(", ")
            )
        })
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .shares
            .iter()
            .map(|&s| format!("{}", u32::from(s) * 10))
            .collect();
        write!(f, "{}", parts.join("/"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_size_matches_compositions() {
        // Compositions of 10 into 3 parts: C(12, 2) = 66 — the paper's
        // partition space for a 3-device machine at 10% steps.
        assert_eq!(Partition::enumerate(3, 1).len(), 66);
        assert_eq!(Partition::enumerate(2, 1).len(), 11);
        assert_eq!(Partition::enumerate(1, 1).len(), 1);
        // Coarser steps shrink the space: multiples of 2 summing to 10.
        assert_eq!(Partition::enumerate(3, 2).len(), 21);
        assert_eq!(Partition::enumerate(3, 5).len(), 6);
    }

    #[test]
    fn enumeration_is_unique_and_valid() {
        let space = Partition::enumerate(3, 1);
        for p in &space {
            assert_eq!(p.shares().iter().map(|&s| u32::from(s)).sum::<u32>(), 10);
        }
        let mut dedup = space.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), space.len());
    }

    #[test]
    fn single_device_constructors() {
        let c = Partition::cpu_only(3);
        assert_eq!(c.shares(), &[10, 0, 0]);
        assert!(c.is_single_device());
        let g = Partition::gpu_only(3);
        assert_eq!(g.shares(), &[0, 10, 0]);
        assert_eq!(g.fraction(1), 1.0);
    }

    #[test]
    fn even_split_sums_to_ten() {
        assert_eq!(Partition::even(3).shares(), &[4, 3, 3]);
        assert_eq!(Partition::even(2).shares(), &[5, 5]);
        assert_eq!(Partition::even(4).shares(), &[3, 3, 2, 2]);
    }

    #[test]
    fn even_split_handles_more_devices_than_tenths() {
        // 11 devices: ten get one tenth, the eleventh gets zero.
        let p = Partition::even(11);
        assert_eq!(p.shares().iter().map(|&s| u32::from(s)).sum::<u32>(), 10);
        assert_eq!(p.num_active(), 10);
        // 256 devices used to divide by `256 as u8 == 0` and panic.
        let p = Partition::even(256);
        assert_eq!(p.num_devices(), 256);
        assert_eq!(p.shares().iter().map(|&s| u32::from(s)).sum::<u32>(), 10);
        assert!(p.shares()[10..].iter().all(|&s| s == 0));
    }

    #[test]
    fn even_split_boundary_cases() {
        assert_eq!(Partition::even(1).shares(), &[10]);
        assert_eq!(Partition::even(10).shares(), &[1; 10]);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn even_split_rejects_zero_devices() {
        Partition::even(0);
    }

    #[test]
    fn chunks_are_contiguous_exhaustive_disjoint() {
        for extent in [1usize, 7, 10, 33, 1000, 1023] {
            for p in Partition::enumerate(3, 1) {
                let chunks = p.chunks(extent);
                assert_eq!(chunks.len(), 3);
                let mut pos = 0;
                for c in &chunks {
                    assert_eq!(c.start, pos, "contiguous at {p} extent {extent}");
                    pos = c.end;
                }
                assert_eq!(pos, extent, "exhaustive at {p} extent {extent}");
            }
        }
    }

    #[test]
    fn chunk_sizes_are_proportional() {
        let p = Partition::from_tenths(vec![5, 3, 2]);
        let chunks = p.chunks(1000);
        assert_eq!(chunks[0].len(), 500);
        assert_eq!(chunks[1].len(), 300);
        assert_eq!(chunks[2].len(), 200);
    }

    #[test]
    fn zero_share_devices_get_empty_chunks() {
        let p = Partition::from_tenths(vec![10, 0, 0]);
        let chunks = p.chunks(64);
        assert_eq!(chunks[0], 0..64);
        assert!(chunks[1].is_empty());
        assert!(chunks[2].is_empty());
    }

    #[test]
    fn display_is_percentages() {
        assert_eq!(
            Partition::from_tenths(vec![5, 3, 2]).to_string(),
            "50/30/20"
        );
        assert_eq!(Partition::cpu_only(3).to_string(), "100/0/0");
    }

    #[test]
    #[should_panic(expected = "sum to 10")]
    fn invalid_shares_panic() {
        Partition::from_tenths(vec![5, 4]);
    }

    #[test]
    fn class_index_roundtrips() {
        let space = Partition::enumerate(3, 1);
        for (i, p) in space.iter().enumerate() {
            assert_eq!(p.class_index(&space), Some(i));
        }
    }

    #[test]
    fn tenths_is_the_papers_ten_percent_granularity() {
        assert_eq!(TENTHS, 10, "the paper discretizes the space in 10% steps");
        // Every supported granularity divides the space evenly.
        for step in [1u8, 2, 5, 10] {
            assert_eq!(TENTHS % step, 0);
        }
    }

    #[test]
    fn from_tenths_preserves_shares_and_sums_to_tenths() {
        for shares in [
            vec![10],
            vec![5, 5],
            vec![4, 3, 3],
            vec![0, 10, 0],
            vec![1, 2, 3, 4],
        ] {
            let p = Partition::from_tenths(shares.clone());
            assert_eq!(p.shares(), &shares[..]);
            assert_eq!(p.num_devices(), shares.len());
            let sum: u32 = p.shares().iter().map(|&s| u32::from(s)).sum();
            assert_eq!(sum, u32::from(TENTHS));
        }
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn from_tenths_rejects_empty() {
        Partition::from_tenths(vec![]);
    }

    #[test]
    fn every_enumerated_partition_sums_to_tenths_across_steps_and_devices() {
        for num_devices in 1..=4 {
            for step in [1u8, 2, 5, 10] {
                for p in Partition::enumerate(num_devices, step) {
                    let sum: u32 = p.shares().iter().map(|&s| u32::from(s)).sum();
                    assert_eq!(
                        sum,
                        u32::from(TENTHS),
                        "{p} in space ({num_devices}, {step})"
                    );
                    assert!(
                        p.shares().iter().all(|&s| s % step == 0),
                        "{p}: shares must be multiples of the step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunks_tile_the_extent_for_every_space_and_awkward_extent() {
        // Chunk boundaries must stay contiguous, exhaustive and disjoint
        // for every partition of every supported space, including extents
        // smaller than the device count and extents that don't divide by
        // ten.
        for num_devices in 1..=4 {
            for step in [1u8, 2, 5] {
                for extent in [1usize, 2, 3, 9, 10, 11, 127, 1000] {
                    for p in Partition::enumerate(num_devices, step) {
                        let chunks = p.chunks(extent);
                        assert_eq!(chunks.len(), num_devices);
                        let mut pos = 0;
                        for (dev, c) in chunks.iter().enumerate() {
                            assert_eq!(c.start, pos, "{p} extent {extent} device {dev}");
                            assert!(c.end >= c.start);
                            pos = c.end;
                        }
                        assert_eq!(pos, extent, "{p} extent {extent} must be covered");
                    }
                }
            }
        }
    }

    #[test]
    fn excluding_redistributes_proportionally_and_deterministically() {
        // The dead device's share moves to the survivors proportionally.
        let p = Partition::from_tenths(vec![3, 4, 3]);
        assert_eq!(p.excluding(&[1]).unwrap().shares(), &[5, 0, 5]);
        assert_eq!(p.excluding(&[2]).unwrap().shares(), &[4, 6, 0]);
        // Largest-remainder rounding, ties to the lower index.
        let p = Partition::from_tenths(vec![1, 2, 7]);
        assert_eq!(p.excluding(&[2]).unwrap().shares(), &[3, 7, 0]);
        // Excluding an idle device is a no-op.
        let p = Partition::from_tenths(vec![10, 0, 0]);
        assert_eq!(p.excluding(&[1]).unwrap(), p);
        // Every result is a valid partition.
        for p in Partition::enumerate(3, 1) {
            for avoid in [vec![0], vec![1], vec![2], vec![0, 1], vec![1, 2]] {
                let d = p.excluding(&avoid).unwrap();
                let sum: u32 = d.shares().iter().map(|&s| u32::from(s)).sum();
                assert_eq!(sum, 10, "{p} excluding {avoid:?} -> {d}");
                assert!(
                    avoid.iter().all(|&a| d.shares()[a] == 0),
                    "{p} excluding {avoid:?} still uses an avoided device: {d}"
                );
            }
        }
    }

    #[test]
    fn excluding_falls_back_to_first_survivor_and_rejects_total_loss() {
        // All work sat on the avoided device: lowest-index survivor (the
        // CPU when alive) takes everything.
        let p = Partition::from_tenths(vec![0, 10, 0]);
        assert_eq!(p.excluding(&[1]).unwrap().shares(), &[10, 0, 0]);
        assert_eq!(p.excluding(&[0, 1]).unwrap().shares(), &[0, 0, 10]);
        // No survivors at all: no fallback exists.
        assert_eq!(p.excluding(&[0, 1, 2]), None);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Partition::from_tenths(vec![1, 2, 7]);
        let s = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<Partition>(&s).unwrap(), p);
    }

    #[test]
    fn excluding_named_reports_machine_and_device_names() {
        // Regression-locked against a zoo machine: the error must name
        // the machine and every excluded device by registry name.
        let m = hetpart_oclsim::machines::by_name("biglittle");
        let p = Partition::even(3);
        assert_eq!(
            p.excluding_named(&m, &[2]).unwrap(),
            p.excluding(&[2]).unwrap()
        );
        let err = p.excluding_named(&m, &[0, 1, 2]).unwrap_err();
        assert!(err.contains("machine `biglittle`"), "{err}");
        assert!(err.contains("device 0 (`big core cluster (4x)`)"), "{err}");
        assert!(
            err.contains("device 1 (`LITTLE core cluster (4x)`)"),
            "{err}"
        );
        assert!(
            err.contains("device 2 (`mobile GPU (shared memory)`)"),
            "{err}"
        );
    }
}
