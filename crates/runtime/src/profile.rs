//! Launch profiling: sample the NDRange once, estimate any chunk.
//!
//! An exhaustive partition sweep prices 66 partitionings × up to 3 chunks.
//! Sampling every chunk separately re-executes the kernel hundreds of
//! times. Instead, [`LaunchProfile`] executes one stratified sample over
//! the *whole* split extent, remembers each sample's position and dynamic
//! counts, and estimates any chunk `[a, b)` by scaling the counts of the
//! samples that fall inside it. For uniform kernels this is exact; for
//! spatially varying kernels (mandelbrot!) it captures the per-chunk
//! differences the per-chunk sampler would see, at a fraction of the cost.

use hetpart_inspire::bytecode::{Function, N_OP_CLASSES};
use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{
    dynamic_counts, ArgValue, BufferData, Counters, DynamicCounts, OnlineStats, Vm,
};
use hetpart_inspire::{CompiledKernel, VmError};
use std::ops::Range;

/// One sampled work-item: where it sat in the split dimension and what it
/// executed.
#[derive(Debug, Clone)]
struct SamplePoint {
    /// Split-dimension coordinate.
    slice: usize,
    counts: DynamicCounts,
    /// Total dynamic instructions (for divergence statistics).
    ops: f64,
}

/// A VM entry point executing an explicit work-item list — either
/// [`Vm::run_items`] (lane engine) or [`Vm::run_items_scalar`].
type RunItemsFn = fn(
    &mut Vm,
    &Function,
    &NdRange,
    &[[usize; 3]],
    &[ArgValue],
    &mut [BufferData],
) -> Result<Vec<Counters>, VmError>;

/// A sampled execution profile of one launch.
#[derive(Debug, Clone)]
pub struct LaunchProfile {
    extent: usize,
    items_per_slice: usize,
    samples: Vec<SamplePoint>,
}

impl LaunchProfile {
    /// Execute a stratified sample of `max_samples` work-items across the
    /// whole NDRange (on scratch copies of `bufs`) and build the profile.
    ///
    /// All probe items run in one lane-batched [`Vm::run_items`] call —
    /// hundreds of single-item kernel entries collapse into a handful of
    /// lockstep batches, which is where the training oracle spends its
    /// VM time.
    pub fn collect(
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &[BufferData],
        max_samples: usize,
    ) -> Result<Self, VmError> {
        Self::collect_with(kernel, nd, args, bufs, max_samples, Vm::run_items)
    }

    /// [`LaunchProfile::collect`] on the scalar engine — the reference
    /// (and pre-lane-engine) probe path, kept for differential tests and
    /// the `vm_batch` benchmark's baseline.
    pub fn collect_scalar(
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &[BufferData],
        max_samples: usize,
    ) -> Result<Self, VmError> {
        Self::collect_with(kernel, nd, args, bufs, max_samples, Vm::run_items_scalar)
    }

    /// The shared probe-sampling policy: one representative work-item per
    /// stratified slice (the first item of the inner dimensions; see the
    /// uniformity note above), executed by `run_items` — either VM engine.
    fn collect_with(
        kernel: &CompiledKernel,
        nd: &NdRange,
        args: &[ArgValue],
        bufs: &[BufferData],
        max_samples: usize,
        run_items: RunItemsFn,
    ) -> Result<Self, VmError> {
        let mut scratch = bufs.to_vec();
        let mut vm = Vm::new();
        Vm::check_args(&kernel.bytecode, args, &scratch)?;
        let extent = nd.split_extent();
        let inner = nd.items_per_slice();
        let total = nd.total();
        let n = total.min(max_samples.max(1));
        let split_dim = nd.split_dim();
        let mut slices = Vec::with_capacity(n);
        let mut gids = Vec::with_capacity(n);
        for j in 0..n {
            let li = if n == total {
                j
            } else {
                (j as u128 * total as u128 / n as u128) as usize
            };
            let slice = li / inner;
            let mut gid = [0usize; 3];
            gid[split_dim] = slice;
            slices.push(slice);
            gids.push(gid);
        }
        let per_item = run_items(&mut vm, &kernel.bytecode, nd, &gids, args, &mut scratch)?;
        Self::from_probes(kernel, extent, inner, slices, per_item)
    }

    fn from_probes(
        kernel: &CompiledKernel,
        extent: usize,
        items_per_slice: usize,
        slices: Vec<usize>,
        per_item: Vec<Counters>,
    ) -> Result<Self, VmError> {
        let samples = slices
            .into_iter()
            .zip(per_item)
            .map(|(slice, c)| {
                let d = dynamic_counts(&kernel.bytecode, &c);
                let ops = d.total_ops() as f64;
                SamplePoint {
                    slice,
                    counts: d,
                    ops,
                }
            })
            .collect();
        Ok(Self {
            extent,
            items_per_slice,
            samples,
        })
    }

    /// Number of collected samples.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Estimate the dynamic counts and divergence of the chunk
    /// `slices` (a range of the split dimension).
    ///
    /// Returns `(counts, divergence_cv)`. Panics if the range is empty or
    /// out of bounds — chunk construction guarantees validity.
    pub fn estimate(&self, slices: Range<usize>) -> (DynamicCounts, f64) {
        assert!(
            !slices.is_empty() && slices.end <= self.extent,
            "invalid chunk {slices:?}"
        );
        let chunk_items = (slices.len() * self.items_per_slice) as f64;
        let inside: Vec<&SamplePoint> = self
            .samples
            .iter()
            .filter(|s| slices.contains(&s.slice))
            .collect();
        // Fallback: no sample landed inside — take the nearest sample.
        let points: Vec<&SamplePoint> = if inside.is_empty() {
            let mid = slices.start + slices.len() / 2;
            let nearest = self
                .samples
                .iter()
                .min_by_key(|s| s.slice.abs_diff(mid))
                .expect("profile has at least one sample");
            vec![nearest]
        } else {
            inside
        };

        let k = points.len() as f64;
        let mut acc = DynamicCounts {
            per_class: [0; N_OP_CLASSES],
            buf_reads: vec![0; points[0].counts.buf_reads.len()],
            buf_writes: vec![0; points[0].counts.buf_writes.len()],
            items: 0,
        };
        let mut stats = OnlineStats::default();
        for p in &points {
            for (a, b) in acc.per_class.iter_mut().zip(&p.counts.per_class) {
                *a += b;
            }
            for (a, b) in acc.buf_reads.iter_mut().zip(&p.counts.buf_reads) {
                *a += b;
            }
            for (a, b) in acc.buf_writes.iter_mut().zip(&p.counts.buf_writes) {
                *a += b;
            }
            acc.items += p.counts.items;
            stats.push(p.ops);
        }
        let scale = chunk_items / k;
        let counts = acc.scaled(scale);
        (counts, stats.cv().clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpart_inspire::compile;

    const UNIFORM: &str = "kernel void u(global const float* a, global float* o, int n) {
        int i = get_global_id(0);
        o[i] = a[i] * 2.0 + 1.0;
    }";

    const VARYING: &str = "kernel void v(global float* o, int n) {
        int i = get_global_id(0);
        float s = 0.0;
        for (int j = 0; j < i; j++) { s += 1.0; }
        o[i] = s;
    }";

    fn bufs_args(n: usize) -> (Vec<BufferData>, Vec<ArgValue>) {
        (
            vec![BufferData::F32(vec![1.0; n]), BufferData::F32(vec![0.0; n])],
            vec![
                ArgValue::Buffer(0),
                ArgValue::Buffer(1),
                ArgValue::Int(n as i32),
            ],
        )
    }

    #[test]
    fn uniform_kernel_estimates_exactly() {
        let k = compile(UNIFORM).unwrap();
        let n = 1000;
        let (bufs, args) = bufs_args(n);
        let p = LaunchProfile::collect(&k, &NdRange::d1(n), &args, &bufs, 64).unwrap();
        assert_eq!(p.num_samples(), 64);
        let (counts, cv) = p.estimate(0..n);
        assert_eq!(counts.items, n as u64);
        assert_eq!(counts.buf_reads[0], n as u64);
        assert!(cv < 1e-9);
        let (half, _) = p.estimate(0..n / 2);
        assert_eq!(half.items, (n / 2) as u64);
        assert_eq!(half.buf_writes[1], (n / 2) as u64);
    }

    #[test]
    fn varying_kernel_estimates_differ_by_region() {
        let k = compile(VARYING).unwrap();
        let n = 4096;
        let bufs = vec![BufferData::F32(vec![0.0; n])];
        let args = vec![ArgValue::Buffer(0), ArgValue::Int(n as i32)];
        let p = LaunchProfile::collect(&k, &NdRange::d1(n), &args, &bufs, 128).unwrap();
        let (low, _) = p.estimate(0..n / 4);
        let (high, _) = p.estimate(3 * n / 4..n);
        assert!(
            high.alu_ops() > 3 * low.alu_ops(),
            "late items do ~7x more work: low={} high={}",
            low.alu_ops(),
            high.alu_ops()
        );
        // Whole-range divergence is substantial for a linear work ramp; a
        // single-sample chunk has none by definition.
        let (_, cv_all) = p.estimate(0..n);
        assert!(cv_all > 0.3, "ramp kernel divergence: {cv_all}");
        let (_, cv_single) = p.estimate(0..1);
        assert_eq!(cv_single, 0.0);
    }

    #[test]
    fn batched_and_scalar_profiles_are_identical() {
        let k = compile(VARYING).unwrap();
        let n = 2048;
        let bufs = vec![BufferData::F32(vec![0.0; n])];
        let args = vec![ArgValue::Buffer(0), ArgValue::Int(n as i32)];
        let nd = NdRange::d1(n);
        let lanes = LaunchProfile::collect(&k, &nd, &args, &bufs, 100).unwrap();
        let scalar = LaunchProfile::collect_scalar(&k, &nd, &args, &bufs, 100).unwrap();
        assert_eq!(lanes.num_samples(), scalar.num_samples());
        for chunk in [0..n, 0..n / 2, n / 3..n / 2, n - 1..n] {
            let (cl, dl) = lanes.estimate(chunk.clone());
            let (cs, ds) = scalar.estimate(chunk);
            assert_eq!(cl, cs);
            assert_eq!(dl.to_bits(), ds.to_bits());
        }
    }

    #[test]
    fn tiny_chunks_fall_back_to_nearest_sample() {
        let k = compile(UNIFORM).unwrap();
        let n = 10_000;
        let (bufs, args) = bufs_args(n);
        // 16 samples over 10k slices: a 10-slice chunk usually has none.
        let p = LaunchProfile::collect(&k, &NdRange::d1(n), &args, &bufs, 16).unwrap();
        let (counts, _) = p.estimate(5_000..5_010);
        assert_eq!(counts.items, 10);
    }

    #[test]
    #[should_panic(expected = "invalid chunk")]
    fn empty_chunk_panics() {
        let k = compile(UNIFORM).unwrap();
        let (bufs, args) = bufs_args(16);
        let p = LaunchProfile::collect(&k, &NdRange::d1(16), &args, &bufs, 4).unwrap();
        let _ = p.estimate(3..3);
    }
}
