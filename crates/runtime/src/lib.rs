//! # hetpart-runtime
//!
//! The multi-device runtime of the hetpart framework: the discretized
//! partitioning space (10% steps, as in the paper), partitioned kernel
//! execution with access-analysis-driven transfer planning, runtime
//! feature collection, and the exhaustive partition sweep used as the
//! training-phase oracle.
//!
//! ## Example
//!
//! ```
//! use hetpart_inspire::{compile, vm::{ArgValue, BufferData}, NdRange};
//! use hetpart_oclsim::machines;
//! use hetpart_runtime::{Executor, Launch, Partition};
//!
//! let k = compile(
//!     "kernel void scale(global const float* a, global float* o, float f) {
//!          int i = get_global_id(0);
//!          o[i] = a[i] * f;
//!      }",
//! ).unwrap();
//! let n = 1024;
//! let mut bufs = vec![
//!     BufferData::F32(vec![3.0; n]),
//!     BufferData::F32(vec![0.0; n]),
//! ];
//! let args = vec![ArgValue::Buffer(0), ArgValue::Buffer(1), ArgValue::Float(2.0)];
//!
//! let ex = Executor::new(machines::mc2());
//! let launch = Launch::new(&k, NdRange::d1(n), args);
//! // Split 40% CPU / 30% / 30% across the two GTX 480s.
//! let report = ex
//!     .run(&launch, &mut bufs, &Partition::from_tenths(vec![4, 3, 3]))
//!     .unwrap();
//! assert_eq!(bufs[1].as_f32().unwrap()[0], 6.0);
//! assert_eq!(report.device_runs.len(), 3);
//! ```

pub mod dynsched;
pub mod exec;
pub mod features;
pub mod partition;
pub mod profile;
pub mod sweep;

pub use dynsched::{dynamic_schedule, DynSchedConfig, DynSchedReport};
pub use exec::{
    DeviceRun, ExecPlan, ExecutionReport, Executor, Launch, LaunchError, DEFAULT_SAMPLE_ITEMS,
};
pub use features::{runtime_features, RuntimeFeatures, RUNTIME_FEATURE_DIM, RUNTIME_FEATURE_NAMES};
pub use partition::{Partition, TENTHS};
pub use profile::LaunchProfile;
pub use sweep::{
    sweep_many, sweep_many_mode, sweep_partitions, sweep_partitions_mode, PartitionSweep,
    SweepEntry, SweepJob, SweepMode,
};
