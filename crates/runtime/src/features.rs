//! Problem-size-dependent runtime features.
//!
//! The paper's second feature class: "problem size dependent runtime
//! features, whose values are collected during program execution". They
//! are evaluated just before the kernel launch, from the actual launch
//! configuration and a cheap sampled pre-execution, and are what makes the
//! prediction model *input sensitive*.

use hetpart_inspire::ir::NdRange;
use hetpart_inspire::vm::{ArgValue, BufferData, Vm};
use hetpart_inspire::{CompiledKernel, VmError};
use serde::{Deserialize, Serialize};

use crate::exec::{coalesced_fraction, scalar_values, transfer_bytes, workload_shape};

/// Runtime feature vector for one (program, problem size) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeFeatures {
    /// Total work-items of the launch.
    pub items: f64,
    /// `log2(items)` — size sensitivity is roughly logarithmic.
    pub log2_items: f64,
    /// Bytes the kernel's inputs occupy (host→device for an accelerator
    /// running the whole range).
    pub bytes_in: f64,
    /// Bytes written back.
    pub bytes_out: f64,
    /// Transferred bytes per work-item.
    pub bytes_per_item: f64,
    /// Mean dynamic instructions per work-item (sampled).
    pub ops_per_item: f64,
    /// Dynamic arithmetic intensity: ALU ops per byte of device-memory
    /// traffic.
    pub arith_intensity: f64,
    /// Control-flow divergence estimate in `[0, 1]`.
    pub divergence: f64,
    /// Transfer pressure: transferred bytes relative to bytes touched in
    /// device memory.
    pub transfer_ratio: f64,
    /// Static coalescing estimate (duplicated here so models that only see
    /// runtime features still know the access pattern quality).
    pub coalesced_fraction: f64,
}

/// Number of entries in [`RuntimeFeatures::to_vec`].
pub const RUNTIME_FEATURE_DIM: usize = 10;

/// Names aligned with [`RuntimeFeatures::to_vec`].
pub const RUNTIME_FEATURE_NAMES: [&str; RUNTIME_FEATURE_DIM] = [
    "rt.items",
    "rt.log2_items",
    "rt.bytes_in",
    "rt.bytes_out",
    "rt.bytes_per_item",
    "rt.ops_per_item",
    "rt.arith_intensity",
    "rt.divergence",
    "rt.transfer_ratio",
    "rt.coalesced_fraction",
];

impl RuntimeFeatures {
    /// Flatten into the numeric vector consumed by the ML models.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.items,
            self.log2_items,
            self.bytes_in,
            self.bytes_out,
            self.bytes_per_item,
            self.ops_per_item,
            self.arith_intensity,
            self.divergence,
            self.transfer_ratio,
            self.coalesced_fraction,
        ]
    }
}

/// Collect the runtime features of a launch by sampling `sample_items`
/// work-items on scratch buffer copies.
pub fn runtime_features(
    kernel: &CompiledKernel,
    nd: &NdRange,
    args: &[ArgValue],
    bufs: &[BufferData],
    sample_items: usize,
) -> Result<RuntimeFeatures, VmError> {
    let scalars = scalar_values(kernel, args);
    let (bytes_in, bytes_out) =
        transfer_bytes(kernel, nd, 0..nd.split_extent(), &scalars, args, bufs);
    let mut scratch = bufs.to_vec();
    let mut vm = Vm::new();
    let sample = vm.run_sampled(
        &kernel.bytecode,
        nd,
        0..nd.split_extent(),
        args,
        &mut scratch,
        sample_items,
    )?;
    let counts = sample.extrapolated(&kernel.bytecode);
    // The static uniformity analysis already classified every branch: a
    // kernel with zero divergent branches provably executes the same
    // instruction sequence on every work-item, so the per-item op-count
    // CV is exactly 0 and the noisy sampled estimate can be skipped.
    let divergence = if kernel.static_features.divergent_branches == 0 {
        0.0
    } else {
        sample.ops_cv.clamp(0.0, 1.0)
    };
    let coalesced = coalesced_fraction(kernel);
    let shape = workload_shape(&counts, bytes_in, bytes_out, divergence, coalesced);

    let items = nd.total() as f64;
    let mem_bytes = shape.mem_bytes() as f64;
    Ok(RuntimeFeatures {
        items,
        log2_items: items.max(1.0).log2(),
        bytes_in: bytes_in as f64,
        bytes_out: bytes_out as f64,
        bytes_per_item: (bytes_in + bytes_out) as f64 / items.max(1.0),
        ops_per_item: sample.mean_ops_per_item,
        arith_intensity: shape.alu_ops() as f64 / mem_bytes.max(1.0),
        divergence,
        transfer_ratio: (bytes_in + bytes_out) as f64 / mem_bytes.max(1.0),
        coalesced_fraction: coalesced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpart_inspire::compile;

    const SRC: &str = "kernel void k(global const float* a, global float* o, int n) {
        int i = get_global_id(0);
        float s = 0.0;
        for (int j = 0; j < n; j++) { s += a[i] * (float)j; }
        o[i] = s;
    }";

    fn features_for(n_items: usize, inner: i32) -> RuntimeFeatures {
        let k = compile(SRC).unwrap();
        let bufs = vec![
            BufferData::F32(vec![1.0; n_items]),
            BufferData::F32(vec![0.0; n_items]),
        ];
        let args = vec![
            ArgValue::Buffer(0),
            ArgValue::Buffer(1),
            ArgValue::Int(inner),
        ];
        runtime_features(&k, &NdRange::d1(n_items), &args, &bufs, 64).unwrap()
    }

    #[test]
    fn items_and_log_track_problem_size() {
        let f1 = features_for(256, 4);
        let f2 = features_for(4096, 4);
        assert_eq!(f1.items, 256.0);
        assert_eq!(f2.items, 4096.0);
        assert!((f2.log2_items - 12.0).abs() < 1e-9);
    }

    #[test]
    fn ops_per_item_scales_with_inner_work() {
        let small = features_for(256, 4);
        let big = features_for(256, 64);
        assert!(
            big.ops_per_item > 4.0 * small.ops_per_item,
            "inner loop work must show up: {} vs {}",
            big.ops_per_item,
            small.ops_per_item
        );
    }

    #[test]
    fn feature_vector_matches_names() {
        let f = features_for(128, 2);
        assert_eq!(f.to_vec().len(), RUNTIME_FEATURE_DIM);
        assert_eq!(RUNTIME_FEATURE_NAMES.len(), RUNTIME_FEATURE_DIM);
    }

    #[test]
    fn uniform_kernel_has_no_divergence() {
        let f = features_for(512, 8);
        assert!(f.divergence < 1e-9);
    }

    #[test]
    fn bytes_track_buffer_sizes() {
        let f = features_for(1024, 2);
        // a read whole (4 KiB) + o written (4 KiB).
        assert_eq!(f.bytes_in, 4096.0);
        assert_eq!(f.bytes_out, 4096.0);
        assert!((f.bytes_per_item - 8.0).abs() < 1e-9);
    }

    #[test]
    fn does_not_mutate_inputs() {
        let k = compile(SRC).unwrap();
        let bufs = vec![
            BufferData::F32(vec![1.0; 64]),
            BufferData::F32(vec![0.0; 64]),
        ];
        let before = bufs.clone();
        let args = vec![ArgValue::Buffer(0), ArgValue::Buffer(1), ArgValue::Int(3)];
        runtime_features(&k, &NdRange::d1(64), &args, &bufs, 16).unwrap();
        assert_eq!(bufs, before);
    }
}
