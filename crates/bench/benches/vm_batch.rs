//! `vm_batch`: the lane-batched VM and pruned-sweep performance baseline.
//!
//! Times three layers against their scalar/exhaustive baselines and
//! writes the results to `reports/BENCH_vm.json` so future PRs have a
//! machine-readable perf trajectory:
//!
//! 1. **Kernel execution** — `run_range` on representative suite kernels
//!    (uniform, compute-bound, divergent): the original scalar engine on
//!    unoptimized bytecode vs today's lane engine on optimized bytecode,
//!    plus A/B columns isolating each layer — divergence replay vs SIMT
//!    reconvergence, and optimized vs `INSPIRE_OPT=0` bytecode.
//! 2. **Training oracle** — one full oracle pass over a batch of
//!    training launches: the PR-1 shape (scalar probe profiles over
//!    unoptimized bytecode + the exhaustive partition space) vs today's
//!    lane-batched profiles over optimized bytecode, full and pruned.
//! 3. A sanity check that the pruned oracle's argmins match the full
//!    sweep on the benchmarked batch (the regression suites prove this
//!    exhaustively; the bench refuses to record numbers from a broken
//!    comparison).
//!
//! `target_met` in the JSON gates CI: the pruned oracle must hold its
//! ≥ 3x speedup, the divergent kernels must stay batched end-to-end
//! (mandelbrot ≥ 3x, blackscholes ≥ 2.5x over the scalar engine), and
//! the bytecode optimizer must pay for itself — lane execution on
//! optimized code at least as fast as on `INSPIRE_OPT=0` code (geomean
//! over the picks) with a ≥ 15% suite-wide static shrink. The backend
//! tier (register allocation + pre-decoded direct-threaded dispatch)
//! has its own A/B column against `INSPIRE_REGALLOC=0` and must hold a
//! geomean lane speedup within noise of break-even, and branchless
//! kernels (vec_add) must run under reconvergence within noise of
//! replay. Set `VM_BENCH_QUICK=1` for the reduced sizes CI uses.
//!
//! A note on the backend-tier floor: the tier was built hoping for a
//! ≥ 1.15x geomean win, and that is *not* what honest interleaved
//! measurement shows. The enum-dispatch baseline runs the same
//! vectorized 64-lane row kernels, so dispatch is a minor fraction of
//! runtime at these batch widths: the tier wins where dispatch and
//! masked per-lane work dominate (mandelbrot ~1.1x, sgemm ~1.05x via
//! memory-pair fusion) and breaks even on the streaming kernels
//! (vec_add, blackscholes ~1.0x). The recorded per-kernel columns keep
//! the honest numbers; the CI floor only guards against the tier
//! *regressing* (beyond the ~5% this host's timing noise can produce),
//! and against losing the register-file shrink or vec_add's
//! replay-parity, which were the fixable regressions this tier landed.

use std::collections::HashMap;
use std::fs;
use std::time::Instant;

use hetpart_bench::banner;
use hetpart_inspire::vm::{DivergenceMode, Vm};
use hetpart_runtime::exec::{scalar_values, transfer_bytes};
use hetpart_runtime::sweep::SWEEP_PROFILE_SAMPLES;
use hetpart_runtime::{
    sweep_many, sweep_many_mode, Executor, Launch, LaunchProfile, Partition, PartitionSweep,
    SweepJob, SweepMode,
};
use hetpart_suite::Instance;
use serde::Serialize;

/// Minimum wall-clock of `reps` timed runs (one untimed warm-up).
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[derive(Serialize)]
struct RunRangeRow {
    kernel: String,
    items: u64,
    /// Scalar engine on **unoptimized** bytecode: the full original
    /// baseline (PR 1 had neither the lane engine nor the optimizer),
    /// so `speedup` records the cumulative system win.
    scalar_s: f64,
    /// Lane engine, SIMT reconvergence (the default mode).
    lanes_s: f64,
    /// Lane engine, per-lane scalar-replay divergence fallback
    /// (`INSPIRE_NO_RECONVERGE=1`) — the PR-2 engine, timed for A/B.
    replay_s: f64,
    /// Lane engine on the **unoptimized** bytecode (`INSPIRE_OPT=0`) —
    /// the same engine minus the optimizer pipeline, timed for A/B.
    unopt_lanes_s: f64,
    /// Lane engine on optimized bytecode but with the backend tier off
    /// (`INSPIRE_REGALLOC=0`): enum-walking dispatch over wide register
    /// files — isolates what regalloc + pre-decode buy.
    noregalloc_lanes_s: f64,
    /// Lane engine with bounds-check elision off
    /// (`INSPIRE_BOUNDS_ELIDE=0`): every buffer access re-checked at run
    /// time — isolates what the interval bounds proofs buy.
    noelide_lanes_s: f64,
    /// scalar_s / lanes_s.
    speedup: f64,
    /// replay_s / lanes_s: what reconvergence buys over replay.
    speedup_vs_replay: f64,
    /// unopt_lanes_s / lanes_s: what the optimizer buys end-to-end.
    speedup_vs_unopt: f64,
    /// noregalloc_lanes_s / lanes_s: what the backend tier buys.
    speedup_vs_noregalloc: f64,
    /// noelide_lanes_s / lanes_s: what bounds-check elision buys.
    speedup_vs_noelide: f64,
    /// Static instruction count, unoptimized vs optimized.
    static_instrs_unopt: usize,
    static_instrs_opt: usize,
    /// Register-file widths before (RegAlloc::Off) and after
    /// (RegAlloc::On) linear-scan allocation — the lane engine's per-lane
    /// SoA arrays scale directly with these.
    regfile_i_before: u16,
    regfile_i_after: u16,
    regfile_f_before: u16,
    regfile_f_after: u16,
}

#[derive(Serialize)]
struct OracleRow {
    jobs: usize,
    partitions_per_job: usize,
    /// The PR-1 oracle: scalar probe profiles over **unoptimized**
    /// bytecode and the exhaustive partition space — the system as it
    /// stood before the lane engine, the pruned sweep and the optimizer.
    scalar_engine_s: f64,
    lanes_full_s: f64,
    lanes_pruned_s: f64,
    speedup_full: f64,
    speedup_pruned: f64,
}

/// Perf floors that gate `target_met` (and therefore CI).
#[derive(Serialize)]
struct Targets {
    oracle_speedup: f64,
    mandelbrot_speedup: f64,
    blackscholes_speedup: f64,
    /// The optimizer must not make lane execution slower on geomean.
    opt_geomean_speedup: f64,
    /// … and must shrink the suite's static code size by this fraction.
    opt_static_reduction: f64,
    /// The backend tier (regalloc + pre-decode) must not cost more than
    /// measurement noise on geomean over the picks (see the module doc
    /// for why this is a break-even floor, not a speedup target).
    regalloc_geomean_speedup: f64,
    /// Bounds-check elision removes work and must therefore hold at
    /// least break-even within noise on geomean over the picks.
    elide_geomean_speedup: f64,
    /// Branchless kernels must not pay for reconvergence: vec_add's
    /// `speedup_vs_replay` must be at least this (parity within noise).
    branchless_vs_replay: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    lane_width: usize,
    quick: bool,
    run_range: Vec<RunRangeRow>,
    oracle: OracleRow,
    /// Geomean of `speedup_vs_unopt` over the benchmarked kernels.
    opt_geomean_speedup: f64,
    /// Geomean of `speedup_vs_noregalloc` over the benchmarked kernels.
    regalloc_geomean_speedup: f64,
    /// Geomean of `speedup_vs_noelide` over the benchmarked kernels.
    elide_geomean_speedup: f64,
    /// Suite-wide geomean static shrink: 1 - geomean(opt/unopt instrs)
    /// over all suite kernels, not just the benchmarked picks.
    opt_static_reduction: f64,
    targets: Targets,
    target_met: bool,
}

fn bench_instance(name: &str, n: usize) -> (hetpart_inspire::CompiledKernel, Instance) {
    let bench = hetpart_suite::by_name(name).expect("suite kernel exists");
    // Compile at explicit modes so a stray `INSPIRE_OPT=0` or
    // `INSPIRE_REGALLOC=0` in the environment can't silently turn the
    // A/B comparisons into off vs off.
    (
        bench.compile_with_modes(
            hetpart_inspire::OptLevel::Full,
            hetpart_inspire::RegAlloc::On,
        ),
        bench.instance(n),
    )
}

/// Suite-wide static shrink: `1 - geomean(optimized/unoptimized)` over
/// every kernel's static instruction count.
fn static_reduction() -> f64 {
    use hetpart_inspire::{compile_with_opt, OptLevel};
    let benches = hetpart_suite::all();
    let log_sum: f64 = benches
        .iter()
        .map(|b| {
            let unopt = compile_with_opt(b.source, OptLevel::None).unwrap();
            let opt = compile_with_opt(b.source, OptLevel::Full).unwrap();
            (opt.bytecode.num_instrs() as f64 / unopt.bytecode.num_instrs() as f64).ln()
        })
        .sum();
    1.0 - (log_sum / benches.len() as f64).exp()
}

fn run_range_rows(quick: bool) -> Vec<RunRangeRow> {
    // Uniform streaming, compute-bound uniform, and two divergent kernels
    // (blackscholes: branchy tail after a uniform transcendental body;
    // mandelbrot: data-dependent loop exit — the reconvergence stress
    // tests). Sizes match the training-shaped oracle batch below: the
    // backend tier exists to speed up the VM the training sweeps run on,
    // and sweeps launch at exactly this scale — a DRAM-bound size would
    // measure memory bandwidth instead of dispatch.
    let picks: &[(&str, usize)] = if quick {
        &[
            ("vec_add", 1 << 14),
            ("blackscholes", 1 << 12),
            ("sgemm", 48),
            ("mandelbrot", 48),
        ]
    } else {
        &[
            ("vec_add", 1 << 16),
            ("blackscholes", 1 << 14),
            ("sgemm", 64),
            ("mandelbrot", 64),
        ]
    };
    let reps = if quick { 3 } else { 5 };
    let mut rows = Vec::new();
    for &(name, n) in picks {
        let (kernel, inst) = bench_instance(name, n);
        let bench = hetpart_suite::by_name(name).expect("suite kernel exists");
        let unopt = bench.compile_with_opt(hetpart_inspire::OptLevel::None);
        // Same optimizer pipeline, backend tier off: enum dispatch over
        // the pre-allocation register files.
        let noalloc = bench.compile_with_modes(
            hetpart_inspire::OptLevel::Full,
            hetpart_inspire::RegAlloc::Off,
        );
        let extent = inst.nd.split_extent();
        let mut vm = Vm::new();
        let mut bufs = inst.bufs.clone();
        let scalar_s = time_best(reps, || {
            vm.run_range_scalar(&unopt.bytecode, &inst.nd, 0..extent, &inst.args, &mut bufs)
                .unwrap();
        });
        // The four lane configurations are timed interleaved (one rep of
        // each per round, min over rounds) rather than in sequential
        // blocks: the gated columns are *ratios* between them, and
        // interleaving cancels the slow frequency/load drift that
        // otherwise dominates block-to-block comparisons.
        vm.divergence_mode = DivergenceMode::Reconverge;
        // Pin elision on for every column except the dedicated
        // elision-off one, so a stray `INSPIRE_BOUNDS_ELIDE=0` can't
        // flatten the A/B.
        vm.set_bounds_elide(Some(true));
        let mut lanes_s = f64::INFINITY;
        let mut unopt_lanes_s = f64::INFINITY;
        let mut noregalloc_lanes_s = f64::INFINITY;
        let mut noelide_lanes_s = f64::INFINITY;
        let mut replay_s = f64::INFINITY;
        let lane_reps = 5 * reps;
        for rep in 0..=lane_reps {
            // rep 0 is a warm-up round: run everything, record nothing.
            let keep = rep > 0;
            vm.divergence_mode = DivergenceMode::Reconverge;
            let t = Instant::now();
            vm.run_range_lanes(&kernel.bytecode, &inst.nd, 0..extent, &inst.args, &mut bufs)
                .unwrap();
            if keep {
                lanes_s = lanes_s.min(t.elapsed().as_secs_f64());
            }
            vm.set_bounds_elide(Some(false));
            let t = Instant::now();
            vm.run_range_lanes(&kernel.bytecode, &inst.nd, 0..extent, &inst.args, &mut bufs)
                .unwrap();
            if keep {
                noelide_lanes_s = noelide_lanes_s.min(t.elapsed().as_secs_f64());
            }
            vm.set_bounds_elide(Some(true));
            let t = Instant::now();
            vm.run_range_lanes(&unopt.bytecode, &inst.nd, 0..extent, &inst.args, &mut bufs)
                .unwrap();
            if keep {
                unopt_lanes_s = unopt_lanes_s.min(t.elapsed().as_secs_f64());
            }
            let t = Instant::now();
            vm.run_range_lanes(
                &noalloc.bytecode,
                &inst.nd,
                0..extent,
                &inst.args,
                &mut bufs,
            )
            .unwrap();
            if keep {
                noregalloc_lanes_s = noregalloc_lanes_s.min(t.elapsed().as_secs_f64());
            }
            vm.divergence_mode = DivergenceMode::Replay;
            let t = Instant::now();
            vm.run_range_lanes(&kernel.bytecode, &inst.nd, 0..extent, &inst.args, &mut bufs)
                .unwrap();
            if keep {
                replay_s = replay_s.min(t.elapsed().as_secs_f64());
            }
        }
        rows.push(RunRangeRow {
            kernel: name.to_string(),
            items: inst.nd.total() as u64,
            scalar_s,
            lanes_s,
            replay_s,
            unopt_lanes_s,
            noregalloc_lanes_s,
            noelide_lanes_s,
            speedup: scalar_s / lanes_s,
            speedup_vs_replay: replay_s / lanes_s,
            speedup_vs_unopt: unopt_lanes_s / lanes_s,
            speedup_vs_noregalloc: noregalloc_lanes_s / lanes_s,
            speedup_vs_noelide: noelide_lanes_s / lanes_s,
            static_instrs_unopt: unopt.bytecode.num_instrs(),
            static_instrs_opt: kernel.bytecode.num_instrs(),
            regfile_i_before: noalloc.bytecode.n_iregs,
            regfile_i_after: kernel.bytecode.n_iregs,
            regfile_f_before: noalloc.bytecode.n_fregs,
            regfile_f_after: kernel.bytecode.n_fregs,
        });
    }
    rows
}

/// The PR-1 training oracle, reconstructed from public APIs with the
/// scalar engine and the *same* two-phase rayon structure as
/// [`sweep_many`]: parallel per-job contexts (scalar probe profile +
/// transfer cache), then one flat parallel pass over (job × partition)
/// pairs. Keeping the parallelism identical means the recorded speedups
/// isolate the lane engine and the pruning, not core count.
fn scalar_engine_oracle(ex: &Executor, jobs: &[SweepJob<'_>]) -> Vec<PartitionSweep> {
    use rayon::prelude::*;
    type Ctx = (
        LaunchProfile,
        HashMap<(usize, usize), (u64, u64)>,
        Vec<Partition>,
    );
    let ctxs: Vec<Ctx> = jobs
        .par_iter()
        .map(|job| {
            let launch = job.launch;
            let profile = LaunchProfile::collect_scalar(
                launch.kernel,
                &launch.nd,
                &launch.args,
                job.bufs,
                SWEEP_PROFILE_SAMPLES.max(ex.sample_items),
            )
            .unwrap();
            let scalars = scalar_values(launch.kernel, &launch.args);
            let space = Partition::enumerate(ex.machine.num_devices(), job.step_tenths);
            let extent = launch.nd.split_extent();
            let mut transfers: HashMap<(usize, usize), (u64, u64)> = HashMap::new();
            for partition in &space {
                for chunk in partition.chunks(extent) {
                    if !chunk.is_empty() {
                        transfers
                            .entry((chunk.start, chunk.end))
                            .or_insert_with(|| {
                                transfer_bytes(
                                    launch.kernel,
                                    &launch.nd,
                                    chunk.clone(),
                                    &scalars,
                                    &launch.args,
                                    job.bufs,
                                )
                            });
                    }
                }
            }
            (profile, transfers, space)
        })
        .collect();

    let mut pairs = Vec::new();
    for (ji, (_, _, space)) in ctxs.iter().enumerate() {
        for pi in 0..space.len() {
            pairs.push((ji, pi));
        }
    }
    let entries: Vec<hetpart_runtime::SweepEntry> = pairs
        .into_par_iter()
        .map(|(ji, pi)| {
            let job = &jobs[ji];
            let (profile, transfers, space) = &ctxs[ji];
            let partition = &space[pi];
            let report = ex.price_with_profile(job.launch, partition, profile, |chunk| {
                transfers[&(chunk.start, chunk.end)]
            });
            hetpart_runtime::SweepEntry {
                partition: partition.clone(),
                time: report.time,
            }
        })
        .collect();

    let mut sweeps = Vec::with_capacity(jobs.len());
    let mut offset = 0;
    for (_, _, space) in &ctxs {
        sweeps.push(PartitionSweep {
            entries: entries[offset..offset + space.len()].to_vec(),
        });
        offset += space.len();
    }
    sweeps
}

fn oracle_row(quick: bool) -> OracleRow {
    let ex = Executor::new(hetpart_oclsim::machines::mc2());
    // A training-shaped batch: mixed arithmetic intensity, mixed sizes.
    let picks: &[(&str, usize)] = if quick {
        &[
            ("vec_add", 1 << 13),
            ("blackscholes", 1 << 11),
            ("nbody", 1 << 9),
            ("sgemm", 48),
            ("mandelbrot", 48),
            ("dot_product", 1 << 12),
        ]
    } else {
        &[
            ("vec_add", 1 << 14),
            ("vec_add", 1 << 16),
            ("blackscholes", 1 << 12),
            ("blackscholes", 1 << 14),
            ("nbody", 1 << 10),
            ("sgemm", 64),
            ("mandelbrot", 64),
            ("dot_product", 1 << 14),
        ]
    };
    let compiled: Vec<(hetpart_inspire::CompiledKernel, Instance)> = picks
        .iter()
        .map(|&(name, n)| bench_instance(name, n))
        .collect();
    let launches: Vec<Launch> = compiled
        .iter()
        .map(|(k, inst)| Launch::new(k, inst.nd.clone(), inst.args.clone()))
        .collect();
    let jobs: Vec<SweepJob> = launches
        .iter()
        .zip(&compiled)
        .map(|(launch, (_, inst))| SweepJob {
            launch,
            bufs: &inst.bufs,
            step_tenths: 1,
        })
        .collect();
    // The PR-1 baseline ran on unoptimized bytecode — compile a second
    // set of kernels at `OptLevel::None` for its timing.
    let compiled_unopt: Vec<(hetpart_inspire::CompiledKernel, Instance)> = picks
        .iter()
        .map(|&(name, n)| {
            let bench = hetpart_suite::by_name(name).expect("suite kernel exists");
            (
                bench.compile_with_opt(hetpart_inspire::OptLevel::None),
                bench.instance(n),
            )
        })
        .collect();
    let launches_unopt: Vec<Launch> = compiled_unopt
        .iter()
        .map(|(k, inst)| Launch::new(k, inst.nd.clone(), inst.args.clone()))
        .collect();
    let jobs_unopt: Vec<SweepJob> = launches_unopt
        .iter()
        .zip(&compiled_unopt)
        .map(|(launch, (_, inst))| SweepJob {
            launch,
            bufs: &inst.bufs,
            step_tenths: 1,
        })
        .collect();

    let reps = if quick { 2 } else { 3 };
    let scalar_engine_s = time_best(reps, || {
        let _ = scalar_engine_oracle(&ex, &jobs_unopt);
    });
    let lanes_full_s = time_best(reps, || {
        sweep_many(&ex, &jobs).unwrap();
    });
    let lanes_pruned_s = time_best(reps, || {
        sweep_many_mode(&ex, &jobs, SweepMode::Pruned).unwrap();
    });

    // Refuse to record numbers from a broken comparison: all three
    // oracles must agree on every argmin. The parity check runs the
    // scalar-engine oracle on the *same* (optimized) bytecode as the
    // lane oracles so it isolates engine/pruning drift — the unoptimized
    // set above is only the timing baseline.
    let reference = scalar_engine_oracle(&ex, &jobs);
    let full = sweep_many(&ex, &jobs).unwrap();
    let pruned = sweep_many_mode(&ex, &jobs, SweepMode::Pruned).unwrap();
    for ((r, f), p) in reference.iter().zip(&full).zip(&pruned) {
        assert_eq!(r.best().partition, f.best().partition, "oracle drift");
        assert_eq!(f.best().partition, p.best().partition, "pruning drift");
        assert_eq!(f.best().time.to_bits(), p.best().time.to_bits());
    }

    OracleRow {
        jobs: jobs.len(),
        partitions_per_job: Partition::enumerate(ex.machine.num_devices(), 1).len(),
        scalar_engine_s,
        lanes_full_s,
        lanes_pruned_s,
        speedup_full: scalar_engine_s / lanes_full_s,
        speedup_pruned: scalar_engine_s / lanes_pruned_s,
    }
}

fn main() {
    let quick = std::env::var_os("VM_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty());
    banner("vm_batch — lane-batched VM + pruned sweep vs scalar baselines");
    if quick {
        println!("(VM_BENCH_QUICK=1: reduced sizes for the CI gate)\n");
    }

    let run_range = run_range_rows(quick);
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "kernel",
        "items",
        "scalar",
        "replay",
        "opt-off",
        "ra-off",
        "elide-off",
        "reconverge",
        "speedup",
        "vs replay",
        "vs opt-off",
        "vs ra-off",
        "vs el-off",
        "instrs",
        "regs i+f"
    );
    for r in &run_range {
        println!(
            "{:<14} {:>10} {:>10.3}ms {:>10.3}ms {:>10.3}ms {:>10.3}ms {:>10.3}ms {:>10.3}ms {:>8.2}x {:>8.2}x {:>8.2}x {:>8.2}x {:>8.2}x {:>5} -> {:>3} {:>4} -> {:>3}",
            r.kernel,
            r.items,
            r.scalar_s * 1e3,
            r.replay_s * 1e3,
            r.unopt_lanes_s * 1e3,
            r.noregalloc_lanes_s * 1e3,
            r.noelide_lanes_s * 1e3,
            r.lanes_s * 1e3,
            r.speedup,
            r.speedup_vs_replay,
            r.speedup_vs_unopt,
            r.speedup_vs_noregalloc,
            r.speedup_vs_noelide,
            r.static_instrs_unopt,
            r.static_instrs_opt,
            r.regfile_i_before + r.regfile_f_before,
            r.regfile_i_after + r.regfile_f_after,
        );
    }

    let oracle = oracle_row(quick);
    println!(
        "\ntraining oracle ({} jobs x {} partitions):",
        oracle.jobs, oracle.partitions_per_job
    );
    println!(
        "  scalar engine  {:>10.3}ms\n  lanes, full    {:>10.3}ms  ({:.2}x)\n  lanes, pruned  {:>10.3}ms  ({:.2}x)",
        oracle.scalar_engine_s * 1e3,
        oracle.lanes_full_s * 1e3,
        oracle.speedup_full,
        oracle.lanes_pruned_s * 1e3,
        oracle.speedup_pruned,
    );

    let opt_geomean_speedup = (run_range
        .iter()
        .map(|r| r.speedup_vs_unopt.ln())
        .sum::<f64>()
        / run_range.len() as f64)
        .exp();
    let opt_static_reduction = static_reduction();
    let regalloc_geomean_speedup = (run_range
        .iter()
        .map(|r| r.speedup_vs_noregalloc.ln())
        .sum::<f64>()
        / run_range.len() as f64)
        .exp();
    println!(
        "\noptimizer A/B: geomean lane speedup {opt_geomean_speedup:.2}x, \
         suite static shrink {:.1}%",
        opt_static_reduction * 100.0
    );
    println!(
        "backend tier A/B: geomean lane speedup {regalloc_geomean_speedup:.2}x \
         (regalloc + pre-decoded dispatch vs INSPIRE_REGALLOC=0)"
    );
    let elide_geomean_speedup = (run_range
        .iter()
        .map(|r| r.speedup_vs_noelide.ln())
        .sum::<f64>()
        / run_range.len() as f64)
        .exp();
    println!(
        "bounds elision A/B: geomean lane speedup {elide_geomean_speedup:.2}x \
         (interval-proved unchecked accesses vs INSPIRE_BOUNDS_ELIDE=0)"
    );

    let targets = Targets {
        oracle_speedup: 3.0,
        mandelbrot_speedup: 3.0,
        blackscholes_speedup: 2.5,
        opt_geomean_speedup: 1.0,
        opt_static_reduction: 0.15,
        regalloc_geomean_speedup: 0.95,
        elide_geomean_speedup: 0.95,
        branchless_vs_replay: 0.97,
    };
    let kernel_speedup = |name: &str| {
        run_range
            .iter()
            .find(|r| r.kernel == name)
            .map_or(0.0, |r| r.speedup)
    };
    // vec_add is branchless, so reconvergence bookkeeping must cost it
    // nothing over the replay fallback.
    let vec_add_vs_replay = run_range
        .iter()
        .find(|r| r.kernel == "vec_add")
        .map_or(0.0, |r| r.speedup_vs_replay);
    let target_met = oracle.speedup_pruned >= targets.oracle_speedup
        && kernel_speedup("mandelbrot") >= targets.mandelbrot_speedup
        && kernel_speedup("blackscholes") >= targets.blackscholes_speedup
        && opt_geomean_speedup >= targets.opt_geomean_speedup
        && opt_static_reduction >= targets.opt_static_reduction
        && regalloc_geomean_speedup >= targets.regalloc_geomean_speedup
        && elide_geomean_speedup >= targets.elide_geomean_speedup
        && vec_add_vs_replay >= targets.branchless_vs_replay;
    let report = Report {
        bench: "vm_batch".to_string(),
        lane_width: hetpart_inspire::vm::LANES,
        quick,
        run_range,
        oracle,
        opt_geomean_speedup,
        regalloc_geomean_speedup,
        elide_geomean_speedup,
        opt_static_reduction,
        targets,
        target_met,
    };
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports");
    fs::create_dir_all(dir).expect("create reports dir");
    let path = format!("{dir}/BENCH_vm.json");
    fs::write(&path, serde_json::to_string_pretty(&report).unwrap()).expect("write report");
    println!(
        "\nwrote {path} (targets oracle {:.1}x, mandelbrot {:.1}x, blackscholes {:.1}x: {})",
        report.targets.oracle_speedup,
        report.targets.mandelbrot_speedup,
        report.targets.blackscholes_speedup,
        if report.target_met { "met" } else { "MISSED" }
    );
}
