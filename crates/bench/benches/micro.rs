//! Micro-benchmarks of the substrate: compiler front end, bytecode VM
//! throughput, access-range analysis, and partitioned execution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hetpart_inspire::access::{access_ranges, LaunchBounds};
use hetpart_inspire::compile;
use hetpart_inspire::vm::Vm;
use hetpart_inspire::NdRange;
use hetpart_oclsim::machines;
use hetpart_runtime::{Executor, Launch, Partition};
use std::hint::black_box;

fn micro(c: &mut Criterion) {
    // VM throughput on the two extremes of the suite.
    let mut g = c.benchmark_group("vm");
    for name in ["vec_add", "blackscholes"] {
        let bench = hetpart_suite::by_name(name).expect("exists");
        let kernel = bench.compile();
        let inst = bench.instance(bench.smallest_size());
        let items = inst.nd.total() as u64;
        g.throughput(Throughput::Elements(items));
        g.bench_function(format!("run_range_{name}"), |b| {
            let mut vm = Vm::new();
            let mut bufs = inst.bufs.clone();
            b.iter(|| {
                vm.run_range(
                    &kernel.bytecode,
                    &inst.nd,
                    0..inst.nd.split_extent(),
                    &inst.args,
                    &mut bufs,
                )
                .unwrap()
            })
        });
    }
    g.finish();

    // Compiler front-end cost over the whole suite.
    c.bench_function("compile_all_23_kernels", |b| {
        b.iter(|| {
            hetpart_suite::all()
                .iter()
                .map(|bench| {
                    compile(black_box(bench.source))
                        .unwrap()
                        .bytecode
                        .num_instrs()
                })
                .sum::<usize>()
        })
    });

    // Access-range analysis (runs once per chunk per launch).
    let bench = hetpart_suite::by_name("sgemm").expect("exists");
    let kernel = bench.compile();
    let bounds = LaunchBounds {
        gid: [(0, 255), (64, 127), (0, 0)],
        gsize: [256, 256, 1],
        scalars: vec![None, None, None, Some(256)],
    };
    c.bench_function("access_ranges_sgemm_chunk", |b| {
        b.iter(|| access_ranges(black_box(&kernel.ir), black_box(&bounds)))
    });

    // Full partitioned functional execution.
    let inst = bench.instance(32);
    let ex = Executor::new(machines::mc2());
    let launch = Launch::new(&kernel, inst.nd.clone(), inst.args.clone());
    c.bench_function("partitioned_run_sgemm_32", |b| {
        let mut bufs = inst.bufs.clone();
        b.iter(|| ex.run(&launch, &mut bufs, &Partition::even(3)).unwrap())
    });

    let _ = NdRange::d1(1);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = micro
}
criterion_main!(benches);
