//! Regenerates prose claim **P2** (the optimal partitioning depends on
//! program, problem size and target architecture), then benchmarks launch
//! profiling — the primitive that makes the size sweep cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use hetpart_bench::{banner, bench_context};
use hetpart_core::eval;
use hetpart_runtime::LaunchProfile;

fn size_sensitivity(c: &mut Criterion) {
    let ctx = bench_context();
    banner("P2: oracle sensitivity to program, size and machine");
    println!("{}", eval::oracle_sensitivity(&ctx).render());

    let bench = hetpart_suite::by_name("mandelbrot").expect("exists");
    let kernel = bench.compile();
    let inst = bench.instance(bench.default_size());
    c.benchmark_group("size_sensitivity")
        .sample_size(20)
        .bench_function("launch_profile_mandelbrot_256", |b| {
            b.iter(|| {
                LaunchProfile::collect(&kernel, &inst.nd, &inst.args, &inst.bufs, 256).unwrap()
            })
        });
}

criterion_group!(benches, size_sensitivity);
criterion_main!(benches);
