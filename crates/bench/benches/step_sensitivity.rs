//! Regenerates extension **E3** (how much oracle performance coarser
//! partition-space discretizations lose vs the paper's 10% step), then
//! benchmarks partition-space enumeration and chunking.

use criterion::{criterion_group, criterion_main, Criterion};
use hetpart_bench::{banner, bench_context};
use hetpart_core::eval;
use hetpart_runtime::Partition;
use std::hint::black_box;

fn step_sensitivity(c: &mut Criterion) {
    let ctx = bench_context();
    banner("E3: partition-space step sensitivity");
    println!("{}", eval::step_sensitivity(&ctx).render());

    let mut g = c.benchmark_group("partition_space");
    g.bench_function("enumerate_3dev_10pct", |b| {
        b.iter(|| Partition::enumerate(black_box(3), black_box(1)))
    });
    let space = Partition::enumerate(3, 1);
    g.bench_function("chunk_all_66", |b| {
        b.iter(|| {
            space
                .iter()
                .map(|p| p.chunks(black_box(1_048_576)))
                .map(|c| c[0].len())
                .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(benches, step_sensitivity);
criterion_main!(benches);
