//! Regenerates **Figure 1** of the paper, then benchmarks the deployment
//! cost the figure depends on: end-to-end partition prediction for a new
//! launch (runtime feature collection + model inference).

use criterion::{criterion_group, criterion_main, Criterion};
use hetpart_bench::{banner, bench_context};
use hetpart_core::{eval, FeatureSet, PartitionPredictor};
use hetpart_runtime::runtime_features;
use std::hint::black_box;

fn fig1(c: &mut Criterion) {
    let ctx = bench_context();
    banner("Figure 1: ML-guided partitioning vs CPU-only / GPU-only");
    let fig = eval::figure1(&ctx);
    println!("{}", fig.render());
    println!("paper reference peaks: mc1 13.5x/19.8x, mc2 5.7x/4.9x (over CPU / over GPU)\n");

    // Deployment-path cost: what the runtime pays per launch.
    let predictor = PartitionPredictor::train(&ctx.dbs[1], &ctx.cfg.model, FeatureSet::Both);
    let bench = hetpart_suite::by_name("blackscholes").expect("exists");
    let kernel = bench.compile();
    let inst = bench.instance(bench.default_size());

    let mut g = c.benchmark_group("fig1");
    g.bench_function("collect_runtime_features", |b| {
        b.iter(|| runtime_features(&kernel, &inst.nd, &inst.args, &inst.bufs, 128).unwrap())
    });
    let rt = runtime_features(&kernel, &inst.nd, &inst.args, &inst.bufs, 128).unwrap();
    g.bench_function("predict_partitioning", |b| {
        b.iter(|| {
            predictor
                .predict(black_box(&kernel), black_box(&rt))
                .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig1
}
criterion_main!(benches);
