//! `serve`: throughput of the concurrent deployment service on repeat
//! (kernel, size) traffic, versus the synchronous `run_auto` path.
//!
//! The deployment phase's per-launch overhead is the probe (runtime
//! feature collection: a scratch buffer clone plus sampled execution),
//! model inference, and one access-analysis pass per device chunk —
//! `Framework::run_auto` pays all of it on *every* launch. The service's
//! prediction cache pays it once per (kernel fingerprint, launch shape)
//! and replays the plan, so a warm launch runs only the kernel work.
//!
//! Four columns per traffic class, and totals:
//!
//! * **cold run_auto** — the PR-0..3 deployment path, re-planning every
//!   launch (the baseline the acceptance target is measured against);
//! * **serve cold** — first pass through the service: every launch a
//!   cache miss (plan once + planned execution);
//! * **warm plan** — repeat passes against the plan cache only: the
//!   launch still executes, but skips probe, inference and access
//!   analysis (bounded ≈ 3x by construction: cold sampling can never
//!   exceed the extent the warm launch must still execute);
//! * **warm result** — repeat passes with the content-keyed result memo
//!   on: a bit-identical launch replays its memoized outputs.
//!
//! The bench refuses to record numbers from a broken comparison: served
//! outputs and partitions must be bit-identical to the serial loop, and
//! the hit/miss counters must add up. `target_met` gates CI (set
//! `SERVE_BENCH_QUICK=1` for the reduced CI sizes): warm served launches
//! (result tier) must be ≥ 5x faster than cold `run_auto` on this
//! repeat traffic, and the plan tier alone must hold ≥ 1.5x.

use std::fs;
use std::sync::Arc;
use std::time::Instant;

use hetpart_bench::banner;
use hetpart_core::{
    collect_training_db, FeatureSet, Framework, HarnessConfig, PartitionPredictor, Service,
    ServiceConfig,
};
use hetpart_inspire::CompiledKernel;
use hetpart_ml::{ModelConfig, TreeConfig};
use hetpart_oclsim::machines;
use hetpart_runtime::Executor;
use hetpart_suite::Instance;
use serde::Serialize;

/// One worker, always: this bench compares *per-launch* cold and warm
/// latency, and a single worker keeps the cache accounting deterministic
/// (with N workers, N concurrent cold submissions of the same key can
/// each legitimately count a miss before the first plan lands in the
/// cache — fine for serving, fatal for exact assert_eq gates on a
/// multi-core CI runner).
fn bench_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }
}

/// Minimum wall-clock of `reps` timed runs (one untimed warm-up).
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[derive(Serialize)]
struct TrafficRow {
    kernel: String,
    size: usize,
    launches: usize,
    /// Serial `run_auto` per launch (re-planned every time).
    cold_run_auto_ms: f64,
    /// Served, cache cold (plan once + planned execution).
    serve_cold_ms: f64,
    /// Served, plan-cache hit (planned execution only).
    warm_plan_ms: f64,
    /// Served, result-memo hit (no execution).
    warm_result_ms: f64,
    /// cold_run_auto_ms / warm_plan_ms.
    plan_speedup: f64,
    /// cold_run_auto_ms / warm_result_ms.
    warm_speedup: f64,
}

#[derive(Serialize)]
struct Totals {
    launches: usize,
    cold_run_auto_s: f64,
    warm_plan_s: f64,
    warm_result_s: f64,
    plan_speedup: f64,
    warm_speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
    result_hits: u64,
}

#[derive(Serialize)]
struct Targets {
    warm_speedup: f64,
    plan_speedup: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    quick: bool,
    workers: usize,
    traffic: Vec<TrafficRow>,
    totals: Totals,
    targets: Targets,
    target_met: bool,
}

fn trained_framework() -> Framework {
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "blackscholes", "sgemm", "nbody"].contains(&b.name))
        .collect();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 32,
        step_tenths: 5,
        ..HarnessConfig::quick()
    };
    let db = collect_training_db(&machines::mc2(), &benches, &cfg);
    let predictor = PartitionPredictor::train(
        &db,
        &ModelConfig::Tree(TreeConfig::default()),
        FeatureSet::Both,
    );
    Framework {
        executor: Executor::new(machines::mc2()),
        predictor,
    }
}

fn traffic_picks(quick: bool) -> Vec<(&'static str, usize)> {
    // Repeat-traffic shapes: small and mid-size launches where the
    // deployment overhead (probe + inference + access analysis) is a
    // visible share of the launch. Larger launches amortize planning
    // anyway — the cache is for the painful, chatty traffic.
    if quick {
        vec![
            ("blackscholes", 1 << 8),
            ("dot_product", 1 << 9),
            ("nbody", 1 << 7),
            ("triad", 1 << 9),
        ]
    } else {
        vec![
            ("blackscholes", 1 << 8),
            ("dot_product", 1 << 9),
            ("reduction_sum", 1 << 9),
            ("spmv_csr", 1 << 8),
            ("bicg", 64),
            ("mvt", 64),
            ("nbody", 1 << 7),
            ("md_lj", 1 << 7),
            ("triad", 1 << 9),
        ]
    }
}

fn main() {
    let quick = std::env::var_os("SERVE_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty());
    banner("serve — concurrent deployment service vs synchronous run_auto");
    if quick {
        println!("(SERVE_BENCH_QUICK=1: reduced sizes for the CI gate)\n");
    }

    let fw = trained_framework();
    let picks = traffic_picks(quick);
    let launches_per_pick = if quick { 8 } else { 16 };
    let reps = if quick { 3 } else { 5 };

    let compiled: Vec<(Arc<CompiledKernel>, Instance, &str, usize)> = picks
        .iter()
        .map(|&(name, n)| {
            let bench = hetpart_suite::by_name(name).expect("suite kernel exists");
            (Arc::new(bench.compile()), bench.instance(n), name, n)
        })
        .collect();

    // --- Correctness gate: served results must match the serial loop. ---
    {
        let service = Service::new(fw.clone(), bench_config()).expect("valid framework");
        for (kernel, inst, name, _) in &compiled {
            let mut serial_bufs = inst.bufs.clone();
            let (serial_partition, _) = fw
                .run_auto(kernel, &inst.nd, &inst.args, &mut serial_bufs)
                .expect("serial launch");
            for pass in 0..2 {
                let served = service
                    .submit(
                        Arc::clone(kernel),
                        inst.nd.clone(),
                        inst.args.clone(),
                        inst.bufs.clone(),
                    )
                    .wait()
                    .expect("served launch");
                assert_eq!(
                    served.partition, serial_partition,
                    "{name}: served partition drifted from run_auto"
                );
                assert_eq!(
                    served.bufs, serial_bufs,
                    "{name}: served outputs drifted from run_auto"
                );
                assert_eq!(served.cache_hit, pass > 0, "{name}: cache state");
            }
        }
        service.shutdown();
    }

    // The result memo must also replay bit-identically.
    {
        let memo_cfg = ServiceConfig {
            result_cache_capacity: 256,
            ..bench_config()
        };
        let service = Service::new(fw.clone(), memo_cfg).expect("valid framework");
        for (kernel, inst, name, _) in &compiled {
            let mut serial_bufs = inst.bufs.clone();
            let (serial_partition, _) = fw
                .run_auto(kernel, &inst.nd, &inst.args, &mut serial_bufs)
                .expect("serial launch");
            for pass in 0..2 {
                let served = service
                    .submit(
                        Arc::clone(kernel),
                        inst.nd.clone(),
                        inst.args.clone(),
                        inst.bufs.clone(),
                    )
                    .wait()
                    .expect("served launch");
                assert_eq!(served.result_hit, pass > 0, "{name}: memo state");
                assert_eq!(
                    served.partition, serial_partition,
                    "{name}: memoized partition drifted from run_auto"
                );
                assert_eq!(
                    served.bufs, serial_bufs,
                    "{name}: memoized outputs drifted from run_auto"
                );
            }
        }
        service.shutdown();
    }

    // --- Timed passes. ---
    let mut rows = Vec::new();
    let mut total_cold = 0.0;
    let mut total_plan = 0.0;
    let mut total_result = 0.0;
    let mut total_launches = 0usize;

    // Cold service: caching disabled, so every submission re-plans.
    let cold_service = Service::new(
        fw.clone(),
        ServiceConfig {
            cache_capacity: 0,
            ..bench_config()
        },
    )
    .expect("valid framework");
    // Plan-tier service: prediction cache only.
    let plan_service = Service::new(fw.clone(), bench_config()).expect("valid framework");
    // Full service: prediction cache + content-keyed result memo.
    let memo_service = Service::new(
        fw.clone(),
        ServiceConfig {
            result_cache_capacity: 256,
            ..bench_config()
        },
    )
    .expect("valid framework");
    let workers = bench_config().workers;

    for (kernel, inst, name, n) in &compiled {
        // Cold run_auto: every launch re-planned, the synchronous path.
        let cold_s = time_best(reps, || {
            for _ in 0..launches_per_pick {
                let mut bufs = inst.bufs.clone();
                fw.run_auto(kernel, &inst.nd, &inst.args, &mut bufs)
                    .expect("cold launch");
            }
        });

        // Serve cold: the shared no-cache service — every launch a
        // genuine miss, with thread spawn/join outside the timed region.
        let serve_cold_s = time_best(reps, || {
            let tickets: Vec<_> = (0..launches_per_pick)
                .map(|_| {
                    cold_service.submit(
                        Arc::clone(kernel),
                        inst.nd.clone(),
                        inst.args.clone(),
                        inst.bufs.clone(),
                    )
                })
                .collect();
            for t in tickets {
                t.wait().expect("served launch");
            }
        });

        // Warm passes: caches primed by the untimed warm-up rep.
        let warm_pass = |service: &Service| {
            time_best(reps, || {
                let tickets: Vec<_> = (0..launches_per_pick)
                    .map(|_| {
                        service.submit(
                            Arc::clone(kernel),
                            inst.nd.clone(),
                            inst.args.clone(),
                            inst.bufs.clone(),
                        )
                    })
                    .collect();
                for t in tickets {
                    t.wait().expect("served launch");
                }
            })
        };
        let warm_plan_s = warm_pass(&plan_service);
        let warm_result_s = warm_pass(&memo_service);

        let per = launches_per_pick as f64;
        rows.push(TrafficRow {
            kernel: name.to_string(),
            size: *n,
            launches: launches_per_pick,
            cold_run_auto_ms: cold_s / per * 1e3,
            serve_cold_ms: serve_cold_s / per * 1e3,
            warm_plan_ms: warm_plan_s / per * 1e3,
            warm_result_ms: warm_result_s / per * 1e3,
            plan_speedup: cold_s / warm_plan_s,
            warm_speedup: cold_s / warm_result_s,
        });
        total_cold += cold_s;
        total_plan += warm_plan_s;
        total_result += warm_result_s;
        total_launches += launches_per_pick;
    }

    let plan_stats = plan_service.stats();
    let memo_stats = memo_service.stats();
    // Every pick was planned exactly once per service (the warm-up rep's
    // first launch); everything else must have hit.
    assert_eq!(
        plan_stats.cache_misses,
        compiled.len() as u64,
        "warm service must plan each traffic class exactly once"
    );
    assert_eq!(
        memo_stats.cache_misses,
        compiled.len() as u64,
        "memo service must execute each traffic class exactly once"
    );
    assert_eq!(
        memo_stats.result_hits, memo_stats.cache_hits,
        "every memo-service hit must come from the result tier"
    );
    assert_eq!(plan_stats.errors + memo_stats.errors, 0);
    cold_service.shutdown();
    plan_service.shutdown();
    memo_service.shutdown();

    println!(
        "{:<14} {:>8} {:>9} {:>13} {:>11} {:>11} {:>12} {:>8} {:>8}",
        "kernel",
        "size",
        "launches",
        "cold run_auto",
        "serve cold",
        "warm plan",
        "warm result",
        "plan x",
        "result x"
    );
    for r in &rows {
        println!(
            "{:<14} {:>8} {:>9} {:>11.3}ms {:>9.3}ms {:>9.3}ms {:>10.4}ms {:>7.2}x {:>7.2}x",
            r.kernel,
            r.size,
            r.launches,
            r.cold_run_auto_ms,
            r.serve_cold_ms,
            r.warm_plan_ms,
            r.warm_result_ms,
            r.plan_speedup,
            r.warm_speedup,
        );
    }

    let totals = Totals {
        launches: total_launches,
        cold_run_auto_s: total_cold,
        warm_plan_s: total_plan,
        warm_result_s: total_result,
        plan_speedup: total_cold / total_plan,
        warm_speedup: total_cold / total_result,
        cache_hits: plan_stats.cache_hits + memo_stats.cache_hits,
        cache_misses: plan_stats.cache_misses + memo_stats.cache_misses,
        result_hits: memo_stats.result_hits,
    };
    println!(
        "\ntotal over {} launches: cold run_auto {:.3}ms, warm plan {:.3}ms ({:.2}x), \
         warm result {:.3}ms ({:.2}x)",
        totals.launches,
        totals.cold_run_auto_s * 1e3,
        totals.warm_plan_s * 1e3,
        totals.plan_speedup,
        totals.warm_result_s * 1e3,
        totals.warm_speedup,
    );

    let targets = Targets {
        warm_speedup: 5.0,
        plan_speedup: 1.5,
    };
    let target_met =
        totals.warm_speedup >= targets.warm_speedup && totals.plan_speedup >= targets.plan_speedup;
    let report = Report {
        bench: "serve".to_string(),
        quick,
        workers,
        traffic: rows,
        totals,
        targets,
        target_met,
    };
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports");
    fs::create_dir_all(dir).expect("create reports dir");
    let path = format!("{dir}/BENCH_serve.json");
    fs::write(&path, serde_json::to_string_pretty(&report).unwrap()).expect("write report");
    println!(
        "\nwrote {path} (targets warm {:.1}x, plan {:.1}x: {})",
        report.targets.warm_speedup,
        report.targets.plan_speedup,
        if report.target_met { "met" } else { "MISSED" }
    );
}
