//! `serve`: throughput of the concurrent deployment service on repeat
//! (kernel, size) traffic, versus the synchronous `run_auto` path.
//!
//! The deployment phase's per-launch overhead is the probe (runtime
//! feature collection: a scratch buffer clone plus sampled execution),
//! model inference, and one access-analysis pass per device chunk —
//! `Framework::run_auto` pays all of it on *every* launch. The service's
//! prediction cache pays it once per (kernel fingerprint, launch shape)
//! and replays the plan, so a warm launch runs only the kernel work.
//!
//! Four columns per traffic class, and totals:
//!
//! * **cold run_auto** — the PR-0..3 deployment path, re-planning every
//!   launch (the baseline the acceptance target is measured against);
//! * **serve cold** — first pass through the service: every launch a
//!   cache miss (plan once + planned execution);
//! * **warm plan** — repeat passes against the plan cache only: the
//!   launch still executes, but skips probe, inference and access
//!   analysis (bounded ≈ 3x by construction: cold sampling can never
//!   exceed the extent the warm launch must still execute);
//! * **warm result** — repeat passes with the content-keyed result memo
//!   on: a bit-identical launch replays its memoized outputs.
//!
//! A fifth column measures **overload**: warm traffic fired open-loop at
//! 2x the measured closed-loop capacity against a bounded queue — shed
//! rate, p50/p99 served latency, and served throughput, which must stay
//! within 10% of the closed-loop ceiling (admission control sheds at the
//! door instead of melting the worker).
//!
//! The bench refuses to record numbers from a broken comparison: served
//! outputs and partitions must be bit-identical to the serial loop, and
//! the hit/miss counters must add up. `target_met` gates CI (set
//! `SERVE_BENCH_QUICK=1` for the reduced CI sizes): warm served launches
//! (result tier) must be ≥ 5x faster than cold `run_auto` on this
//! repeat traffic, and the plan tier alone must hold ≥ 1.5x.

use std::fs;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hetpart_bench::banner;
use hetpart_core::{
    collect_training_db, DeployError, FeatureSet, Framework, HarnessConfig, LaunchPlan,
    PartitionPredictor, PlanKey, Service, ServiceConfig, StripedCache,
};
use hetpart_inspire::CompiledKernel;
use hetpart_ml::{ModelConfig, TreeConfig};
use hetpart_oclsim::machines;
use hetpart_runtime::Executor;
use hetpart_suite::Instance;
use serde::Serialize;

/// One worker, always: this bench compares *per-launch* cold and warm
/// latency, and a single worker keeps the cache accounting deterministic
/// (with N workers, N concurrent cold submissions of the same key can
/// each legitimately count a miss before the first plan lands in the
/// cache — fine for serving, fatal for exact assert_eq gates on a
/// multi-core CI runner).
fn bench_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }
}

/// Minimum wall-clock of `reps` timed runs (one untimed warm-up).
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[derive(Serialize)]
struct TrafficRow {
    kernel: String,
    size: usize,
    launches: usize,
    /// Serial `run_auto` per launch (re-planned every time).
    cold_run_auto_ms: f64,
    /// Served, cache cold (plan once + planned execution).
    serve_cold_ms: f64,
    /// Served, plan-cache hit (planned execution only).
    warm_plan_ms: f64,
    /// Served, result-memo hit (no execution).
    warm_result_ms: f64,
    /// cold_run_auto_ms / warm_plan_ms.
    plan_speedup: f64,
    /// cold_run_auto_ms / warm_result_ms.
    warm_speedup: f64,
}

#[derive(Serialize)]
struct Totals {
    launches: usize,
    cold_run_auto_s: f64,
    warm_plan_s: f64,
    warm_result_s: f64,
    plan_speedup: f64,
    warm_speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
    result_hits: u64,
}

/// The lock-striping column: the prediction cache hammered from a worker
/// pool's worth of threads, single mutex (`stripes = 1`, the PR-4 layout)
/// versus the striped default, plus the end-to-end served comparison.
#[derive(Serialize)]
struct StripedRow {
    threads: usize,
    stripes: usize,
    keys: usize,
    ops_per_thread: usize,
    /// Million cache ops/sec, one mutex.
    single_mutex_mops: f64,
    /// Million cache ops/sec, striped.
    striped_mops: f64,
    /// striped_mops / single_mutex_mops.
    cache_speedup: f64,
    /// Warm result-tier traffic through a multi-worker service, one
    /// cache mutex.
    serve_single_ms: f64,
    /// … and with the striped cache.
    serve_striped_ms: f64,
    /// serve_single_ms / serve_striped_ms.
    serve_speedup: f64,
}

/// The overload column: warm traffic fired open-loop at 2x the measured
/// closed-loop capacity against a bounded queue. A well-behaved
/// backpressure layer sheds the excess at admission (cheap) and keeps the
/// worker saturated, so throughput of *served* launches stays at the
/// closed-loop ceiling instead of collapsing under queue pressure.
#[derive(Serialize)]
struct OverloadRow {
    /// Bounded queue depth of the overloaded service.
    queue_depth: usize,
    /// Submissions fired at 2x capacity.
    offered: usize,
    admitted: usize,
    shed: usize,
    /// shed / offered.
    shed_rate: f64,
    /// Closed-loop ceiling, launches/sec (unbounded queue, same worker).
    closed_loop_ops: f64,
    /// Served launches/sec under the shedding burst.
    overload_ops: f64,
    /// overload_ops / closed_loop_ops.
    throughput_ratio: f64,
    /// Submit-to-completion latency of served (admitted) launches.
    served_p50_ms: f64,
    served_p99_ms: f64,
}

#[derive(Serialize)]
struct Targets {
    warm_speedup: f64,
    plan_speedup: f64,
    /// The striped cache must beat one mutex under contention …
    cache_speedup: f64,
    /// … and must not slow the served path down (parity modulo noise:
    /// every other serialization point — queue mutex, condvars — is
    /// shared between the two layouts).
    serve_striped_speedup: f64,
    /// Served throughput under a shedding 2x burst must stay within 10%
    /// of the closed-loop ceiling (admission control must not melt the
    /// worker), and the burst must actually shed (`shed_rate > 0`).
    overload_throughput_ratio: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    quick: bool,
    workers: usize,
    traffic: Vec<TrafficRow>,
    totals: Totals,
    striped: StripedRow,
    overload: OverloadRow,
    targets: Targets,
    target_met: bool,
}

fn trained_framework() -> Framework {
    let benches: Vec<_> = hetpart_suite::all()
        .into_iter()
        .filter(|b| ["vec_add", "blackscholes", "sgemm", "nbody"].contains(&b.name))
        .collect();
    let cfg = HarnessConfig {
        sizes_per_benchmark: 2,
        sample_items: 32,
        step_tenths: 5,
        ..HarnessConfig::quick()
    };
    let db = collect_training_db(&machines::mc2(), &benches, &cfg).expect("training succeeds");
    let predictor = PartitionPredictor::train(
        &db,
        &ModelConfig::Tree(TreeConfig::default()),
        FeatureSet::Both,
    );
    Framework {
        executor: Executor::new(machines::mc2()),
        predictor,
    }
}

fn traffic_picks(quick: bool) -> Vec<(&'static str, usize)> {
    // Repeat-traffic shapes: small and mid-size launches where the
    // deployment overhead (probe + inference + access analysis) is a
    // visible share of the launch. Larger launches amortize planning
    // anyway — the cache is for the painful, chatty traffic.
    if quick {
        vec![
            ("blackscholes", 1 << 8),
            ("dot_product", 1 << 9),
            ("nbody", 1 << 7),
            ("triad", 1 << 9),
        ]
    } else {
        vec![
            ("blackscholes", 1 << 8),
            ("dot_product", 1 << 9),
            ("reduction_sum", 1 << 9),
            ("spmv_csr", 1 << 8),
            ("bicg", 64),
            ("mvt", 64),
            ("nbody", 1 << 7),
            ("md_lj", 1 << 7),
            ("triad", 1 << 9),
        ]
    }
}

/// Measure the lock-striping win two ways:
///
/// * **Cache level** — the real `StripedCache<PlanKey, LaunchPlan>` under
///   a worker pool's worth of threads doing get-heavy mixed traffic on
///   real plan keys, one stripe (the PR-4 single-mutex layout) vs the
///   service default. This isolates the serialization the striping
///   removes.
/// * **Service level** — warm result-tier traffic through a multi-worker
///   [`Service`], `cache_stripes: 1` vs the default. The queue mutex and
///   ticket condvars are shared by both layouts, so the expectation here
///   is "striping never loses", not a large win.
fn striped_comparison(
    fw: &Framework,
    compiled: &[(Arc<CompiledKernel>, Instance, &str, usize)],
    quick: bool,
    reps: usize,
) -> StripedRow {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let default_stripes = ServiceConfig::default().cache_stripes;
    // The A/B passes here compare sub-millisecond totals, so the min-of-N
    // needs more reps than the throughput rows to shake scheduler noise —
    // especially on time-sliced single-core runners.
    let reps = reps.max(6);

    // Real keys and plans: every traffic class at several problem sizes.
    let sizes_per = if quick { 2 } else { 4 };
    let mut entries: Vec<(PlanKey, LaunchPlan)> = Vec::new();
    for (kernel, _, name, _) in compiled {
        let bench = hetpart_suite::by_name(name).expect("suite kernel exists");
        for &n in bench.sizes.iter().take(sizes_per) {
            let inst = bench.instance(n);
            let plan = fw
                .prepare(kernel, &inst.nd, &inst.args, &inst.bufs)
                .expect("plan succeeds");
            entries.push((PlanKey::of(kernel, &inst.nd, &inst.args, &inst.bufs), plan));
        }
    }
    let entries = Arc::new(entries);
    let ops_per_thread = if quick { 100_000 } else { 400_000 };

    let cache_pass = |stripes: usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..=reps {
            let cache: Arc<StripedCache<PlanKey, LaunchPlan>> =
                Arc::new(StripedCache::new(1024, stripes));
            for (k, v) in entries.iter() {
                cache.insert(k.clone(), v.clone());
            }
            let t = Instant::now();
            let handles: Vec<_> = (0..threads)
                .map(|tid| {
                    let cache = Arc::clone(&cache);
                    let entries = Arc::clone(&entries);
                    std::thread::spawn(move || {
                        let mut live = 0usize;
                        for i in 0..ops_per_thread {
                            // Weyl-sequence key pick, decorrelated across
                            // threads; ~10% of ops refresh the entry.
                            let j = (i * 2654435761 + tid * 40503) % entries.len();
                            let (k, v) = &entries[j];
                            if i % 10 == 0 {
                                cache.insert(k.clone(), v.clone());
                            } else if cache.get(k).is_some() {
                                live += 1;
                            }
                        }
                        live
                    })
                })
                .collect();
            for h in handles {
                assert!(h.join().expect("cache thread") > 0, "gets must hit");
            }
            best = best.min(t.elapsed().as_secs_f64());
        }
        (threads * ops_per_thread) as f64 / best / 1e6
    };
    let single_mutex_mops = cache_pass(1);
    let striped_mops = cache_pass(default_stripes);

    // Service level: warm result-memo traffic, all classes interleaved.
    let serve_pass = |stripes: usize| -> f64 {
        let service = Service::new(
            fw.clone(),
            ServiceConfig {
                workers: threads,
                result_cache_capacity: 256,
                cache_stripes: stripes,
                ..ServiceConfig::default()
            },
        )
        .expect("valid framework");
        let service_ref = &service;
        let submit_all = || {
            let tickets: Vec<_> = compiled
                .iter()
                .flat_map(|(kernel, inst, _, _)| {
                    (0..4).map(move |_| {
                        service_ref
                            .submit(
                                Arc::clone(kernel),
                                inst.nd.clone(),
                                inst.args.clone(),
                                inst.bufs.clone(),
                            )
                            .expect("admitted")
                    })
                })
                .collect();
            for t in tickets {
                t.wait().expect("served launch");
            }
        };
        let best = time_best(reps, submit_all);
        service.shutdown();
        best
    };
    let serve_single_s = serve_pass(1);
    let serve_striped_s = serve_pass(default_stripes);

    StripedRow {
        threads,
        stripes: default_stripes,
        keys: entries.len(),
        ops_per_thread,
        single_mutex_mops,
        striped_mops,
        cache_speedup: striped_mops / single_mutex_mops,
        serve_single_ms: serve_single_s * 1e3,
        serve_striped_ms: serve_striped_s * 1e3,
        serve_speedup: serve_single_s / serve_striped_s,
    }
}

/// Measure the backpressure column. One worker throughout (the per-launch
/// columns' determinism argument applies here too). Served latency is
/// end-to-end as recorded by the service itself (`queued_seconds` +
/// `service_seconds`), so no collector thread competes with the worker.
fn overload_comparison(
    fw: &Framework,
    compiled: &[(Arc<CompiledKernel>, Instance, &str, usize)],
    quick: bool,
) -> OverloadRow {
    // Use the heaviest traffic kernel: per-launch execution must dominate
    // the cost of generating the offered load (payload clones + submit
    // bookkeeping), or on small hosts — where the open-loop generator
    // time-slices with the single worker — the ratio measures generator
    // overhead instead of service throughput.
    let (kernel, inst, _, _) = compiled
        .iter()
        .find(|(_, _, name, _)| *name == "nbody")
        .unwrap_or(&compiled[0]);
    // Not reduced under `quick`: the whole section costs ~1s, and shorter
    // runs leave the ratio at the mercy of sleep-wake jitter.
    let _ = quick;
    let launches = 300;
    let reps = 5;
    let make_payloads = |n: usize| -> Vec<_> {
        (0..n)
            .map(|_| (inst.nd.clone(), inst.args.clone(), inst.bufs.clone()))
            .collect()
    };
    let submit_prepared = |service: &Service, (nd, args, bufs): (_, _, _)| {
        service.submit(Arc::clone(kernel), nd, args, bufs)
    };

    // Closed-loop ceiling: unbounded queue, every submission admitted,
    // plan cache primed by one untimed launch. Best of `reps` (the
    // shared `time_best` idiom: the fastest pass is the least-perturbed
    // measurement of the service's actual capacity).
    let service = Service::new(
        fw.clone(),
        ServiceConfig {
            max_queue_depth: 0,
            ..bench_config()
        },
    )
    .expect("valid framework");
    let mut closed_s = f64::INFINITY;
    for rep in 0..=reps {
        let payloads = make_payloads(launches);
        let t = Instant::now();
        let tickets: Vec<_> = payloads
            .into_iter()
            .map(|p| submit_prepared(&service, p).expect("unbounded queue admits"))
            .collect();
        for ticket in tickets {
            ticket.wait().expect("served launch");
        }
        // Rep 0 is the untimed warm-up.
        if rep > 0 {
            closed_s = closed_s.min(t.elapsed().as_secs_f64());
        }
    }
    service.shutdown();
    let closed_loop_ops = launches as f64 / closed_s;

    // Open-loop burst: 2x as many submissions, paced at 2x the ceiling,
    // against a small bounded queue. Best of `reps` by throughput, same
    // reasoning as the ceiling.
    let queue_depth = 16;
    let offered = 2 * launches;
    let interval = Duration::from_secs_f64(closed_s / offered as f64);
    let mut best: Option<OverloadRow> = None;
    for _ in 0..reps {
        let service = Service::new(
            fw.clone(),
            ServiceConfig {
                max_queue_depth: queue_depth,
                ..bench_config()
            },
        )
        .expect("valid framework");
        let mut warmup = make_payloads(1);
        submit_prepared(&service, warmup.pop().expect("one payload"))
            .expect("admitted")
            .wait()
            .expect("warm-up launch");

        let payloads = make_payloads(offered);
        let mut shed = 0usize;
        let mut tickets = Vec::new();
        // Pace with sleeps, in small batches: spinning would starve the
        // worker of CPU on small hosts (this runs on single-core CI
        // boxes), and per-launch sleeps undershoot the offered rate when
        // the interval is below the OS timer granularity. A batch bursts
        // `batch` submissions back to back, then sleeps until the batch
        // boundary — same average rate, and the bounded queue is sized to
        // absorb the bursts.
        let batch = ((Duration::from_millis(1).as_secs_f64() / interval.as_secs_f64().max(1e-9))
            .ceil() as usize)
            .clamp(1, queue_depth / 2);
        let start = Instant::now();
        for (k, payload) in payloads.into_iter().enumerate() {
            if k % batch == 0 {
                let target = interval * k as u32;
                let elapsed = start.elapsed();
                if elapsed < target {
                    std::thread::sleep(target - elapsed);
                }
            }
            match submit_prepared(&service, payload) {
                Ok(ticket) => tickets.push(ticket),
                Err(DeployError::Overloaded { .. }) => shed += 1,
                Err(e) => panic!("unexpected submit error under overload: {e}"),
            }
        }
        // Drain the tail: end-to-end latency (queue wait + service time)
        // is recorded by the service itself, so no collector thread has
        // to race completions — the generator is the only load besides
        // the worker.
        let admitted = tickets.len();
        let mut latencies: Vec<f64> = tickets
            .into_iter()
            .map(|t| {
                let served = t.wait().expect("admitted launch completes");
                served.queued_seconds + served.service_seconds
            })
            .collect();
        let total_s = start.elapsed().as_secs_f64();
        let stats = service.stats();
        assert_eq!(stats.sheds as usize, shed, "shed accounting must add up");
        assert_eq!(stats.errors, 0, "overload must shed, not fail, launches");
        service.shutdown();

        latencies.sort_by(f64::total_cmp);
        let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize] * 1e3;
        let overload_ops = admitted as f64 / total_s;
        let row = OverloadRow {
            queue_depth,
            offered,
            admitted,
            shed,
            shed_rate: shed as f64 / offered as f64,
            closed_loop_ops,
            overload_ops,
            throughput_ratio: overload_ops / closed_loop_ops,
            served_p50_ms: pct(0.50),
            served_p99_ms: pct(0.99),
        };
        if best
            .as_ref()
            .is_none_or(|b| row.throughput_ratio > b.throughput_ratio)
        {
            best = Some(row);
        }
    }
    best.expect("at least one overload rep")
}

fn main() {
    let quick = std::env::var_os("SERVE_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty());
    banner("serve — concurrent deployment service vs synchronous run_auto");
    if quick {
        println!("(SERVE_BENCH_QUICK=1: reduced sizes for the CI gate)\n");
    }

    let fw = trained_framework();
    let picks = traffic_picks(quick);
    let launches_per_pick = if quick { 8 } else { 16 };
    let reps = if quick { 3 } else { 5 };

    let compiled: Vec<(Arc<CompiledKernel>, Instance, &str, usize)> = picks
        .iter()
        .map(|&(name, n)| {
            let bench = hetpart_suite::by_name(name).expect("suite kernel exists");
            (Arc::new(bench.compile()), bench.instance(n), name, n)
        })
        .collect();

    // --- Correctness gate: served results must match the serial loop. ---
    {
        let service = Service::new(fw.clone(), bench_config()).expect("valid framework");
        for (kernel, inst, name, _) in &compiled {
            let mut serial_bufs = inst.bufs.clone();
            let (serial_partition, _) = fw
                .run_auto(kernel, &inst.nd, &inst.args, &mut serial_bufs)
                .expect("serial launch");
            for pass in 0..2 {
                let served = service
                    .submit(
                        Arc::clone(kernel),
                        inst.nd.clone(),
                        inst.args.clone(),
                        inst.bufs.clone(),
                    )
                    .expect("admitted")
                    .wait()
                    .expect("served launch");
                assert_eq!(
                    served.partition, serial_partition,
                    "{name}: served partition drifted from run_auto"
                );
                assert_eq!(
                    served.bufs, serial_bufs,
                    "{name}: served outputs drifted from run_auto"
                );
                assert_eq!(served.cache_hit, pass > 0, "{name}: cache state");
            }
        }
        service.shutdown();
    }

    // The result memo must also replay bit-identically.
    {
        let memo_cfg = ServiceConfig {
            result_cache_capacity: 256,
            ..bench_config()
        };
        let service = Service::new(fw.clone(), memo_cfg).expect("valid framework");
        for (kernel, inst, name, _) in &compiled {
            let mut serial_bufs = inst.bufs.clone();
            let (serial_partition, _) = fw
                .run_auto(kernel, &inst.nd, &inst.args, &mut serial_bufs)
                .expect("serial launch");
            for pass in 0..2 {
                let served = service
                    .submit(
                        Arc::clone(kernel),
                        inst.nd.clone(),
                        inst.args.clone(),
                        inst.bufs.clone(),
                    )
                    .expect("admitted")
                    .wait()
                    .expect("served launch");
                assert_eq!(served.result_hit, pass > 0, "{name}: memo state");
                assert_eq!(
                    served.partition, serial_partition,
                    "{name}: memoized partition drifted from run_auto"
                );
                assert_eq!(
                    served.bufs, serial_bufs,
                    "{name}: memoized outputs drifted from run_auto"
                );
            }
        }
        service.shutdown();
    }

    // --- Timed passes. ---
    let mut rows = Vec::new();
    let mut total_cold = 0.0;
    let mut total_plan = 0.0;
    let mut total_result = 0.0;
    let mut total_launches = 0usize;

    // Cold service: caching disabled, so every submission re-plans.
    let cold_service = Service::new(
        fw.clone(),
        ServiceConfig {
            cache_capacity: 0,
            ..bench_config()
        },
    )
    .expect("valid framework");
    // Plan-tier service: prediction cache only.
    let plan_service = Service::new(fw.clone(), bench_config()).expect("valid framework");
    // Full service: prediction cache + content-keyed result memo.
    let memo_service = Service::new(
        fw.clone(),
        ServiceConfig {
            result_cache_capacity: 256,
            ..bench_config()
        },
    )
    .expect("valid framework");
    let workers = bench_config().workers;

    for (kernel, inst, name, n) in &compiled {
        // Cold run_auto: every launch re-planned, the synchronous path.
        let cold_s = time_best(reps, || {
            for _ in 0..launches_per_pick {
                let mut bufs = inst.bufs.clone();
                fw.run_auto(kernel, &inst.nd, &inst.args, &mut bufs)
                    .expect("cold launch");
            }
        });

        // Serve cold: the shared no-cache service — every launch a
        // genuine miss, with thread spawn/join outside the timed region.
        let serve_cold_s = time_best(reps, || {
            let tickets: Vec<_> = (0..launches_per_pick)
                .map(|_| {
                    cold_service
                        .submit(
                            Arc::clone(kernel),
                            inst.nd.clone(),
                            inst.args.clone(),
                            inst.bufs.clone(),
                        )
                        .expect("admitted")
                })
                .collect();
            for t in tickets {
                t.wait().expect("served launch");
            }
        });

        // Warm passes: caches primed by the untimed warm-up rep.
        let warm_pass = |service: &Service| {
            time_best(reps, || {
                let tickets: Vec<_> = (0..launches_per_pick)
                    .map(|_| {
                        service
                            .submit(
                                Arc::clone(kernel),
                                inst.nd.clone(),
                                inst.args.clone(),
                                inst.bufs.clone(),
                            )
                            .expect("admitted")
                    })
                    .collect();
                for t in tickets {
                    t.wait().expect("served launch");
                }
            })
        };
        let warm_plan_s = warm_pass(&plan_service);
        let warm_result_s = warm_pass(&memo_service);

        let per = launches_per_pick as f64;
        rows.push(TrafficRow {
            kernel: name.to_string(),
            size: *n,
            launches: launches_per_pick,
            cold_run_auto_ms: cold_s / per * 1e3,
            serve_cold_ms: serve_cold_s / per * 1e3,
            warm_plan_ms: warm_plan_s / per * 1e3,
            warm_result_ms: warm_result_s / per * 1e3,
            plan_speedup: cold_s / warm_plan_s,
            warm_speedup: cold_s / warm_result_s,
        });
        total_cold += cold_s;
        total_plan += warm_plan_s;
        total_result += warm_result_s;
        total_launches += launches_per_pick;
    }

    let plan_stats = plan_service.stats();
    let memo_stats = memo_service.stats();
    // Every pick was planned exactly once per service (the warm-up rep's
    // first launch); everything else must have hit.
    assert_eq!(
        plan_stats.cache_misses,
        compiled.len() as u64,
        "warm service must plan each traffic class exactly once"
    );
    assert_eq!(
        memo_stats.cache_misses,
        compiled.len() as u64,
        "memo service must execute each traffic class exactly once"
    );
    assert_eq!(
        memo_stats.result_hits, memo_stats.cache_hits,
        "every memo-service hit must come from the result tier"
    );
    assert_eq!(plan_stats.errors + memo_stats.errors, 0);
    cold_service.shutdown();
    plan_service.shutdown();
    memo_service.shutdown();

    println!(
        "{:<14} {:>8} {:>9} {:>13} {:>11} {:>11} {:>12} {:>8} {:>8}",
        "kernel",
        "size",
        "launches",
        "cold run_auto",
        "serve cold",
        "warm plan",
        "warm result",
        "plan x",
        "result x"
    );
    for r in &rows {
        println!(
            "{:<14} {:>8} {:>9} {:>11.3}ms {:>9.3}ms {:>9.3}ms {:>10.4}ms {:>7.2}x {:>7.2}x",
            r.kernel,
            r.size,
            r.launches,
            r.cold_run_auto_ms,
            r.serve_cold_ms,
            r.warm_plan_ms,
            r.warm_result_ms,
            r.plan_speedup,
            r.warm_speedup,
        );
    }

    let totals = Totals {
        launches: total_launches,
        cold_run_auto_s: total_cold,
        warm_plan_s: total_plan,
        warm_result_s: total_result,
        plan_speedup: total_cold / total_plan,
        warm_speedup: total_cold / total_result,
        cache_hits: plan_stats.cache_hits + memo_stats.cache_hits,
        cache_misses: plan_stats.cache_misses + memo_stats.cache_misses,
        result_hits: memo_stats.result_hits,
    };
    println!(
        "\ntotal over {} launches: cold run_auto {:.3}ms, warm plan {:.3}ms ({:.2}x), \
         warm result {:.3}ms ({:.2}x)",
        totals.launches,
        totals.cold_run_auto_s * 1e3,
        totals.warm_plan_s * 1e3,
        totals.plan_speedup,
        totals.warm_result_s * 1e3,
        totals.warm_speedup,
    );

    let striped = striped_comparison(&fw, &compiled, quick, reps);
    println!(
        "\nstriped cache ({} threads, {} keys): single mutex {:.1} Mops/s, \
         {} stripes {:.1} Mops/s ({:.2}x); served warm traffic {:.3}ms -> {:.3}ms ({:.2}x)",
        striped.threads,
        striped.keys,
        striped.single_mutex_mops,
        striped.stripes,
        striped.striped_mops,
        striped.cache_speedup,
        striped.serve_single_ms,
        striped.serve_striped_ms,
        striped.serve_speedup,
    );

    let overload = overload_comparison(&fw, &compiled, quick);
    println!(
        "\noverload (queue {} deep, {} offered at 2x capacity): {} served / {} shed \
         ({:.0}% shed rate); throughput {:.0} -> {:.0} launches/s ({:.2}x of ceiling); \
         served latency p50 {:.3}ms p99 {:.3}ms",
        overload.queue_depth,
        overload.offered,
        overload.admitted,
        overload.shed,
        overload.shed_rate * 100.0,
        overload.closed_loop_ops,
        overload.overload_ops,
        overload.throughput_ratio,
        overload.served_p50_ms,
        overload.served_p99_ms,
    );

    let targets = Targets {
        warm_speedup: 5.0,
        plan_speedup: 1.5,
        // Lock contention needs real cores to exist: on a machine with 8+
        // logical CPUs (>= 4 physical cores even under 2-way SMT — std
        // only exposes the logical count) the striped cache must hold at
        // least parity with one mutex under contention. Below that —
        // single/dual-core or SMT-inflated CI runners — threads
        // time-slice, there is little to de-serialize, and the recorded
        // parity (~0.97x at 2 threads) shows hashing overhead plus
        // scheduler noise can nose ahead either way; the gate there is
        // "striping must not regress" with a noise allowance matched to
        // the sub-millisecond totals being compared.
        cache_speedup: if striped.threads >= 8 { 1.0 } else { 0.85 },
        serve_striped_speedup: if striped.threads >= 8 { 0.9 } else { 0.85 },
        overload_throughput_ratio: 0.9,
    };
    let target_met = totals.warm_speedup >= targets.warm_speedup
        && totals.plan_speedup >= targets.plan_speedup
        && striped.cache_speedup >= targets.cache_speedup
        && striped.serve_speedup >= targets.serve_striped_speedup
        && overload.throughput_ratio >= targets.overload_throughput_ratio
        && overload.shed_rate > 0.0;
    let report = Report {
        bench: "serve".to_string(),
        quick,
        workers,
        traffic: rows,
        totals,
        striped,
        overload,
        targets,
        target_met,
    };
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../reports");
    fs::create_dir_all(dir).expect("create reports dir");
    let path = format!("{dir}/BENCH_serve.json");
    fs::write(&path, serde_json::to_string_pretty(&report).unwrap()).expect("write report");
    println!(
        "\nwrote {path} (targets warm {:.1}x, plan {:.1}x: {})",
        report.targets.warm_speedup,
        report.targets.plan_speedup,
        if report.target_met { "met" } else { "MISSED" }
    );
}
