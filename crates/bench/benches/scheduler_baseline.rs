//! Regenerates extension **E4**: the paper's learned static partitioning
//! versus a StarPU-style dynamic chunked scheduler, then benchmarks one
//! dynamic scheduling decision.

use criterion::{criterion_group, criterion_main, Criterion};
use hetpart_bench::{banner, bench_context};
use hetpart_core::eval;
use hetpart_oclsim::machines;
use hetpart_runtime::{dynamic_schedule, DynSchedConfig, Executor, Launch};

fn scheduler_baseline(c: &mut Criterion) {
    let ctx = bench_context();
    banner("E4: dynamic-scheduler baseline vs trained prediction");
    println!("{}", eval::scheduler_comparison(&ctx).render());

    let bench = hetpart_suite::by_name("blackscholes").expect("exists");
    let kernel = bench.compile();
    let inst = bench.instance(bench.default_size());
    let ex = Executor::new(machines::mc2());
    let launch = Launch::new(&kernel, inst.nd.clone(), inst.args.clone());
    c.benchmark_group("scheduler")
        .sample_size(10)
        .bench_function("dynamic_schedule_16_chunks", |b| {
            b.iter(|| {
                dynamic_schedule(&ex, &launch, &inst.bufs, DynSchedConfig::default()).unwrap()
            })
        });
}

criterion_group!(benches, scheduler_baseline);
criterion_main!(benches);
